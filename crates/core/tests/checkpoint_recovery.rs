//! Tests for the checkpointed fast-recovery extension (the paper's §4.5
//! future work): correctness after arbitrary churn, crash-atomicity of
//! checkpoint writing, and the read-cost advantage over the full scan.

use pdl_core::{is_power_loss, PageStore, Pdl, StoreOptions};
use pdl_flash::{FlashChip, FlashConfig};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

const PAGES: u64 = 300;
const MAX_DIFF: usize = 256;
const CKPT_BLOCKS: u32 = 4;

fn opts() -> StoreOptions {
    StoreOptions::new(PAGES).with_checkpoint_blocks(CKPT_BLOCKS)
}

fn fresh() -> Pdl {
    // Paper geometry, 24 blocks: root region 4, data region 20.
    Pdl::new(FlashChip::new(FlashConfig::scaled(24)), opts(), MAX_DIFF).unwrap()
}

/// Load + update randomly; returns the truth.
fn churn(s: &mut Pdl, rounds: usize, seed: u64) -> Vec<Vec<u8>> {
    let size = s.logical_page_size();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut truth: Vec<Vec<u8>> = Vec::new();
    let mut page = vec![0u8; size];
    for pid in 0..PAGES {
        rng.fill_bytes(&mut page);
        s.write_page(pid, &page).unwrap();
        truth.push(page.clone());
    }
    for _ in 0..rounds {
        let pid = rng.gen_range(0..PAGES) as usize;
        let at = rng.gen_range(0..size - 40);
        for b in truth[pid][at..at + 40].iter_mut() {
            *b = rng.gen();
        }
        let p = truth[pid].clone();
        s.write_page(pid as u64, &p).unwrap();
    }
    truth
}

fn verify(s: &mut Pdl, truth: &[Vec<u8>]) {
    let mut out = vec![0u8; s.logical_page_size()];
    for (pid, expect) in truth.iter().enumerate() {
        s.read_page(pid as u64, &mut out).unwrap();
        assert_eq!(&out, expect, "pid {pid}");
    }
}

#[test]
fn checkpoint_then_recover_restores_everything() {
    let mut s = fresh();
    let truth = churn(&mut s, 600, 1);
    s.checkpoint().unwrap();
    let chip = Box::new(s).into_chip();
    let mut r = Pdl::recover(chip, opts(), MAX_DIFF).unwrap();
    verify(&mut r, &truth);
}

#[test]
fn post_checkpoint_updates_survive_via_delta_scan() {
    let mut s = fresh();
    let mut truth = churn(&mut s, 400, 2);
    s.checkpoint().unwrap();
    // More churn after the checkpoint, enough to trigger GC (erased
    // blocks => invalidated fingerprints => purge + full-block replay).
    let size = s.logical_page_size();
    let mut rng = StdRng::seed_from_u64(22);
    for _ in 0..4000 {
        let pid = rng.gen_range(0..PAGES) as usize;
        let at = rng.gen_range(0..size - 64);
        for b in truth[pid][at..at + 64].iter_mut() {
            *b = rng.gen();
        }
        let p = truth[pid].clone();
        s.write_page(pid as u64, &p).unwrap();
    }
    assert!(s.chip().stats().total().erases > 0, "churn must GC");
    s.flush().unwrap();
    let chip = Box::new(s).into_chip();
    let mut r = Pdl::recover(chip, opts(), MAX_DIFF).unwrap();
    verify(&mut r, &truth);
    // And the store keeps working: more churn + another checkpoint.
    let _ = churn(&mut r, 50, 3);
    r.checkpoint().unwrap();
}

#[test]
fn fresh_checkpoint_recovery_reads_far_fewer_pages() {
    // Full scan: one read per page. Fast recovery: ~two reads per block
    // plus the checkpoint itself.
    let build_state = |use_ckpt: bool| -> (FlashChip, StoreOptions) {
        let o = if use_ckpt { opts() } else { StoreOptions::new(PAGES) };
        let mut s = Pdl::new(FlashChip::new(FlashConfig::scaled(24)), o, MAX_DIFF).unwrap();
        churn(&mut s, 400, 4);
        if use_ckpt {
            s.checkpoint().unwrap();
        } else {
            s.flush().unwrap();
        }
        (Box::new(s).into_chip(), o)
    };

    let (chip, o) = build_state(false);
    let full = Pdl::recover(chip, o, MAX_DIFF).unwrap();
    let full_reads = full.chip().stats().recovery.reads;

    let (chip, o) = build_state(true);
    let fast = Pdl::recover(chip, o, MAX_DIFF).unwrap();
    let fast_reads = fast.chip().stats().recovery.reads;

    assert!(
        fast_reads * 3 < full_reads,
        "fast recovery must read far fewer pages: {fast_reads} vs {full_reads}"
    );
}

#[test]
fn crash_during_checkpoint_falls_back_to_previous_state() {
    let mut s = fresh();
    let truth = churn(&mut s, 300, 5);
    s.checkpoint().unwrap(); // checkpoint A (committed)
                             // More updates, then a checkpoint that dies before its header lands.
    let size = s.logical_page_size();
    let mut truth2 = truth.clone();
    truth2[7][0..8].fill(0x9A);
    let p = truth2[7].clone();
    s.write_page(7, &p).unwrap();
    s.flush().unwrap();
    s.chip_mut().arm_fault(3); // a few payload programs, no header
    let err = s.checkpoint().unwrap_err();
    assert!(is_power_loss(&err));
    let mut chip = Box::new(s).into_chip();
    chip.disarm_fault();
    // Recovery must use checkpoint A + delta scan and still see the
    // post-A flushed update.
    let mut r = Pdl::recover(chip, opts(), MAX_DIFF).unwrap();
    verify(&mut r, &truth2);
    let _ = size;
}

#[test]
fn alternating_checkpoints_double_buffer() {
    let mut s = fresh();
    let mut truth = churn(&mut s, 200, 6);
    for round in 0..5u8 {
        // Update one page distinctly each round, checkpoint, and make sure
        // recovery lands on the latest state.
        truth[3].fill(round);
        let p = truth[3].clone();
        s.write_page(3, &p).unwrap();
        s.checkpoint().unwrap();
    }
    let chip = Box::new(s).into_chip();
    let mut r = Pdl::recover(chip, opts(), MAX_DIFF).unwrap();
    verify(&mut r, &truth);
    // Another checkpoint after recovery continues the sequence without
    // clobbering the half we just recovered from.
    truth[3].fill(0xEE);
    let p = truth[3].clone();
    r.write_page(3, &p).unwrap();
    r.checkpoint().unwrap();
    let chip = Box::new(r).into_chip();
    let mut r2 = Pdl::recover(chip, opts(), MAX_DIFF).unwrap();
    verify(&mut r2, &truth);
}

#[test]
fn unflushed_buffer_still_lost_with_checkpoints() {
    // Checkpointing flushes the write buffer; updates after the last
    // flush/checkpoint that stayed in the buffer are lost, as §4.5
    // specifies for any buffered data.
    let mut s = fresh();
    let truth = churn(&mut s, 100, 7);
    s.checkpoint().unwrap();
    let size = s.logical_page_size();
    let mut volatile = truth[5].clone();
    volatile[10] = volatile[10].wrapping_add(1);
    s.write_page(5, &volatile).unwrap(); // differential stays buffered
    let chip = Box::new(s).into_chip();
    let mut r = Pdl::recover(chip, opts(), MAX_DIFF).unwrap();
    let mut out = vec![0u8; size];
    r.read_page(5, &mut out).unwrap();
    assert_eq!(out, truth[5], "buffered differential must be lost");
}

#[test]
fn bad_root_region_configs_are_rejected() {
    let chip = FlashChip::new(FlashConfig::scaled(24));
    assert!(Pdl::new(chip.clone(), StoreOptions::new(64).with_checkpoint_blocks(1), 256).is_err());
    assert!(Pdl::new(chip.clone(), StoreOptions::new(64).with_checkpoint_blocks(24), 256).is_err());
    // Checkpoint call without a root region fails cleanly.
    let mut s = Pdl::new(chip, StoreOptions::new(64), 256).unwrap();
    assert!(s.checkpoint().is_err());
}

#[test]
fn sharded_recovery_precheck_rides_the_checkpoint_delta() {
    // The torn-commit precheck of sharded recovery must be restricted to
    // the blocks changed since each shard's checkpoint (the single-store
    // fast path's restriction), restoring the ~pages_per_block× recovery
    // read reduction under sharding — while still resolving a cross-shard
    // torn commit correctly from the delta alone.
    use pdl_core::{MethodKind, ShardedStore};

    const SPAGES: u64 = 128;
    let kind = MethodKind::Pdl { max_diff_size: MAX_DIFF };

    // Build, churn, (maybe) checkpoint, then one committed and one torn
    // cross-shard transaction, then crash.
    let build_state = |use_ckpt: bool| -> (Vec<FlashChip>, StoreOptions, Vec<Vec<u8>>) {
        let o = if use_ckpt {
            StoreOptions::new(SPAGES).with_checkpoint_blocks(CKPT_BLOCKS)
        } else {
            StoreOptions::new(SPAGES)
        };
        let mut s = ShardedStore::with_uniform_chips(FlashConfig::scaled(24), 2, kind, o).unwrap();
        let size = s.logical_page_size();
        let mut rng = StdRng::seed_from_u64(9);
        let mut truth: Vec<Vec<u8>> = Vec::new();
        let mut page = vec![0u8; size];
        for pid in 0..SPAGES {
            rng.fill_bytes(&mut page);
            s.write_page(pid, &page).unwrap();
            truth.push(page.clone());
        }
        for _ in 0..400 {
            let pid = rng.gen_range(0..SPAGES) as usize;
            let at = rng.gen_range(0..size - 40);
            for b in truth[pid][at..at + 40].iter_mut() {
                *b = rng.gen();
            }
            let p = truth[pid].clone();
            s.write_page(pid as u64, &p).unwrap();
        }
        if use_ckpt {
            s.checkpoint().unwrap();
        } else {
            s.flush().unwrap();
        }
        // Committed transaction spanning both shards (pids 0 and 1).
        s.txn_reserve(2).unwrap();
        for pid in [0u64, 1] {
            truth[pid as usize][0..8].fill(0xC0);
            let p = truth[pid as usize].clone();
            s.txn_stage(pid, &p, 500).unwrap();
        }
        s.txn_append_commit(500).unwrap();
        s.txn_finalize().unwrap();
        // Torn transaction spanning both shards: staged durably on both,
        // but no commit record ever lands (crash before commit).
        s.txn_reserve(2).unwrap();
        for pid in [2u64, 3] {
            let mut p = truth[pid as usize].clone();
            p[0..8].fill(0xAD);
            s.txn_stage(pid, &p, 501).unwrap();
        }
        s.txn_flush_stage().unwrap();
        (s.into_shard_chips(), o, truth)
    };

    let (chips, o, _) = build_state(false);
    let full = ShardedStore::recover(chips, kind, o).unwrap();
    let full_reads: u64 = full.per_shard_stats().iter().map(|st| st.recovery.reads).sum();

    let (chips, o, truth) = build_state(true);
    let mut fast = ShardedStore::recover(chips, kind, o).unwrap();
    let fast_reads: u64 = fast.per_shard_stats().iter().map(|st| st.recovery.reads).sum();

    assert!(
        fast_reads * 3 < full_reads,
        "checkpoint-aware sharded recovery (precheck included) must read far fewer pages: \
         {fast_reads} vs {full_reads}"
    );

    // Correctness: the committed transaction survived, the torn one
    // rolled back to pre-images, everything else is intact.
    let size = fast.logical_page_size();
    let mut out = vec![0u8; size];
    for (pid, expect) in truth.iter().enumerate() {
        fast.read_page(pid as u64, &mut out).unwrap();
        assert_eq!(&out, expect, "pid {pid}");
    }
}

#[test]
fn checkpoint_counts_appear_in_counters() {
    let mut s = fresh();
    churn(&mut s, 50, 8);
    s.checkpoint().unwrap();
    s.checkpoint().unwrap();
    let counters = s.counters();
    let c = counters.iter().find(|(k, _)| *k == "checkpoints").unwrap();
    assert_eq!(c.1, 2);
}
