//! Sharding correctness: a [`ShardedStore`] must be observably identical
//! to a single store of the same method over any update trace, because
//! striping only partitions the page space — it never changes per-page
//! behaviour. Plus: a multi-writer smoke test (8 threads, overlapping
//! pages) and whole-engine crash recovery of every shard.

use pdl_core::{build_store, ChangeRange, MethodKind, PageStore, ShardedStore, StoreOptions};
use pdl_flash::{FlashChip, FlashConfig};
use proptest::prelude::*;

const PAGES: u64 = 20;

/// One step of an update trace.
#[derive(Clone, Debug)]
enum Step {
    /// Whole-page write.
    Write {
        pid: u64,
        fill: u8,
    },
    /// Read-modify-reflect cycle changing one byte range.
    Update {
        pid: u64,
        offset: u16,
        len: u8,
        fill: u8,
    },
    Flush,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        2 => (0..PAGES, any::<u8>()).prop_map(|(pid, fill)| Step::Write { pid, fill }),
        3 => (0..PAGES, 0u16..250, 1u8..40, any::<u8>())
            .prop_map(|(pid, offset, len, fill)| Step::Update { pid, offset, len, fill }),
        1 => Just(Step::Flush),
    ]
}

/// Drive one step against any store through the `PageStore` trait.
fn run_step(store: &mut dyn PageStore, step: &Step, buf: &mut [u8]) {
    let size = buf.len();
    match step {
        Step::Write { pid, fill } => {
            buf.fill(*fill);
            store.write_page(*pid, buf).unwrap();
        }
        Step::Update { pid, offset, len, fill } => {
            store.read_page(*pid, buf).unwrap();
            let at = *offset as usize % (size - *len as usize);
            buf[at..at + *len as usize].fill(*fill);
            store.apply_update(*pid, buf, &[ChangeRange::new(at, *len as usize)]).unwrap();
            store.evict_page(*pid, buf).unwrap();
        }
        Step::Flush => store.flush().unwrap(),
    }
}

fn read_all(store: &mut dyn PageStore) -> Vec<Vec<u8>> {
    let size = store.logical_page_size();
    (0..PAGES)
        .map(|pid| {
            let mut out = vec![0u8; size];
            store.read_page(pid, &mut out).unwrap();
            out
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For N in {1, 2, 4}, the sharded store's observable state after any
    /// trace is byte-identical to the single store's, for both PDL and
    /// OPU.
    #[test]
    fn sharded_store_matches_single_store(
        steps in proptest::collection::vec(step_strategy(), 1..50),
    ) {
        for kind in [MethodKind::Pdl { max_diff_size: 64 }, MethodKind::Opu] {
            let chip = FlashChip::new(FlashConfig::tiny());
            let mut single = build_store(chip, kind, StoreOptions::new(PAGES)).unwrap();
            let mut buf = vec![0u8; single.logical_page_size()];
            for step in &steps {
                run_step(single.as_mut(), step, &mut buf);
            }
            let expect = read_all(single.as_mut());

            for n in [1usize, 2, 4] {
                let mut sharded = ShardedStore::with_uniform_chips(
                    FlashConfig::tiny(),
                    n,
                    kind,
                    StoreOptions::new(PAGES),
                )
                .unwrap();
                for step in &steps {
                    run_step(&mut sharded, step, &mut buf);
                }
                let got = read_all(&mut sharded);
                prop_assert_eq!(
                    &got, &expect,
                    "{} with {} shards diverged from the single store",
                    kind.label(), n
                );
            }
        }
    }
}

/// 8 writer threads hammer overlapping pages through the shared entry
/// points; after the join every page must hold exactly one of the writes
/// that targeted it (page programming is atomic per shard), and crash
/// recovery of all shards must preserve the flushed state.
#[test]
fn concurrent_writers_then_crash_recovery() {
    const WRITERS: u64 = 8;
    const ROUNDS: u64 = 30;
    let kind = MethodKind::Pdl { max_diff_size: 64 };
    let store =
        ShardedStore::with_uniform_chips(FlashConfig::tiny(), 4, kind, StoreOptions::new(PAGES))
            .unwrap();
    let size = store.logical_page_size();

    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let store = &store;
            scope.spawn(move || {
                let mut page = vec![0u8; size];
                for r in 0..ROUNDS {
                    // Overlapping page sets: every writer visits every pid.
                    let pid = (w + r) % PAGES;
                    // Tag pattern: writer id in every byte pair, round in
                    // the second byte — any torn mix would break the pair
                    // structure.
                    for i in (0..size).step_by(2) {
                        page[i] = w as u8 + 1;
                        page[i + 1] = r as u8;
                    }
                    store.write_page_shared(pid, &page).unwrap();
                }
            });
        }
    });

    // Post-join: every page is a consistent snapshot of one write.
    let mut out = vec![0u8; size];
    for pid in 0..PAGES {
        store.read_page_shared(pid, &mut out).unwrap();
        let (w, r) = (out[0], out[1]);
        assert!(w >= 1 && w as u64 <= WRITERS, "pid {pid}: writer tag {w}");
        assert!((r as u64) < ROUNDS, "pid {pid}: round tag {r}");
        for i in (0..size).step_by(2) {
            assert_eq!(out[i], w, "pid {pid}: torn page at byte {i}");
            assert_eq!(out[i + 1], r, "pid {pid}: torn page at byte {i}");
        }
    }
    store.flush_shared().unwrap();
    let expect: Vec<Vec<u8>> = (0..PAGES)
        .map(|pid| {
            let mut p = vec![0u8; size];
            store.read_page_shared(pid, &mut p).unwrap();
            p
        })
        .collect();

    // Crash: drop all in-memory state, recover every shard from its chip.
    let chips = store.into_shard_chips();
    assert_eq!(chips.len(), 4);
    let mut back = ShardedStore::recover(chips, kind, StoreOptions::new(PAGES)).unwrap();
    for (pid, want) in expect.iter().enumerate() {
        back.read_page(pid as u64, &mut out).unwrap();
        assert_eq!(&out, want, "pid {pid} after recovery");
    }
}

/// Concurrent readers and writers on disjoint page sets scale without
/// interference: all data lands correctly.
#[test]
fn disjoint_writers_round_trip() {
    let kind = MethodKind::Opu;
    let store =
        ShardedStore::with_uniform_chips(FlashConfig::tiny(), 4, kind, StoreOptions::new(PAGES))
            .unwrap();
    let size = store.logical_page_size();
    std::thread::scope(|scope| {
        for w in 0..4u64 {
            let store = &store;
            scope.spawn(move || {
                let mut page = vec![0u8; size];
                // Disjoint sets: writer w owns pids congruent to w mod 4.
                for pid in (w..PAGES).step_by(4) {
                    page.fill(pid as u8 + 1);
                    store.write_page_shared(pid, &page).unwrap();
                }
            });
        }
    });
    let mut out = vec![0u8; size];
    for pid in 0..PAGES {
        store.read_page_shared(pid, &mut out).unwrap();
        assert_eq!(out, vec![pid as u8 + 1; size], "pid {pid}");
    }
}
