//! Property-based crash testing: for an arbitrary workload prefix and an
//! arbitrary power-loss point, recovery must restore every page to a state
//! the workload could legally have produced (flushed state, or a
//! committed post-flush update), and a second crash+recovery must agree.

use pdl_core::{build_store, is_power_loss, recover_store, MethodKind, PageStore, StoreOptions};
use pdl_flash::{FlashChip, FlashConfig};
use proptest::prelude::*;

const PAGES: u64 = 24;

fn kinds() -> Vec<MethodKind> {
    vec![
        MethodKind::Opu,
        MethodKind::Pdl { max_diff_size: 64 },
        MethodKind::Ipl { log_bytes_per_block: 512 },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Crash at an arbitrary destructive-op budget during arbitrary
    /// updates; verify flushed data and crash atomicity per page.
    #[test]
    fn recovery_is_correct_at_arbitrary_crash_points(
        kind_idx in 0usize..3,
        writes in proptest::collection::vec((0u64..PAGES, any::<u8>()), 1..30),
        post in proptest::collection::vec((0u64..PAGES, any::<u8>()), 1..20),
        budget in 0u64..24,
    ) {
        let kind = kinds()[kind_idx];
        let chip = FlashChip::new(FlashConfig::tiny());
        let mut store = build_store(chip, kind, StoreOptions::new(PAGES)).unwrap();
        let size = store.logical_page_size();
        let mut flushed: Vec<Vec<u8>> = (0..PAGES).map(|_| vec![0u8; size]).collect();

        // Load then apply the pre-crash updates and flush.
        for pid in 0..PAGES {
            store.write_page(pid, &flushed[pid as usize]).unwrap();
        }
        for (pid, fill) in &writes {
            flushed[*pid as usize].fill(*fill);
            let p = flushed[*pid as usize].clone();
            store.write_page(*pid, &p).unwrap();
        }
        store.flush().unwrap();

        // Post-flush updates until the injected power loss. Buffered
        // methods (PDL's differential write buffer) may durably expose any
        // *earlier* post-flush state of a page, so track the full history.
        store.chip_mut().arm_fault(budget);
        let mut history: Vec<Vec<Vec<u8>>> = vec![Vec::new(); PAGES as usize];
        for (pid, fill) in &post {
            let mut c = history[*pid as usize]
                .last()
                .cloned()
                .unwrap_or_else(|| flushed[*pid as usize].clone());
            c.fill(fill.wrapping_add(1));
            match store.write_page(*pid, &c) {
                Ok(()) => history[*pid as usize].push(c),
                Err(e) => {
                    prop_assert!(is_power_loss(&e), "unexpected error: {e}");
                    history[*pid as usize].push(c); // may or may not land
                    break;
                }
            }
        }

        // Reboot and recover.
        let mut chip = store.into_chip();
        chip.disarm_fault();
        let mut r = recover_store(chip, kind, StoreOptions::new(PAGES)).unwrap();
        let mut out = vec![0u8; size];
        let mut first_states: Vec<Vec<u8>> = Vec::new();
        for pid in 0..PAGES as usize {
            r.read_page(pid as u64, &mut out).unwrap();
            if history[pid].is_empty() {
                prop_assert_eq!(
                    &out, &flushed[pid],
                    "{} page {} must equal the flushed state", r.name(), pid
                );
            } else {
                // Touched pages: the flushed state or any state of the
                // post-flush history (out-place writes are page-atomic).
                // IPL is exempt from byte-exactness: its update logs are
                // sector-granular, so a whole-page update interrupted
                // mid-flush legally recovers as a mixture — the paper's
                // §4.5 defers transactional atomicity to the DBMS above.
                let legal = out == flushed[pid]
                    || history[pid].iter().any(|h| h == &out)
                    || kind_idx == 2;
                prop_assert!(legal, "{} page {} is torn", r.name(), pid);
            }
            first_states.push(out.clone());
        }

        // Idempotence: a second crash+recovery yields the same states.
        let chip = r.into_chip();
        let mut r2 = recover_store(chip, kind, StoreOptions::new(PAGES)).unwrap();
        for pid in 0..PAGES as usize {
            r2.read_page(pid as u64, &mut out).unwrap();
            prop_assert_eq!(&out, &first_states[pid], "second recovery diverged on {}", pid);
        }
    }

    /// PDL with checkpoints: arbitrary checkpoint placement within the
    /// workload never changes what recovery returns (checkpoints are an
    /// optimisation, not a semantic change).
    #[test]
    fn checkpoints_do_not_change_recovery_semantics(
        writes in proptest::collection::vec((0u64..PAGES, any::<u8>()), 2..25),
        ckpt_at in 0usize..25,
    ) {
        let opts = StoreOptions::new(PAGES).with_checkpoint_blocks(2);
        let chip = FlashChip::new(FlashConfig::tiny());
        let mut store = pdl_core::Pdl::new(chip, opts, 64).unwrap();
        let size = store.logical_page_size();
        let mut truth: Vec<Vec<u8>> = (0..PAGES).map(|_| vec![0u8; size]).collect();
        for pid in 0..PAGES {
            store.write_page(pid, &truth[pid as usize]).unwrap();
        }
        for (i, (pid, fill)) in writes.iter().enumerate() {
            truth[*pid as usize].fill(*fill);
            let p = truth[*pid as usize].clone();
            store.write_page(*pid, &p).unwrap();
            if i == ckpt_at.min(writes.len() - 1) {
                store.checkpoint().unwrap();
            }
        }
        store.flush().unwrap();
        let chip = Box::new(store).into_chip();
        let mut r = pdl_core::Pdl::recover(chip, opts, 64).unwrap();
        let mut out = vec![0u8; size];
        for pid in 0..PAGES as usize {
            r.read_page(pid as u64, &mut out).unwrap();
            prop_assert_eq!(&out, &truth[pid], "page {}", pid);
        }
    }
}
