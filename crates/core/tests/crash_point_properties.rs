//! Crash testing in two tiers:
//!
//! * an **exhaustive crash-point sweep**: a fixed, GC-heavy workload is
//!   first dry-run to count its destructive flash operations (programs,
//!   obsolete marks, erases), then re-run once per destructive-op index
//!   with a power-loss fault armed at exactly that index
//!   ([`pdl_flash::FlashChip::arm_fault`]). Every index is covered, so
//!   crashes *inside* garbage collection — mid-migration, between a
//!   relocation and the victim's erase, between erase and mapping update
//!   — are all exercised deterministically, for each method and for the
//!   GC policies that change data placement (hot/cold runs two active
//!   blocks during migration);
//! * a property test over arbitrary checkpoint placement (checkpoints
//!   must never change recovery semantics).
//!
//! After recovery, every page must read back as a state the workload
//! could legally have produced (the flushed state, or a committed
//! post-flush update), and a second crash+recovery must agree.

use pdl_core::{
    build_store, is_power_loss, recover_store, GcPolicy, MethodKind, PageStore, StoreOptions,
};
use pdl_flash::{FlashChip, FlashConfig};
use proptest::prelude::*;

const PAGES: u64 = 24;

/// The fixed workload script: `(pid, fill, whole_page)` — a whole-page
/// rewrite (base-page churn: OPU programs, PDL Case 3, IPL multi-sector
/// logs) or a 16-byte run update (differential / log-sector traffic).
/// Deterministic pseudo-random, dense enough on the tiny chip that every
/// method garbage-collects during the post-flush phase.
fn script(len: usize, seed: u64) -> Vec<(u64, u8, bool)> {
    let mut x = seed;
    (0..len)
        .map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let pid = (x >> 33) % PAGES;
            let fill = (x >> 17) as u8;
            let whole = (x >> 13).is_multiple_of(3); // every third op rewrites the page
            (pid, fill, whole)
        })
        .collect()
}

/// Apply one scripted op to `page` (the in-memory image of its pid).
fn apply_op(page: &mut [u8], fill: u8, whole: bool) {
    if whole {
        page.fill(fill);
    } else {
        let at = (fill as usize * 5) % (page.len() - 16);
        page[at..at + 16].fill(fill ^ 0xA5);
    }
}

struct SweepSetup {
    kind: MethodKind,
    opts: StoreOptions,
    config: FlashConfig,
}

impl SweepSetup {
    fn build(&self) -> Box<dyn PageStore> {
        build_store(FlashChip::new(self.config), self.kind, self.opts).unwrap()
    }

    /// Run phase 1 (load + pre-crash updates + flush); returns the
    /// flushed page states.
    fn phase1(&self, store: &mut dyn PageStore) -> Vec<Vec<u8>> {
        let size = store.logical_page_size();
        let mut flushed: Vec<Vec<u8>> = (0..PAGES).map(|_| vec![0u8; size]).collect();
        for pid in 0..PAGES {
            store.write_page(pid, &flushed[pid as usize]).unwrap();
        }
        for (pid, fill, whole) in script(20, 0x51EE7) {
            apply_op(&mut flushed[pid as usize], fill, whole);
            let p = flushed[pid as usize].clone();
            store.write_page(pid, &p).unwrap();
        }
        store.flush().unwrap();
        flushed
    }
}

/// The exhaustive sweep for one method/policy configuration.
fn sweep(kind: MethodKind, policy: GcPolicy) {
    sweep_on(kind, policy, FlashConfig::tiny());
}

/// The sweep body, parameterized over the chip configuration so the same
/// crash points can be replayed with a deep command queue (crashes with
/// commands still in flight).
fn sweep_on(kind: MethodKind, policy: GcPolicy, config: FlashConfig) {
    let mut opts = StoreOptions::new(PAGES).with_gc_policy(policy);
    // A large GC reserve shrinks the normally-allocatable space, so the
    // out-place methods hit reclamation within a short script instead of
    // needing thousands of operations to fill the chip.
    opts.reserve_blocks = 10;
    let setup = SweepSetup { kind, opts, config };
    // IPL turns a whole-page rewrite into dozens of log-sector programs,
    // so a shorter script already exercises several merges (its GC) while
    // keeping the per-index replay affordable.
    let post_len = if matches!(kind, MethodKind::Ipl { .. }) { 24 } else { 45 };
    let post_script = script(post_len, 0xCAFE);

    // Dry run: count destructive operations of the post-flush phase and
    // prove it garbage-collects (so the sweep covers mid-GC indices).
    // The dry run must replay the *exact* page sequence of the faulted
    // runs below — PDL's differential sizes (and hence its Case 1/2/3
    // program counts) depend on page contents, so any divergence would
    // make the destructive-op count wrong and leave tail indices
    // unswept.
    let mut store = setup.build();
    let mut proto = setup.phase1(store.as_mut());
    let before = store.stats();
    for (pid, fill, whole) in &post_script {
        let pid = *pid as usize;
        let mut page = proto[pid].clone();
        apply_op(&mut page, *fill, *whole);
        store.write_page(pid as u64, &page).unwrap();
        proto[pid] = page;
    }
    let delta = store.stats().delta_since(&before);
    let destructive = delta.total().writes + delta.total().erases;
    assert!(
        delta.gc.total_ops() > 0,
        "{}: the fixed workload must garbage-collect post-flush (got {delta:?})",
        store.name()
    );

    // The sweep: crash after exactly `budget` destructive ops, for every
    // budget (the final budget crashes nowhere — the control run).
    for budget in 0..=destructive {
        let mut store = setup.build();
        let flushed = setup.phase1(store.as_mut());
        let size = flushed[0].len();
        store.chip_mut().arm_fault(budget);
        let mut history: Vec<Vec<Vec<u8>>> = vec![Vec::new(); PAGES as usize];
        for (pid, fill, whole) in &post_script {
            let pid = *pid as usize;
            let mut page = history[pid].last().cloned().unwrap_or_else(|| flushed[pid].clone());
            apply_op(&mut page, *fill, *whole);
            match store.write_page(pid as u64, &page) {
                Ok(()) => history[pid].push(page),
                Err(e) => {
                    assert!(is_power_loss(&e), "budget {budget}: unexpected error: {e}");
                    history[pid].push(page); // may or may not have landed
                    break;
                }
            }
        }

        // Reboot and recover.
        let mut chip = store.into_chip();
        chip.disarm_fault();
        let mut r = recover_store(chip, kind, setup.opts).unwrap();
        let mut out = vec![0u8; size];
        let mut first_states: Vec<Vec<u8>> = Vec::new();
        let ipl = matches!(kind, MethodKind::Ipl { .. });
        for pid in 0..PAGES as usize {
            r.read_page(pid as u64, &mut out).unwrap();
            if history[pid].is_empty() {
                assert_eq!(
                    out,
                    flushed[pid],
                    "{} budget {budget}: page {pid} must equal the flushed state",
                    r.name()
                );
            } else {
                // Touched pages: the flushed state or any state of the
                // post-flush history (out-place writes are page-atomic).
                // IPL is exempt from byte-exactness: its update logs are
                // sector-granular, so a whole-page update interrupted
                // mid-flush legally recovers as a mixture — the paper's
                // §4.5 defers transactional atomicity to the DBMS above.
                let legal = out == flushed[pid] || history[pid].iter().any(|h| h == &out) || ipl;
                assert!(legal, "{} budget {budget}: page {pid} is torn", r.name());
            }
            first_states.push(out.clone());
        }

        // Idempotence: a second crash+recovery yields the same states.
        let chip = r.into_chip();
        let mut r2 = recover_store(chip, kind, setup.opts).unwrap();
        for pid in 0..PAGES as usize {
            r2.read_page(pid as u64, &mut out).unwrap();
            assert_eq!(
                out, first_states[pid],
                "budget {budget}: second recovery diverged on page {pid}"
            );
        }
    }
}

#[test]
fn exhaustive_crash_sweep_opu() {
    sweep(MethodKind::Opu, GcPolicy::Greedy);
}

#[test]
fn exhaustive_crash_sweep_opu_hot_cold() {
    sweep(MethodKind::Opu, GcPolicy::HotCold);
}

#[test]
fn exhaustive_crash_sweep_pdl() {
    sweep(MethodKind::Pdl { max_diff_size: 64 }, GcPolicy::Greedy);
}

#[test]
fn exhaustive_crash_sweep_pdl_cost_benefit() {
    sweep(MethodKind::Pdl { max_diff_size: 64 }, GcPolicy::CostBenefit);
}

#[test]
fn exhaustive_crash_sweep_pdl_hot_cold() {
    sweep(MethodKind::Pdl { max_diff_size: 64 }, GcPolicy::HotCold);
}

/// The PDL sweep replayed with a 16-deep command queue and 4 planes:
/// every crash index now lands with commands potentially still in
/// flight (queued but not drained), and recovery must agree with the
/// synchronous sweep's legality rules anyway.
#[test]
fn exhaustive_crash_sweep_pdl_qd16() {
    sweep_on(
        MethodKind::Pdl { max_diff_size: 64 },
        GcPolicy::Greedy,
        FlashConfig::tiny().with_queue_depth(16).with_planes(4),
    );
}

#[test]
fn exhaustive_crash_sweep_ipl() {
    sweep(MethodKind::Ipl { log_bytes_per_block: 512 }, GcPolicy::Greedy);
}

// ----------------------------------------------------------------------
// pdl-txn: commit-record crash points
// ----------------------------------------------------------------------

/// A TPC-C-style multi-page transaction script: every transaction bumps
/// a counter in the "district" page and rewrites a few pseudo-random
/// "stock/order" pages — the multi-page atomic unit the commit records
/// exist for.
fn txn_script(count: usize) -> Vec<Vec<(u64, u8, bool)>> {
    let mut x = 0x7C0FFEEu64;
    (0..count)
        .map(|i| {
            let mut pages = vec![(0u64, i as u8 + 1, false)]; // the district page
            let n = 2 + (i % 3);
            for _ in 0..n {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let pid = 1 + (x >> 33) % (PAGES - 1);
                let fill = (x >> 17) as u8;
                let whole = (x >> 13).is_multiple_of(4);
                pages.push((pid, fill, whole));
            }
            pages
        })
        .collect()
}

/// The exhaustive commit-record sweep: crash after every destructive
/// flash operation of a transactional workload, recover, and require the
/// visible state to equal the state after some *prefix of committed
/// transactions* — every transaction all-or-nothing, zero torn commits.
#[test]
fn exhaustive_crash_sweep_txn_commits() {
    let kind = MethodKind::Pdl { max_diff_size: 64 };
    let mut opts = StoreOptions::new(PAGES);
    opts.reserve_blocks = 10; // force GC inside the commit batches too
    let txns = txn_script(12);

    let build = || build_store(FlashChip::new(FlashConfig::tiny()), kind, opts).unwrap();
    let load = |store: &mut dyn PageStore| -> Vec<Vec<u8>> {
        let size = store.logical_page_size();
        let initial: Vec<Vec<u8>> = (0..PAGES).map(|p| vec![p as u8; size]).collect();
        for pid in 0..PAGES {
            store.write_page(pid, &initial[pid as usize]).unwrap();
        }
        store.flush().unwrap();
        initial
    };

    // The page states after each committed prefix of the script.
    let mut store = build();
    let size = store.logical_page_size();
    let mut states: Vec<Vec<Vec<u8>>> = vec![load(store.as_mut())];
    for txn_pages in &txns {
        let mut next = states.last().unwrap().clone();
        for (pid, fill, whole) in txn_pages {
            apply_op(&mut next[*pid as usize], *fill, *whole);
        }
        states.push(next);
    }

    // One transaction through the commit-batch protocol. Returns Err on
    // the injected power loss.
    let run_txn =
        |store: &mut dyn PageStore, states: &[Vec<Vec<u8>>], k: usize| -> pdl_core::Result<()> {
            let txn = k as u64 + 1;
            let pages = &txns[k];
            store.txn_reserve(pages.len() as u64)?;
            for (pid, _, _) in pages {
                let img = states[k + 1][*pid as usize].clone();
                store.txn_stage(*pid, &img, txn)?;
            }
            store.txn_append_commit(txn)?;
            store.txn_finalize()
        };

    // Dry run: count the destructive operations of the transactional
    // phase (and prove it garbage-collects, so the sweep covers crashes
    // inside GC inside commit batches).
    let mut store = build();
    load(store.as_mut());
    let before = store.stats();
    for k in 0..txns.len() {
        run_txn(store.as_mut(), &states, k).unwrap();
    }
    let delta = store.stats().delta_since(&before);
    assert!(delta.gc.total_ops() > 0, "the txn workload must garbage-collect ({delta:?})");
    let destructive = delta.total().writes + delta.total().erases;

    for budget in 0..=destructive {
        let mut store = build();
        load(store.as_mut());
        store.chip_mut().arm_fault(budget);
        for k in 0..txns.len() {
            match run_txn(store.as_mut(), &states, k) {
                Ok(()) => {}
                Err(e) => {
                    assert!(is_power_loss(&e), "budget {budget}: unexpected error: {e}");
                    break;
                }
            }
        }
        let mut chip = store.into_chip();
        chip.disarm_fault();
        let mut r = recover_store(chip, kind, opts).unwrap();
        let mut out = vec![0u8; size];
        let mut pages_now: Vec<Vec<u8>> = Vec::with_capacity(PAGES as usize);
        for pid in 0..PAGES {
            r.read_page(pid, &mut out).unwrap();
            pages_now.push(out.clone());
        }
        // Zero torn transactions: the whole database must equal the
        // state after some committed prefix.
        let matched = states.iter().position(|s| s == &pages_now);
        assert!(
            matched.is_some(),
            "budget {budget}: recovered state matches no committed prefix — a torn transaction"
        );
        // A second crash + recovery must agree.
        let chip = r.into_chip();
        let mut r2 = recover_store(chip, kind, opts).unwrap();
        for pid in 0..PAGES {
            r2.read_page(pid, &mut out).unwrap();
            assert_eq!(
                out, pages_now[pid as usize],
                "budget {budget}: second recovery diverged on page {pid}"
            );
        }
    }
}

/// The commit-record sweep replayed through **epoch records** (codec v3
/// kind 0x03): transactions are staged in batches of three and proven by
/// one epoch record covering the batch's txn-id range instead of three
/// per-txn records. The verdict at every crash point must agree with
/// what per-txn records certify — a committed prefix of the script —
/// and, because one epoch record lands atomically, the prefix must
/// additionally sit on a batch boundary: an epoch commits all of its
/// batch or none of it.
#[test]
fn exhaustive_crash_sweep_epoch_commits() {
    const BATCH: usize = 3;
    let kind = MethodKind::Pdl { max_diff_size: 64 };
    let mut opts = StoreOptions::new(PAGES);
    // A batch stages ~3x the pages of one transaction before its epoch
    // record lands, so the reserve is a notch smaller than the per-txn
    // sweep's: enough pressure to garbage-collect inside batches without
    // starving a whole batch's reservation.
    opts.reserve_blocks = 8;
    let txns = txn_script(12);
    let batches = txns.len().div_ceil(BATCH);

    let build = || build_store(FlashChip::new(FlashConfig::tiny()), kind, opts).unwrap();
    let load = |store: &mut dyn PageStore| -> Vec<Vec<u8>> {
        let size = store.logical_page_size();
        let initial: Vec<Vec<u8>> = (0..PAGES).map(|p| vec![p as u8; size]).collect();
        for pid in 0..PAGES {
            store.write_page(pid, &initial[pid as usize]).unwrap();
        }
        store.flush().unwrap();
        initial
    };

    let mut store = build();
    let size = store.logical_page_size();
    let mut states: Vec<Vec<Vec<u8>>> = vec![load(store.as_mut())];
    for txn_pages in &txns {
        let mut next = states.last().unwrap().clone();
        for (pid, fill, whole) in txn_pages {
            apply_op(&mut next[*pid as usize], *fill, *whole);
        }
        states.push(next);
    }

    // One *batch* through the protocol: stage every member, then prove
    // them all with a single epoch append.
    let run_batch =
        |store: &mut dyn PageStore, states: &[Vec<Vec<u8>>], b: usize| -> pdl_core::Result<()> {
            let lo = b * BATCH;
            let hi = (lo + BATCH).min(txns.len());
            let total: u64 = (lo..hi).map(|k| txns[k].len() as u64).sum();
            store.txn_reserve(total)?;
            for k in lo..hi {
                for (pid, _, _) in &txns[k] {
                    let img = states[k + 1][*pid as usize].clone();
                    store.txn_stage(*pid, &img, k as u64 + 1)?;
                }
            }
            let ids: Vec<u64> = (lo..hi).map(|k| k as u64 + 1).collect();
            store.txn_append_commit_epoch(&ids)?;
            store.txn_finalize()
        };

    // Dry run: count destructive ops, prove GC ran inside the batches,
    // and prove the proofs really were epoch records, not a per-txn
    // fallback.
    let mut store = build();
    load(store.as_mut());
    let before = store.stats();
    for b in 0..batches {
        run_batch(store.as_mut(), &states, b).unwrap();
    }
    let delta = store.stats().delta_since(&before);
    assert!(delta.gc.total_ops() > 0, "the epoch workload must garbage-collect ({delta:?})");
    let epochs =
        store.counters().iter().find(|(k, _)| *k == "epoch_commits").map(|(_, v)| *v).unwrap_or(0);
    assert!(epochs >= batches as u64, "every batch must have landed an epoch record");
    let destructive = delta.total().writes + delta.total().erases;

    for budget in 0..=destructive {
        let mut store = build();
        load(store.as_mut());
        store.chip_mut().arm_fault(budget);
        for b in 0..batches {
            match run_batch(store.as_mut(), &states, b) {
                Ok(()) => {}
                Err(e) => {
                    assert!(is_power_loss(&e), "budget {budget}: unexpected error: {e}");
                    break;
                }
            }
        }
        let mut chip = store.into_chip();
        chip.disarm_fault();
        let mut r = recover_store(chip, kind, opts).unwrap();
        let mut out = vec![0u8; size];
        let mut pages_now: Vec<Vec<u8>> = Vec::with_capacity(PAGES as usize);
        for pid in 0..PAGES {
            r.read_page(pid, &mut out).unwrap();
            pages_now.push(out.clone());
        }
        // Same verdict space as per-txn records: some committed prefix...
        let matched = states.iter().position(|s| s == &pages_now);
        assert!(
            matched.is_some(),
            "budget {budget}: recovered state matches no committed prefix — a torn transaction"
        );
        // ...and epoch atomicity on top: the prefix ends on a batch
        // boundary (an epoch record never commits part of its batch).
        let k = matched.unwrap();
        assert!(
            k % BATCH == 0 || k == txns.len(),
            "budget {budget}: prefix of {k} txns splits an epoch batch"
        );
        // A second crash + recovery must agree.
        let chip = r.into_chip();
        let mut r2 = recover_store(chip, kind, opts).unwrap();
        for pid in 0..PAGES {
            r2.read_page(pid, &mut out).unwrap();
            assert_eq!(
                out, pages_now[pid as usize],
                "budget {budget}: second recovery diverged on page {pid}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// PDL with checkpoints: arbitrary checkpoint placement within the
    /// workload never changes what recovery returns (checkpoints are an
    /// optimisation, not a semantic change).
    #[test]
    fn checkpoints_do_not_change_recovery_semantics(
        writes in proptest::collection::vec((0u64..PAGES, any::<u8>()), 2..25),
        ckpt_at in 0usize..25,
    ) {
        let opts = StoreOptions::new(PAGES).with_checkpoint_blocks(2);
        let chip = FlashChip::new(FlashConfig::tiny());
        let mut store = pdl_core::Pdl::new(chip, opts, 64).unwrap();
        let size = store.logical_page_size();
        let mut truth: Vec<Vec<u8>> = (0..PAGES).map(|_| vec![0u8; size]).collect();
        for pid in 0..PAGES {
            store.write_page(pid, &truth[pid as usize]).unwrap();
        }
        for (i, (pid, fill)) in writes.iter().enumerate() {
            truth[*pid as usize].fill(*fill);
            let p = truth[*pid as usize].clone();
            store.write_page(*pid, &p).unwrap();
            if i == ckpt_at.min(writes.len() - 1) {
                store.checkpoint().unwrap();
            }
        }
        store.flush().unwrap();
        let chip = Box::new(store).into_chip();
        let mut r = pdl_core::Pdl::recover(chip, opts, 64).unwrap();
        let mut out = vec![0u8; size];
        for pid in 0..PAGES as usize {
            r.read_page(pid as u64, &mut out).unwrap();
            prop_assert_eq!(&out, &truth[pid], "page {}", pid);
        }
    }
}
