//! Single-page corruption testing, mirroring the exhaustive crash-point
//! sweep of `crash_point_properties.rs`:
//!
//! * a **corruption-point sweep**: a fixed, GC-heavy (and, for PDL,
//!   transactional) workload is run once to enumerate every programmed
//!   data page on the chip; then, once per page and per failure variant
//!   (data-area bit rot with the spare intact, and the spare-side
//!   checksum flip), the workload is re-run from scratch, the fault is
//!   injected ([`FlashChip::corrupt_data`] / [`FlashChip::corrupt_spare`])
//!   and every logical page is read back. Each read must either match
//!   the shadow model byte for byte (the page was unaffected, or PDL
//!   repaired it online) or fail with `CoreError::PageCorrupt` — wrong
//!   bytes must never be served silently;
//! * a **mid-GC-migration case**: a failed victim erase leaves the
//!   relocated base pages with byte-identical twins in the retired
//!   block, and corrupting the live copy must repair from the twin —
//!   byte for byte, at a cost far below a full recovery scan.

use pdl_core::{build_store, is_page_corrupt, GcPolicy, MethodKind, PageStore, StoreOptions};
use pdl_flash::{BlockId, FlashChip, FlashConfig, PageKind, Ppn, SpareInfo};

const PAGES: u64 = 24;

/// The fixed workload script (same generator as the crash sweep):
/// `(pid, fill, whole_page)`.
fn script(len: usize, seed: u64) -> Vec<(u64, u8, bool)> {
    let mut x = seed;
    (0..len)
        .map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let pid = (x >> 33) % PAGES;
            let fill = (x >> 17) as u8;
            let whole = (x >> 13).is_multiple_of(3);
            (pid, fill, whole)
        })
        .collect()
}

fn apply_op(page: &mut [u8], fill: u8, whole: bool) {
    if whole {
        page.fill(fill);
    } else {
        let at = (fill as usize * 5) % (page.len() - 16);
        page[at..at + 16].fill(fill ^ 0xA5);
    }
}

fn opts_for() -> StoreOptions {
    let mut opts = StoreOptions::new(PAGES).with_gc_policy(GcPolicy::Greedy);
    // Shrink the normally-allocatable space so the short script already
    // garbage-collects (corruption of GC-migrated pages is covered).
    opts.reserve_blocks = 10;
    opts
}

/// Run the whole deterministic workload on a fresh store and return it
/// with the shadow model (the byte-exact oracle for every logical page).
/// PDL additionally runs a few multi-page transactions through the
/// commit-record path, so differential pages carrying commit records are
/// among the corruption targets.
fn run_workload(kind: MethodKind) -> (Box<dyn PageStore>, Vec<Vec<u8>>) {
    let opts = opts_for();
    let mut store = build_store(FlashChip::new(FlashConfig::tiny()), kind, opts).unwrap();
    let size = store.logical_page_size();
    let mut truth: Vec<Vec<u8>> = (0..PAGES).map(|_| vec![0u8; size]).collect();
    for pid in 0..PAGES {
        store.write_page(pid, &truth[pid as usize]).unwrap();
    }
    let post_len = if matches!(kind, MethodKind::Ipl { .. }) { 24 } else { 45 };
    for (pid, fill, whole) in script(post_len, 0xCAFE) {
        apply_op(&mut truth[pid as usize], fill, whole);
        let p = truth[pid as usize].clone();
        store.write_page(pid, &p).unwrap();
    }
    if matches!(kind, MethodKind::Pdl { .. }) {
        for (k, ops) in script(9, 0x7C0FFEE).chunks(3).enumerate() {
            let txn = k as u64 + 1;
            store.txn_reserve(ops.len() as u64).unwrap();
            for (pid, fill, whole) in ops {
                apply_op(&mut truth[*pid as usize], *fill, *whole);
                let img = truth[*pid as usize].clone();
                store.txn_stage(*pid, &img, txn).unwrap();
            }
            store.txn_append_commit(txn).unwrap();
            store.txn_finalize().unwrap();
        }
    }
    store.flush().unwrap();
    let delta = store.stats();
    // IPU has no separate GC: every overwrite is already a full
    // erase-cycle of the page's block, so reclamation is exercised by
    // construction and nothing lands in the `gc` bucket.
    assert!(
        delta.gc.total_ops() > 0 || matches!(kind, MethodKind::Ipu),
        "{}: workload must garbage-collect",
        store.name()
    );
    (store, truth)
}

/// Whether `kind` is a page-kind the checksum covers (a corruption
/// target). `Free` pages carry no payload and `IplLog` pages append
/// sectors after the spare is written, so both are out of checksum scope.
fn checksummed(kind: PageKind) -> bool {
    matches!(kind, PageKind::Base | PageKind::Diff | PageKind::Data | PageKind::IplData)
}

/// The sweep body: every programmed data page x {data-area, spare-side}.
fn corruption_sweep(kind: MethodKind) {
    // Enumeration run: the workload is deterministic, so every re-run
    // places the same bytes at the same physical pages.
    let (store, truth) = run_workload(kind);
    let chip = store.chip();
    let targets: Vec<u32> = (0..chip.num_pages())
        .filter(|&p| {
            SpareInfo::decode(chip.peek_spare(Ppn(p))).is_some_and(|i| checksummed(i.kind))
        })
        .collect();
    assert!(targets.len() > 10, "{}: too few corruption targets ({})", store.name(), targets.len());
    let size = truth[0].len();
    drop(store);

    let mut detected_total = 0u64;
    for &ppn in &targets {
        for spare_side in [false, true] {
            let (mut store, truth) = run_workload(kind);
            if spare_side {
                store.chip_mut().corrupt_spare(Ppn(ppn)).unwrap();
            } else {
                store.chip_mut().corrupt_data(Ppn(ppn)).unwrap();
            }
            let name = store.name();
            let mut out = vec![0u8; size];
            let mut unavailable: Vec<u64> = Vec::new();
            for pid in 0..PAGES {
                match store.read_page(pid, &mut out) {
                    Ok(()) => assert_eq!(
                        out, truth[pid as usize],
                        "{name}: ppn {ppn} (spare={spare_side}): page {pid} served wrong bytes"
                    ),
                    Err(e) => {
                        assert!(
                            is_page_corrupt(&e),
                            "{name}: ppn {ppn}: page {pid} failed with a non-corruption error: {e}"
                        );
                        unavailable.push(pid);
                    }
                }
            }
            // A detected loss heals through the normal write path: a full
            // overwrite re-bases the page (PDL unpoisons, OPU remaps, IPU
            // cycles the block). IPL is the exception — its merge carries
            // the original's stale checksum forward, so the page stays
            // reported-corrupt rather than laundered back to "valid".
            for &pid in &unavailable {
                store.write_page(pid, &truth[pid as usize]).unwrap();
                match store.read_page(pid, &mut out) {
                    Ok(()) => assert_eq!(
                        out, truth[pid as usize],
                        "{name}: ppn {ppn}: page {pid} healed to wrong bytes"
                    ),
                    Err(e) => assert!(
                        matches!(kind, MethodKind::Ipl { .. }) && is_page_corrupt(&e),
                        "{name}: ppn {ppn}: page {pid} did not heal by overwrite: {e}"
                    ),
                }
            }
            detected_total += store.stats().integrity.detected_corruptions;
        }
    }
    // Live pages were among the targets, so the sweep as a whole must
    // have detected corruption — zero detections would mean verification
    // is silently disabled.
    assert!(detected_total > 0, "sweep never detected a corruption");
}

#[test]
fn corruption_sweep_pdl() {
    corruption_sweep(MethodKind::Pdl { max_diff_size: 64 });
}

#[test]
fn corruption_sweep_opu() {
    corruption_sweep(MethodKind::Opu);
}

#[test]
fn corruption_sweep_ipu() {
    corruption_sweep(MethodKind::Ipu);
}

#[test]
fn corruption_sweep_ipl() {
    corruption_sweep(MethodKind::Ipl { log_bytes_per_block: 512 });
}

/// Verification is opt-out: with `verify_checksums` off, the store reads
/// the damaged bytes straight through (the pre-fix behavior), proving the
/// detection path is really gated by the option.
#[test]
fn verification_can_be_disabled() {
    let kind = MethodKind::Pdl { max_diff_size: 64 };
    let opts = opts_for().with_verify_checksums(false);
    let mut store = build_store(FlashChip::new(FlashConfig::tiny()), kind, opts).unwrap();
    let size = store.logical_page_size();
    let page = vec![0x5Eu8; size];
    store.write_page(3, &page).unwrap();
    store.flush().unwrap();
    // Find the live base page of pid 3 and damage it.
    let ppn = (0..store.chip().num_pages())
        .find(|&p| {
            SpareInfo::decode(store.chip().peek_spare(Ppn(p)))
                .is_some_and(|i| i.kind == PageKind::Base && !i.obsolete && i.tag == 3)
        })
        .expect("pid 3 must have a live base page");
    store.chip_mut().corrupt_data(Ppn(ppn)).unwrap();
    let mut out = vec![0u8; size];
    store.read_page(3, &mut out).unwrap();
    assert_ne!(out, page, "with verification off the damaged bytes pass through");
    assert_eq!(store.stats().integrity.detected_corruptions, 0);
}

/// The mid-GC-migration case: a victim erase that fails mid-GC retires
/// the block but leaves its contents readable — byte-identical twins of
/// every base page the GC had just relocated. Corrupting the live copy
/// must repair online from the twin: byte for byte, via the normal write
/// path, at a read cost far below a full recovery scan.
#[test]
fn pdl_repairs_migrated_bases_from_gc_twins() {
    let kind = MethodKind::Pdl { max_diff_size: 64 };
    let opts = opts_for();
    let mut store = build_store(FlashChip::new(FlashConfig::tiny()), kind, opts).unwrap();
    let size = store.logical_page_size();
    let mut truth: Vec<Vec<u8>> = (0..PAGES).map(|_| vec![0u8; size]).collect();
    for pid in 0..PAGES {
        store.write_page(pid, &truth[pid as usize]).unwrap();
    }
    for (pid, fill, whole) in script(45, 0xCAFE) {
        apply_op(&mut truth[pid as usize], fill, whole);
        let p = truth[pid as usize].clone();
        store.write_page(pid, &p).unwrap();
    }
    // Arm a one-shot erase failure on every block: the next GC victim
    // erase fails mid-collection, registering twins for the bases it had
    // just migrated out.
    let nb = store.chip().geometry().num_blocks;
    for b in 0..nb {
        store.chip_mut().fail_next_erase_of(BlockId(b));
    }
    let broke = |store: &dyn PageStore| (0..nb).any(|b| store.chip().is_broken(BlockId(b)));
    for (pid, fill, whole) in script(200, 0xBEEF) {
        apply_op(&mut truth[pid as usize], fill, whole);
        let p = truth[pid as usize].clone();
        store.write_page(pid, &p).unwrap();
        if broke(store.as_ref()) {
            break;
        }
    }
    assert!(broke(store.as_ref()), "the workload never drove a GC erase into the armed failure");
    store.flush().unwrap();

    let g = store.chip().geometry();
    let mut repaired = 0u64;
    for ppn in 0..store.chip().num_pages() {
        if repaired >= 2 {
            break; // bounded: every repair re-programs and can re-trigger GC
        }
        let Some(info) = SpareInfo::decode(store.chip().peek_spare(Ppn(ppn))) else { continue };
        if info.kind != PageKind::Base || info.obsolete || info.tag >= PAGES {
            continue;
        }
        if store.chip().is_broken(g.block_of(Ppn(ppn))) {
            continue; // twins themselves are not live copies
        }
        let pid = info.tag;
        let before = store.stats();
        store.chip_mut().corrupt_data(Ppn(ppn)).unwrap();
        let mut out = vec![0u8; size];
        match store.read_page(pid, &mut out) {
            Ok(()) => {
                assert_eq!(out, truth[pid as usize], "page {pid}: repair must be byte-exact");
                let after = store.stats();
                if after.integrity.repaired_pages > before.integrity.repaired_pages {
                    repaired += 1;
                    // Online repair cost: the corrupt read, the twin read
                    // and the re-program — nowhere near the full-chip scan
                    // a recovery pass would pay.
                    let reads = after.total().reads - before.total().reads;
                    assert!(
                        reads < (store.chip().num_pages() / 8) as u64,
                        "repair read {reads} pages; a full scan reads {}",
                        store.chip().num_pages()
                    );
                }
            }
            Err(e) => {
                assert!(is_page_corrupt(&e), "page {pid}: unexpected error: {e}");
                // No twin for this base: restore availability and go on.
                store.write_page(pid, &truth[pid as usize]).unwrap();
            }
        }
    }
    assert!(repaired >= 1, "no live base had a usable GC twin — the repair path never ran");
    // The store is fully intact afterwards: repair went through the
    // normal program path and marked the corrupt copies obsolete.
    let mut out = vec![0u8; size];
    for pid in 0..PAGES {
        store.read_page(pid, &mut out).unwrap();
        assert_eq!(out, truth[pid as usize], "page {pid} after repairs");
    }
}
