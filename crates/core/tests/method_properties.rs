//! Property-based equivalence tests: every page-update method must behave
//! like a simple in-memory array of pages under arbitrary operation
//! sequences — that is the whole point of the PageStore abstraction (the
//! methods differ in *cost*, never in *content*).

use pdl_core::{build_store, recover_store, ChangeRange, MethodKind, PageStore, StoreOptions};
use pdl_flash::{FlashChip, FlashConfig};
use proptest::prelude::*;

const NUM_PAGES: u64 = 10;

fn tiny_kinds() -> Vec<MethodKind> {
    vec![
        MethodKind::Opu,
        MethodKind::Ipu,
        MethodKind::Pdl { max_diff_size: 128 },
        MethodKind::Pdl { max_diff_size: 32 },
        MethodKind::Ipl { log_bytes_per_block: 512 },
        MethodKind::Ipl { log_bytes_per_block: 256 },
    ]
}

/// One step of the abstract workload.
#[derive(Clone, Debug)]
enum Step {
    /// Read a page and compare with the model.
    Read { pid: u64 },
    /// Read-modify-write cycle: `updates` in-memory changes, then evict.
    Update { pid: u64, updates: Vec<(u16, u8, u8)> }, // (offset, len, fill)
    /// Overwrite the whole page (fresh load / full rewrite).
    WriteWhole { pid: u64, fill: u8 },
    /// Write-through flush.
    Flush,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0..NUM_PAGES).prop_map(|pid| Step::Read { pid }),
        (0..NUM_PAGES, proptest::collection::vec((0u16..250, 1u8..32, any::<u8>()), 1..5))
            .prop_map(|(pid, updates)| Step::Update { pid, updates }),
        (0..NUM_PAGES, any::<u8>()).prop_map(|(pid, fill)| Step::WriteWhole { pid, fill }),
        Just(Step::Flush),
    ]
}

fn run_steps(
    store: &mut Box<dyn PageStore>,
    model: &mut [Vec<u8>],
    steps: &[Step],
) -> Result<(), TestCaseError> {
    let size = store.logical_page_size();
    let mut out = vec![0u8; size];
    for step in steps {
        match step {
            Step::Read { pid } => {
                store.read_page(*pid, &mut out).unwrap();
                prop_assert_eq!(&out, &model[*pid as usize], "read {} on {}", pid, store.name());
            }
            Step::Update { pid, updates } => {
                let p = *pid as usize;
                store.read_page(*pid, &mut out).unwrap();
                prop_assert_eq!(&out, &model[p], "pre-update read {} on {}", pid, store.name());
                for (offset, len, fill) in updates {
                    let at = *offset as usize % (size - *len as usize);
                    model[p][at..at + *len as usize].fill(*fill);
                    let page = model[p].clone();
                    store
                        .apply_update(*pid, &page, &[ChangeRange::new(at, *len as usize)])
                        .unwrap();
                }
                let page = model[p].clone();
                store.evict_page(*pid, &page).unwrap();
            }
            Step::WriteWhole { pid, fill } => {
                let p = *pid as usize;
                model[p].fill(*fill);
                let page = model[p].clone();
                store.write_page(*pid, &page).unwrap();
            }
            Step::Flush => store.flush().unwrap(),
        }
    }
    // Final sweep.
    for pid in 0..NUM_PAGES {
        store.read_page(pid, &mut out).unwrap();
        prop_assert_eq!(&out, &model[pid as usize], "final read {} on {}", pid, store.name());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All methods produce byte-identical reads for arbitrary workloads.
    #[test]
    fn all_methods_match_the_model(steps in proptest::collection::vec(step_strategy(), 1..60)) {
        for kind in tiny_kinds() {
            let chip = FlashChip::new(FlashConfig::tiny());
            let mut store = build_store(chip, kind, StoreOptions::new(NUM_PAGES)).unwrap();
            let size = store.logical_page_size();
            let mut model: Vec<Vec<u8>> = (0..NUM_PAGES).map(|_| vec![0u8; size]).collect();
            run_steps(&mut store, &mut model, &steps)?;
        }
    }

    /// Multi-frame logical pages (Experiment 2b's configuration) match too.
    #[test]
    fn multi_frame_methods_match_the_model(
        steps in proptest::collection::vec(step_strategy(), 1..40)
    ) {
        for kind in [
            MethodKind::Opu,
            MethodKind::Ipu,
            MethodKind::Pdl { max_diff_size: 256 },
            MethodKind::Ipl { log_bytes_per_block: 512 },
        ] {
            let chip = FlashChip::new(FlashConfig::tiny());
            let opts = StoreOptions::new(NUM_PAGES).with_frames_per_page(2);
            let mut store = build_store(chip, kind, opts).unwrap();
            let size = store.logical_page_size();
            let mut model: Vec<Vec<u8>> = (0..NUM_PAGES).map(|_| vec![0u8; size]).collect();
            run_steps(&mut store, &mut model, &steps)?;
        }
    }

    /// Flush + crash + recover preserves every page for every method.
    #[test]
    fn flushed_state_survives_crash_recovery(
        steps in proptest::collection::vec(step_strategy(), 1..40)
    ) {
        for kind in tiny_kinds() {
            let chip = FlashChip::new(FlashConfig::tiny());
            let mut store = build_store(chip, kind, StoreOptions::new(NUM_PAGES)).unwrap();
            let size = store.logical_page_size();
            let mut model: Vec<Vec<u8>> = (0..NUM_PAGES).map(|_| vec![0u8; size]).collect();
            run_steps(&mut store, &mut model, &steps)?;
            store.flush().unwrap();
            let chip = store.into_chip();
            let mut back = recover_store(chip, kind, StoreOptions::new(NUM_PAGES)).unwrap();
            let mut out = vec![0u8; size];
            for pid in 0..NUM_PAGES {
                back.read_page(pid, &mut out).unwrap();
                prop_assert_eq!(&out, &model[pid as usize],
                    "post-recovery read {} on {}", pid, back.name());
            }
            // The recovered store keeps matching the model under more work.
            run_steps(&mut back, &mut model, &steps)?;
        }
    }

    /// Differential codec: apply(compute(base, new)) == new, for arbitrary
    /// byte pages and coalescing gaps.
    #[test]
    fn diff_compute_apply_inverts(
        base in proptest::collection::vec(any::<u8>(), 64..256),
        edits in proptest::collection::vec((any::<u16>(), any::<u8>(), 1u8..40), 0..8),
        gap in 0usize..16,
    ) {
        let mut new = base.clone();
        for (at, fill, len) in &edits {
            let at = *at as usize % base.len();
            let end = (at + *len as usize).min(base.len());
            new[at..end].fill(*fill);
        }
        let d = pdl_core::diff::Differential::compute(1, 2, &base, &new, gap);
        let mut rebuilt = base.clone();
        d.apply(&mut rebuilt);
        prop_assert_eq!(&rebuilt, &new);
        // Encoded round trip.
        let mut buf = vec![0xFFu8; d.encoded_len() + 8];
        let n = d.encode(&mut buf).unwrap();
        let (back, used) = pdl_core::diff::Differential::decode(&buf).unwrap().unwrap();
        prop_assert_eq!(used, n);
        prop_assert_eq!(back, pdl_core::diff::PageRecord::Diff(d));
    }

    /// The differential never misses a changed byte and, with gap 0, never
    /// includes an unchanged byte.
    #[test]
    fn diff_is_exact_with_zero_gap(
        base in proptest::collection::vec(any::<u8>(), 32..128),
        new_seed in proptest::collection::vec(any::<u8>(), 32..128),
    ) {
        let n = base.len().min(new_seed.len());
        let base = &base[..n];
        let new = &new_seed[..n];
        let d = pdl_core::diff::Differential::compute(0, 0, base, new, 0);
        let changed: usize = base.iter().zip(new.iter()).filter(|(a, b)| a != b).count();
        prop_assert_eq!(d.payload_len(), changed);
        let mut rebuilt = base.to_vec();
        d.apply(&mut rebuilt);
        prop_assert_eq!(rebuilt.as_slice(), new);
    }
}
