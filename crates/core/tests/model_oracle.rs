//! Model-based differential testing: an in-memory `HashMap<u64, Vec<u8>>`
//! shadow model runs in lockstep with every page-update method (and the
//! sharded engine at 1/2/4 shards) through arbitrary interleavings of
//! whole-page writes, partial updates, reads and flushes. The flash
//! geometry is tiny, so garbage collection fires constantly; after
//! *every* operation the store must agree with the model byte-for-byte
//! on the page it touched, and at the end on the whole page space.
//!
//! The same operation sequence also runs under each GC policy — victim
//! selection and hot/cold data placement change *where* pages live, never
//! *what* they contain, so all policies must produce identical logical
//! state.

use pdl_core::{build_store, GcPolicy, MethodKind, PageStore, Pdl, ShardedStore, StoreOptions};
use pdl_flash::{FlashChip, FlashConfig};
use pdl_storage::{BTree, Database, Durability, HeapFile, Key, KeyBuf, ShardedBufferPool};
use proptest::prelude::*;
use std::collections::{BTreeMap, HashMap};

const PAGES: u64 = 12;

/// One scripted operation: `(kind, pid, payload)`.
///   kind 0 — whole-page write of `payload`-filled bytes;
///   kind 1 — partial update (a 16-byte run placed by `payload`);
///   kind 2 — read and compare;
///   kind 3 — write-through flush.
type Op = (u8, u64, u8);

struct Shadow {
    model: HashMap<u64, Vec<u8>>,
    page_size: usize,
}

impl Shadow {
    fn new(page_size: usize) -> Shadow {
        Shadow { model: HashMap::new(), page_size }
    }

    fn page(&self, pid: u64) -> Vec<u8> {
        self.model.get(&pid).cloned().unwrap_or_else(|| vec![0u8; self.page_size])
    }
}

/// Drive `store` and the shadow model through `ops`, comparing the
/// touched page after every operation and every page at the end.
fn drive(store: &mut dyn PageStore, ops: &[Op]) -> Result<(), TestCaseError> {
    let size = store.logical_page_size();
    let mut shadow = Shadow::new(size);
    let mut out = vec![0u8; size];
    for (i, (kind, pid, payload)) in ops.iter().enumerate() {
        let pid = pid % PAGES;
        match kind % 4 {
            0 => {
                let page = vec![*payload; size];
                store.write_page(pid, &page).map_err(|e| {
                    TestCaseError::fail(format!("{} write_page: {e}", store.name()))
                })?;
                shadow.model.insert(pid, page);
            }
            1 => {
                let mut page = shadow.page(pid);
                let at = (*payload as usize * 7) % (size - 16);
                for (j, b) in page[at..at + 16].iter_mut().enumerate() {
                    *b = payload.wrapping_add(j as u8);
                }
                store.write_page(pid, &page).map_err(|e| {
                    TestCaseError::fail(format!("{} partial write: {e}", store.name()))
                })?;
                shadow.model.insert(pid, page);
            }
            2 => {} // the read-back below is the operation
            _ => {
                store
                    .flush()
                    .map_err(|e| TestCaseError::fail(format!("{} flush: {e}", store.name())))?;
            }
        }
        store
            .read_page(pid, &mut out)
            .map_err(|e| TestCaseError::fail(format!("{} read_page: {e}", store.name())))?;
        prop_assert_eq!(
            &out,
            &shadow.page(pid),
            "{} diverged from the model on page {} after op {}",
            store.name(),
            pid,
            i
        );
    }
    for pid in 0..PAGES {
        store
            .read_page(pid, &mut out)
            .map_err(|e| TestCaseError::fail(format!("{} final read: {e}", store.name())))?;
        prop_assert_eq!(
            &out,
            &shadow.page(pid),
            "{} diverged from the model on page {} at the end",
            store.name(),
            pid
        );
    }
    Ok(())
}

fn policies_for(kind: MethodKind) -> Vec<GcPolicy> {
    match kind {
        // The out-place methods own the pluggable policy engine: every
        // policy must preserve logical state.
        MethodKind::Opu | MethodKind::Pdl { .. } => {
            vec![GcPolicy::Greedy, GcPolicy::CostBenefit, GcPolicy::HotCold, GcPolicy::WearAware]
        }
        // IPU has no GC; IPL only varies its merge-target choice.
        MethodKind::Ipu => vec![GcPolicy::Greedy],
        MethodKind::Ipl { .. } => vec![GcPolicy::Greedy, GcPolicy::WearAware],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every method, under every applicable GC policy, agrees with the
    /// shadow model after every operation of an arbitrary script.
    #[test]
    fn every_method_matches_the_model(
        ops in proptest::collection::vec((0u8..4, 0u64..PAGES, any::<u8>()), 20..160),
    ) {
        for kind in [
            MethodKind::Opu,
            MethodKind::Ipu,
            MethodKind::Pdl { max_diff_size: 64 },
            MethodKind::Ipl { log_bytes_per_block: 512 },
        ] {
            for policy in policies_for(kind) {
                let chip = FlashChip::new(FlashConfig::tiny());
                let opts = StoreOptions::new(PAGES).with_gc_policy(policy);
                let mut store = build_store(chip, kind, opts).unwrap();
                drive(store.as_mut(), &ops)?;
            }
        }
    }

    /// Transactional shadow model (`pdl-txn`): arbitrary transactions —
    /// each a batch of staged page writes ending in a durable commit or
    /// in a torn/aborted outcome — against PDL's commit-batch protocol,
    /// with a crash + recovery after *every* transaction. The shadow
    /// applies only committed batches, so the comparison proves that
    /// uncommitted writes are invisible after recovery and that aborted
    /// batches restore the pre-images (base page + last committed
    /// differential).
    #[test]
    fn transactions_match_the_model_across_recovery(
        txns in proptest::collection::vec(
            (
                proptest::collection::vec((0u64..PAGES, any::<u8>(), any::<bool>()), 1..4),
                any::<bool>(),
            ),
            1..12,
        ),
    ) {
        let opts = StoreOptions::new(PAGES);
        let mut store =
            Pdl::new(FlashChip::new(FlashConfig::tiny()), opts, 64).expect("build");
        let size = store.logical_page_size();
        let mut committed: HashMap<u64, Vec<u8>> = HashMap::new();
        for pid in 0..PAGES {
            let page = vec![pid as u8; size];
            store.write_page(pid, &page).expect("load");
            committed.insert(pid, page);
        }
        store.flush().expect("baseline durability point");
        let mut out = vec![0u8; size];
        for (i, (writes, commit)) in txns.into_iter().enumerate() {
            let txn = i as u64 + 1;
            let mut staged = committed.clone();
            store.txn_reserve(writes.len() as u64).expect("reserve");
            for (pid, payload, whole) in writes {
                let pid = pid % PAGES;
                let mut page = staged[&pid].clone();
                if whole {
                    page.fill(payload);
                } else {
                    let at = (payload as usize * 7) % (size - 16);
                    for (j, b) in page[at..at + 16].iter_mut().enumerate() {
                        *b = payload.wrapping_add(j as u8);
                    }
                }
                store.txn_stage(pid, &page, txn).expect("stage");
                staged.insert(pid, page);
            }
            if commit {
                store.txn_append_commit(txn).expect("commit record");
                store.txn_finalize().expect("finalize");
                committed = staged;
            } else {
                // Torn / aborted: the stage may even be durable, but no
                // commit record ever lands.
                store.txn_flush_stage().expect("stage flush");
            }
            // Crash + recover after every transaction.
            let chip = Box::new(store).into_chip();
            store = Pdl::recover(chip, opts, 64).expect("recover");
            for pid in 0..PAGES {
                store.read_page(pid, &mut out).expect("read");
                prop_assert_eq!(
                    &out,
                    &committed[&pid],
                    "txn {} ({}): page {} diverged from the committed shadow",
                    i,
                    if commit { "committed" } else { "torn" },
                    pid
                );
            }
        }
    }

    /// MVCC snapshot readers against the shadow model: a reader opened
    /// before a batch of transactions sees exactly the model's state at
    /// open time, byte for byte, for every page and every MethodKind —
    /// no matter whether the batches commit or abort, and no matter how
    /// much churn (evictions, GC) happens while the view is open. A
    /// second, epoch-long view pins the very first state across the
    /// entire script, exercising deep version chains.
    #[test]
    fn snapshot_readers_see_open_time_state(
        txns in proptest::collection::vec(
            (
                proptest::collection::vec((0u64..PAGES, any::<u8>(), any::<bool>()), 1..4),
                any::<bool>(),
            ),
            1..10,
        ),
    ) {
        for kind in [
            MethodKind::Opu,
            MethodKind::Ipu,
            MethodKind::Pdl { max_diff_size: 64 },
            MethodKind::Ipl { log_bytes_per_block: 512 },
        ] {
            let chip = FlashChip::new(FlashConfig::tiny());
            let store = build_store(chip, kind, StoreOptions::new(PAGES)).unwrap();
            let db = Database::new(store, 6);
            for _ in 0..PAGES {
                db.alloc_page().unwrap();
            }
            let size = db.page_size();
            let mut model: Vec<Vec<u8>> = (0..PAGES).map(|p| vec![p as u8; size]).collect();
            for (pid, page) in model.iter().enumerate() {
                let img = page.clone();
                db.with_page_mut(pid as u64, |p| p.write(0, &img)).unwrap();
            }
            let epoch_model = model.clone();
            let epoch = db.begin_read();
            for (writes, commit) in &txns {
                let at_open = model.clone();
                let view = db.begin_read();
                let mut staged = model.clone();
                db.begin().unwrap();
                for (pid, payload, whole) in writes {
                    let pid = (pid % PAGES) as usize;
                    if *whole {
                        staged[pid].fill(*payload);
                    } else {
                        let at = (*payload as usize * 7) % (size - 16);
                        for (j, b) in staged[pid][at..at + 16].iter_mut().enumerate() {
                            *b = payload.wrapping_add(j as u8);
                        }
                    }
                    let img = staged[pid].clone();
                    db.with_page_mut(pid as u64, |p| p.write(0, &img)).unwrap();
                    // Mid-transaction, the view must already be blind to
                    // the in-flight write.
                    let seen = db.with_page_at(&view, pid as u64, |p| p.to_vec()).unwrap();
                    prop_assert_eq!(&seen, &at_open[pid], "{}: dirty read through a view", kind.label());
                }
                if *commit {
                    db.commit().unwrap();
                    model = staged;
                } else {
                    db.abort().unwrap();
                }
                for pid in 0..PAGES as usize {
                    let seen = db.with_page_at(&view, pid as u64, |p| p.to_vec()).unwrap();
                    prop_assert_eq!(
                        &seen, &at_open[pid],
                        "{}: view diverged from open-time state on page {}", kind.label(), pid
                    );
                    let cur = db.with_page(pid as u64, |p| p.to_vec()).unwrap();
                    prop_assert_eq!(
                        &cur, &model[pid],
                        "{}: current state diverged on page {}", kind.label(), pid
                    );
                }
                db.release_read(view);
            }
            for pid in 0..PAGES as usize {
                let seen = db.with_page_at(&epoch, pid as u64, |p| p.to_vec()).unwrap();
                prop_assert_eq!(
                    &seen, &epoch_model[pid],
                    "{}: epoch view diverged on page {}", kind.label(), pid
                );
            }
            db.release_read(epoch);
            // Teardown: no leaked views, nothing left pinned.
            prop_assert_eq!(db.buffer_stats().active_views, 0);
            prop_assert_eq!(db.retained_versions(), 0);
        }
    }

    /// The sharded pool (PDL, N in {1, 2, 4}): a reader opened before a
    /// batch of durably committed cross-shard transactions sees exactly
    /// the model's state at open time — and a crash (poisoning every
    /// stripe while a view is open) followed by `ShardedStore::recover`
    /// lands on exactly the committed model, from which fresh views read
    /// correctly again.
    #[test]
    fn sharded_snapshot_readers_across_crash_recovery(
        txns in proptest::collection::vec(
            (
                proptest::collection::vec((0u64..PAGES, any::<u8>(), any::<bool>()), 1..4),
                any::<bool>(),
            ),
            1..8,
        ),
        crash_at in 0usize..8,
    ) {
        let kind = MethodKind::Pdl { max_diff_size: 64 };
        let opts = StoreOptions::new(PAGES);
        for n in [1usize, 2, 4] {
            let store =
                ShardedStore::with_uniform_chips(FlashConfig::tiny(), n, kind, opts).unwrap();
            let mut pool = ShardedBufferPool::new(store, 8);
            let size = pool.page_size();
            let mut model: Vec<Vec<u8>> = (0..PAGES).map(|p| vec![p as u8; size]).collect();
            for (pid, page) in model.iter().enumerate() {
                let img = page.clone();
                pool.with_page_mut(pid as u64, |p| p.write(0, &img)).unwrap();
            }
            pool.flush_all().unwrap();
            for (i, (writes, commit)) in txns.iter().enumerate() {
                if i == crash_at {
                    // Crash mid-read: a view is open when the pool dies.
                    let _doomed = pool.begin_read();
                    let chips = pool.into_store_without_flush().into_shard_chips();
                    let store = ShardedStore::recover(chips, kind, opts).unwrap();
                    pool = ShardedBufferPool::new(store, 8);
                    // Recovery lands on exactly the committed model (every
                    // commit below is durable), visible to a fresh view.
                    let view = pool.begin_read();
                    for pid in 0..PAGES as usize {
                        let seen =
                            pool.with_page_at(&view, pid as u64, |p| p.to_vec()).unwrap();
                        prop_assert_eq!(
                            &seen, &model[pid],
                            "{} shards: recovered state diverged on page {}", n, pid
                        );
                    }
                    pool.release_read(view);
                }
                let at_open = model.clone();
                let view = pool.begin_read();
                let mut staged = model.clone();
                let txn = pool.begin();
                for (pid, payload, whole) in writes {
                    let pid = (pid % PAGES) as usize;
                    if *whole {
                        staged[pid].fill(*payload);
                    } else {
                        let at = (*payload as usize * 7) % (size - 16);
                        for (j, b) in staged[pid][at..at + 16].iter_mut().enumerate() {
                            *b = payload.wrapping_add(j as u8);
                        }
                    }
                    let img = staged[pid].clone();
                    pool.with_page_mut_txn(pid as u64, txn, |p| p.write(0, &img)).unwrap();
                }
                if *commit {
                    pool.commit(txn).unwrap();
                    model = staged;
                } else {
                    pool.abort(txn).unwrap();
                }
                for pid in 0..PAGES as usize {
                    let seen = pool.with_page_at(&view, pid as u64, |p| p.to_vec()).unwrap();
                    prop_assert_eq!(
                        &seen, &at_open[pid],
                        "{} shards: view diverged from open-time state on page {}", n, pid
                    );
                    let cur = pool.with_page(pid as u64, |p| p.to_vec()).unwrap();
                    prop_assert_eq!(
                        &cur, &model[pid],
                        "{} shards: current state diverged on page {}", n, pid
                    );
                }
                pool.release_read(view);
            }
            prop_assert_eq!(pool.retained_versions(), 0, "all views released");
            prop_assert_eq!(pool.stats().active_views, 0, "the view registry drained");
        }
    }

    /// Tentpole oracle for the structure-root log: N-shard databases
    /// (N in {1, 2, 4}) under writers driving continuous B+-tree splits
    /// and heap growth, with epoch-long and per-round read views held
    /// open across the churn. Every scan through a **stale handle** —
    /// the same `BTree` / `HeapFile` the writer keeps splitting — must
    /// match the shadow model at the view's open time byte for byte,
    /// the *current* state must match the committed model even right
    /// after an abort-after-split (physiological structural undo), and
    /// a mid-sequence crash + `ShardedStore::recover` + `attach` at the
    /// last committed roots must land on exactly the committed model.
    #[test]
    fn structure_scans_through_stale_handles_match_the_model(
        rounds in proptest::collection::vec(
            (proptest::collection::vec(any::<u16>(), 4..20), any::<bool>()),
            3..7,
        ),
        crash_at in 0usize..7,
    ) {
        let kind = MethodKind::Pdl { max_diff_size: 128 };
        let opts = StoreOptions::new(192);
        // Small pages (256 bytes -> 10 B+-tree entries per node) so the
        // churn splits leaves and grows the tree constantly.
        let mut config = FlashConfig::tiny();
        config.geometry.num_blocks = 64;
        let tree_key = |k: u16, round: usize, j: usize| -> Key {
            KeyBuf::new().push_u16(k).push_u8(round as u8).push_u8(j as u8).finish()
        };
        let heap_rec = |k: u16, round: usize, j: usize| -> Vec<u8> {
            let mut rec = vec![0u8; 20];
            rec[0..2].copy_from_slice(&k.to_le_bytes());
            rec[2] = round as u8;
            rec[3] = j as u8;
            rec
        };
        for n in [1usize, 2, 4] {
            let store =
                ShardedStore::with_uniform_chips(config, n, kind, opts).unwrap();
            let mut db = Database::new(Box::new(store), 128)
                .with_durability(Durability::Commit);
            let mut tree = BTree::create(&db).unwrap();
            let mut heap = HeapFile::create(&db);
            // The creations above auto-committed in memory; write them
            // through so a crash before the first commit still recovers
            // the empty structures.
            db.flush().unwrap();
            let mut tree_model: BTreeMap<Key, u64> = BTreeMap::new();
            let mut heap_model: BTreeMap<(u64, u16), Vec<u8>> = BTreeMap::new();
            // Seed a committed baseline.
            db.begin().unwrap();
            for j in 0..8u16 {
                let key = tree_key(j, 99, j as usize);
                tree.insert(&db, &key, j as u64).unwrap();
                tree_model.insert(key, j as u64);
                let rec = heap_rec(j, 99, j as usize);
                let rid = heap.insert(&db, &rec).unwrap();
                heap_model.insert((rid.pid, rid.slot), rec);
            }
            db.commit().unwrap();
            // An epoch-long view pinning this baseline across all churn.
            let mut epoch = db.begin_read();
            let mut epoch_tree = tree_model.clone();
            let mut epoch_heap = heap_model.clone();
            for (i, (keys, commit)) in rounds.iter().enumerate() {
                if i == crash_at {
                    // Crash with a view open: remember only what a real
                    // system could (the last *committed* roots), recover,
                    // re-attach, and verify the committed model survived.
                    let root = tree.current_root(&db);
                    let pages = heap.pages_in(&db);
                    let allocated = db.allocated_pages();
                    db.release_read(epoch);
                    let chips = db.into_store_without_flush().into_chips();
                    let store = ShardedStore::recover(chips, kind, opts).unwrap();
                    db = Database::new_with_allocated(Box::new(store), 128, allocated)
                        .with_durability(Durability::Commit);
                    tree = BTree::attach(&db, root);
                    heap = HeapFile::attach(&db, pages);
                    let view = db.begin_read();
                    let snap = db.snapshot(&view);
                    let mut seen: BTreeMap<Key, u64> = BTreeMap::new();
                    tree.range_at(&snap, &[0u8; 16], &[0xFF; 16], |k, v| {
                        seen.insert(*k, v);
                        true
                    })
                    .unwrap();
                    prop_assert_eq!(&seen, &tree_model,
                        "{} shards: recovered tree diverged from the committed model", n);
                    let mut hseen: BTreeMap<(u64, u16), Vec<u8>> = BTreeMap::new();
                    heap.scan_at(&snap, |rid, bytes| {
                        hseen.insert((rid.pid, rid.slot), bytes.to_vec());
                    })
                    .unwrap();
                    prop_assert_eq!(&hseen, &heap_model,
                        "{} shards: recovered heap diverged from the committed model", n);
                    let _ = snap;
                    db.release_read(view);
                    epoch = db.begin_read();
                    epoch_tree = tree_model.clone();
                    epoch_heap = heap_model.clone();
                }
                let tree_at_open = tree_model.clone();
                let heap_at_open = heap_model.clone();
                let view = db.begin_read();
                let mut tree_staged = tree_model.clone();
                let mut heap_staged = heap_model.clone();
                db.begin().unwrap();
                for (j, k) in keys.iter().enumerate() {
                    let key = tree_key(*k, i, j);
                    let val = (i * 1000 + j) as u64;
                    tree.insert(&db, &key, val).unwrap();
                    tree_staged.insert(key, val);
                    let rec = heap_rec(*k, i, j);
                    let rid = heap.insert(&db, &rec).unwrap();
                    heap_staged.insert((rid.pid, rid.slot), rec);
                }
                if *commit {
                    db.commit().unwrap();
                    tree_model = tree_staged;
                    heap_model = heap_staged;
                } else {
                    db.abort().unwrap();
                }
                // The round view, read through the STALE live handles
                // (their roots kept moving under it), must see exactly
                // the open-time state.
                {
                    let snap = db.snapshot(&view);
                    let mut seen: BTreeMap<Key, u64> = BTreeMap::new();
                    tree.range_at(&snap, &[0u8; 16], &[0xFF; 16], |k, v| {
                        seen.insert(*k, v);
                        true
                    })
                    .unwrap();
                    prop_assert_eq!(&seen, &tree_at_open,
                        "{} shards, round {}: stale-handle tree scan diverged from the \
                         open-time model", n, i);
                    let mut hseen: BTreeMap<(u64, u16), Vec<u8>> = BTreeMap::new();
                    heap.scan_at(&snap, |rid, bytes| {
                        hseen.insert((rid.pid, rid.slot), bytes.to_vec());
                    })
                    .unwrap();
                    prop_assert_eq!(&hseen, &heap_at_open,
                        "{} shards, round {}: stale-handle heap scan diverged from the \
                         open-time model", n, i);
                }
                db.release_read(view);
                // Current state must equal the committed model — right
                // through an abort-after-split (structural undo).
                let mut cur: BTreeMap<Key, u64> = BTreeMap::new();
                tree.range(&db, &[0u8; 16], &[0xFF; 16], |k, v| {
                    cur.insert(*k, v);
                    true
                })
                .unwrap();
                prop_assert_eq!(&cur, &tree_model,
                    "{} shards, round {} ({}): current tree diverged", n, i,
                    if *commit { "committed" } else { "aborted" });
                let mut hcur: BTreeMap<(u64, u16), Vec<u8>> = BTreeMap::new();
                heap.scan(&db, |rid, bytes| {
                    hcur.insert((rid.pid, rid.slot), bytes.to_vec());
                })
                .unwrap();
                prop_assert_eq!(&hcur, &heap_model,
                    "{} shards, round {} ({}): current heap diverged", n, i,
                    if *commit { "committed" } else { "aborted" });
            }
            // The epoch view still reads its open-time world.
            {
                let snap = db.snapshot(&epoch);
                let mut seen: BTreeMap<Key, u64> = BTreeMap::new();
                tree.range_at(&snap, &[0u8; 16], &[0xFF; 16], |k, v| {
                    seen.insert(*k, v);
                    true
                })
                .unwrap();
                prop_assert_eq!(&seen, &epoch_tree,
                    "{} shards: epoch tree scan diverged", n);
                let mut hseen: BTreeMap<(u64, u16), Vec<u8>> = BTreeMap::new();
                heap.scan_at(&snap, |rid, bytes| {
                    hseen.insert((rid.pid, rid.slot), bytes.to_vec());
                })
                .unwrap();
                prop_assert_eq!(&hseen, &epoch_heap,
                    "{} shards: epoch heap scan diverged", n);
            }
            db.release_read(epoch);
            // Teardown: the active-view registry is empty and nothing
            // stayed pinned (catches future view leaks).
            prop_assert_eq!(db.buffer_stats().active_views, 0);
            prop_assert_eq!(db.retained_versions(), 0);
            prop_assert_eq!(db.retained_struct_versions(), 0);
        }
    }

    /// The sharded engine at 1, 2 and 4 shards agrees with the same
    /// model (striping is invisible at the PageStore interface), for
    /// each GC policy in turn.
    #[test]
    fn sharded_store_matches_the_model(
        ops in proptest::collection::vec((0u8..4, 0u64..PAGES, any::<u8>()), 20..160),
    ) {
        for (n, policy) in
            [(1, GcPolicy::Greedy), (2, GcPolicy::CostBenefit), (4, GcPolicy::HotCold)]
        {
            let mut store = ShardedStore::with_uniform_chips(
                FlashConfig::tiny(),
                n,
                MethodKind::Pdl { max_diff_size: 64 },
                StoreOptions::new(PAGES).with_gc_policy(policy),
            )
            .unwrap();
            drive(&mut store, &ops)?;
        }
    }
}
