//! Model-based differential testing: an in-memory `HashMap<u64, Vec<u8>>`
//! shadow model runs in lockstep with every page-update method (and the
//! sharded engine at 1/2/4 shards) through arbitrary interleavings of
//! whole-page writes, partial updates, reads and flushes. The flash
//! geometry is tiny, so garbage collection fires constantly; after
//! *every* operation the store must agree with the model byte-for-byte
//! on the page it touched, and at the end on the whole page space.
//!
//! The same operation sequence also runs under each GC policy — victim
//! selection and hot/cold data placement change *where* pages live, never
//! *what* they contain, so all policies must produce identical logical
//! state.

use pdl_core::{build_store, GcPolicy, MethodKind, PageStore, Pdl, ShardedStore, StoreOptions};
use pdl_flash::{FlashChip, FlashConfig};
use proptest::prelude::*;
use std::collections::HashMap;

const PAGES: u64 = 12;

/// One scripted operation: `(kind, pid, payload)`.
///   kind 0 — whole-page write of `payload`-filled bytes;
///   kind 1 — partial update (a 16-byte run placed by `payload`);
///   kind 2 — read and compare;
///   kind 3 — write-through flush.
type Op = (u8, u64, u8);

struct Shadow {
    model: HashMap<u64, Vec<u8>>,
    page_size: usize,
}

impl Shadow {
    fn new(page_size: usize) -> Shadow {
        Shadow { model: HashMap::new(), page_size }
    }

    fn page(&self, pid: u64) -> Vec<u8> {
        self.model.get(&pid).cloned().unwrap_or_else(|| vec![0u8; self.page_size])
    }
}

/// Drive `store` and the shadow model through `ops`, comparing the
/// touched page after every operation and every page at the end.
fn drive(store: &mut dyn PageStore, ops: &[Op]) -> Result<(), TestCaseError> {
    let size = store.logical_page_size();
    let mut shadow = Shadow::new(size);
    let mut out = vec![0u8; size];
    for (i, (kind, pid, payload)) in ops.iter().enumerate() {
        let pid = pid % PAGES;
        match kind % 4 {
            0 => {
                let page = vec![*payload; size];
                store.write_page(pid, &page).map_err(|e| {
                    TestCaseError::fail(format!("{} write_page: {e}", store.name()))
                })?;
                shadow.model.insert(pid, page);
            }
            1 => {
                let mut page = shadow.page(pid);
                let at = (*payload as usize * 7) % (size - 16);
                for (j, b) in page[at..at + 16].iter_mut().enumerate() {
                    *b = payload.wrapping_add(j as u8);
                }
                store.write_page(pid, &page).map_err(|e| {
                    TestCaseError::fail(format!("{} partial write: {e}", store.name()))
                })?;
                shadow.model.insert(pid, page);
            }
            2 => {} // the read-back below is the operation
            _ => {
                store
                    .flush()
                    .map_err(|e| TestCaseError::fail(format!("{} flush: {e}", store.name())))?;
            }
        }
        store
            .read_page(pid, &mut out)
            .map_err(|e| TestCaseError::fail(format!("{} read_page: {e}", store.name())))?;
        prop_assert_eq!(
            &out,
            &shadow.page(pid),
            "{} diverged from the model on page {} after op {}",
            store.name(),
            pid,
            i
        );
    }
    for pid in 0..PAGES {
        store
            .read_page(pid, &mut out)
            .map_err(|e| TestCaseError::fail(format!("{} final read: {e}", store.name())))?;
        prop_assert_eq!(
            &out,
            &shadow.page(pid),
            "{} diverged from the model on page {} at the end",
            store.name(),
            pid
        );
    }
    Ok(())
}

fn policies_for(kind: MethodKind) -> Vec<GcPolicy> {
    match kind {
        // The out-place methods own the pluggable policy engine: every
        // policy must preserve logical state.
        MethodKind::Opu | MethodKind::Pdl { .. } => {
            vec![GcPolicy::Greedy, GcPolicy::CostBenefit, GcPolicy::HotCold, GcPolicy::WearAware]
        }
        // IPU has no GC; IPL only varies its merge-target choice.
        MethodKind::Ipu => vec![GcPolicy::Greedy],
        MethodKind::Ipl { .. } => vec![GcPolicy::Greedy, GcPolicy::WearAware],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every method, under every applicable GC policy, agrees with the
    /// shadow model after every operation of an arbitrary script.
    #[test]
    fn every_method_matches_the_model(
        ops in proptest::collection::vec((0u8..4, 0u64..PAGES, any::<u8>()), 20..160),
    ) {
        for kind in [
            MethodKind::Opu,
            MethodKind::Ipu,
            MethodKind::Pdl { max_diff_size: 64 },
            MethodKind::Ipl { log_bytes_per_block: 512 },
        ] {
            for policy in policies_for(kind) {
                let chip = FlashChip::new(FlashConfig::tiny());
                let opts = StoreOptions::new(PAGES).with_gc_policy(policy);
                let mut store = build_store(chip, kind, opts).unwrap();
                drive(store.as_mut(), &ops)?;
            }
        }
    }

    /// Transactional shadow model (`pdl-txn`): arbitrary transactions —
    /// each a batch of staged page writes ending in a durable commit or
    /// in a torn/aborted outcome — against PDL's commit-batch protocol,
    /// with a crash + recovery after *every* transaction. The shadow
    /// applies only committed batches, so the comparison proves that
    /// uncommitted writes are invisible after recovery and that aborted
    /// batches restore the pre-images (base page + last committed
    /// differential).
    #[test]
    fn transactions_match_the_model_across_recovery(
        txns in proptest::collection::vec(
            (
                proptest::collection::vec((0u64..PAGES, any::<u8>(), any::<bool>()), 1..4),
                any::<bool>(),
            ),
            1..12,
        ),
    ) {
        let opts = StoreOptions::new(PAGES);
        let mut store =
            Pdl::new(FlashChip::new(FlashConfig::tiny()), opts, 64).expect("build");
        let size = store.logical_page_size();
        let mut committed: HashMap<u64, Vec<u8>> = HashMap::new();
        for pid in 0..PAGES {
            let page = vec![pid as u8; size];
            store.write_page(pid, &page).expect("load");
            committed.insert(pid, page);
        }
        store.flush().expect("baseline durability point");
        let mut out = vec![0u8; size];
        for (i, (writes, commit)) in txns.into_iter().enumerate() {
            let txn = i as u64 + 1;
            let mut staged = committed.clone();
            store.txn_reserve(writes.len() as u64).expect("reserve");
            for (pid, payload, whole) in writes {
                let pid = pid % PAGES;
                let mut page = staged[&pid].clone();
                if whole {
                    page.fill(payload);
                } else {
                    let at = (payload as usize * 7) % (size - 16);
                    for (j, b) in page[at..at + 16].iter_mut().enumerate() {
                        *b = payload.wrapping_add(j as u8);
                    }
                }
                store.txn_stage(pid, &page, txn).expect("stage");
                staged.insert(pid, page);
            }
            if commit {
                store.txn_append_commit(txn).expect("commit record");
                store.txn_finalize().expect("finalize");
                committed = staged;
            } else {
                // Torn / aborted: the stage may even be durable, but no
                // commit record ever lands.
                store.txn_flush_stage().expect("stage flush");
            }
            // Crash + recover after every transaction.
            let chip = Box::new(store).into_chip();
            store = Pdl::recover(chip, opts, 64).expect("recover");
            for pid in 0..PAGES {
                store.read_page(pid, &mut out).expect("read");
                prop_assert_eq!(
                    &out,
                    &committed[&pid],
                    "txn {} ({}): page {} diverged from the committed shadow",
                    i,
                    if commit { "committed" } else { "torn" },
                    pid
                );
            }
        }
    }

    /// The sharded engine at 1, 2 and 4 shards agrees with the same
    /// model (striping is invisible at the PageStore interface), for
    /// each GC policy in turn.
    #[test]
    fn sharded_store_matches_the_model(
        ops in proptest::collection::vec((0u8..4, 0u64..PAGES, any::<u8>()), 20..160),
    ) {
        for (n, policy) in
            [(1, GcPolicy::Greedy), (2, GcPolicy::CostBenefit), (4, GcPolicy::HotCold)]
        {
            let mut store = ShardedStore::with_uniform_chips(
                FlashConfig::tiny(),
                n,
                MethodKind::Pdl { max_diff_size: 64 },
                StoreOptions::new(PAGES).with_gc_policy(policy),
            )
            .unwrap();
            drive(&mut store, &ops)?;
        }
    }
}
