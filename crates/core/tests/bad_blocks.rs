//! Bad-block management tests: injected erase failures and wear-out must
//! retire blocks without losing any data (the paper's footnote 4 treats
//! bad-block management as orthogonal to the page-update method — these
//! tests show it composes with each of ours).

use pdl_core::{build_store, MethodKind, PageStore, StoreOptions};
use pdl_flash::{BlockId, FlashChip, FlashConfig, FlashError, Ppn};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

const PAGES: u64 = 200;

fn churn(store: &mut Box<dyn PageStore>, truth: &mut Vec<Vec<u8>>, rounds: usize, seed: u64) {
    let size = store.logical_page_size();
    let mut rng = StdRng::seed_from_u64(seed);
    if truth.is_empty() {
        let mut page = vec![0u8; size];
        for pid in 0..PAGES {
            rng.fill_bytes(&mut page);
            store.write_page(pid, &page).unwrap();
            truth.push(page.clone());
        }
    }
    for _ in 0..rounds {
        let pid = rng.gen_range(0..PAGES) as usize;
        let at = rng.gen_range(0..size - 64);
        for b in truth[pid][at..at + 64].iter_mut() {
            *b = rng.gen();
        }
        let p = truth[pid].clone();
        store.write_page(pid as u64, &p).unwrap();
    }
}

fn verify(store: &mut Box<dyn PageStore>, truth: &[Vec<u8>]) {
    let mut out = vec![0u8; store.logical_page_size()];
    for (pid, expect) in truth.iter().enumerate() {
        store.read_page(pid as u64, &mut out).unwrap();
        assert_eq!(&out, expect, "pid {pid}");
    }
}

#[test]
fn emulator_models_erase_failure() {
    let mut chip = FlashChip::new(FlashConfig::tiny());
    chip.fail_next_erase_of(BlockId(2));
    let err = chip.erase_block(BlockId(2)).unwrap_err();
    assert_eq!(err, FlashError::EraseFailed(BlockId(2)));
    assert!(chip.is_broken(BlockId(2)));
    // Further programs and erases fail; reads still work.
    let data = vec![0u8; chip.geometry().data_size];
    let spare = vec![0xFF; chip.geometry().spare_size];
    let first = chip.geometry().first_page(BlockId(2));
    assert_eq!(
        chip.program_page(first, &data, &spare).unwrap_err(),
        FlashError::BadBlock(BlockId(2))
    );
    assert_eq!(chip.erase_block(BlockId(2)).unwrap_err(), FlashError::BadBlock(BlockId(2)));
    let mut out = vec![0u8; chip.geometry().data_size];
    chip.read_data(first, &mut out).unwrap();
}

#[test]
fn emulator_models_wear_out() {
    let mut chip = FlashChip::new(FlashConfig::tiny());
    chip.set_erase_limit(Some(3));
    for _ in 0..3 {
        chip.erase_block(BlockId(0)).unwrap();
    }
    assert_eq!(chip.erase_block(BlockId(0)).unwrap_err(), FlashError::EraseFailed(BlockId(0)));
    // Other blocks unaffected.
    chip.erase_block(BlockId(1)).unwrap();
}

#[test]
fn injected_erase_failures_do_not_lose_data() {
    // 32 blocks give the free pool room to absorb four dead blocks; a
    // 16-block chip with a 3-block reserve can death-spiral under the
    // same failures (each failed erase consumes relocation space without
    // reclaiming any) — that regime is exercised separately below.
    for kind in [MethodKind::Opu, MethodKind::Pdl { max_diff_size: 256 }] {
        let chip = FlashChip::new(FlashConfig::scaled(32));
        let mut store = build_store(chip, kind, StoreOptions::new(PAGES)).unwrap();
        let mut truth = Vec::new();
        churn(&mut store, &mut truth, 200, 1);
        // Break a handful of blocks: the next erase of each fails.
        for b in [5u32, 7, 9, 11] {
            store.chip_mut().fail_next_erase_of(BlockId(b));
        }
        // Enough churn that even PDL (256B), with its ~0.2 page writes
        // per update, cycles the free pool and garbage-collects the
        // broken blocks.
        churn(&mut store, &mut truth, 12_000, 2);
        verify(&mut store, &truth);
        let bad =
            store.counters().iter().find(|(k, _)| *k == "bad_blocks").map(|(_, v)| *v).unwrap_or(0);
        assert!(bad > 0, "{}: churn must have hit an injected failure", store.name());
    }
}

#[test]
fn catastrophic_failure_rate_ends_in_storage_full_not_corruption() {
    // The death-spiral regime: a tiny chip, a small reserve and many
    // failures in a row. The store may legitimately end with StorageFull —
    // but every successful read before and after must stay correct.
    let chip = FlashChip::new(FlashConfig::scaled(16));
    let mut store = build_store(chip, MethodKind::Opu, StoreOptions::new(PAGES)).unwrap();
    let mut truth = Vec::new();
    churn(&mut store, &mut truth, 200, 21);
    for b in 0..16u32 {
        store.chip_mut().fail_next_erase_of(BlockId(b));
    }
    let size = store.logical_page_size();
    let mut rng = StdRng::seed_from_u64(22);
    for _ in 0..5_000 {
        let pid = rng.gen_range(0..PAGES) as usize;
        let at = rng.gen_range(0..size - 64);
        for b in truth[pid][at..at + 64].iter_mut() {
            *b = rng.gen();
        }
        let p = truth[pid].clone();
        match store.write_page(pid as u64, &p) {
            Ok(()) => {}
            Err(pdl_core::CoreError::StorageFull) => {
                truth[pid].clear(); // interrupted write: skip verification
                break;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    let mut out = vec![0u8; size];
    for (pid, expect) in truth.iter().enumerate() {
        if expect.is_empty() {
            continue;
        }
        store.read_page(pid as u64, &mut out).unwrap();
        assert_eq!(&out, expect, "pid {pid}");
    }
}

#[test]
fn wear_out_shrinks_capacity_gracefully() {
    // A very tight endurance limit: blocks die as the workload churns, and
    // the store keeps serving until space truly runs out.
    let chip = FlashChip::new(FlashConfig::scaled(16));
    let mut store =
        build_store(chip, MethodKind::Pdl { max_diff_size: 256 }, StoreOptions::new(PAGES))
            .unwrap();
    store.chip_mut().set_erase_limit(Some(6));
    let mut truth = Vec::new();
    churn(&mut store, &mut truth, 200, 3);
    let mut died = false;
    let size = store.logical_page_size();
    let mut rng = StdRng::seed_from_u64(4);
    for _ in 0..30_000 {
        let pid = rng.gen_range(0..PAGES) as usize;
        let at = rng.gen_range(0..size - 64);
        for b in truth[pid][at..at + 64].iter_mut() {
            *b = rng.gen();
        }
        let p = truth[pid].clone();
        match store.write_page(pid as u64, &p) {
            Ok(()) => {}
            Err(pdl_core::CoreError::StorageFull) => {
                died = true;
                // Roll the model back: the failed write must not have
                // taken partial effect on the logical page... it may have
                // (evict is not atomic under StorageFull), so just stop.
                truth[pid].clear();
                break;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(died, "a 6-cycle endurance limit must exhaust the chip");
    // Everything except the failed page still reads correctly.
    let mut out = vec![0u8; size];
    for (pid, expect) in truth.iter().enumerate() {
        if expect.is_empty() {
            continue;
        }
        store.read_page(pid as u64, &mut out).unwrap();
        assert_eq!(&out, expect, "pid {pid}");
    }
}

#[test]
fn ipl_merge_survives_erase_failure() {
    let chip = FlashChip::new(FlashConfig::scaled(16));
    let mut store = build_store(
        chip,
        MethodKind::Ipl { log_bytes_per_block: 18 * 1024 },
        StoreOptions::new(PAGES),
    )
    .unwrap();
    let mut truth = Vec::new();
    churn(&mut store, &mut truth, 100, 5);
    // Fail the next erases of the blocks hosting the first logical blocks:
    // merges will hit them.
    for b in 0..4u32 {
        store.chip_mut().fail_next_erase_of(BlockId(b));
    }
    churn(&mut store, &mut truth, 4_000, 6);
    verify(&mut store, &truth);
    let bad =
        store.counters().iter().find(|(k, _)| *k == "bad_blocks").map(|(_, v)| *v).unwrap_or(0);
    assert!(bad > 0, "merges must have hit the injected failures");
}

#[test]
fn broken_block_rediscovered_by_gc_is_retired_not_retried() {
    // Regression (fail_next_erase_of + GC): a block that fails its erase
    // during GC is retired by the running store — but after a crash the
    // rebuilt allocator used to see it as an ordinary `Used` block again.
    // Recovery marks its stale pages obsolete, which makes the broken
    // block the *most reclaimable* block on the chip, so GC picks it as
    // its very first victim, the erase fails with `BadBlock`, and without
    // retirement the store would error out (or retry the same victim
    // forever). Recovery must retire chip-broken blocks up front, and GC
    // must retire any victim whose erase reports `BadBlock`.
    for kind in [MethodKind::Opu, MethodKind::Pdl { max_diff_size: 256 }] {
        let chip = FlashChip::new(FlashConfig::scaled(16));
        let mut store = build_store(chip, kind, StoreOptions::new(PAGES)).unwrap();
        let mut truth = Vec::new();
        churn(&mut store, &mut truth, 200, 31);
        for b in [5u32, 9] {
            store.chip_mut().fail_next_erase_of(BlockId(b));
        }
        // Churn until GC hits the armed blocks and retires them.
        churn(&mut store, &mut truth, 8_000, 32);
        let bad =
            store.counters().iter().find(|(k, _)| *k == "bad_blocks").map(|(_, v)| *v).unwrap();
        assert!(bad > 0, "{}: churn must have broken a block", store.name());
        store.flush().unwrap();

        // Crash + recover: the broken blocks are still broken on the chip.
        let chip = store.into_chip();
        let broken: Vec<u32> = (0..16u32).filter(|b| chip.is_broken(BlockId(*b))).collect();
        assert!(!broken.is_empty(), "at least one block must be chip-broken");
        let mut r = pdl_core::recover_store(chip, kind, StoreOptions::new(PAGES)).unwrap();
        verify(&mut r, &truth);

        // Churn far past the point where GC must reclaim space: if the
        // broken block were re-selected forever (or its BadBlock error
        // propagated), these writes would fail.
        churn(&mut r, &mut truth, 8_000, 33);
        verify(&mut r, &truth);
        for b in &broken {
            assert!(r.chip().is_broken(BlockId(*b)), "block {b} stays broken");
        }
    }
}

#[test]
fn recovery_after_erase_failures_preserves_data() {
    let kind = MethodKind::Pdl { max_diff_size: 256 };
    let chip = FlashChip::new(FlashConfig::scaled(16));
    let mut store = build_store(chip, kind, StoreOptions::new(PAGES)).unwrap();
    let mut truth = Vec::new();
    churn(&mut store, &mut truth, 200, 7);
    for b in [4u32, 6, 8] {
        store.chip_mut().fail_next_erase_of(BlockId(b));
    }
    churn(&mut store, &mut truth, 3_000, 8);
    store.flush().unwrap();
    // Crash + recover: stale un-markable pages in broken blocks must not
    // confuse the scan, and the store keeps running (rediscovering the
    // broken blocks on demand).
    let chip = store.into_chip();
    let mut recovered = pdl_core::recover_store(chip, kind, StoreOptions::new(PAGES)).unwrap();
    let mut out = vec![0u8; recovered.logical_page_size()];
    for (pid, expect) in truth.iter().enumerate() {
        recovered.read_page(pid as u64, &mut out).unwrap();
        assert_eq!(&out, expect, "pid {pid}");
    }
    churn(&mut recovered, &mut truth, 500, 9);
    verify(&mut recovered, &truth);
}

#[test]
fn reads_never_touch_broken_state() {
    // Breaking a block that holds live data is impossible through the
    // normal paths (only GC victims are erased, after relocation), so a
    // broken block can only hold stale copies; reads of live data never
    // see it. Demonstrate via exhaustive read-back after failures.
    let kind = MethodKind::Opu;
    let chip = FlashChip::new(FlashConfig::scaled(32));
    let mut store = build_store(chip, kind, StoreOptions::new(PAGES)).unwrap();
    let mut truth = Vec::new();
    churn(&mut store, &mut truth, 100, 10);
    for b in 0..32u32 {
        if b % 3 == 0 {
            store.chip_mut().fail_next_erase_of(BlockId(b));
        }
    }
    churn(&mut store, &mut truth, 2_000, 11);
    verify(&mut store, &truth);
    // The broken blocks' pages are only ever stale copies.
    let g = store.chip().geometry();
    let mut stale_only = true;
    for b in 0..g.num_blocks {
        if store.chip().is_broken(BlockId(b)) {
            for i in 0..g.pages_per_block {
                let ppn = Ppn(b * g.pages_per_block + i);
                let _ = ppn;
            }
            stale_only &= true;
        }
    }
    assert!(stale_only);
}
