//! Deterministic simulated-clock properties of the pipelined flash
//! command model (per-chip queues + plane parallelism):
//!
//! * **dependency ordering** — under queue depths 1, 4 and 16, every
//!   read observes the latest completed program for its page, and the
//!   chip's `ordering_violations` gauge stays 0 (a read is never
//!   scheduled to complete before a program/erase it depends on);
//! * **QD=1 equivalence** — with a single queue slot the pipeline clock
//!   reproduces the serial Table-1 latency sum exactly, so every
//!   pre-pipeline result is the queue-depth-1 point of the new model;
//! * **monotone speedup** — on a GC-heavy workload the pipeline busy
//!   time never regresses as the queue deepens, and QD=16 strictly
//!   beats QD=1;
//! * **in-flight crash safety** — at QD=16 a transaction's staged
//!   programs and commit record can all sit in the queue with no
//!   intervening drain; power loss at any destructive-op index must
//!   still recover to a committed prefix.
//!
//! Everything here is deterministic: the clock is simulated, the
//! workload is a fixed pseudo-random script, and crash points are an
//! exhaustive sweep over destructive-op indices.

use pdl_core::{build_store, is_power_loss, recover_store, MethodKind, PageStore, StoreOptions};
use pdl_flash::{FlashChip, FlashConfig};

const PAGES: u64 = 24;
const DEPTHS: [u32; 3] = [1, 4, 16];

fn config(depth: u32) -> FlashConfig {
    FlashConfig::tiny().with_queue_depth(depth).with_planes(4)
}

fn gc_heavy_opts() -> StoreOptions {
    let mut opts = StoreOptions::new(PAGES);
    // Shrink the allocatable space so the short script garbage-collects:
    // the interesting schedules are the ones with erases in the queue.
    opts.reserve_blocks = 10;
    opts
}

#[test]
fn reads_observe_latest_completed_program_at_every_depth() {
    let kind = MethodKind::Pdl { max_diff_size: 64 };
    let mut busy: Vec<(u32, u64)> = Vec::new();
    for depth in DEPTHS {
        let mut store = build_store(FlashChip::new(config(depth)), kind, gc_heavy_opts()).unwrap();
        let size = store.logical_page_size();
        let mut truth: Vec<Vec<u8>> = (0..PAGES).map(|_| vec![0u8; size]).collect();
        for pid in 0..PAGES {
            store.write_page(pid, &truth[pid as usize]).unwrap();
        }
        let mut out = vec![0u8; size];
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        for i in 0..160usize {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let pid = (x >> 33) % PAGES;
            let fill = (x >> 17) as u8;
            if (x >> 13) & 3 == 0 {
                truth[pid as usize].fill(fill);
            } else {
                let at = (fill as usize * 7) % (size - 16);
                truth[pid as usize][at..at + 16].fill(fill ^ 0x5A);
            }
            let img = truth[pid as usize].clone();
            store.write_page(pid, &img).unwrap();
            // Read a page right behind the program — possibly the one
            // just written, possibly one whose program or GC migration is
            // still in flight. It must observe the latest completed
            // program for that page, never a stale image.
            let rp = (x >> 41) % PAGES;
            store.read_page(rp, &mut out).unwrap();
            assert_eq!(out, truth[rp as usize], "depth {depth}, op {i}: stale read of page {rp}");
        }
        store.flush().unwrap();
        for pid in 0..PAGES {
            store.read_page(pid, &mut out).unwrap();
            assert_eq!(out, truth[pid as usize], "depth {depth}: page {pid} after flush");
        }

        let stats = store.stats();
        assert_eq!(
            stats.pipeline.ordering_violations, 0,
            "depth {depth}: a read was scheduled before a command it depends on"
        );
        assert!(stats.gc.total_ops() > 0, "depth {depth}: the workload must garbage-collect");
        let b = store.pipeline_busy_us();
        assert!(b > 0);
        if depth == 1 {
            // A single queue slot admits no overlap: the pipeline clock
            // must equal the serial sum of Table-1 latencies, making the
            // old synchronous model the QD=1 point of this one.
            assert_eq!(b, stats.total().total_us(), "QD=1 must reproduce the serial time sum");
        } else {
            assert!(
                stats.pipeline.max_inflight > 1,
                "depth {depth}: the queue was never actually used"
            );
        }
        busy.push((depth, b));
    }
    for w in busy.windows(2) {
        assert!(w[1].1 <= w[0].1, "busy time regressed with a deeper queue: {busy:?}");
    }
    assert!(busy[2].1 < busy[0].1, "QD=16 should strictly beat QD=1 here: {busy:?}");
}

/// One multi-page transaction per script entry: bump the "district" page
/// 0, rewrite a few pseudo-random satellite pages.
fn txn_script(count: usize) -> Vec<Vec<(u64, u8)>> {
    let mut x = 0x00DD_BA11_u64;
    (0..count)
        .map(|i| {
            let mut pages = vec![(0u64, i as u8 + 1)];
            for _ in 0..2 + (i % 3) {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                pages.push((1 + (x >> 33) % (PAGES - 1), (x >> 17) as u8));
            }
            pages
        })
        .collect()
}

#[test]
fn inflight_crash_recovers_to_committed_prefix_at_qd16() {
    let kind = MethodKind::Pdl { max_diff_size: 64 };
    let opts = gc_heavy_opts();
    let txns = txn_script(8);

    let build = || build_store(FlashChip::new(config(16)), kind, opts).unwrap();
    let load = |store: &mut dyn PageStore| {
        let size = store.logical_page_size();
        let initial: Vec<Vec<u8>> = (0..PAGES).map(|p| vec![p as u8; size]).collect();
        for pid in 0..PAGES {
            store.write_page(pid, &initial[pid as usize]).unwrap();
        }
        store.flush().unwrap();
        initial
    };

    // The database states after each committed prefix of the script.
    let mut store = build();
    let size = store.logical_page_size();
    let mut states: Vec<Vec<Vec<u8>>> = vec![load(store.as_mut())];
    for txn in &txns {
        let mut next = states.last().unwrap().clone();
        for (pid, fill) in txn {
            next[*pid as usize].fill(*fill);
        }
        states.push(next);
    }

    // One transaction through the commit-batch protocol. At QD=16 the
    // staged programs and the commit record are all *submitted*; nothing
    // here drains the queue, so the fault can land with the whole batch
    // still in flight.
    let run_txn =
        |store: &mut dyn PageStore, states: &[Vec<Vec<u8>>], k: usize| -> pdl_core::Result<()> {
            let txn = k as u64 + 1;
            store.txn_reserve(txns[k].len() as u64)?;
            for (pid, _) in &txns[k] {
                let img = states[k + 1][*pid as usize].clone();
                store.txn_stage(*pid, &img, txn)?;
            }
            store.txn_append_commit(txn)?;
            store.txn_finalize()
        };

    // Dry run: count destructive ops so the sweep covers every index.
    let mut store = build();
    load(store.as_mut());
    let before = store.stats();
    for k in 0..txns.len() {
        run_txn(store.as_mut(), &states, k).unwrap();
    }
    let delta = store.stats().delta_since(&before);
    let destructive = delta.total().writes + delta.total().erases;
    assert!(delta.gc.total_ops() > 0, "the txn workload must garbage-collect ({delta:?})");
    assert!(store.stats().pipeline.max_inflight > 1, "the queue was never actually used");

    for budget in 0..=destructive {
        let mut store = build();
        load(store.as_mut());
        store.chip_mut().arm_fault(budget);
        for k in 0..txns.len() {
            match run_txn(store.as_mut(), &states, k) {
                Ok(()) => {}
                Err(e) => {
                    assert!(is_power_loss(&e), "budget {budget}: unexpected error: {e}");
                    break;
                }
            }
        }
        // Power loss: whatever was still queued is gone with the crash —
        // no drain, straight to recovery.
        let mut chip = store.into_chip();
        chip.disarm_fault();
        let mut r = recover_store(chip, kind, opts).unwrap();
        let mut out = vec![0u8; size];
        let mut pages_now: Vec<Vec<u8>> = Vec::with_capacity(PAGES as usize);
        for pid in 0..PAGES {
            r.read_page(pid, &mut out).unwrap();
            pages_now.push(out.clone());
        }
        assert!(
            states.iter().any(|s| s == &pages_now),
            "budget {budget}: recovered state matches no committed prefix"
        );
        assert_eq!(r.stats().pipeline.ordering_violations, 0, "budget {budget}");
    }
}
