//! IPU — the page-based method with **in-place update** (§3 of the paper).
//!
//! A logical page always lives at the same physical page (identity
//! mapping). Overwriting page `p1` in block `b1` therefore requires the
//! four-step cycle the paper describes: "(1) read all the pages in `b1`
//! except `p1`; (2) erase `b1`; (3) write `l1` into `p1`; (4) write all the
//! pages read in Step (1) ... in the corresponding pages in `b1`". The
//! scheme "suffers from severe performance problems and is rarely used" —
//! it is implemented here as the paper's worst-case baseline.
//!
//! The only softening is during initial loading: the first write of a page
//! whose physical slot is still erased programs it directly, with no block
//! cycle (any real FTL knows which pages are free).

use crate::error::CoreError;
use crate::ftl::{make_spare, make_spare_preserving};
use crate::page_store::{ChangeRange, MethodKind, PageStore, StoreOptions};
use crate::Result;
use pdl_flash::{FlashChip, PageKind, Ppn};

/// In-place update page store.
pub struct Ipu {
    chip: FlashChip,
    opts: StoreOptions,
    /// Which frames have been programmed (the FTL's free-page knowledge).
    written: Vec<bool>,
    ts: u64,
    // Counters.
    block_cycles: u64,
    direct_programs: u64,
}

impl Ipu {
    pub fn new(chip: FlashChip, opts: StoreOptions) -> Result<Ipu> {
        opts.validate(&chip)?;
        let frames = opts.num_frames();
        if frames > chip.num_pages() as u64 {
            return Err(CoreError::BadConfig(format!(
                "{frames} frames exceed the chip's {} pages",
                chip.num_pages()
            )));
        }
        Ok(Ipu {
            chip,
            opts,
            written: vec![false; frames as usize],
            ts: 1,
            block_cycles: 0,
            direct_programs: 0,
        })
    }

    /// Recover after a crash: the mapping is the identity, so only the
    /// written-frame bitmap is rebuilt by scanning spare areas.
    pub fn recover(mut chip: FlashChip, opts: StoreOptions) -> Result<Ipu> {
        opts.validate(&chip)?;
        let frames = opts.num_frames();
        let mut written = vec![false; frames as usize];
        let mut max_ts = 0u64;
        chip.set_context(pdl_flash::OpContext::Recovery);
        for f in 0..frames {
            if let Some(info) = chip.read_spare(Ppn(f as u32))? {
                if info.kind == PageKind::Data {
                    written[f as usize] = true;
                    max_ts = max_ts.max(info.ts);
                }
            }
        }
        chip.set_context(pdl_flash::OpContext::User);
        Ok(Ipu { chip, opts, written, ts: max_ts + 1, block_cycles: 0, direct_programs: 0 })
    }

    /// Rewrite `block` in place with the target frames replaced by new
    /// data. `targets` maps in-block page index -> new frame data.
    fn block_cycle(
        &mut self,
        block: pdl_flash::BlockId,
        targets: &[(u32, &[u8])],
        ts: u64,
    ) -> Result<()> {
        let g = self.chip.geometry();
        // Step 1: read all (written) pages in the block except the targets.
        let mut buf = pdl_flash::PageBuf::for_chip(&self.chip);
        let mut preserved: Vec<(u32, Vec<u8>, pdl_flash::SpareInfo)> = Vec::new();
        for idx in 0..g.pages_per_block {
            if targets.iter().any(|(t, _)| *t == idx) {
                continue;
            }
            let ppn = g.page_at(block, idx);
            let frame = ppn.0 as usize;
            let frame_written = frame < self.written.len() && self.written[frame];
            if !frame_written {
                continue;
            }
            self.chip.read_full(ppn, &mut buf)?;
            let info = buf
                .spare_info()
                .ok_or_else(|| CoreError::Corruption(format!("unreadable spare at {ppn}")))?;
            if self.opts.verify_checksums {
                // Count the detection; the page is preserved either way, and
                // re-programming it below with its *original* checksum keeps
                // the damage detectable instead of laundering it.
                let _ = self.chip.verify_read(ppn, &buf.data);
            }
            preserved.push((idx, buf.data.clone(), info));
        }
        // Step 2: erase the block.
        self.chip.erase_block(block)?;
        // Step 3: write the updated logical page(s).
        for (idx, data) in targets {
            let ppn = g.page_at(block, *idx);
            let spare = make_spare(g.spare_size, PageKind::Data, ppn.0 as u64, ts, data);
            self.chip.program_page(ppn, data, &spare)?;
        }
        // Step 4: write back the preserved pages, carrying their original
        // spare info (including the stored checksum) forward verbatim.
        for (idx, data, info) in preserved {
            let ppn = g.page_at(block, idx);
            let spare = make_spare_preserving(g.spare_size, &info);
            self.chip.program_page(ppn, &data, &spare)?;
        }
        self.block_cycles += 1;
        Ok(())
    }
}

impl PageStore for Ipu {
    fn options(&self) -> &StoreOptions {
        &self.opts
    }

    fn read_page(&mut self, pid: u64, out: &mut [u8]) -> Result<()> {
        self.opts.check_pid(pid)?;
        let ds = self.chip.geometry().data_size;
        self.opts.check_page_buf(ds, out)?;
        let k = self.opts.frames_per_page as u64;
        for j in 0..k {
            let frame = (pid * k + j) as usize;
            let slice = &mut out[(j as usize) * ds..(j as usize + 1) * ds];
            if !self.written[frame] {
                slice.fill(0);
            } else if self.opts.verify_checksums {
                // Identity mapping: there is no redundant copy of a frame, so
                // a checksum failure is reported, never repaired or served.
                match self.chip.read_data_verified(Ppn(frame as u32), slice) {
                    Ok(()) => {}
                    Err(pdl_flash::FlashError::ChecksumMismatch(p)) => {
                        slice.fill(0);
                        return Err(CoreError::PageCorrupt { pid, ppn: p.0 });
                    }
                    Err(e) => return Err(e.into()),
                }
            } else {
                self.chip.read_data(Ppn(frame as u32), slice)?;
            }
        }
        Ok(())
    }

    /// Read-ahead: issue the written frame reads without waiting.
    fn prefetch(&mut self, pid: u64) -> Result<()> {
        self.opts.check_pid(pid)?;
        let k = self.opts.frames_per_page as u64;
        for j in 0..k {
            let frame = (pid * k + j) as usize;
            if self.written[frame] {
                self.chip.prefetch_page(Ppn(frame as u32))?;
            }
        }
        Ok(())
    }

    fn apply_update(&mut self, _pid: u64, _page: &[u8], _changes: &[ChangeRange]) -> Result<()> {
        Ok(())
    }

    fn evict_page(&mut self, pid: u64, page: &[u8]) -> Result<()> {
        self.opts.check_pid(pid)?;
        let g = self.chip.geometry();
        let ds = g.data_size;
        self.opts.check_page_buf(ds, page)?;
        let k = self.opts.frames_per_page as usize;
        let first_frame = pid as usize * k;
        let ts = self.ts;
        self.ts += 1;

        // Group the page's frames by the physical block they live in.
        let mut i = 0;
        while i < k {
            let frame = first_frame + i;
            let block = g.block_of(Ppn(frame as u32));
            let mut group: Vec<(u32, &[u8])> = Vec::new();
            let mut any_written = false;
            while i < k {
                let f = first_frame + i;
                if g.block_of(Ppn(f as u32)) != block {
                    break;
                }
                group.push((g.page_in_block(Ppn(f as u32)), &page[i * ds..(i + 1) * ds]));
                any_written |= self.written[f];
                i += 1;
            }
            if any_written {
                self.block_cycle(block, &group, ts)?;
            } else {
                // Loading path: target slots are still erased.
                for (idx, data) in &group {
                    let ppn = g.page_at(block, *idx);
                    let spare = make_spare(g.spare_size, PageKind::Data, ppn.0 as u64, ts, data);
                    self.chip.program_page(ppn, data, &spare)?;
                    self.direct_programs += 1;
                }
            }
            for (idx, _) in &group {
                self.written[g.page_at(block, *idx).0 as usize] = true;
            }
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        Ok(())
    }

    fn chip(&self) -> &FlashChip {
        &self.chip
    }

    fn chip_mut(&mut self) -> &mut FlashChip {
        &mut self.chip
    }

    fn name(&self) -> String {
        MethodKind::Ipu.label()
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![("block_cycles", self.block_cycles), ("direct_programs", self.direct_programs)]
    }

    fn into_chips(self: Box<Self>) -> Vec<FlashChip> {
        vec![self.chip]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdl_flash::FlashConfig;

    fn store(pages: u64) -> Ipu {
        Ipu::new(FlashChip::new(FlashConfig::tiny()), StoreOptions::new(pages)).unwrap()
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut s = store(16);
        let p = vec![0x3Cu8; s.logical_page_size()];
        s.write_page(7, &p).unwrap();
        let mut out = vec![0u8; p.len()];
        s.read_page(7, &mut out).unwrap();
        assert_eq!(out, p);
    }

    #[test]
    fn first_write_is_one_program() {
        let mut s = store(16);
        let p = vec![1u8; s.logical_page_size()];
        let before = s.chip().stats().total();
        s.write_page(0, &p).unwrap();
        let d = s.chip().stats().total() - before;
        assert_eq!(d.writes, 1);
        assert_eq!(d.erases, 0);
    }

    #[test]
    fn overwrite_costs_a_block_cycle() {
        // Tiny geometry: 8 pages per block. Fill block 0 entirely, then
        // overwrite one page: 7 reads + 1 erase + 8 writes.
        let mut s = store(16);
        let ds = s.logical_page_size();
        for pid in 0..8u64 {
            s.write_page(pid, &vec![pid as u8; ds]).unwrap();
        }
        let before = s.chip().stats().total();
        s.write_page(3, &vec![0x99u8; ds]).unwrap();
        let d = s.chip().stats().total() - before;
        assert_eq!(d.reads, 7);
        assert_eq!(d.erases, 1);
        assert_eq!(d.writes, 8);
        // All other pages survive the cycle.
        for pid in 0..8u64 {
            let mut out = vec![0u8; ds];
            s.read_page(pid, &mut out).unwrap();
            let expect = if pid == 3 { 0x99 } else { pid as u8 };
            assert!(out.iter().all(|&b| b == expect), "pid {pid}");
        }
    }

    #[test]
    fn partially_filled_block_cycle_reads_fewer_pages() {
        let mut s = store(16);
        let ds = s.logical_page_size();
        // Only 2 pages of block 0 written.
        s.write_page(0, &vec![1u8; ds]).unwrap();
        s.write_page(1, &vec![2u8; ds]).unwrap();
        let before = s.chip().stats().total();
        s.write_page(0, &vec![3u8; ds]).unwrap();
        let d = s.chip().stats().total() - before;
        assert_eq!(d.reads, 1); // only page 1 needs preserving
        assert_eq!(d.erases, 1);
        assert_eq!(d.writes, 2);
    }

    #[test]
    fn multi_frame_page_in_one_block_is_one_cycle() {
        let chip = FlashChip::new(FlashConfig::tiny());
        let mut s = Ipu::new(chip, StoreOptions::new(4).with_frames_per_page(4)).unwrap();
        let ds = s.chip().geometry().data_size;
        let p1 = vec![1u8; 4 * ds];
        // Fill block 0: pages 0 and 1 (4 frames each).
        s.write_page(0, &p1).unwrap();
        s.write_page(1, &vec![2u8; 4 * ds]).unwrap();
        let before = s.chip().stats().total();
        s.write_page(0, &vec![7u8; 4 * ds]).unwrap();
        let d = s.chip().stats().total() - before;
        // 4 preserved reads + erase + 8 writes, all in one cycle.
        assert_eq!(d.reads, 4);
        assert_eq!(d.erases, 1);
        assert_eq!(d.writes, 8);
        let mut out = vec![0u8; 4 * ds];
        s.read_page(1, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 2));
    }

    #[test]
    fn recovery_restores_written_bitmap() {
        let mut s = store(16);
        let ds = s.logical_page_size();
        s.write_page(2, &vec![0xAB; ds]).unwrap();
        s.write_page(9, &vec![0xCD; ds]).unwrap();
        let chip = Box::new(s).into_chip();
        let mut r = Ipu::recover(chip, StoreOptions::new(16)).unwrap();
        let mut out = vec![0u8; ds];
        r.read_page(2, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0xAB));
        r.read_page(3, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));
        // Still writable after recovery.
        r.write_page(9, &vec![0xEE; ds]).unwrap();
        r.read_page(9, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0xEE));
    }
}
