//! The page-differential codec.
//!
//! A *differential* is "the difference between the original page in the
//! flash memory and the up-to-date page in memory" (§1) with the on-flash
//! structure `<physical page ID, creation time stamp, [offset, length,
//! changed data]+>` (§4.2).
//!
//! A differential page's data area holds a sequence of encoded records;
//! unwritten space stays erased (0xFF), so records are length-prefixed
//! with a value that can never be `0xFFFF`.
//!
//! **Codec v2** extends the v1 layout with a record-kind byte and two
//! transactional additions (the `pdl-txn` subsystem): every differential
//! carries the id of the transaction that produced it, and a second
//! record type — the *commit record* — makes a transaction's
//! differentials durable atomically: recovery discards differentials
//! whose transaction left no commit record behind (aborted, or torn by a
//! crash mid-commit).
//!
//! **Codec v3** adds the *epoch record*: one record proving the durable
//! commit of a whole batch of transactions, encoded as explicit inclusive
//! txn-id ranges. Group commit appends one epoch record per batch instead
//! of one commit record per transaction, and GC compaction coalesces
//! surviving commit records into epoch records, so long-lived committed
//! tags stop littering every compaction pass. The ranges are built only
//! from ids whose commit is being proven — never a blanket claim over an
//! id interval — so a torn transaction whose id happens to fall between
//! two committed ids is never falsely proven committed.
//!
//! ```text
//! record := body_len : u16 LE    (length of everything after this field)
//!           kind     : u8        (0x01 differential, 0x02 commit record,
//!                                 0x03 epoch record)
//! diff   := pid      : u64 LE    (logical page the differential belongs to)
//!           ts       : u64 LE    (creation time stamp)
//!           txn      : u64 LE    (owning transaction; NO_TXN = none)
//!           run_count: u16 LE
//!           runs     : run*
//! run    := offset : u16 LE, len : u16 LE, bytes[len]
//! commit := txn : u64 LE, ts : u64 LE
//! epoch  := ts : u64 LE, n_ranges : u16 LE, (lo u64, hi u64)*  (inclusive)
//! ```
//!
//! Unlike an update log, which records one update command, a differential
//! always describes the *net* difference against the base page: the paper's
//! example `..aaaaaa.. -> ..bbbbba.. -> ..bcccba..` produces the single
//! differential `bcccb`, not the two logs `bbbbb` and `ccc`.

use crate::error::CoreError;
use crate::Result;

/// Re-export of the "no transaction" sentinel (the erased spare value).
pub use pdl_flash::NO_TXN;

const KIND_DIFF: u8 = 0x01;
const KIND_COMMIT: u8 = 0x02;
const KIND_EPOCH: u8 = 0x03;

/// A contiguous changed byte range.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiffRun {
    pub offset: u32,
    pub bytes: Vec<u8>,
}

impl DiffRun {
    /// Encoded size of this run: offset + length fields + payload.
    pub fn encoded_len(&self) -> usize {
        4 + self.bytes.len()
    }
}

/// A differential of one logical page.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Differential {
    pub pid: u64,
    pub ts: u64,
    /// Transaction that produced this differential; [`NO_TXN`] for
    /// auto-committed (non-transactional) reflections. A tagged
    /// differential is only valid after recovery when its transaction's
    /// commit record is durable.
    pub txn: u64,
    pub runs: Vec<DiffRun>,
}

/// A transaction commit record: its durable presence in the differential
/// stream is the commit point that makes every differential (and Case-3
/// base page) tagged with `txn` valid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommitRecord {
    pub txn: u64,
    pub ts: u64,
}

impl CommitRecord {
    /// Total encoded size, including the length prefix and kind byte.
    pub const ENCODED_LEN: usize = 2 + 1 + 8 + 8;

    /// Encode into `out` (must hold at least [`Self::ENCODED_LEN`] bytes).
    pub fn encode(&self, out: &mut [u8]) -> Result<usize> {
        if out.len() < Self::ENCODED_LEN {
            return Err(CoreError::BadPageSize { expected: Self::ENCODED_LEN, got: out.len() });
        }
        out[0..2].copy_from_slice(&((Self::ENCODED_LEN - 2) as u16).to_le_bytes());
        out[2] = KIND_COMMIT;
        out[3..11].copy_from_slice(&self.txn.to_le_bytes());
        out[11..19].copy_from_slice(&self.ts.to_le_bytes());
        Ok(Self::ENCODED_LEN)
    }
}

/// An epoch record: proves the durable commit of every transaction id
/// inside its inclusive ranges, exactly as if each had its own
/// [`CommitRecord`]. Ranges are built from explicitly enumerated
/// committed ids, so membership is an exact commit proof.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EpochRecord {
    pub ts: u64,
    /// Inclusive `(lo, hi)` txn-id ranges, ascending and non-overlapping.
    pub ranges: Vec<(u64, u64)>,
}

/// Fixed epoch-record overhead: length prefix, kind, ts, range count.
pub const EPOCH_HEADER: usize = 2 + 1 + 8 + 2;

impl EpochRecord {
    /// Build an epoch record from a set of committed transaction ids,
    /// coalescing adjacent ids into ranges. Duplicates are tolerated.
    pub fn from_ids(ts: u64, ids: &[u64]) -> EpochRecord {
        let mut sorted: Vec<u64> = ids.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        for id in sorted {
            match ranges.last_mut() {
                Some((_, hi)) if *hi + 1 == id => *hi = id,
                _ => ranges.push((id, id)),
            }
        }
        EpochRecord { ts, ranges }
    }

    /// True when `txn` is proven committed by this record.
    pub fn contains(&self, txn: u64) -> bool {
        self.ranges
            .binary_search_by(|&(lo, hi)| {
                if txn < lo {
                    std::cmp::Ordering::Greater
                } else if txn > hi {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// Every member transaction id, expanded from the ranges.
    pub fn ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.ranges.iter().flat_map(|&(lo, hi)| lo..=hi)
    }

    /// Number of member transaction ids.
    pub fn len(&self) -> usize {
        self.ranges.iter().map(|&(lo, hi)| (hi - lo + 1) as usize).sum()
    }

    /// True when the record proves no commits at all.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Total encoded size of the record, including the length prefix.
    pub fn encoded_len(&self) -> usize {
        EPOCH_HEADER + 16 * self.ranges.len()
    }

    /// Encode into `out` (must hold at least `encoded_len()` bytes).
    pub fn encode(&self, out: &mut [u8]) -> Result<usize> {
        let need = self.encoded_len();
        if out.len() < need {
            return Err(CoreError::BadPageSize { expected: need, got: out.len() });
        }
        let body_len = need - 2;
        debug_assert!(body_len < u16::MAX as usize, "epoch record body too large");
        out[0..2].copy_from_slice(&(body_len as u16).to_le_bytes());
        out[2] = KIND_EPOCH;
        out[3..11].copy_from_slice(&self.ts.to_le_bytes());
        out[11..13].copy_from_slice(&(self.ranges.len() as u16).to_le_bytes());
        let mut at = EPOCH_HEADER;
        for &(lo, hi) in &self.ranges {
            out[at..at + 8].copy_from_slice(&lo.to_le_bytes());
            out[at + 8..at + 16].copy_from_slice(&hi.to_le_bytes());
            at += 16;
        }
        debug_assert_eq!(at, need);
        Ok(need)
    }
}

/// One record of a differential page's data area.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PageRecord {
    Diff(Differential),
    Commit(CommitRecord),
    Epoch(EpochRecord),
}

/// Fixed per-differential overhead: length prefix, kind, pid, ts, txn,
/// run count.
pub const RECORD_HEADER: usize = 2 + 1 + 8 + 8 + 8 + 2;

impl Differential {
    /// Total encoded size of the record, including the length prefix.
    pub fn encoded_len(&self) -> usize {
        RECORD_HEADER + self.runs.iter().map(DiffRun::encoded_len).sum::<usize>()
    }

    /// Total changed payload bytes (excluding metadata).
    pub fn payload_len(&self) -> usize {
        self.runs.iter().map(|r| r.bytes.len()).sum()
    }

    /// True when the differential records no change.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Tag the differential with its owning transaction.
    pub fn with_txn(mut self, txn: u64) -> Differential {
        self.txn = txn;
        self
    }

    /// Compute the differential between `base` and `new` (equal lengths).
    ///
    /// Runs separated by at most `coalesce_gap` unchanged bytes are merged
    /// (including the gap bytes): each run costs 4 bytes of metadata, so
    /// small gaps are cheaper to carry than to split on.
    pub fn compute(
        pid: u64,
        ts: u64,
        base: &[u8],
        new: &[u8],
        coalesce_gap: usize,
    ) -> Differential {
        debug_assert_eq!(base.len(), new.len());
        let mut runs: Vec<DiffRun> = Vec::new();
        let mut i = 0usize;
        let n = base.len();
        while i < n {
            if base[i] == new[i] {
                i += 1;
                continue;
            }
            // Start of a changed run; extend while changed, bridging gaps
            // of up to `coalesce_gap` unchanged bytes.
            let start = i;
            let mut end = i + 1;
            let mut probe = end;
            loop {
                // Extend over changed bytes.
                while probe < n && base[probe] != new[probe] {
                    probe += 1;
                    end = probe;
                }
                // Try to bridge a gap.
                let gap_start = probe;
                while probe < n && probe - gap_start < coalesce_gap && base[probe] == new[probe] {
                    probe += 1;
                }
                if probe < n && base[probe] != new[probe] && probe > gap_start {
                    // Changed data resumes within the gap budget: keep going.
                    continue;
                }
                break;
            }
            runs.push(DiffRun { offset: start as u32, bytes: new[start..end].to_vec() });
            i = end;
        }
        Differential { pid, ts, txn: NO_TXN, runs }
    }

    /// Apply this differential to `page` (the base image), producing the
    /// up-to-date logical page in place.
    pub fn apply(&self, page: &mut [u8]) {
        for run in &self.runs {
            let start = run.offset as usize;
            page[start..start + run.bytes.len()].copy_from_slice(&run.bytes);
        }
    }

    /// Encode into `out`, which must have at least `encoded_len()` bytes.
    /// Returns the number of bytes written.
    pub fn encode(&self, out: &mut [u8]) -> Result<usize> {
        let need = self.encoded_len();
        if out.len() < need {
            return Err(CoreError::BadPageSize { expected: need, got: out.len() });
        }
        let body_len = need - 2;
        debug_assert!(body_len < u16::MAX as usize, "differential body too large");
        out[0..2].copy_from_slice(&(body_len as u16).to_le_bytes());
        out[2] = KIND_DIFF;
        out[3..11].copy_from_slice(&self.pid.to_le_bytes());
        out[11..19].copy_from_slice(&self.ts.to_le_bytes());
        out[19..27].copy_from_slice(&self.txn.to_le_bytes());
        out[27..29].copy_from_slice(&(self.runs.len() as u16).to_le_bytes());
        let mut at = RECORD_HEADER;
        for run in &self.runs {
            out[at..at + 2].copy_from_slice(&(run.offset as u16).to_le_bytes());
            out[at + 2..at + 4].copy_from_slice(&(run.bytes.len() as u16).to_le_bytes());
            out[at + 4..at + 4 + run.bytes.len()].copy_from_slice(&run.bytes);
            at += 4 + run.bytes.len();
        }
        debug_assert_eq!(at, need);
        Ok(need)
    }

    /// Decode one record starting at `bytes[0]`. Returns the record and
    /// its encoded length, or `None` at a terminator (erased space).
    pub fn decode(bytes: &[u8]) -> Result<Option<(PageRecord, usize)>> {
        if bytes.len() < 3 {
            return Ok(None);
        }
        let body_len = u16::from_le_bytes([bytes[0], bytes[1]]) as usize;
        if body_len == 0xFFFF {
            return Ok(None); // erased space: no more records
        }
        if bytes.len() < 2 + body_len || body_len < 1 {
            return Err(CoreError::Corruption(format!(
                "differential record body of {body_len} bytes does not fit"
            )));
        }
        let end = 2 + body_len;
        match bytes[2] {
            KIND_COMMIT => {
                if body_len != CommitRecord::ENCODED_LEN - 2 {
                    return Err(CoreError::Corruption(format!(
                        "commit record body of {body_len} bytes has the wrong size"
                    )));
                }
                let txn = u64::from_le_bytes(bytes[3..11].try_into().unwrap());
                let ts = u64::from_le_bytes(bytes[11..19].try_into().unwrap());
                Ok(Some((PageRecord::Commit(CommitRecord { txn, ts }), end)))
            }
            KIND_EPOCH => {
                if body_len < EPOCH_HEADER - 2 {
                    return Err(CoreError::Corruption(format!(
                        "epoch record body of {body_len} bytes is truncated"
                    )));
                }
                let ts = u64::from_le_bytes(bytes[3..11].try_into().unwrap());
                let n_ranges = u16::from_le_bytes(bytes[11..13].try_into().unwrap()) as usize;
                if body_len != EPOCH_HEADER - 2 + 16 * n_ranges {
                    return Err(CoreError::Corruption(format!(
                        "epoch record body of {body_len} bytes does not match {n_ranges} ranges"
                    )));
                }
                let mut ranges = Vec::with_capacity(n_ranges);
                let mut at = EPOCH_HEADER;
                for _ in 0..n_ranges {
                    let lo = u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
                    let hi = u64::from_le_bytes(bytes[at + 8..at + 16].try_into().unwrap());
                    if lo > hi {
                        return Err(CoreError::Corruption(format!(
                            "epoch record range {lo}..{hi} is inverted"
                        )));
                    }
                    ranges.push((lo, hi));
                    at += 16;
                }
                Ok(Some((PageRecord::Epoch(EpochRecord { ts, ranges }), end)))
            }
            KIND_DIFF => {
                if body_len < RECORD_HEADER - 2 {
                    return Err(CoreError::Corruption(format!(
                        "differential record body of {body_len} bytes is truncated"
                    )));
                }
                let pid = u64::from_le_bytes(bytes[3..11].try_into().unwrap());
                let ts = u64::from_le_bytes(bytes[11..19].try_into().unwrap());
                let txn = u64::from_le_bytes(bytes[19..27].try_into().unwrap());
                let run_count = u16::from_le_bytes(bytes[27..29].try_into().unwrap()) as usize;
                let mut runs = Vec::with_capacity(run_count);
                let mut at = RECORD_HEADER;
                for _ in 0..run_count {
                    if at + 4 > end {
                        return Err(CoreError::Corruption(
                            "differential run header truncated".into(),
                        ));
                    }
                    let offset = u16::from_le_bytes(bytes[at..at + 2].try_into().unwrap()) as u32;
                    let len =
                        u16::from_le_bytes(bytes[at + 2..at + 4].try_into().unwrap()) as usize;
                    if at + 4 + len > end {
                        return Err(CoreError::Corruption(
                            "differential run payload truncated".into(),
                        ));
                    }
                    runs.push(DiffRun { offset, bytes: bytes[at + 4..at + 4 + len].to_vec() });
                    at += 4 + len;
                }
                if at != end {
                    return Err(CoreError::Corruption(
                        "differential record has trailing bytes".into(),
                    ));
                }
                Ok(Some((PageRecord::Diff(Differential { pid, ts, txn, runs }), end)))
            }
            other => {
                Err(CoreError::Corruption(format!("unknown differential record kind {other:#x}")))
            }
        }
    }

    /// Find the differential for `pid` in a differential page's data area
    /// without materialising the other records (hot read path): records
    /// whose kind or pid does not match are skipped by their length
    /// prefix.
    pub fn find_in_page(data: &[u8], pid: u64) -> Result<Option<Differential>> {
        let mut at = 0;
        while at + 3 <= data.len() {
            let body_len = u16::from_le_bytes([data[at], data[at + 1]]) as usize;
            if body_len == 0xFFFF {
                break; // erased space
            }
            if at + 2 + body_len > data.len() || body_len < 1 {
                return Err(CoreError::Corruption(format!(
                    "differential record body of {body_len} bytes does not fit"
                )));
            }
            if data[at + 2] == KIND_DIFF && body_len >= RECORD_HEADER - 2 {
                let rec_pid = u64::from_le_bytes(data[at + 3..at + 11].try_into().unwrap());
                if rec_pid == pid {
                    return Ok(match Differential::decode(&data[at..])? {
                        Some((PageRecord::Diff(d), _)) => Some(d),
                        _ => None,
                    });
                }
            }
            at += 2 + body_len;
        }
        Ok(None)
    }

    /// Parse every record in a differential page's data area.
    pub fn parse_page(data: &[u8]) -> Result<Vec<PageRecord>> {
        let mut out = Vec::new();
        let mut at = 0;
        while at < data.len() {
            match Differential::decode(&data[at..])? {
                Some((rec, used)) => {
                    out.push(rec);
                    at += used;
                }
                None => break,
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diff_of(base: &[u8], new: &[u8], gap: usize) -> Differential {
        Differential::compute(7, 42, base, new, gap)
    }

    #[test]
    fn identical_pages_have_empty_diff() {
        let page = vec![3u8; 64];
        let d = diff_of(&page, &page, 8);
        assert!(d.is_empty());
        assert_eq!(d.encoded_len(), RECORD_HEADER);
        assert_eq!(d.txn, NO_TXN);
    }

    #[test]
    fn single_change_single_run() {
        let base = vec![0u8; 64];
        let mut new = base.clone();
        new[10..20].fill(9);
        let d = diff_of(&base, &new, 0);
        assert_eq!(d.runs.len(), 1);
        assert_eq!(d.runs[0].offset, 10);
        assert_eq!(d.runs[0].bytes, vec![9u8; 10]);
        assert_eq!(d.payload_len(), 10);
    }

    #[test]
    fn paper_example_net_difference() {
        // ..aaaaaa.. -> ..bbbbba.. -> ..bcccba..: the differential contains
        // only the net change `bcccb` against the original.
        let base = b"xxaaaaaaxx".to_vec();
        let v2 = b"xxbcccbaxx".to_vec();
        let d = diff_of(&base, &v2, 0);
        assert_eq!(d.runs.len(), 1);
        assert_eq!(d.runs[0].offset, 2);
        assert_eq!(d.runs[0].bytes, b"bcccb".to_vec());
    }

    #[test]
    fn gap_coalescing_merges_close_runs() {
        let base = vec![0u8; 32];
        let mut new = base.clone();
        new[4] = 1;
        new[7] = 1; // gap of 2 unchanged bytes
        let split = diff_of(&base, &new, 0);
        assert_eq!(split.runs.len(), 2);
        let merged = diff_of(&base, &new, 2);
        assert_eq!(merged.runs.len(), 1);
        assert_eq!(merged.runs[0].offset, 4);
        assert_eq!(merged.runs[0].bytes.len(), 4);
        // Merged costs less metadata overall.
        assert!(merged.encoded_len() <= split.encoded_len());
    }

    #[test]
    fn apply_reconstructs_new_page() {
        let base: Vec<u8> = (0..=255u8).collect();
        let mut new = base.clone();
        new[3..9].fill(0xAA);
        new[100] = 0;
        new[200..240].fill(0x55);
        for gap in [0, 2, 8, 64] {
            let d = diff_of(&base, &new, gap);
            let mut rebuilt = base.clone();
            d.apply(&mut rebuilt);
            assert_eq!(rebuilt, new, "gap={gap}");
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let base = vec![1u8; 128];
        let mut new = base.clone();
        new[0] = 2;
        new[60..70].fill(3);
        new[127] = 4;
        let d = diff_of(&base, &new, 4).with_txn(17);
        let mut buf = vec![0xFFu8; 256];
        let n = d.encode(&mut buf).unwrap();
        assert_eq!(n, d.encoded_len());
        let (back, used) = Differential::decode(&buf).unwrap().unwrap();
        assert_eq!(used, n);
        assert_eq!(back, PageRecord::Diff(d));
    }

    #[test]
    fn commit_record_round_trips() {
        let c = CommitRecord { txn: 0xAB, ts: 1234 };
        let mut buf = vec![0xFFu8; 64];
        let n = c.encode(&mut buf).unwrap();
        assert_eq!(n, CommitRecord::ENCODED_LEN);
        let (back, used) = Differential::decode(&buf).unwrap().unwrap();
        assert_eq!(used, n);
        assert_eq!(back, PageRecord::Commit(c));
    }

    #[test]
    fn epoch_record_round_trips() {
        let e = EpochRecord::from_ids(77, &[5, 3, 4, 9, 3, 12, 13]);
        assert_eq!(e.ranges, vec![(3, 5), (9, 9), (12, 13)]);
        assert_eq!(e.len(), 6);
        for id in [3, 4, 5, 9, 12, 13] {
            assert!(e.contains(id), "id {id}");
        }
        for id in [0, 2, 6, 8, 10, 11, 14, u64::MAX] {
            assert!(!e.contains(id), "id {id}");
        }
        assert_eq!(e.ids().collect::<Vec<_>>(), vec![3, 4, 5, 9, 12, 13]);
        let mut buf = vec![0xFFu8; 128];
        let n = e.encode(&mut buf).unwrap();
        assert_eq!(n, e.encoded_len());
        let (back, used) = Differential::decode(&buf).unwrap().unwrap();
        assert_eq!(used, n);
        assert_eq!(back, PageRecord::Epoch(e));
    }

    #[test]
    fn epoch_never_proves_a_gap_id() {
        // The motivating safety property: a torn transaction whose id
        // falls between two committed ids must not be proven committed.
        let e = EpochRecord::from_ids(1, &[10, 12]);
        assert_eq!(e.ranges, vec![(10, 10), (12, 12)]);
        assert!(!e.contains(11));
    }

    #[test]
    fn epoch_decode_rejects_bad_shapes() {
        let e = EpochRecord::from_ids(1, &[1, 2, 3]);
        let mut buf = vec![0xFFu8; 64];
        let n = e.encode(&mut buf).unwrap();
        // Claim one more range than the body holds.
        let mut wrong = buf.clone();
        wrong[11..13].copy_from_slice(&2u16.to_le_bytes());
        assert!(Differential::decode(&wrong[..n]).is_err());
        // Inverted range.
        let mut inverted = buf.clone();
        inverted[EPOCH_HEADER..EPOCH_HEADER + 8].copy_from_slice(&9u64.to_le_bytes());
        assert!(Differential::decode(&inverted[..n]).is_err());
    }

    #[test]
    fn parse_page_reads_mixed_records_until_erased() {
        let base = vec![0u8; 64];
        let mut new1 = base.clone();
        new1[5] = 1;
        let mut new2 = base.clone();
        new2[50..60].fill(2);
        let d1 = Differential::compute(1, 10, &base, &new1, 8).with_txn(5);
        let d2 = Differential::compute(2, 11, &base, &new2, 8);
        let c = CommitRecord { txn: 5, ts: 12 };
        let mut page = vec![0xFFu8; 512];
        let n1 = d1.encode(&mut page).unwrap();
        let n2 = d2.encode(&mut page[n1..]).unwrap();
        let _n3 = c.encode(&mut page[n1 + n2..]).unwrap();
        let parsed = Differential::parse_page(&page).unwrap();
        assert_eq!(
            parsed,
            vec![PageRecord::Diff(d1.clone()), PageRecord::Diff(d2.clone()), PageRecord::Commit(c)]
        );
        // find_in_page skips the commit record and the foreign pid.
        assert_eq!(Differential::find_in_page(&page, 2).unwrap(), Some(d2));
        assert_eq!(Differential::find_in_page(&page, 9).unwrap(), None);
    }

    #[test]
    fn decode_rejects_truncated_records() {
        let base = vec![0u8; 64];
        let mut new = base.clone();
        new[5..30].fill(7);
        let d = diff_of(&base, &new, 0);
        let mut buf = vec![0xFFu8; 128];
        let n = d.encode(&mut buf).unwrap();
        // Chop the record body.
        let truncated = &buf[..n - 3];
        assert!(Differential::decode(truncated).is_err());
    }

    #[test]
    fn decode_rejects_unknown_kinds() {
        let mut buf = vec![0xFFu8; 32];
        buf[0..2].copy_from_slice(&8u16.to_le_bytes());
        buf[2] = 0x7E; // no such record kind
        assert!(Differential::decode(&buf).is_err());
    }

    #[test]
    fn empty_page_parses_to_nothing() {
        let page = vec![0xFFu8; 256];
        assert!(Differential::parse_page(&page).unwrap().is_empty());
    }

    #[test]
    fn whole_page_change_diff_exceeds_page() {
        // A fully-changed 2048-byte page yields a differential strictly
        // larger than the page itself - the Case 3 trigger.
        let base = vec![0u8; 2048];
        let new = vec![1u8; 2048];
        let d = diff_of(&base, &new, 8);
        assert!(d.encoded_len() > 2048);
        assert_eq!(d.payload_len(), 2048);
    }
}
