//! Shared Flash Translation Layer machinery: out-place page allocation,
//! per-block accounting and pluggable garbage-collection victim selection.
//!
//! OPU and PDL both write pages *out-place*: an updated page goes to a
//! freshly allocated physical page and the stale copy is marked obsolete.
//! The [`BlockManager`] hands out pages sequentially from one *active*
//! block per allocation stream, keeps `reserve` blocks free so garbage
//! collection can always relocate a victim's valid pages, and picks
//! victims according to the configured [`GcPolicy`]:
//!
//! * [`GcPolicy::Greedy`] — most reclaimable pages (the paper's setup);
//! * [`GcPolicy::CostBenefit`] — age × utilisation score, `(1-u)·age/(1+u)`
//!   (Rosenblum's LFS cleaner; Dayan & Bonnet §3 evaluate it for
//!   page-mapping FTLs);
//! * [`GcPolicy::HotCold`] — greedy victims plus *data separation*: a
//!   second, cold allocation stream keeps rarely-updated pages (and GC
//!   migrations of them) out of the blocks that hot pages churn through,
//!   so victim blocks tend towards all-hot (cheap to collect) or all-cold
//!   (rarely collected);
//! * [`GcPolicy::WearAware`] — greedy with wear tie-breaking (ablation).

use crate::error::CoreError;
use crate::Result;
use pdl_flash::{BlockId, Ppn};

/// Lifecycle state of a block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockState {
    /// Fully erased, in the free pool.
    Free,
    /// Currently receiving allocations.
    Active,
    /// Fully allocated (or retired after recovery); a GC candidate.
    Used,
    /// Reserved for out-of-band use (checkpoint root region): never
    /// allocated from, never a GC victim.
    Reserved,
    /// Retired after an erase failure (bad-block management): never
    /// allocated from, never a GC victim.
    Bad,
}

/// Outcome of an allocation attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocOutcome {
    Page(Ppn),
    /// The free pool dropped to the reserve: the caller must garbage
    /// collect before retrying with `gc_mode = false`.
    NeedsGc,
}

/// Which allocation stream a page is written through. Only the
/// [`GcPolicy::HotCold`] policy keeps the two streams on separate active
/// blocks; every other policy folds `Cold` into `Hot`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocStream {
    /// Frequently-updated pages and differential pages.
    Hot,
    /// Rarely-updated pages and GC migrations of them.
    Cold,
}

/// Per-block allocator with pluggable GC victim selection.
#[derive(Clone, Debug)]
pub struct BlockManager {
    pages_per_block: u32,
    reserve: u32,
    states: Vec<BlockState>,
    free: std::collections::VecDeque<u32>,
    active: Option<(u32, u32)>, // hot stream: (block, next in-block index)
    /// Cold-stream active block; `None` unless the policy is `HotCold`
    /// and a cold allocation has happened since the last block turnover.
    active_cold: Option<(u32, u32)>,
    /// Pages allocated (and presumed programmed) per block.
    written: Vec<u32>,
    /// Pages marked obsolete per block.
    obsolete: Vec<u32>,
    /// Victim-selection policy.
    policy: GcPolicy,
    /// Erase count per block, mirrored here for the wear-aware policy.
    erases: Vec<u64>,
    /// Global allocation sequence number (the cost-benefit clock).
    alloc_seq: u64,
    /// `alloc_seq` of the most recent allocation into each block: its
    /// "last write time" for the cost-benefit age term.
    last_alloc: Vec<u64>,
    /// Hot-stream allocations per block since its last erase: the block
    /// hotness gauge the hot/cold policy uses to break victim ties
    /// (hotter block first — its valid pages are about to obsolete).
    hot_allocs: Vec<u32>,
    /// Retention-ledger pins per block: live spilled pre-image pages an
    /// active read view may still resolve. Pinned pages are valid pages —
    /// GC relocates rather than destroys them — but collecting a block
    /// dense in them churns cold data for no reclaim benefit, so victim
    /// selection deprioritises such blocks (see
    /// [`Self::pick_victim_excluding`]).
    retained: Vec<u32>,
    /// Times victim selection steered away from a retention-dense block
    /// that plain policy scoring would have picked (the
    /// `retention.pinned_skips` gauge). A `Cell` so the read-only
    /// selection path can record the event.
    retention_skips: std::cell::Cell<u64>,
}

/// Garbage-collection victim selection policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum GcPolicy {
    /// Pick the block with the most reclaimable pages (the paper's setup;
    /// it uses the greedy collection of Woodhouse's JFFS).
    #[default]
    Greedy,
    /// Maximise `(1 - u) · age / (1 + u)` where `u` is the block's valid
    /// fraction and `age` the time since its last allocation, in
    /// allocation ticks (Rosenblum's LFS cleaner; Dayan & Bonnet §3).
    /// Under skew it beats greedy by letting nearly-but-not-quite-empty
    /// cold blocks ripen instead of collecting them at high `u`.
    CostBenefit,
    /// Greedy victim selection plus hot/cold data separation: writes of
    /// frequently-updated pages and of rarely-updated pages go to
    /// *separate* active blocks (see [`AllocStream`]), so blocks converge
    /// to all-hot or all-cold populations and GC migrates far fewer live
    /// pages under skewed workloads (Dayan & Bonnet §3).
    HotCold,
    /// Among blocks within 90% of the best reclaimable count, pick the one
    /// erased least often. An ablation, not part of the paper.
    WearAware,
}

impl BlockManager {
    pub fn new(num_blocks: u32, pages_per_block: u32, reserve: u32) -> BlockManager {
        BlockManager {
            pages_per_block,
            reserve,
            states: vec![BlockState::Free; num_blocks as usize],
            free: (0..num_blocks).collect(),
            active: None,
            active_cold: None,
            written: vec![0; num_blocks as usize],
            obsolete: vec![0; num_blocks as usize],
            policy: GcPolicy::Greedy,
            erases: vec![0; num_blocks as usize],
            alloc_seq: 0,
            last_alloc: vec![0; num_blocks as usize],
            hot_allocs: vec![0; num_blocks as usize],
            retained: vec![0; num_blocks as usize],
            retention_skips: std::cell::Cell::new(0),
        }
    }

    pub fn set_policy(&mut self, policy: GcPolicy) {
        if policy != GcPolicy::HotCold {
            // Leaving hot/cold separation: close the cold active block,
            // or it would stay `Active` forever (never allocated from
            // again, never a GC victim — leaked capacity). As `Used`,
            // its erased tail is ordinary reclaimable space.
            if let Some((b, _)) = self.active_cold.take() {
                self.states[b as usize] = BlockState::Used;
            }
        }
        self.policy = policy;
    }

    /// The victim-selection policy in effect.
    pub fn policy(&self) -> GcPolicy {
        self.policy
    }

    /// Permanently remove `block` from the allocatable pool (checkpoint
    /// root region). Must be called before any allocation.
    pub fn reserve_block(&mut self, block: BlockId) {
        debug_assert_eq!(self.states[block.0 as usize], BlockState::Free, "reserve before use");
        self.free.retain(|b| *b != block.0);
        self.states[block.0 as usize] = BlockState::Reserved;
    }

    /// Retire `block` after an erase failure: it keeps whatever stale
    /// content it holds but is never allocated or collected again.
    pub fn retire_block(&mut self, block: BlockId) {
        self.free.retain(|b| *b != block.0);
        if self.active.map(|(ab, _)| ab == block.0).unwrap_or(false) {
            self.active = None;
        }
        if self.active_cold.map(|(ab, _)| ab == block.0).unwrap_or(false) {
            self.active_cold = None;
        }
        self.states[block.0 as usize] = BlockState::Bad;
    }

    /// Number of retired (bad) blocks (diagnostics).
    #[allow(dead_code)]
    pub fn bad_blocks(&self) -> usize {
        self.states.iter().filter(|s| **s == BlockState::Bad).count()
    }

    pub fn num_blocks(&self) -> u32 {
        self.states.len() as u32
    }

    /// Blocks currently in the free pool (diagnostics).
    #[allow(dead_code)]
    pub fn free_blocks(&self) -> usize {
        self.free.len()
    }

    /// Diagnostics accessor (tests and tools).
    #[allow(dead_code)]
    pub fn pages_per_block(&self) -> u32 {
        self.pages_per_block
    }

    /// Pages programmed into `block` since its last erase.
    pub fn written_in(&self, block: BlockId) -> u32 {
        self.written[block.0 as usize]
    }

    /// Pages marked obsolete in `block` (diagnostics).
    #[allow(dead_code)]
    pub fn obsolete_in(&self, block: BlockId) -> u32 {
        self.obsolete[block.0 as usize]
    }

    /// Valid (live) pages in `block`.
    pub fn valid_in(&self, block: BlockId) -> u32 {
        self.written[block.0 as usize] - self.obsolete[block.0 as usize]
    }

    /// Whether the caller should run garbage collection before the next
    /// regular allocation (diagnostics; methods use [`Self::normal_capacity`]).
    #[allow(dead_code)]
    pub fn gc_needed(&self) -> bool {
        self.normal_capacity() == 0
    }

    /// The active slot backing `stream`.
    fn slot_of(&self, stream: AllocStream) -> Option<(u32, u32)> {
        match stream {
            AllocStream::Hot => self.active,
            AllocStream::Cold => self.active_cold,
        }
    }

    fn set_slot(&mut self, stream: AllocStream, slot: Option<(u32, u32)>) {
        match stream {
            AllocStream::Hot => self.active = slot,
            AllocStream::Cold => self.active_cold = slot,
        }
    }

    fn stream_remaining(&self, stream: AllocStream) -> u32 {
        match self.slot_of(stream) {
            Some((_, next)) => self.pages_per_block - next,
            None => 0,
        }
    }

    /// Pages guaranteed allocatable — from *either* stream — without
    /// dipping into the GC reserve. With hot/cold separation the two
    /// active blocks cannot serve each other's stream, so only the smaller
    /// remainder counts (an operation's allocations may all land on one
    /// stream); whole free blocks beyond the reserve serve any stream.
    /// Methods call GC until this covers their next multi-page operation,
    /// so GC never interleaves with one.
    pub fn normal_capacity(&self) -> u64 {
        let beyond_reserve = self.free.len().saturating_sub(self.reserve as usize) as u64;
        let rem = match self.policy {
            GcPolicy::HotCold => self
                .stream_remaining(AllocStream::Hot)
                .min(self.stream_remaining(AllocStream::Cold)),
            _ => self.stream_remaining(AllocStream::Hot),
        };
        rem as u64 + beyond_reserve * self.pages_per_block as u64
    }

    /// Pages guaranteed allocatable in GC mode: the free pool plus every
    /// active-block remainder. GC must pick victims whose relocation
    /// fits here, or a failed erase (bad block) could strand it
    /// mid-relocation.
    ///
    /// The sum is exact even under hot/cold separation, where a
    /// relocation splits across two streams that normally cannot serve
    /// each other: in GC mode, a stream whose turn comes with the free
    /// pool empty *spills into the other stream's active block* (see
    /// [`Self::alloc_in`]) rather than failing, so every counted page is
    /// reachable regardless of the hot/cold mix.
    pub fn gc_capacity(&self) -> u64 {
        let rem = match self.policy {
            GcPolicy::HotCold => {
                self.stream_remaining(AllocStream::Hot) as u64
                    + self.stream_remaining(AllocStream::Cold) as u64
            }
            _ => self.stream_remaining(AllocStream::Hot) as u64,
        };
        rem + self.free.len() as u64 * self.pages_per_block as u64
    }

    /// Allocate the next physical page from the hot (default) stream.
    /// With `gc_mode = false` the free pool never drops below the reserve;
    /// garbage collection itself passes `gc_mode = true` to use the
    /// reserve for relocation. (Convenience over [`Self::alloc_in`];
    /// tests and single-stream callers.)
    #[allow(dead_code)]
    pub fn alloc(&mut self, gc_mode: bool) -> Result<AllocOutcome> {
        self.alloc_in(gc_mode, AllocStream::Hot)
    }

    /// Allocate from `stream`. Under any policy other than `HotCold` the
    /// cold stream is an alias of the hot one. In GC mode, a stream that
    /// needs a block while the free pool is empty spills into the other
    /// stream's active block instead of failing — separation purity
    /// yields to completing the relocation, and this fallback is what
    /// makes [`Self::gc_capacity`]'s sum over both remainders exact.
    pub fn alloc_in(&mut self, gc_mode: bool, stream: AllocStream) -> Result<AllocOutcome> {
        let mut stream = if self.policy == GcPolicy::HotCold { stream } else { AllocStream::Hot };
        // Block hotness is charged by the *requested* stream — the data's
        // temperature — even when a spill places it on the other
        // stream's block.
        let requested = stream;
        let (block, next) = match self.slot_of(stream) {
            Some(s) => s,
            None => {
                let can_take = if gc_mode {
                    !self.free.is_empty()
                } else {
                    self.free.len() > self.reserve as usize
                };
                if !can_take {
                    if !gc_mode {
                        return Ok(AllocOutcome::NeedsGc);
                    }
                    let other = match stream {
                        AllocStream::Hot => AllocStream::Cold,
                        AllocStream::Cold => AllocStream::Hot,
                    };
                    match self.slot_of(other) {
                        // GC-mode spill into the other stream.
                        Some(s) => {
                            stream = other;
                            s
                        }
                        // The reserve itself ran dry: sizing bug, not a
                        // normal GC trigger.
                        None => return Err(CoreError::StorageFull),
                    }
                } else {
                    let b = self.free.pop_front().expect("free pool non-empty");
                    self.states[b as usize] = BlockState::Active;
                    (b, 0)
                }
            }
        };
        let ppn = Ppn(block * self.pages_per_block + next);
        self.written[block as usize] += 1;
        self.alloc_seq += 1;
        self.last_alloc[block as usize] = self.alloc_seq;
        if requested == AllocStream::Hot && self.policy == GcPolicy::HotCold {
            self.hot_allocs[block as usize] += 1;
        }
        let new_slot = if next + 1 == self.pages_per_block {
            self.states[block as usize] = BlockState::Used;
            None
        } else {
            Some((block, next + 1))
        };
        self.set_slot(stream, new_slot);
        Ok(AllocOutcome::Page(ppn))
    }

    /// Hot-stream allocations into `block` since its last erase (block
    /// hotness under the hot/cold policy; diagnostics).
    #[allow(dead_code)]
    pub fn hot_allocs_in(&self, block: BlockId) -> u32 {
        self.hot_allocs[block.0 as usize]
    }

    /// Record that `ppn` was marked obsolete.
    pub fn note_obsolete(&mut self, ppn: Ppn) {
        let b = (ppn.0 / self.pages_per_block) as usize;
        debug_assert!(self.obsolete[b] < self.written[b], "obsolete count overflow in block {b}");
        self.obsolete[b] += 1;
    }

    /// Record that `ppn` holds a retention-ledger-pinned page (a spilled
    /// cold version some active read view may resolve).
    pub fn note_retained(&mut self, ppn: Ppn) {
        let b = (ppn.0 / self.pages_per_block) as usize;
        self.retained[b] += 1;
    }

    /// Record that the pin on `ppn` was dropped (the page was freed, or
    /// GC relocated it and re-pinned the new copy).
    pub fn note_released(&mut self, ppn: Ppn) {
        let b = (ppn.0 / self.pages_per_block) as usize;
        debug_assert!(self.retained[b] > 0, "retention pin underflow in block {b}");
        self.retained[b] = self.retained[b].saturating_sub(1);
    }

    /// Retention pins currently held in `block` (diagnostics).
    #[allow(dead_code)]
    pub fn retained_in(&self, block: BlockId) -> u32 {
        self.retained[block.0 as usize]
    }

    /// Times victim selection avoided a retention-dense block plain
    /// policy scoring would have picked.
    pub fn retention_skips(&self) -> u64 {
        self.retention_skips.get()
    }

    /// Choose a GC victim: a `Used` block, preferred according to the
    /// configured [`GcPolicy`], whose live pages can be relocated into at
    /// most `max_valid` free pages and which reclaims at least one page
    /// (obsolete pages plus the never-written tail). Returns `None` when
    /// no suitable block exists — the store is genuinely full (or too
    /// broken to proceed).
    pub fn pick_victim(&self, max_valid: u32) -> Option<BlockId> {
        self.pick_victim_excluding(max_valid, &std::collections::HashSet::new())
    }

    /// [`Self::pick_victim`] restricted to blocks outside `pinned`, and
    /// deprioritising blocks dense in retention-ledger pins.
    ///
    /// `pinned` is the *hard* exclusion: an in-flight transaction commit
    /// batch pins the blocks holding its pre-images (the superseded base
    /// pages and differentials whose obsolete marks are deferred until
    /// the commit record is durable) — erasing one would destroy the only
    /// state a crash could roll back to, and those pages cannot be
    /// relocated mid-commit.
    ///
    /// Retention-ledger pins ([`Self::note_retained`]) are *soft*: the
    /// spilled cold versions they mark are ordinary valid pages GC can
    /// relocate, so a retention-dense block is still collectable — it is
    /// just a poor victim (all churn, little reclaim, and every move
    /// rewrites a page a reader may be about to fetch). Selection runs in
    /// two tiers: pin-free blocks compete under plain policy scoring
    /// first; only when no pin-free victim exists do retention-dense
    /// blocks compete, least-dense first.
    pub fn pick_victim_excluding(
        &self,
        max_valid: u32,
        pinned: &std::collections::HashSet<u32>,
    ) -> Option<BlockId> {
        let clean = self.select_victim(max_valid, pinned, VictimPass::CleanOnly);
        if let Some(choice) = clean {
            // Diagnostic: did retention steer the choice away from what
            // retention-blind policy scoring would have picked?
            if self.select_victim(max_valid, pinned, VictimPass::Unconstrained) != Some(choice) {
                self.retention_skips.set(self.retention_skips.get() + 1);
            }
            return Some(choice);
        }
        self.select_victim(max_valid, pinned, VictimPass::DensityFirst)
    }

    /// One victim-selection pass; see [`VictimPass`] for the tiers.
    fn select_victim(
        &self,
        max_valid: u32,
        pinned: &std::collections::HashSet<u32>,
        pass: VictimPass,
    ) -> Option<BlockId> {
        let mut best: Option<u32> = None;
        let mut best_reclaim = 0u32;
        let mut best_erases = u64::MAX;
        let mut best_hot = 0u32;
        let mut best_score = f64::MIN;
        let mut best_retained = u32::MAX;
        for b in 0..self.states.len() as u32 {
            if self.states[b as usize] != BlockState::Used || pinned.contains(&b) {
                continue;
            }
            let retained = self.retained[b as usize];
            if pass == VictimPass::CleanOnly && retained > 0 {
                continue;
            }
            let valid = self.valid_in(BlockId(b));
            if valid > max_valid {
                continue;
            }
            let reclaim = self.pages_per_block - valid;
            if reclaim == 0 {
                continue;
            }
            // Only the cost-benefit policy consults the f64 score.
            let mut score = 0.0f64;
            let policy_better = match self.policy {
                GcPolicy::Greedy => best.is_none() || reclaim > best_reclaim,
                // Separation keeps greedy scoring (it stays near-optimal
                // once block populations separate, Dayan & Bonnet §3) but
                // breaks ties towards the block with more hot-stream
                // writes: a hot block's remaining valid pages are about
                // to be rewritten anyway, so collecting it first migrates
                // pages that would soon obsolete a cold block's copy.
                GcPolicy::HotCold => {
                    best.is_none()
                        || reclaim > best_reclaim
                        || (reclaim == best_reclaim && self.hot_allocs[b as usize] > best_hot)
                }
                GcPolicy::WearAware => {
                    // Prefer clearly-more-reclaimable blocks; break near
                    // ties by wear.
                    best.is_none()
                        || reclaim * 10 > best_reclaim * 11
                        || (reclaim * 10 >= best_reclaim * 9
                            && self.erases[b as usize] < best_erases)
                }
                GcPolicy::CostBenefit => {
                    let u = valid as f64 / self.pages_per_block as f64;
                    let age = (self.alloc_seq - self.last_alloc[b as usize]).max(1) as f64;
                    score = (1.0 - u) * age / (1.0 + u);
                    best.is_none() || score > best_score
                }
            };
            let better = if best.is_none() {
                true
            } else if pass == VictimPass::DensityFirst && retained != best_retained {
                // Fallback tier: retention density dominates the policy
                // score — the least-pinned eligible block wins.
                retained < best_retained
            } else {
                policy_better
            };
            if better {
                best = Some(b);
                best_reclaim = reclaim;
                best_erases = self.erases[b as usize];
                best_hot = self.hot_allocs[b as usize];
                best_score = score;
                best_retained = retained;
            }
        }
        best.map(BlockId)
    }

    /// Record that `block` was erased: it returns to the free pool.
    pub fn on_erased(&mut self, block: BlockId) {
        let b = block.0 as usize;
        debug_assert_ne!(self.states[b], BlockState::Free, "double erase of free block");
        debug_assert!(
            self.active.map(|(ab, _)| ab != block.0).unwrap_or(true),
            "erasing the active block"
        );
        debug_assert!(
            self.active_cold.map(|(ab, _)| ab != block.0).unwrap_or(true),
            "erasing the cold active block"
        );
        self.states[b] = BlockState::Free;
        self.written[b] = 0;
        self.obsolete[b] = 0;
        self.erases[b] += 1;
        self.hot_allocs[b] = 0;
        debug_assert_eq!(self.retained[b], 0, "erasing a block with live retention pins");
        self.retained[b] = 0;
        self.free.push_back(block.0);
    }

    /// Rebuild allocator state after a crash-recovery scan: per-block
    /// written/obsolete page counts as found on flash. Partially-written
    /// blocks become `Used` (their erased tail is reclaimed by future GC);
    /// `Reserved` blocks keep their state.
    pub fn rebuild(&mut self, written: &[u32], obsolete: &[u32]) {
        assert_eq!(written.len(), self.states.len());
        assert_eq!(obsolete.len(), self.states.len());
        self.free.clear();
        self.active = None;
        self.active_cold = None;
        // Retention pins do not survive a crash: the read views holding
        // them are gone, and recovery marks spill pages dead.
        self.retained.fill(0);
        self.retention_skips.set(0);
        for b in 0..self.states.len() {
            if matches!(self.states[b], BlockState::Reserved | BlockState::Bad) {
                continue;
            }
            self.written[b] = written[b];
            self.obsolete[b] = obsolete[b];
            if written[b] == 0 {
                self.states[b] = BlockState::Free;
                self.free.push_back(b as u32);
            } else {
                self.states[b] = BlockState::Used;
            }
        }
    }

    /// Total live pages across all blocks (diagnostics).
    #[allow(dead_code)]
    pub fn total_valid(&self) -> u64 {
        (0..self.states.len() as u32).map(|b| self.valid_in(BlockId(b)) as u64).sum()
    }
}

/// Tiers of one victim-selection scan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum VictimPass {
    /// Only blocks free of retention pins, plain policy ordering.
    CleanOnly,
    /// All blocks; fewer retention pins beats the policy score.
    DensityFirst,
    /// All blocks, retention-blind policy ordering (the diagnostic
    /// baseline for the `retention.pinned_skips` gauge).
    Unconstrained,
}

/// Per-logical-page update-frequency gauge feeding the hot/cold policy:
/// methods report update commands here (from their `apply_update`
/// notifications) and ask which [`AllocStream`] a page belongs on.
#[derive(Clone, Debug)]
pub(crate) struct HeatTable {
    heat: Vec<u16>,
    /// Updates since the last halving.
    updates_since_decay: u64,
}

impl HeatTable {
    /// A page is *hot* once its recent update frequency crosses this
    /// level. With the decay window below, a page updated at the
    /// workload-average rate settles around heat 16, so 24 selects pages
    /// updated ≥ 1.5x the average — under an 80/20 skew the hot set
    /// settles near 64 and the cold set near 4.
    const HOT_HEAT: u16 = 24;

    pub fn new(num_pages: u64) -> HeatTable {
        HeatTable { heat: vec![0u16; num_pages as usize], updates_since_decay: 0 }
    }

    /// Record one update command against `pid` and periodically halve
    /// all counters (a window of 8 updates per logical page), so heat
    /// measures *recent* frequency rather than lifetime totals. One
    /// command is one heat unit however many changed ranges it carries —
    /// charging per range would inflate every page under multi-range
    /// workloads (e.g. scattered placement) until the whole space reads
    /// as hot and separation degenerates.
    pub fn note_update(&mut self, pid: u64) {
        let Some(h) = self.heat.get_mut(pid as usize) else { return };
        *h = h.saturating_add(1);
        self.updates_since_decay += 1;
        if self.updates_since_decay >= 8 * self.heat.len() as u64 {
            self.updates_since_decay = 0;
            for h in &mut self.heat {
                *h >>= 1;
            }
        }
    }

    /// Which allocation stream `pid`'s pages belong on under `policy`.
    /// Everything rides the hot (single) stream unless hot/cold
    /// separation is in effect.
    pub fn stream_for(&self, policy: GcPolicy, pid: u64) -> AllocStream {
        if policy != GcPolicy::HotCold {
            return AllocStream::Hot;
        }
        let hot = self.heat.get(pid as usize).is_some_and(|h| *h >= Self::HOT_HEAT);
        if hot {
            AllocStream::Hot
        } else {
            AllocStream::Cold
        }
    }
}

/// Mark a page obsolete, tolerating bad blocks: a page stranded in a
/// block whose erase failed cannot be programmed, but its staleness is
/// harmless (no live table entry points at it, and the block is retired).
pub(crate) fn mark_obsolete_lenient(
    chip: &mut pdl_flash::FlashChip,
    ppn: Ppn,
) -> crate::Result<()> {
    match chip.mark_obsolete(ppn) {
        Ok(()) => Ok(()),
        Err(pdl_flash::FlashError::BadBlock(_)) => Ok(()),
        Err(e) => Err(e.into()),
    }
}

/// Build a spare-area image for a freshly programmed page.
pub(crate) fn make_spare(
    spare_size: usize,
    kind: pdl_flash::PageKind,
    tag: u64,
    ts: u64,
    data: &[u8],
) -> Vec<u8> {
    make_spare_txn(spare_size, kind, tag, ts, pdl_flash::NO_TXN, data)
}

/// Build a spare-area image for a *migrated* copy of an existing page,
/// carrying the original's metadata — including its stored checksum —
/// forward verbatim (only the obsolete mark is reset).
///
/// GC/merge relocation paths must use this rather than recomputing a
/// checksum over the bytes they just read: recomputing would *launder* a
/// corrupt page (fresh checksum over rotten bytes) and make the damage
/// undetectable forever. Carrying the original checksum keeps a corrupt
/// page detectably corrupt wherever it migrates; for an intact page the
/// result is byte-identical to a fresh checksum.
pub(crate) fn make_spare_preserving(spare_size: usize, info: &pdl_flash::SpareInfo) -> Vec<u8> {
    let mut spare = vec![0xFF; spare_size];
    pdl_flash::SpareInfo { obsolete: false, ..*info }
        .encode(&mut spare)
        .expect("spare area large enough");
    spare
}

/// Build a spare-area image carrying a commit-visibility transaction tag
/// (PDL Case-3 base pages written inside a commit batch).
pub(crate) fn make_spare_txn(
    spare_size: usize,
    kind: pdl_flash::PageKind,
    tag: u64,
    ts: u64,
    txn: u64,
    data: &[u8],
) -> Vec<u8> {
    let mut spare = vec![0xFF; spare_size];
    pdl_flash::SpareInfo::new(kind, tag, ts, pdl_flash::fnv1a32(data))
        .with_txn(txn)
        .encode(&mut spare)
        .expect("spare area large enough");
    spare
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr() -> BlockManager {
        BlockManager::new(8, 4, 2)
    }

    #[test]
    fn allocates_sequentially_within_blocks() {
        let mut m = mgr();
        let mut pages = Vec::new();
        for _ in 0..8 {
            match m.alloc(false).unwrap() {
                AllocOutcome::Page(p) => pages.push(p.0),
                AllocOutcome::NeedsGc => panic!("premature GC"),
            }
        }
        assert_eq!(pages, vec![0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(m.written_in(BlockId(0)), 4);
        assert_eq!(m.written_in(BlockId(1)), 4);
    }

    #[test]
    fn reserve_triggers_gc() {
        let mut m = mgr();
        // 8 blocks, reserve 2: 6 blocks = 24 pages allocatable normally.
        for _ in 0..24 {
            assert!(matches!(m.alloc(false).unwrap(), AllocOutcome::Page(_)));
        }
        assert!(matches!(m.alloc(false).unwrap(), AllocOutcome::NeedsGc));
        assert!(m.gc_needed());
        // GC mode can still dip into the reserve.
        assert!(matches!(m.alloc(true).unwrap(), AllocOutcome::Page(_)));
    }

    #[test]
    fn gc_mode_exhaustion_is_storage_full() {
        let mut m = BlockManager::new(2, 2, 1);
        for _ in 0..4 {
            let _ = m.alloc(true).unwrap();
        }
        assert!(matches!(m.alloc(true), Err(CoreError::StorageFull)));
    }

    #[test]
    fn victim_is_most_reclaimable() {
        let mut m = mgr();
        let mut pages = Vec::new();
        for _ in 0..12 {
            if let AllocOutcome::Page(p) = m.alloc(false).unwrap() {
                pages.push(p);
            }
        }
        // Block 0 gets 1 obsolete page, block 1 gets 3.
        m.note_obsolete(pages[0]);
        m.note_obsolete(pages[4]);
        m.note_obsolete(pages[5]);
        m.note_obsolete(pages[6]);
        assert_eq!(m.pick_victim(u32::MAX), Some(BlockId(1)));
        m.on_erased(BlockId(1));
        assert_eq!(m.valid_in(BlockId(1)), 0);
        assert_eq!(m.pick_victim(u32::MAX), Some(BlockId(0)));
    }

    #[test]
    fn fully_valid_blocks_are_not_victims() {
        let mut m = mgr();
        for _ in 0..4 {
            let _ = m.alloc(false).unwrap();
        }
        // Block 0 fully written, zero obsolete: nothing to reclaim.
        assert_eq!(m.pick_victim(u32::MAX), None);
    }

    #[test]
    fn partially_written_used_blocks_can_be_victims_after_rebuild() {
        let mut m = mgr();
        // Simulate recovery: block 3 half written, block 2 full and half
        // obsolete.
        let mut written = vec![0u32; 8];
        let mut obsolete = vec![0u32; 8];
        written[3] = 2;
        written[2] = 4;
        obsolete[2] = 2;
        m.rebuild(&written, &obsolete);
        assert_eq!(m.free_blocks(), 6);
        // Block 3 reclaims 2 (tail), block 2 reclaims 2 (obsolete): greedy
        // picks the first best found.
        let v = m.pick_victim(u32::MAX).unwrap();
        assert!(v == BlockId(2) || v == BlockId(3));
    }

    #[test]
    fn erase_returns_block_to_pool() {
        let mut m = BlockManager::new(3, 2, 1);
        for _ in 0..4 {
            let _ = m.alloc(false).unwrap();
        }
        assert!(matches!(m.alloc(false).unwrap(), AllocOutcome::NeedsGc));
        m.note_obsolete(Ppn(0));
        m.note_obsolete(Ppn(1));
        let v = m.pick_victim(u32::MAX).unwrap();
        assert_eq!(v, BlockId(0));
        m.on_erased(v);
        assert!(matches!(m.alloc(false).unwrap(), AllocOutcome::Page(_)));
    }

    #[test]
    fn wear_aware_prefers_less_worn_near_ties() {
        let mut m = BlockManager::new(4, 4, 1);
        m.set_policy(GcPolicy::WearAware);
        let mut written = vec![4u32; 4];
        written[3] = 0;
        let obsolete = vec![2u32; 4];
        m.rebuild(&written, &obsolete);
        // Wear blocks 0 and 1 heavily.
        m.erases[0] = 10;
        m.erases[1] = 10;
        m.erases[2] = 1;
        assert_eq!(m.pick_victim(u32::MAX), Some(BlockId(2)));
    }

    #[test]
    fn cost_benefit_prefers_older_blocks_at_equal_utilisation() {
        let mut m = BlockManager::new(4, 4, 1);
        m.set_policy(GcPolicy::CostBenefit);
        // Fill blocks 0 and 1 (hot stream, sequential), then advance the
        // allocation clock by filling block 2: blocks 0 and 1 age.
        let mut pages = Vec::new();
        for _ in 0..12 {
            if let AllocOutcome::Page(p) = m.alloc(false).unwrap() {
                pages.push(p);
            }
        }
        // Equal utilisation: 2 obsolete pages each.
        for p in [0u32, 1, 4, 5, 8, 9] {
            m.note_obsolete(Ppn(p));
        }
        // Block 0 was written longest ago -> largest age -> victim.
        assert_eq!(m.pick_victim(u32::MAX), Some(BlockId(0)));
    }

    #[test]
    fn cost_benefit_prefers_emptier_blocks_at_equal_age() {
        let mut m = BlockManager::new(4, 4, 1);
        m.set_policy(GcPolicy::CostBenefit);
        let mut written = vec![4u32; 4];
        written[3] = 0;
        let mut obsolete = vec![0u32; 4];
        obsolete[1] = 3; // block 1: u = 0.25
        obsolete[0] = 1; // block 0: u = 0.75
        obsolete[2] = 1;
        m.rebuild(&written, &obsolete);
        // All ages equal (rebuild resets the clock): lowest u wins.
        assert_eq!(m.pick_victim(u32::MAX), Some(BlockId(1)));
    }

    #[test]
    fn hot_cold_streams_use_separate_active_blocks() {
        let mut m = BlockManager::new(8, 4, 2);
        m.set_policy(GcPolicy::HotCold);
        let hot = match m.alloc_in(false, AllocStream::Hot).unwrap() {
            AllocOutcome::Page(p) => p,
            _ => panic!("premature GC"),
        };
        let cold = match m.alloc_in(false, AllocStream::Cold).unwrap() {
            AllocOutcome::Page(p) => p,
            _ => panic!("premature GC"),
        };
        assert_ne!(hot.0 / 4, cold.0 / 4, "streams must not share a block");
        // Hotness gauge counts only hot-stream allocations.
        assert_eq!(m.hot_allocs_in(BlockId(hot.0 / 4)), 1);
        assert_eq!(m.hot_allocs_in(BlockId(cold.0 / 4)), 0);
        // Under any other policy the cold stream aliases the hot one.
        let mut g = BlockManager::new(8, 4, 2);
        let a = match g.alloc_in(false, AllocStream::Hot).unwrap() {
            AllocOutcome::Page(p) => p,
            _ => panic!("premature GC"),
        };
        let b = match g.alloc_in(false, AllocStream::Cold).unwrap() {
            AllocOutcome::Page(p) => p,
            _ => panic!("premature GC"),
        };
        assert_eq!(a.0 / 4, b.0 / 4);
    }

    #[test]
    fn hot_cold_capacity_counts_only_the_guaranteed_stream() {
        let mut m = BlockManager::new(4, 4, 1);
        m.set_policy(GcPolicy::HotCold);
        // One hot allocation: 3 pages remain on the hot active block, but
        // the cold stream has no active block, so only whole free blocks
        // beyond the reserve are guaranteed to serve either stream.
        let _ = m.alloc_in(false, AllocStream::Hot).unwrap();
        assert_eq!(m.normal_capacity(), 2 * 4); // 2 free blocks beyond reserve
        let _ = m.alloc_in(false, AllocStream::Cold).unwrap();
        // Now both streams hold 3: min(3, 3) + 1 free block beyond reserve.
        assert_eq!(m.normal_capacity(), 3 + 4);
    }

    #[test]
    fn hot_cold_breaks_victim_ties_towards_hotter_blocks() {
        let mut m = BlockManager::new(4, 4, 1);
        m.set_policy(GcPolicy::HotCold);
        // Fill one block per stream — cold first, so it occupies the
        // earlier-scanned block — then obsolete two pages in each: equal
        // reclaim, and the hot block must win the tie despite scan order.
        let mut hot_pages = Vec::new();
        let mut cold_pages = Vec::new();
        for _ in 0..4 {
            if let AllocOutcome::Page(p) = m.alloc_in(false, AllocStream::Cold).unwrap() {
                cold_pages.push(p);
            }
            if let AllocOutcome::Page(p) = m.alloc_in(false, AllocStream::Hot).unwrap() {
                hot_pages.push(p);
            }
        }
        let hot_block = BlockId(hot_pages[0].0 / 4);
        m.note_obsolete(hot_pages[0]);
        m.note_obsolete(hot_pages[1]);
        m.note_obsolete(cold_pages[0]);
        m.note_obsolete(cold_pages[1]);
        assert_eq!(m.pick_victim(u32::MAX), Some(hot_block));
    }

    #[test]
    fn leaving_hot_cold_closes_the_cold_active_block() {
        let mut m = BlockManager::new(4, 4, 1);
        m.set_policy(GcPolicy::HotCold);
        let cold = match m.alloc_in(false, AllocStream::Cold).unwrap() {
            AllocOutcome::Page(p) => BlockId(p.0 / 4),
            other => panic!("premature GC: {other:?}"),
        };
        m.set_policy(GcPolicy::Greedy);
        // The cold block must not stay `Active` forever: as `Used`, its
        // erased tail is reclaimable and GC can pick it as a victim.
        assert_eq!(m.pick_victim(u32::MAX), Some(cold));
    }

    #[test]
    fn gc_mode_spills_into_the_other_stream_when_the_pool_runs_dry() {
        // 2 blocks, no reserve headroom to speak of: open one block per
        // stream, then drain the free pool. Every page gc_capacity
        // counted must remain reachable from EITHER stream.
        let mut m = BlockManager::new(2, 4, 1);
        m.set_policy(GcPolicy::HotCold);
        let _ = m.alloc_in(true, AllocStream::Hot).unwrap();
        let _ = m.alloc_in(true, AllocStream::Cold).unwrap();
        assert_eq!(m.gc_capacity(), 3 + 3, "both remainders count");
        // Exhaust the cold block, then keep asking for cold pages: the
        // free pool is empty, so allocations spill into the hot block.
        for _ in 0..3 {
            assert!(matches!(m.alloc_in(true, AllocStream::Cold).unwrap(), AllocOutcome::Page(_)));
        }
        for _ in 0..3 {
            let p = match m.alloc_in(true, AllocStream::Cold).unwrap() {
                AllocOutcome::Page(p) => p,
                other => panic!("spill must allocate, got {other:?}"),
            };
            assert_eq!(p.0 / 4, 0, "spilled pages come from the hot block");
        }
        // Everything counted was reachable; the next page is not.
        assert!(matches!(m.alloc_in(true, AllocStream::Cold), Err(CoreError::StorageFull)));
        assert!(matches!(m.alloc_in(true, AllocStream::Hot), Err(CoreError::StorageFull)));
    }

    #[test]
    fn retention_pins_deprioritise_dense_blocks() {
        let mut m = mgr();
        let mut pages = Vec::new();
        for _ in 0..12 {
            if let AllocOutcome::Page(p) = m.alloc(false).unwrap() {
                pages.push(p);
            }
        }
        // Block 1 reclaims 3 pages, block 0 reclaims 1: greedy would pick
        // block 1 — but block 1 holds a ledger-pinned spill page, so the
        // pin-free block 0 wins and the steer is recorded.
        m.note_obsolete(pages[0]);
        m.note_obsolete(pages[4]);
        m.note_obsolete(pages[5]);
        m.note_obsolete(pages[6]);
        m.note_retained(pages[7]);
        assert_eq!(m.retained_in(BlockId(1)), 1);
        assert_eq!(m.pick_victim(u32::MAX), Some(BlockId(0)));
        assert_eq!(m.retention_skips(), 1);
        // Release the pin: plain greedy scoring resumes.
        m.note_released(pages[7]);
        assert_eq!(m.pick_victim(u32::MAX), Some(BlockId(1)));
        assert_eq!(m.retention_skips(), 1);
    }

    #[test]
    fn retention_fallback_prefers_least_dense_block() {
        let mut m = mgr();
        let mut pages = Vec::new();
        for _ in 0..8 {
            if let AllocOutcome::Page(p) = m.alloc(false).unwrap() {
                pages.push(p);
            }
        }
        // Both used blocks hold pins, so the clean tier is empty; block 1
        // reclaims more but is denser in pins, so block 0 wins.
        m.note_obsolete(pages[1]);
        m.note_obsolete(pages[4]);
        m.note_obsolete(pages[5]);
        m.note_retained(pages[0]);
        m.note_retained(pages[6]);
        m.note_retained(pages[7]);
        assert_eq!(m.pick_victim(u32::MAX), Some(BlockId(0)));
    }

    #[test]
    fn total_valid_tracks_live_pages() {
        let mut m = mgr();
        for _ in 0..6 {
            let _ = m.alloc(false).unwrap();
        }
        m.note_obsolete(Ppn(2));
        assert_eq!(m.total_valid(), 5);
    }
}
