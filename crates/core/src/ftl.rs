//! Shared Flash Translation Layer machinery: out-place page allocation,
//! per-block accounting and greedy garbage-collection victim selection.
//!
//! OPU and PDL both write pages *out-place*: an updated page goes to a
//! freshly allocated physical page and the stale copy is marked obsolete.
//! The [`BlockManager`] hands out pages sequentially from one *active*
//! block at a time, keeps `reserve` blocks free so garbage collection can
//! always relocate a victim's valid pages, and picks victims greedily by
//! reclaimable page count.

use crate::error::CoreError;
use crate::Result;
use pdl_flash::{BlockId, Ppn};

/// Lifecycle state of a block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockState {
    /// Fully erased, in the free pool.
    Free,
    /// Currently receiving allocations.
    Active,
    /// Fully allocated (or retired after recovery); a GC candidate.
    Used,
    /// Reserved for out-of-band use (checkpoint root region): never
    /// allocated from, never a GC victim.
    Reserved,
    /// Retired after an erase failure (bad-block management): never
    /// allocated from, never a GC victim.
    Bad,
}

/// Outcome of an allocation attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocOutcome {
    Page(Ppn),
    /// The free pool dropped to the reserve: the caller must garbage
    /// collect before retrying with `gc_mode = false`.
    NeedsGc,
}

/// Per-block allocator with greedy GC victim selection.
#[derive(Clone, Debug)]
pub struct BlockManager {
    pages_per_block: u32,
    reserve: u32,
    states: Vec<BlockState>,
    free: std::collections::VecDeque<u32>,
    active: Option<(u32, u32)>, // (block, next in-block index)
    /// Pages allocated (and presumed programmed) per block.
    written: Vec<u32>,
    /// Pages marked obsolete per block.
    obsolete: Vec<u32>,
    /// Victim-selection policy.
    policy: GcPolicy,
    /// Erase count per block, mirrored here for the wear-aware policy.
    erases: Vec<u64>,
}

/// Garbage-collection victim selection policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum GcPolicy {
    /// Pick the block with the most reclaimable pages (the paper's setup;
    /// it uses the greedy collection of Woodhouse's JFFS).
    #[default]
    Greedy,
    /// Among blocks within 90% of the best reclaimable count, pick the one
    /// erased least often. An ablation, not part of the paper.
    WearAware,
}

impl BlockManager {
    pub fn new(num_blocks: u32, pages_per_block: u32, reserve: u32) -> BlockManager {
        BlockManager {
            pages_per_block,
            reserve,
            states: vec![BlockState::Free; num_blocks as usize],
            free: (0..num_blocks).collect(),
            active: None,
            written: vec![0; num_blocks as usize],
            obsolete: vec![0; num_blocks as usize],
            policy: GcPolicy::Greedy,
            erases: vec![0; num_blocks as usize],
        }
    }

    pub fn set_policy(&mut self, policy: GcPolicy) {
        self.policy = policy;
    }

    /// Permanently remove `block` from the allocatable pool (checkpoint
    /// root region). Must be called before any allocation.
    pub fn reserve_block(&mut self, block: BlockId) {
        debug_assert_eq!(self.states[block.0 as usize], BlockState::Free, "reserve before use");
        self.free.retain(|b| *b != block.0);
        self.states[block.0 as usize] = BlockState::Reserved;
    }

    /// Retire `block` after an erase failure: it keeps whatever stale
    /// content it holds but is never allocated or collected again.
    pub fn retire_block(&mut self, block: BlockId) {
        self.free.retain(|b| *b != block.0);
        if self.active.map(|(ab, _)| ab == block.0).unwrap_or(false) {
            self.active = None;
        }
        self.states[block.0 as usize] = BlockState::Bad;
    }

    /// Number of retired (bad) blocks (diagnostics).
    #[allow(dead_code)]
    pub fn bad_blocks(&self) -> usize {
        self.states.iter().filter(|s| **s == BlockState::Bad).count()
    }

    pub fn num_blocks(&self) -> u32 {
        self.states.len() as u32
    }

    /// Blocks currently in the free pool (diagnostics).
    #[allow(dead_code)]
    pub fn free_blocks(&self) -> usize {
        self.free.len()
    }

    /// Diagnostics accessor (tests and tools).
    #[allow(dead_code)]
    pub fn pages_per_block(&self) -> u32 {
        self.pages_per_block
    }

    /// Pages programmed into `block` since its last erase.
    pub fn written_in(&self, block: BlockId) -> u32 {
        self.written[block.0 as usize]
    }

    /// Pages marked obsolete in `block` (diagnostics).
    #[allow(dead_code)]
    pub fn obsolete_in(&self, block: BlockId) -> u32 {
        self.obsolete[block.0 as usize]
    }

    /// Valid (live) pages in `block`.
    pub fn valid_in(&self, block: BlockId) -> u32 {
        self.written[block.0 as usize] - self.obsolete[block.0 as usize]
    }

    /// Whether the caller should run garbage collection before the next
    /// regular allocation (diagnostics; methods use [`Self::normal_capacity`]).
    #[allow(dead_code)]
    pub fn gc_needed(&self) -> bool {
        self.active_remaining() == 0 && self.free.len() <= self.reserve as usize
    }

    fn active_remaining(&self) -> u32 {
        match self.active {
            Some((_, next)) => self.pages_per_block - next,
            None => 0,
        }
    }

    /// Pages allocatable in normal mode without dipping into the GC
    /// reserve: the active block's remainder plus whole free blocks beyond
    /// the reserve. Methods call GC until this covers their next
    /// multi-page operation, so GC never interleaves with one.
    pub fn normal_capacity(&self) -> u64 {
        let beyond_reserve = self.free.len().saturating_sub(self.reserve as usize) as u64;
        self.active_remaining() as u64 + beyond_reserve * self.pages_per_block as u64
    }

    /// Pages allocatable in GC mode (the whole free pool plus the active
    /// remainder). GC must pick victims whose relocation fits here, or a
    /// failed erase (bad block) could strand it mid-relocation.
    pub fn gc_capacity(&self) -> u64 {
        self.active_remaining() as u64 + self.free.len() as u64 * self.pages_per_block as u64
    }

    /// Allocate the next physical page. With `gc_mode = false` the free
    /// pool never drops below the reserve; garbage collection itself passes
    /// `gc_mode = true` to use the reserve for relocation.
    pub fn alloc(&mut self, gc_mode: bool) -> Result<AllocOutcome> {
        if self.active.is_none() {
            let can_take = if gc_mode {
                !self.free.is_empty()
            } else {
                self.free.len() > self.reserve as usize
            };
            if !can_take {
                return if gc_mode {
                    // The reserve itself ran dry: sizing bug, not a normal
                    // GC trigger.
                    Err(CoreError::StorageFull)
                } else {
                    Ok(AllocOutcome::NeedsGc)
                };
            }
            let b = self.free.pop_front().expect("free pool non-empty");
            self.states[b as usize] = BlockState::Active;
            self.active = Some((b, 0));
        }
        let (block, next) = self.active.expect("active block");
        let ppn = Ppn(block * self.pages_per_block + next);
        self.written[block as usize] += 1;
        if next + 1 == self.pages_per_block {
            self.states[block as usize] = BlockState::Used;
            self.active = None;
        } else {
            self.active = Some((block, next + 1));
        }
        Ok(AllocOutcome::Page(ppn))
    }

    /// Record that `ppn` was marked obsolete.
    pub fn note_obsolete(&mut self, ppn: Ppn) {
        let b = (ppn.0 / self.pages_per_block) as usize;
        debug_assert!(self.obsolete[b] < self.written[b], "obsolete count overflow in block {b}");
        self.obsolete[b] += 1;
    }

    /// Choose a GC victim: a `Used` block with the most reclaimable pages
    /// (obsolete pages plus the never-written tail) whose live pages can
    /// be relocated into at most `max_valid` free pages. Returns `None`
    /// when no suitable block exists — the store is genuinely full (or
    /// too broken to proceed).
    pub fn pick_victim(&self, max_valid: u32) -> Option<BlockId> {
        let mut best: Option<(u32, u32, u64)> = None; // (block, reclaimable, erases)
        for b in 0..self.states.len() as u32 {
            if self.states[b as usize] != BlockState::Used {
                continue;
            }
            if self.valid_in(BlockId(b)) > max_valid {
                continue;
            }
            let reclaim = self.pages_per_block - self.valid_in(BlockId(b));
            if reclaim == 0 {
                continue;
            }
            let better = match (self.policy, best) {
                (_, None) => true,
                (GcPolicy::Greedy, Some((_, r, _))) => reclaim > r,
                (GcPolicy::WearAware, Some((_, r, e))) => {
                    // Prefer clearly-more-reclaimable blocks; break near
                    // ties by wear.
                    reclaim * 10 > r * 11 || (reclaim * 10 >= r * 9 && self.erases[b as usize] < e)
                }
            };
            if better {
                best = Some((b, reclaim, self.erases[b as usize]));
            }
        }
        best.map(|(b, _, _)| BlockId(b))
    }

    /// Record that `block` was erased: it returns to the free pool.
    pub fn on_erased(&mut self, block: BlockId) {
        let b = block.0 as usize;
        debug_assert_ne!(self.states[b], BlockState::Free, "double erase of free block");
        debug_assert!(
            self.active.map(|(ab, _)| ab != block.0).unwrap_or(true),
            "erasing the active block"
        );
        self.states[b] = BlockState::Free;
        self.written[b] = 0;
        self.obsolete[b] = 0;
        self.erases[b] += 1;
        self.free.push_back(block.0);
    }

    /// Rebuild allocator state after a crash-recovery scan: per-block
    /// written/obsolete page counts as found on flash. Partially-written
    /// blocks become `Used` (their erased tail is reclaimed by future GC);
    /// `Reserved` blocks keep their state.
    pub fn rebuild(&mut self, written: &[u32], obsolete: &[u32]) {
        assert_eq!(written.len(), self.states.len());
        assert_eq!(obsolete.len(), self.states.len());
        self.free.clear();
        self.active = None;
        for b in 0..self.states.len() {
            if matches!(self.states[b], BlockState::Reserved | BlockState::Bad) {
                continue;
            }
            self.written[b] = written[b];
            self.obsolete[b] = obsolete[b];
            if written[b] == 0 {
                self.states[b] = BlockState::Free;
                self.free.push_back(b as u32);
            } else {
                self.states[b] = BlockState::Used;
            }
        }
    }

    /// Total live pages across all blocks (diagnostics).
    #[allow(dead_code)]
    pub fn total_valid(&self) -> u64 {
        (0..self.states.len() as u32).map(|b| self.valid_in(BlockId(b)) as u64).sum()
    }
}

/// Mark a page obsolete, tolerating bad blocks: a page stranded in a
/// block whose erase failed cannot be programmed, but its staleness is
/// harmless (no live table entry points at it, and the block is retired).
pub(crate) fn mark_obsolete_lenient(
    chip: &mut pdl_flash::FlashChip,
    ppn: Ppn,
) -> crate::Result<()> {
    match chip.mark_obsolete(ppn) {
        Ok(()) => Ok(()),
        Err(pdl_flash::FlashError::BadBlock(_)) => Ok(()),
        Err(e) => Err(e.into()),
    }
}

/// Build a spare-area image for a freshly programmed page.
pub(crate) fn make_spare(
    spare_size: usize,
    kind: pdl_flash::PageKind,
    tag: u64,
    ts: u64,
    data: &[u8],
) -> Vec<u8> {
    let mut spare = vec![0xFF; spare_size];
    pdl_flash::SpareInfo::new(kind, tag, ts, pdl_flash::fnv1a32(data))
        .encode(&mut spare)
        .expect("spare area large enough");
    spare
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr() -> BlockManager {
        BlockManager::new(8, 4, 2)
    }

    #[test]
    fn allocates_sequentially_within_blocks() {
        let mut m = mgr();
        let mut pages = Vec::new();
        for _ in 0..8 {
            match m.alloc(false).unwrap() {
                AllocOutcome::Page(p) => pages.push(p.0),
                AllocOutcome::NeedsGc => panic!("premature GC"),
            }
        }
        assert_eq!(pages, vec![0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(m.written_in(BlockId(0)), 4);
        assert_eq!(m.written_in(BlockId(1)), 4);
    }

    #[test]
    fn reserve_triggers_gc() {
        let mut m = mgr();
        // 8 blocks, reserve 2: 6 blocks = 24 pages allocatable normally.
        for _ in 0..24 {
            assert!(matches!(m.alloc(false).unwrap(), AllocOutcome::Page(_)));
        }
        assert!(matches!(m.alloc(false).unwrap(), AllocOutcome::NeedsGc));
        assert!(m.gc_needed());
        // GC mode can still dip into the reserve.
        assert!(matches!(m.alloc(true).unwrap(), AllocOutcome::Page(_)));
    }

    #[test]
    fn gc_mode_exhaustion_is_storage_full() {
        let mut m = BlockManager::new(2, 2, 1);
        for _ in 0..4 {
            let _ = m.alloc(true).unwrap();
        }
        assert!(matches!(m.alloc(true), Err(CoreError::StorageFull)));
    }

    #[test]
    fn victim_is_most_reclaimable() {
        let mut m = mgr();
        let mut pages = Vec::new();
        for _ in 0..12 {
            if let AllocOutcome::Page(p) = m.alloc(false).unwrap() {
                pages.push(p);
            }
        }
        // Block 0 gets 1 obsolete page, block 1 gets 3.
        m.note_obsolete(pages[0]);
        m.note_obsolete(pages[4]);
        m.note_obsolete(pages[5]);
        m.note_obsolete(pages[6]);
        assert_eq!(m.pick_victim(u32::MAX), Some(BlockId(1)));
        m.on_erased(BlockId(1));
        assert_eq!(m.valid_in(BlockId(1)), 0);
        assert_eq!(m.pick_victim(u32::MAX), Some(BlockId(0)));
    }

    #[test]
    fn fully_valid_blocks_are_not_victims() {
        let mut m = mgr();
        for _ in 0..4 {
            let _ = m.alloc(false).unwrap();
        }
        // Block 0 fully written, zero obsolete: nothing to reclaim.
        assert_eq!(m.pick_victim(u32::MAX), None);
    }

    #[test]
    fn partially_written_used_blocks_can_be_victims_after_rebuild() {
        let mut m = mgr();
        // Simulate recovery: block 3 half written, block 2 full and half
        // obsolete.
        let mut written = vec![0u32; 8];
        let mut obsolete = vec![0u32; 8];
        written[3] = 2;
        written[2] = 4;
        obsolete[2] = 2;
        m.rebuild(&written, &obsolete);
        assert_eq!(m.free_blocks(), 6);
        // Block 3 reclaims 2 (tail), block 2 reclaims 2 (obsolete): greedy
        // picks the first best found.
        let v = m.pick_victim(u32::MAX).unwrap();
        assert!(v == BlockId(2) || v == BlockId(3));
    }

    #[test]
    fn erase_returns_block_to_pool() {
        let mut m = BlockManager::new(3, 2, 1);
        for _ in 0..4 {
            let _ = m.alloc(false).unwrap();
        }
        assert!(matches!(m.alloc(false).unwrap(), AllocOutcome::NeedsGc));
        m.note_obsolete(Ppn(0));
        m.note_obsolete(Ppn(1));
        let v = m.pick_victim(u32::MAX).unwrap();
        assert_eq!(v, BlockId(0));
        m.on_erased(v);
        assert!(matches!(m.alloc(false).unwrap(), AllocOutcome::Page(_)));
    }

    #[test]
    fn wear_aware_prefers_less_worn_near_ties() {
        let mut m = BlockManager::new(4, 4, 1);
        m.set_policy(GcPolicy::WearAware);
        let mut written = vec![4u32; 4];
        written[3] = 0;
        let obsolete = vec![2u32; 4];
        m.rebuild(&written, &obsolete);
        // Wear blocks 0 and 1 heavily.
        m.erases[0] = 10;
        m.erases[1] = 10;
        m.erases[2] = 1;
        assert_eq!(m.pick_victim(u32::MAX), Some(BlockId(2)));
    }

    #[test]
    fn total_valid_tracks_live_pages() {
        let mut m = mgr();
        for _ in 0..6 {
            let _ = m.alloc(false).unwrap();
        }
        m.note_obsolete(Ppn(2));
        assert_eq!(m.total_valid(), 5);
    }
}
