//! The [`PageStore`] trait: the contract between a storage system (DBMS
//! buffer manager or experiment driver) and a page-update method.
//!
//! The paper's update operation is "(1) reading the addressed page;
//! (2) changing the data in the page; (3) writing the updated page". The
//! trait mirrors that protocol:
//!
//! * [`PageStore::read_page`] recreates a logical page from flash
//!   (the reading step);
//! * [`PageStore::apply_update`] notifies the method that the in-memory
//!   copy changed. Log-based methods (IPL) are *tightly coupled* and act
//!   here, writing update logs; loosely-coupled methods (PDL, OPU, IPU)
//!   ignore it;
//! * [`PageStore::evict_page`] reflects the up-to-date logical page into
//!   flash memory (the writing step — e.g. a buffer-pool eviction).
//!
//! A logical page may be larger than a physical page: it then spans
//! `frames_per_page` physical *frames* (Experiment 2(b) uses 8 Kbyte
//! logical pages on the 2 Kbyte-page chip).

use crate::error::CoreError;
use crate::ftl::GcPolicy;
use crate::Result;
use pdl_flash::{FlashChip, FlashStats, WearSummary};

/// A changed byte range within a logical page, reported by the storage
/// system to [`PageStore::apply_update`]. Only log-based methods consume
/// it — that is precisely the DBMS coupling the paper discusses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChangeRange {
    pub offset: u32,
    pub len: u32,
}

impl ChangeRange {
    pub fn new(offset: usize, len: usize) -> ChangeRange {
        ChangeRange { offset: offset as u32, len: len as u32 }
    }

    pub fn end(&self) -> usize {
        (self.offset + self.len) as usize
    }
}

/// Configuration shared by all page-update methods.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StoreOptions {
    /// Number of logical pages the store must address.
    pub num_logical_pages: u64,
    /// Physical frames per logical page (logical page size =
    /// `frames_per_page * data_size`). 1 for the paper's main setup,
    /// 4 for the 8 Kbyte-logical-page experiment.
    pub frames_per_page: u32,
    /// Free blocks the allocator keeps in reserve for garbage collection.
    pub reserve_blocks: u32,
    /// Gap (in bytes) below which adjacent differential runs are merged;
    /// trades run metadata against payload (ablation bench).
    pub coalesce_gap: usize,
    /// Blocks reserved at the start of the chip as PDL's checkpoint root
    /// region (0 = checkpointing disabled). Implements the paper's §4.5
    /// future work: recovering the mapping tables without a full scan.
    /// Must hold two complete checkpoints; see `Pdl::checkpoint`.
    pub checkpoint_blocks: u32,
    /// Garbage-collection victim-selection / data-placement policy.
    /// Applies to the out-place methods (PDL, OPU) and — where its block
    /// structure permits — to IPL's merge-target choice; IPU has no GC.
    /// Recovery must be given the same policy the store ran with so the
    /// rebuilt allocator resumes the same victim-selection and placement
    /// rules (the in-memory update-frequency gauge itself restarts cold
    /// and re-warms over the first updates, like any unflushed state).
    pub gc_policy: GcPolicy,
    /// Upper bound on the committed page versions a buffer pool retains
    /// (per frame cache / stripe) for MVCC snapshot readers. When a
    /// commit would exceed the cap, the oldest versions are discarded and
    /// read views older than the discard watermark fail with
    /// "snapshot too old" — so the pool's memory stays flat no matter how
    /// long a reader lingers.
    pub snapshot_version_cap: u32,
    /// Byte-accounted companion to `snapshot_version_cap` (0 = no byte
    /// budget; the count cap alone governs). Counting versions bounds
    /// DRAM only when every logical page is the same size — with mixed
    /// `frames_per_page` configurations an 8 Kbyte page costs 32x a
    /// 256-byte one. A byte budget bounds the retained payload itself;
    /// whichever cap trips first discards the oldest versions. When set,
    /// it must hold at least one logical page (validated at
    /// construction).
    pub snapshot_retention_bytes: u64,
    /// Verify the spare-area FNV-1a checksum on every data-path read
    /// (default: on). A mismatch surfaces as
    /// [`pdl_flash::FlashError::ChecksumMismatch`] /
    /// [`CoreError::PageCorrupt`] instead of silently serving rotten
    /// bytes; PDL additionally attempts online repair from a redundant
    /// source. Off reproduces the historical trust-the-media behaviour
    /// (ablation benches).
    pub verify_checksums: bool,
    /// Enable the observability recorder (latency histograms + span ring
    /// on the simulated clock; see `pdl_obs`). Default: off — every hook
    /// is then a single branch and timing claims are untouched.
    pub obs: bool,
}

/// Observability hook for composite activities (a GC cycle, a recovery
/// phase, a repair detour): record one `class` sample and a span from
/// `t0` to the chip's current simulated horizon. Maintenance spans run
/// on the lane just past the planes so they stack above the per-plane
/// command rows in the trace viewer. No-op while recording is disabled.
pub(crate) fn obs_event(
    chip: &mut FlashChip,
    class: pdl_flash::LatencyClass,
    name: &'static str,
    ctx: &'static str,
    t0: u64,
    block: u64,
    id: u64,
) {
    if !chip.recorder().is_enabled() {
        return;
    }
    let t1 = chip.sim_now_us();
    let lane = chip.config().pipeline.planes;
    chip.recorder_mut().event(class, name, ctx, lane, t0, t1, block, id);
}

impl StoreOptions {
    pub fn new(num_logical_pages: u64) -> StoreOptions {
        StoreOptions {
            num_logical_pages,
            frames_per_page: 1,
            reserve_blocks: 3,
            coalesce_gap: 8,
            checkpoint_blocks: 0,
            gc_policy: GcPolicy::default(),
            snapshot_version_cap: 1024,
            snapshot_retention_bytes: 0,
            verify_checksums: true,
            obs: false,
        }
    }

    /// Enable or disable observability recording (default: disabled).
    pub fn with_obs(mut self, obs: bool) -> StoreOptions {
        self.obs = obs;
        self
    }

    /// Enable or disable checksum verification on data-path reads
    /// (default: enabled).
    pub fn with_verify_checksums(mut self, verify: bool) -> StoreOptions {
        self.verify_checksums = verify;
        self
    }

    /// Bound the committed page versions retained for snapshot readers
    /// (default: 1024 per frame cache).
    pub fn with_snapshot_version_cap(mut self, cap: u32) -> StoreOptions {
        self.snapshot_version_cap = cap;
        self
    }

    /// Bound the *bytes* of committed page versions retained for snapshot
    /// readers (default: 0 = no byte budget). Composes with the count
    /// cap: whichever trips first wins.
    pub fn with_snapshot_retention_bytes(mut self, bytes: u64) -> StoreOptions {
        self.snapshot_retention_bytes = bytes;
        self
    }

    /// Select the garbage-collection policy (default: greedy, the
    /// paper's setup).
    pub fn with_gc_policy(mut self, policy: GcPolicy) -> StoreOptions {
        self.gc_policy = policy;
        self
    }

    /// Enable PDL checkpointing with a root region of `blocks` blocks.
    pub fn with_checkpoint_blocks(mut self, blocks: u32) -> StoreOptions {
        self.checkpoint_blocks = blocks;
        self
    }

    pub fn with_frames_per_page(mut self, frames: u32) -> StoreOptions {
        self.frames_per_page = frames;
        self
    }

    pub fn with_coalesce_gap(mut self, gap: usize) -> StoreOptions {
        self.coalesce_gap = gap;
        self
    }

    /// Logical page size for a given chip data-area size.
    pub fn logical_page_size(&self, data_size: usize) -> usize {
        self.frames_per_page as usize * data_size
    }

    /// Total number of physical frames the store manages.
    pub fn num_frames(&self) -> u64 {
        self.num_logical_pages * self.frames_per_page as u64
    }

    /// Validate the options against the chip the store is being built
    /// over. Everything that used to surface as a panic (or an index
    /// error) deep in FTL setup — a checkpoint root region larger than
    /// the chip, a GC reserve that swallows every block, zero logical
    /// pages — is rejected here with a [`CoreError::BadConfig`] instead.
    pub(crate) fn validate(&self, chip: &FlashChip) -> Result<()> {
        let g = chip.geometry();
        if self.num_logical_pages == 0 {
            return Err(CoreError::BadConfig("num_logical_pages must be > 0".into()));
        }
        if !(1..=8).contains(&self.frames_per_page) {
            return Err(CoreError::BadConfig(format!(
                "frames_per_page must be in 1..=8, got {}",
                self.frames_per_page
            )));
        }
        let logical = self.logical_page_size(g.data_size);
        if logical > u16::MAX as usize {
            return Err(CoreError::BadConfig(format!(
                "logical page of {logical} bytes exceeds differential offset range"
            )));
        }
        if self.checkpoint_blocks == 1 || self.checkpoint_blocks >= g.num_blocks {
            return Err(CoreError::BadConfig(format!(
                "checkpoint root region of {} blocks must be 0 (disabled) or 2..{} blocks \
                 within the chip",
                self.checkpoint_blocks, g.num_blocks
            )));
        }
        if self.snapshot_version_cap == 0 {
            return Err(CoreError::BadConfig(
                "snapshot_version_cap must be >= 1 so read views can retain at least one \
                 superseded page version"
                    .into(),
            ));
        }
        if self.snapshot_retention_bytes != 0 && self.snapshot_retention_bytes < logical as u64 {
            return Err(CoreError::BadConfig(format!(
                "snapshot_retention_bytes of {} cannot hold even one {logical}-byte logical \
                 page; use 0 to disable the byte budget",
                self.snapshot_retention_bytes
            )));
        }
        if self.reserve_blocks == 0 {
            return Err(CoreError::BadConfig(
                "reserve_blocks must be >= 1 so GC can always relocate a victim".into(),
            ));
        }
        if self.reserve_blocks + self.checkpoint_blocks + 1 >= g.num_blocks {
            return Err(CoreError::BadConfig(format!(
                "reserve ({}) + checkpoint ({}) blocks leave no allocatable space on a \
                 {}-block chip",
                self.reserve_blocks, self.checkpoint_blocks, g.num_blocks
            )));
        }
        Ok(())
    }

    pub(crate) fn check_pid(&self, pid: u64) -> Result<()> {
        if pid < self.num_logical_pages {
            Ok(())
        } else {
            Err(CoreError::PageIdOutOfRange { pid, num_pages: self.num_logical_pages })
        }
    }

    pub(crate) fn check_page_buf(&self, data_size: usize, buf: &[u8]) -> Result<()> {
        let expected = self.logical_page_size(data_size);
        if buf.len() == expected {
            Ok(())
        } else {
            Err(CoreError::BadPageSize { expected, got: buf.len() })
        }
    }
}

/// One registered structure's durable root, as persisted in the PDL
/// checkpoint root region. `kind` distinguishes the handle family the
/// storage layer rebuilds from it: 0 = B+-tree (a single root pid),
/// 1 = heap file (the ordered page list).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StructRootEntry {
    pub id: u64,
    pub kind: u8,
    pub pids: Vec<u64>,
}

impl StructRootEntry {
    pub const KIND_BTREE: u8 = 0;
    pub const KIND_HEAP: u8 = 1;
}

/// A point-in-time snapshot of every registered structure root plus the
/// page-allocator high-water mark, staged into the commit batch that
/// created it. Records are full snapshots (not deltas), so recovery only
/// needs the newest committed one.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StructRootsSnapshot {
    /// Page-allocator high-water mark at commit time: every pid
    /// referenced by `entries` is below it, so a rebuilt allocator can
    /// resume from here without re-walking the structures.
    pub next_pid: u64,
    pub entries: Vec<StructRootEntry>,
}

impl StructRootsSnapshot {
    /// Exact byte length of the durable record encoding this snapshot
    /// (header + entries + trailing checksum); see
    /// `pdl::checkpoint::encode_root_record`.
    pub fn encoded_len(&self) -> usize {
        // magic u32 + total_len u32 + version u16 + pad u16 + txn u64 +
        // next_pid u64 + count u32 = 32 bytes of header.
        let mut len = 32usize;
        for e in &self.entries {
            // id u64 + kind u8 + pad [u8;3] + npids u32 + pids.
            len += 16 + 8 * e.pids.len();
        }
        len + 8 // trailing fnv1a64 checksum
    }
}

/// A page-update method: stores logical pages into flash memory.
///
/// The trait is object-safe and `Send`, so `Box<dyn PageStore>` can move
/// between threads — the property the sharded engine
/// ([`crate::ShardedStore`]) builds on by placing one boxed store behind
/// each shard lock.
pub trait PageStore: Send {
    /// The options this store was built with.
    fn options(&self) -> &StoreOptions;

    /// Recreate logical page `pid` from flash into `out`
    /// (`out.len() == logical_page_size`). Never-written pages read as
    /// zeroes.
    fn read_page(&mut self, pid: u64, out: &mut [u8]) -> Result<()>;

    /// Notify the method that the in-memory copy of `pid` has been updated
    /// once (one update command). `page_after` is the full post-update
    /// image; `changes` lists the byte ranges the command modified.
    ///
    /// Loosely-coupled methods (PDL, OPU, IPU) ignore this; the log-based
    /// method (IPL) appends update logs to its write buffer here and may
    /// write log sectors to flash.
    fn apply_update(&mut self, pid: u64, page_after: &[u8], changes: &[ChangeRange]) -> Result<()>;

    /// Reflect the up-to-date logical page into flash memory (the page is
    /// being swapped out of the DBMS buffer).
    fn evict_page(&mut self, pid: u64, page: &[u8]) -> Result<()>;

    /// Write-through: force everything buffered in memory (differential
    /// write buffer, pending log sectors) out to flash.
    fn flush(&mut self) -> Result<()>;

    /// Read-ahead hint: issue the flash reads that recreating `pid` will
    /// need, without waiting for them (B+-tree range scans hint the next
    /// leaf while the current one is consumed). Methods that can't map
    /// the page cheaply may ignore the hint; the default does nothing.
    fn prefetch(&mut self, _pid: u64) -> Result<()> {
        Ok(())
    }

    /// Pipeline busy time (µs) since the last stats reset — the flash
    /// critical path under the configured queue depth; on a sharded
    /// store, the maximum over shards (they are independent chips). At
    /// queue depth 1 this equals `stats().total().total_us()`.
    fn pipeline_busy_us(&self) -> u64 {
        self.chip().pipeline_busy_us()
    }

    /// Access to the underlying chip (statistics, wear, timing).
    ///
    /// # Panics
    ///
    /// Panics on stores that span more than one chip
    /// ([`PageStore::num_shards`] > 1); those expose aggregate accounting
    /// via [`PageStore::stats`] / [`PageStore::wear_summary`] instead.
    fn chip(&self) -> &FlashChip;
    fn chip_mut(&mut self) -> &mut FlashChip;

    /// Aggregate flash statistics — on a sharded store, summed over every
    /// shard's chip. Prefer this over `chip().stats()` in engine-agnostic
    /// code (drivers, buffer pools, reports).
    fn stats(&self) -> FlashStats {
        self.chip().stats()
    }

    /// Reset the statistics ledgers of every underlying chip.
    fn reset_stats(&mut self) {
        self.chip_mut().reset_stats();
    }

    /// Aggregate wear (erase-count) summary over every underlying chip's
    /// blocks.
    fn wear_summary(&self) -> WearSummary {
        self.chip().wear_summary()
    }

    /// Number of independent partitions this store routes pages across
    /// (1 for the plain single-chip methods).
    fn num_shards(&self) -> usize {
        1
    }

    /// Short human-readable method label, e.g. `PDL (256B)`.
    fn name(&self) -> String;

    /// Method-specific event counters (GC runs, merges, buffer flushes...),
    /// for reports and ablations.
    fn counters(&self) -> Vec<(&'static str, u64)> {
        Vec::new()
    }

    /// Tear down and return the chip (e.g. to simulate a crash + restart:
    /// in-memory tables are dropped, the chip survives).
    ///
    /// # Panics
    ///
    /// Panics on stores that span more than one chip; use
    /// [`PageStore::into_chips`] there.
    fn into_chip(self: Box<Self>) -> FlashChip {
        let mut chips = self.into_chips();
        assert_eq!(
            chips.len(),
            1,
            "into_chip on a store spanning {} chips; use into_chips",
            chips.len()
        );
        chips.pop().expect("one chip")
    }

    /// Tear down and return every underlying chip, shard order preserved.
    fn into_chips(self: Box<Self>) -> Vec<FlashChip>;

    /// Logical page size in bytes.
    fn logical_page_size(&self) -> usize {
        self.options().frames_per_page as usize * self.chip().geometry().data_size
    }

    /// Convenience: overwrite a whole logical page and reflect it.
    ///
    /// Storage systems driving a *tightly-coupled* method must report every
    /// change before eviction, so this reports one whole-page update and
    /// then evicts. Loosely-coupled methods ignore the notification and
    /// just reflect the page.
    fn write_page(&mut self, pid: u64, page: &[u8]) -> Result<()> {
        self.apply_update(pid, page, &[ChangeRange::new(0, page.len())])?;
        self.evict_page(pid, page)
    }

    // ------------------------------------------------------------------
    // Transactional reflection (the `pdl-txn` subsystem).
    //
    // A commit batch runs txn_reserve -> txn_stage* -> txn_flush_stage ->
    // txn_append_commit* -> txn_finalize. PDL implements it atomically:
    // staged differentials and Case-3 base pages carry the transaction
    // id, the commit record is the durable commit point, and obsolete
    // marks on the superseded pre-images are deferred until the record
    // is on flash — so a crash anywhere in the batch rolls the whole
    // transaction back at recovery. The defaults below give the other
    // methods (OPU / IPU / IPL) plain durable-but-not-atomic semantics,
    // which is exactly the DBMS-independence gap the paper leaves open.
    // ------------------------------------------------------------------

    /// Whether this store makes commit batches all-or-nothing across a
    /// crash (PDL); `false` means the batch is merely written through.
    fn txn_supported(&self) -> bool {
        false
    }

    /// Open a commit batch expected to reflect at most `pages` logical
    /// pages, pre-running garbage collection so the batch itself never
    /// triggers it mid-flight.
    fn txn_reserve(&mut self, pages: u64) -> Result<()> {
        let _ = pages;
        Ok(())
    }

    /// Reflect one page on behalf of `txn` (tagged so recovery can
    /// discard it if the commit record never lands).
    fn txn_stage(&mut self, pid: u64, page: &[u8], txn: u64) -> Result<()> {
        let _ = txn;
        self.evict_page(pid, page)
    }

    /// Make everything staged so far durable *without* committing it
    /// (multi-shard batches flush every shard before any commit record
    /// is written).
    fn txn_flush_stage(&mut self) -> Result<()> {
        self.flush()
    }

    /// Append the durable commit record for `txn` to the write stream.
    fn txn_append_commit(&mut self, txn: u64) -> Result<()> {
        let _ = txn;
        Ok(())
    }

    /// Append one codec-v3 *epoch record* proving the durable commit of
    /// every transaction in `txns` at once (group commit writes one
    /// record per batch instead of one per transaction). The default
    /// falls back to per-transaction commit records — identical
    /// durability semantics, just more record bytes.
    fn txn_append_commit_epoch(&mut self, txns: &[u64]) -> Result<()> {
        for &t in txns {
            self.txn_append_commit(t)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Retention-ledger spill tier (cold MVCC versions on flash).
    //
    // When DRAM retention pressure would evict a committed pre-image an
    // active read view still needs, the buffer pool spills the image to
    // flash through these hooks and records the handle in its retention
    // ledger; reads fall back DRAM chain -> ledger -> flash. Spilled
    // versions are a cache of in-memory state: no view survives a crash,
    // so recovery discards them.
    // ------------------------------------------------------------------

    /// Whether this store can hold spilled cold versions (PDL writes them
    /// as dedicated `Spill` pages; other methods report `false` and the
    /// pool keeps its old evict-and-fail behaviour).
    fn spill_supported(&self) -> bool {
        false
    }

    /// Write one logical-page pre-image to flash as a spill page set.
    /// Returns an opaque handle for [`PageStore::read_spill`] /
    /// [`PageStore::free_spill`]. `pid` routes sharded stores and aids
    /// debugging; it does not alias the live logical page.
    fn spill_page(&mut self, pid: u64, page: &[u8]) -> Result<u64> {
        let _ = (pid, page);
        Err(CoreError::BadConfig(format!("{} does not support version spill", self.name())))
    }

    /// Read a spilled pre-image back into `out` (logical page size).
    fn read_spill(&mut self, pid: u64, handle: u64, out: &mut [u8]) -> Result<()> {
        let _ = (pid, handle, out);
        Err(CoreError::BadConfig(format!("{} does not support version spill", self.name())))
    }

    /// Drop a spilled pre-image: the last read view that could resolve
    /// it has closed. The pages become reclaimable garbage.
    fn free_spill(&mut self, pid: u64, handle: u64) -> Result<()> {
        let _ = (pid, handle);
        Err(CoreError::BadConfig(format!("{} does not support version spill", self.name())))
    }

    /// Flush the commit records and close the batch (PDL additionally
    /// applies the deferred obsolete marks and releases its GC pins).
    fn txn_finalize(&mut self) -> Result<()> {
        self.flush()
    }

    /// A safe lower bound for new transaction ids: above every id whose
    /// commit record (or live tag) still exists on flash, so a fresh id
    /// can never be "proven" committed by a stale record after a crash.
    fn txn_id_floor(&self) -> u64 {
        1
    }

    /// Persist a recovery checkpoint of the store's mapping tables, when
    /// the method supports it (PDL with a configured root region; the
    /// sharded store checkpoints every shard). Other methods report
    /// [`CoreError::BadConfig`].
    fn checkpoint(&mut self) -> Result<()> {
        Err(CoreError::BadConfig(format!("{} does not support checkpointing", self.name())))
    }

    /// Stage a durable structure-root record on behalf of `txn`, inside
    /// an open commit batch (between the page stages and the commit
    /// record). The record becomes authoritative exactly when `txn`'s
    /// commit record does — a crash before it rolls both back together.
    /// PDL with a configured checkpoint root region programs the record
    /// into the region's live-half tail; everything else (and PDL without
    /// a root region) accepts and discards it, leaving roots
    /// memory-resident only.
    fn txn_stage_struct_roots(&mut self, roots: &StructRootsSnapshot, txn: u64) -> Result<()> {
        let _ = (roots, txn);
        Ok(())
    }

    /// The newest committed structure-root snapshot this store knows
    /// about — after recovery, the one resolved from the checkpoint
    /// region ([§4.5]'s mapping-table recovery extended to DBMS roots).
    /// `None` when the store does not persist roots.
    fn struct_roots(&self) -> Option<StructRootsSnapshot> {
        None
    }

    /// Free bytes remaining in the structure-root log before the next
    /// checkpoint must compact it (u64::MAX when the store does not
    /// persist roots, so callers never trigger a checkpoint for it).
    fn struct_root_log_space(&self) -> u64 {
        u64::MAX
    }

    /// Busy time (µs of simulated flash pipeline) accumulated per shard
    /// since the last stats reset, index = shard. Single-chip stores
    /// report one entry; the sharded store reports each chip's own
    /// pipeline clock, whose maximum is the critical-path bound the
    /// `struct_writers` bench gates on.
    fn per_shard_busy_us(&self) -> Vec<u64> {
        vec![self.pipeline_busy_us()]
    }
}

/// Which page-update method to build, with its method-specific parameter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MethodKind {
    /// Page-based, out-place update with page-level mapping.
    Opu,
    /// Page-based, in-place update.
    Ipu,
    /// Page-differential logging with the given `Max_Differential_Size`
    /// in bytes (the paper evaluates 256 and 2048).
    Pdl { max_diff_size: usize },
    /// In-page logging with the given amount of log space per block in
    /// bytes (the paper evaluates 18 Kbytes and 64 Kbytes).
    Ipl { log_bytes_per_block: usize },
}

impl MethodKind {
    /// Label formatted like the paper's figures: `PDL (256B)`,
    /// `IPL (18KB)`, `OPU`, `IPU`.
    pub fn label(&self) -> String {
        fn size(bytes: usize) -> String {
            if bytes.is_multiple_of(1024) {
                format!("{}KB", bytes / 1024)
            } else {
                format!("{bytes}B")
            }
        }
        match self {
            MethodKind::Opu => "OPU".to_string(),
            MethodKind::Ipu => "IPU".to_string(),
            MethodKind::Pdl { max_diff_size } => format!("PDL ({})", size(*max_diff_size)),
            MethodKind::Ipl { log_bytes_per_block } => {
                format!("IPL ({})", size(*log_bytes_per_block))
            }
        }
    }

    /// The six configurations of Figure 12, in the paper's legend order.
    pub fn paper_six() -> Vec<MethodKind> {
        vec![
            MethodKind::Ipl { log_bytes_per_block: 18 * 1024 },
            MethodKind::Ipl { log_bytes_per_block: 64 * 1024 },
            MethodKind::Pdl { max_diff_size: 2048 },
            MethodKind::Pdl { max_diff_size: 256 },
            MethodKind::Opu,
            MethodKind::Ipu,
        ]
    }

    /// The five methods of Figures 17/18 (IPU excluded, as in the paper).
    pub fn paper_five() -> Vec<MethodKind> {
        vec![
            MethodKind::Ipl { log_bytes_per_block: 18 * 1024 },
            MethodKind::Ipl { log_bytes_per_block: 64 * 1024 },
            MethodKind::Pdl { max_diff_size: 2048 },
            MethodKind::Pdl { max_diff_size: 256 },
            MethodKind::Opu,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdl_flash::FlashConfig;

    #[test]
    fn labels_match_paper_figures() {
        assert_eq!(MethodKind::Opu.label(), "OPU");
        assert_eq!(MethodKind::Ipu.label(), "IPU");
        assert_eq!(MethodKind::Pdl { max_diff_size: 256 }.label(), "PDL (256B)");
        assert_eq!(MethodKind::Pdl { max_diff_size: 2048 }.label(), "PDL (2KB)");
        assert_eq!(MethodKind::Ipl { log_bytes_per_block: 18 * 1024 }.label(), "IPL (18KB)");
        assert_eq!(MethodKind::Ipl { log_bytes_per_block: 64 * 1024 }.label(), "IPL (64KB)");
    }

    #[test]
    fn options_validate() {
        let chip = FlashChip::new(FlashConfig::tiny()); // 16 blocks
        assert!(StoreOptions::new(0).validate(&chip).is_err());
        assert!(StoreOptions::new(4).with_frames_per_page(9).validate(&chip).is_err());
        assert!(StoreOptions::new(4).validate(&chip).is_ok());
        // Misconfigurations that used to blow up deep in FTL setup now
        // surface as BadConfig at construction.
        assert!(StoreOptions::new(4).with_checkpoint_blocks(1).validate(&chip).is_err());
        assert!(StoreOptions::new(4).with_checkpoint_blocks(16).validate(&chip).is_err());
        assert!(StoreOptions::new(4).with_checkpoint_blocks(99).validate(&chip).is_err());
        let mut no_reserve = StoreOptions::new(4);
        no_reserve.reserve_blocks = 0;
        assert!(no_reserve.validate(&chip).is_err());
        let mut all_reserve = StoreOptions::new(4);
        all_reserve.reserve_blocks = 15;
        assert!(all_reserve.validate(&chip).is_err());
        assert!(StoreOptions::new(4).with_checkpoint_blocks(2).validate(&chip).is_ok());
        // A byte budget smaller than one logical page can never retain a
        // version; 0 disables it.
        assert!(StoreOptions::new(4).with_snapshot_retention_bytes(255).validate(&chip).is_err());
        assert!(StoreOptions::new(4).with_snapshot_retention_bytes(256).validate(&chip).is_ok());
        assert!(StoreOptions::new(4).with_snapshot_retention_bytes(0).validate(&chip).is_ok());
        let opts = StoreOptions::new(4).with_frames_per_page(2);
        assert_eq!(opts.logical_page_size(256), 512);
        assert_eq!(opts.num_frames(), 8);
        assert!(opts.check_pid(3).is_ok());
        assert!(opts.check_pid(4).is_err());
        assert!(opts.check_page_buf(256, &[0u8; 512]).is_ok());
        assert!(opts.check_page_buf(256, &[0u8; 256]).is_err());
    }

    #[test]
    fn paper_method_sets() {
        assert_eq!(MethodKind::paper_six().len(), 6);
        assert_eq!(MethodKind::paper_five().len(), 5);
        assert!(!MethodKind::paper_five().contains(&MethodKind::Ipu));
    }
}
