//! The sharded concurrent engine: [`ShardedStore`] partitions the logical
//! page space across N independent [`PageStore`] instances, each over its
//! own [`FlashChip`].
//!
//! PDL's invariants are all *per logical page* (a write reflects only the
//! difference of one page; at most one page is programmed per reflection;
//! at most two pages are read to recreate one), so any partition of the
//! page space preserves them while unlocking parallelism — the same
//! argument made for partition-parallel page-mapping FTLs and for
//! partitioned recovery in distributed in-memory databases.
//!
//! Pages are striped round-robin: page `p` lives on shard `p % N` as that
//! shard's local page `p / N`. The mapping is deterministic and
//! stateless, so crash recovery reconstructs it from `(total, N)` alone,
//! and both sequential and uniform-random workloads spread evenly.
//!
//! Each shard sits behind its own lock; operations on different shards
//! never serialize. The `*_shared` methods take `&self` and return the
//! [`FlashStats`] delta the operation caused on its shard's chip, which is
//! how the multi-threaded workload driver attributes simulated I/O time
//! per thread without a global stats lock.

use crate::page_store::{ChangeRange, MethodKind, PageStore, StoreOptions};
use crate::{build_store, error::CoreError, recover_store, Pdl, Result};
use pdl_flash::{FlashChip, FlashStats, WearSummary};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Nanoseconds of CPU time consumed by the calling thread, from the
/// kernel's per-thread clock. Unlike a wall clock, this does not inflate
/// when the scheduler preempts a thread mid-operation (e.g. more worker
/// threads than cores), so per-shard busy accounting stays a faithful
/// critical-path measure on oversubscribed machines.
#[cfg(target_os = "linux")]
fn thread_cpu_ns() -> u64 {
    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }
    extern "C" {
        fn clock_gettime(clk: i32, tp: *mut Timespec) -> i32;
    }
    const CLOCK_THREAD_CPUTIME_ID: i32 = 3;
    let mut ts = Timespec { tv_sec: 0, tv_nsec: 0 };
    // SAFETY: `ts` is a valid out-pointer and the clock id is a Linux
    // constant; the call writes the timespec and nothing else.
    let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) };
    if rc != 0 {
        return 0;
    }
    ts.tv_sec as u64 * 1_000_000_000 + ts.tv_nsec as u64
}

/// Monotonic fallback where no per-thread CPU clock is exposed.
#[cfg(not(target_os = "linux"))]
fn thread_cpu_ns() -> u64 {
    use std::sync::OnceLock;
    static START: OnceLock<std::time::Instant> = OnceLock::new();
    START.get_or_init(std::time::Instant::now).elapsed().as_nanos() as u64
}

/// Number of logical pages shard `s` owns when `total` pages are striped
/// across `n` shards.
pub fn shard_pages(total: u64, n: usize, s: usize) -> u64 {
    let (n, s) = (n as u64, s as u64);
    if s >= total {
        0
    } else {
        (total - s).div_ceil(n)
    }
}

/// A hash-partitioned (striped) page store over N per-shard stores.
pub struct ShardedStore {
    shards: Vec<Mutex<Box<dyn PageStore>>>,
    /// CPU nanoseconds each shard's lock was held by `*_shared`
    /// operations. The maximum over shards is the engine's critical path:
    /// `ops / max_busy` bounds the throughput any number of worker
    /// threads can reach, independent of how many cores the measuring
    /// machine happens to have.
    busy_ns: Vec<AtomicU64>,
    /// Shards staged into by the current exclusive (`&mut self`) commit
    /// batch — the involved set whose shards receive the commit record.
    txn_staged_shards: Mutex<HashSet<usize>>,
    opts: StoreOptions,
    kind: MethodKind,
    data_size: usize,
}

impl ShardedStore {
    /// Build a sharded store of `chips.len()` shards: chip `i` backs shard
    /// `i`, holding every logical page `p` with `p % N == i`.
    ///
    /// All chips must share the same page data size, and there must be at
    /// least as many logical pages as shards (otherwise a shard would own
    /// an empty page range).
    pub fn new(
        chips: Vec<FlashChip>,
        kind: MethodKind,
        opts: StoreOptions,
    ) -> Result<ShardedStore> {
        Self::build(chips, kind, opts, false)
    }

    /// Rebuild a sharded store from chips that survived a crash. Shard
    /// recovery scans run in parallel, one thread per shard.
    pub fn recover(
        chips: Vec<FlashChip>,
        kind: MethodKind,
        opts: StoreOptions,
    ) -> Result<ShardedStore> {
        Self::build(chips, kind, opts, true)
    }

    fn build(
        chips: Vec<FlashChip>,
        kind: MethodKind,
        opts: StoreOptions,
        recovering: bool,
    ) -> Result<ShardedStore> {
        let n = chips.len();
        if n == 0 {
            return Err(CoreError::BadConfig("a sharded store needs at least one chip".into()));
        }
        if (opts.num_logical_pages as u128) < n as u128 {
            return Err(CoreError::BadConfig(format!(
                "{} logical pages cannot stripe across {} shards",
                opts.num_logical_pages, n
            )));
        }
        let data_size = chips[0].geometry().data_size;
        if chips.iter().any(|c| c.geometry().data_size != data_size) {
            return Err(CoreError::BadConfig(
                "all shard chips must share the same page data size".into(),
            ));
        }

        let total = opts.num_logical_pages;
        // PDL recovery resolves torn transactions *globally*: a commit is
        // valid only if every shard that carries its tags also carries a
        // local commit record, so the read-only precheck runs over every
        // chip first and the union of the per-shard torn sets gates every
        // shard's table rebuild. The precheck is checkpoint-aware: under
        // a fresh checkpoint it only sweeps the blocks changed since, and
        // it hands the loaded checkpoint delta to the table rebuild so
        // the checkpoint region is read exactly once per shard.
        if recovering && matches!(kind, MethodKind::Pdl { .. }) {
            let mut chips = chips;
            let prechecks: Vec<Result<(HashSet<u64>, Option<crate::pdl::CheckpointDelta>)>> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = chips
                        .iter_mut()
                        .enumerate()
                        .map(|(s, chip)| {
                            let shard_opts = StoreOptions {
                                num_logical_pages: shard_pages(total, n, s),
                                ..opts
                            };
                            scope.spawn(move || crate::pdl::txn_precheck_fast(chip, &shard_opts))
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().expect("precheck panicked")).collect()
                });
            let mut union = HashSet::new();
            let mut deltas = Vec::with_capacity(n);
            for r in prechecks {
                let (torn, delta) = r?;
                union.extend(torn);
                deltas.push(delta);
            }
            return Self::build_shards(
                chips,
                kind,
                opts,
                recovering,
                Some(union),
                deltas,
                data_size,
            );
        }
        let no_deltas = (0..n).map(|_| None).collect();
        Self::build_shards(chips, kind, opts, recovering, None, no_deltas, data_size)
    }

    fn build_shards(
        chips: Vec<FlashChip>,
        kind: MethodKind,
        opts: StoreOptions,
        recovering: bool,
        uncommitted: Option<HashSet<u64>>,
        deltas: Vec<Option<crate::pdl::CheckpointDelta>>,
        data_size: usize,
    ) -> Result<ShardedStore> {
        let n = chips.len();
        let total = opts.num_logical_pages;
        // Per-shard recovery is embarrassingly parallel: each shard scans
        // only its own chip. Building fresh stores is cheap, but recovery
        // reads every page header, so both paths share the scoped-thread
        // fan-out (§4.5's recovery cost divided by N).
        let results: Vec<Result<Box<dyn PageStore>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = chips
                .into_iter()
                .zip(deltas)
                .enumerate()
                .map(|(s, (chip, delta))| {
                    let shard_opts =
                        StoreOptions { num_logical_pages: shard_pages(total, n, s), ..opts };
                    let uncommitted = uncommitted.clone();
                    scope.spawn(move || -> Result<Box<dyn PageStore>> {
                        match (recovering, kind) {
                            (true, MethodKind::Pdl { max_diff_size }) => match delta {
                                Some(delta) => Ok(Box::new(Pdl::recover_with_delta(
                                    chip,
                                    shard_opts,
                                    max_diff_size,
                                    uncommitted.unwrap_or_default(),
                                    delta,
                                )?)),
                                None => Ok(Box::new(Pdl::recover_with_uncommitted(
                                    chip,
                                    shard_opts,
                                    max_diff_size,
                                    uncommitted,
                                )?)),
                            },
                            (true, _) => recover_store(chip, kind, shard_opts),
                            (false, _) => build_store(chip, kind, shard_opts),
                        }
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("shard builder panicked")).collect()
        });
        let mut shards = Vec::with_capacity(n);
        for r in results {
            shards.push(Mutex::new(r?));
        }
        let busy_ns = (0..n).map(|_| AtomicU64::new(0)).collect();
        Ok(ShardedStore {
            shards,
            busy_ns,
            txn_staged_shards: Mutex::new(HashSet::new()),
            opts,
            kind,
            data_size,
        })
    }

    /// Convenience: N identically-configured chips from one config.
    pub fn with_uniform_chips(
        config: pdl_flash::FlashConfig,
        num_shards: usize,
        kind: MethodKind,
        opts: StoreOptions,
    ) -> Result<ShardedStore> {
        let chips = (0..num_shards).map(|_| FlashChip::new(config)).collect();
        ShardedStore::new(chips, kind, opts)
    }

    /// The shard that owns logical page `pid`.
    pub fn shard_of(&self, pid: u64) -> usize {
        (pid % self.shards.len() as u64) as usize
    }

    /// `pid`'s shard-local page id (the striping contract: page `p` is
    /// shard `p % N`'s local page `p / N`).
    pub fn local_pid(&self, pid: u64) -> u64 {
        pid / self.shards.len() as u64
    }

    /// The method every shard runs.
    pub fn kind(&self) -> MethodKind {
        self.kind
    }

    fn locate(&self, pid: u64) -> Result<(usize, u64)> {
        self.opts.check_pid(pid)?;
        let n = self.shards.len() as u64;
        Ok(((pid % n) as usize, pid / n))
    }

    fn lock_shard(&self, s: usize) -> std::sync::MutexGuard<'_, Box<dyn PageStore>> {
        self.shards[s].lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Run `f` against shard `s`'s store (its pids are shard-local).
    pub fn with_shard<R>(&self, s: usize, f: impl FnOnce(&mut dyn PageStore) -> R) -> R {
        let mut guard = self.lock_shard(s);
        f(guard.as_mut())
    }

    fn tracked<R>(
        &self,
        pid: u64,
        f: impl FnOnce(&mut dyn PageStore, u64) -> Result<R>,
    ) -> Result<(R, FlashStats)> {
        let (s, local) = self.locate(pid)?;
        let mut guard = self.lock_shard(s);
        let started = thread_cpu_ns();
        let before = guard.stats();
        let r = f(guard.as_mut(), local)?;
        let delta = guard.stats().delta_since(&before);
        self.busy_ns[s].fetch_add(thread_cpu_ns().saturating_sub(started), Ordering::Relaxed);
        Ok((r, delta))
    }

    /// Concurrent [`PageStore::read_page`]: locks only the owning shard
    /// and returns the flash-cost delta of the operation.
    pub fn read_page_shared(&self, pid: u64, out: &mut [u8]) -> Result<FlashStats> {
        Ok(self.tracked(pid, |s, local| s.read_page(local, out))?.1)
    }

    /// Concurrent [`PageStore::apply_update`].
    pub fn apply_update_shared(
        &self,
        pid: u64,
        page_after: &[u8],
        changes: &[ChangeRange],
    ) -> Result<FlashStats> {
        Ok(self.tracked(pid, |s, local| s.apply_update(local, page_after, changes))?.1)
    }

    /// Concurrent [`PageStore::evict_page`].
    pub fn evict_page_shared(&self, pid: u64, page: &[u8]) -> Result<FlashStats> {
        Ok(self.tracked(pid, |s, local| s.evict_page(local, page))?.1)
    }

    /// Concurrent whole-page write (update notification + reflection).
    pub fn write_page_shared(&self, pid: u64, page: &[u8]) -> Result<FlashStats> {
        Ok(self
            .tracked(pid, |s, local| {
                s.apply_update(local, page, &[ChangeRange::new(0, page.len())])?;
                s.evict_page(local, page)
            })?
            .1)
    }

    /// Write-through every shard.
    pub fn flush_shared(&self) -> Result<()> {
        for s in 0..self.shards.len() {
            self.lock_shard(s).flush()?;
        }
        Ok(())
    }

    /// Aggregate flash statistics over every shard, without `&mut`.
    pub fn stats_shared(&self) -> FlashStats {
        self.per_shard_stats().into_iter().fold(FlashStats::default(), |a, b| a + b)
    }

    /// Reset every shard chip's statistics ledger and the busy-time
    /// counters.
    pub fn reset_stats_shared(&self) {
        for s in 0..self.shards.len() {
            self.lock_shard(s).reset_stats();
        }
        self.reset_busy();
    }

    /// Per-shard flash statistics, shard order.
    pub fn per_shard_stats(&self) -> Vec<FlashStats> {
        (0..self.shards.len()).map(|s| self.lock_shard(s).stats()).collect()
    }

    /// CPU time each shard's lock has been held by `*_shared` operations
    /// since the last [`ShardedStore::reset_busy`]. The maximum entry is
    /// the engine's critical path: no thread count can push past
    /// `ops / max_busy` operations per second, so shrinking it by adding
    /// shards is exactly the concurrency sharding buys.
    pub fn per_shard_busy(&self) -> Vec<Duration> {
        self.busy_ns.iter().map(|b| Duration::from_nanos(b.load(Ordering::Relaxed))).collect()
    }

    /// Zero the per-shard busy-time counters.
    pub fn reset_busy(&self) {
        for b in &self.busy_ns {
            b.store(0, Ordering::Relaxed);
        }
    }

    /// Per-shard wear summaries, shard order.
    pub fn per_shard_wear(&self) -> Vec<WearSummary> {
        (0..self.shards.len()).map(|s| self.lock_shard(s).wear_summary()).collect()
    }

    /// Concurrent [`PageStore::spill_page`]: park a cold version's bytes
    /// on the owning shard's chip, returning the retention-ledger handle
    /// plus the flash-cost delta. The handle is shard-local; `pid` routes
    /// every later [`ShardedStore::read_spill_shared`] /
    /// [`ShardedStore::free_spill_shared`] back to the same shard, so
    /// `(pid, handle)` is globally unambiguous.
    pub fn spill_page_shared(&self, pid: u64, page: &[u8]) -> Result<(u64, FlashStats)> {
        self.tracked(pid, |s, local| s.spill_page(local, page))
    }

    /// Concurrent [`PageStore::read_spill`].
    pub fn read_spill_shared(&self, pid: u64, handle: u64, out: &mut [u8]) -> Result<FlashStats> {
        Ok(self.tracked(pid, |s, local| s.read_spill(local, handle, out))?.1)
    }

    /// Concurrent [`PageStore::free_spill`].
    pub fn free_spill_shared(&self, pid: u64, handle: u64) -> Result<FlashStats> {
        Ok(self.tracked(pid, |s, local| s.free_spill(local, handle))?.1)
    }

    /// Whether the shard method supports version spill (uniform across
    /// shards: they all run the same method).
    pub fn spill_supported_shared(&self) -> bool {
        self.lock_shard(0).spill_supported()
    }

    /// Concurrent [`PageStore::prefetch`]: hint the owning shard without
    /// waiting for the reads (range-scan read-ahead).
    pub fn prefetch_shared(&self, pid: u64) -> Result<()> {
        let (s, local) = self.locate(pid)?;
        self.lock_shard(s).prefetch(local)
    }

    /// Per-shard pipeline busy time (µs) since the last stats reset,
    /// shard order. The maximum entry is the flash critical path of the
    /// engine: shards are independent chips, so simulated time advances
    /// on each in parallel.
    pub fn per_shard_pipeline_us(&self) -> Vec<u64> {
        (0..self.shards.len()).map(|s| self.lock_shard(s).pipeline_busy_us()).collect()
    }

    /// Tear down and return every shard's chip, shard order.
    pub fn into_shard_chips(self) -> Vec<FlashChip> {
        self.shards
            .into_iter()
            .map(|m| m.into_inner().unwrap_or_else(|e| e.into_inner()).into_chips())
            .flat_map(|chips| {
                debug_assert_eq!(chips.len(), 1, "shards are single-chip stores");
                chips
            })
            .collect()
    }
}

impl PageStore for ShardedStore {
    fn options(&self) -> &StoreOptions {
        &self.opts
    }

    fn read_page(&mut self, pid: u64, out: &mut [u8]) -> Result<()> {
        let (s, local) = self.locate(pid)?;
        self.shards[s].get_mut().unwrap_or_else(|e| e.into_inner()).read_page(local, out)
    }

    fn apply_update(&mut self, pid: u64, page_after: &[u8], changes: &[ChangeRange]) -> Result<()> {
        let (s, local) = self.locate(pid)?;
        self.shards[s]
            .get_mut()
            .unwrap_or_else(|e| e.into_inner())
            .apply_update(local, page_after, changes)
    }

    fn evict_page(&mut self, pid: u64, page: &[u8]) -> Result<()> {
        let (s, local) = self.locate(pid)?;
        self.shards[s].get_mut().unwrap_or_else(|e| e.into_inner()).evict_page(local, page)
    }

    fn flush(&mut self) -> Result<()> {
        for shard in &mut self.shards {
            shard.get_mut().unwrap_or_else(|e| e.into_inner()).flush()?;
        }
        Ok(())
    }

    fn prefetch(&mut self, pid: u64) -> Result<()> {
        let (s, local) = self.locate(pid)?;
        self.shards[s].get_mut().unwrap_or_else(|e| e.into_inner()).prefetch(local)
    }

    fn pipeline_busy_us(&self) -> u64 {
        // Shards are independent chips: the engine's flash critical path
        // is the slowest shard, not the sum.
        self.per_shard_pipeline_us().into_iter().max().unwrap_or(0)
    }

    // --- pdl-txn routing (exclusive commit batches, one txn at a time).
    // The concurrent group-commit coordinator in pdl-storage drives the
    // per-shard stores through `with_shard` instead, batching many
    // transactions' records per shard flush.

    fn txn_supported(&self) -> bool {
        self.lock_shard(0).txn_supported()
    }

    fn txn_reserve(&mut self, pages: u64) -> Result<()> {
        for shard in &mut self.shards {
            shard.get_mut().unwrap_or_else(|e| e.into_inner()).txn_reserve(pages)?;
        }
        Ok(())
    }

    fn txn_stage(&mut self, pid: u64, page: &[u8], txn: u64) -> Result<()> {
        let (s, local) = self.locate(pid)?;
        self.txn_staged_shards.get_mut().unwrap_or_else(|e| e.into_inner()).insert(s);
        self.shards[s].get_mut().unwrap_or_else(|e| e.into_inner()).txn_stage(local, page, txn)
    }

    fn txn_flush_stage(&mut self) -> Result<()> {
        let staged: Vec<usize> = self
            .txn_staged_shards
            .get_mut()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .copied()
            .collect();
        for s in staged {
            self.shards[s].get_mut().unwrap_or_else(|e| e.into_inner()).txn_flush_stage()?;
        }
        Ok(())
    }

    fn txn_append_commit(&mut self, txn: u64) -> Result<()> {
        // One record per involved shard: recovery treats the commit as
        // torn unless every shard carrying the transaction's tags also
        // carries a record.
        let staged: Vec<usize> = self
            .txn_staged_shards
            .get_mut()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .copied()
            .collect();
        for s in staged {
            self.shards[s].get_mut().unwrap_or_else(|e| e.into_inner()).txn_append_commit(txn)?;
        }
        Ok(())
    }

    fn txn_append_commit_epoch(&mut self, txns: &[u64]) -> Result<()> {
        // One epoch record per involved shard, mirroring
        // `txn_append_commit`. The concurrent group-commit coordinator
        // instead drives per-shard stores through `with_shard` with each
        // shard's own involved list, so only transactions that actually
        // staged on a shard are proven there.
        let staged: Vec<usize> = self
            .txn_staged_shards
            .get_mut()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .copied()
            .collect();
        for s in staged {
            self.shards[s]
                .get_mut()
                .unwrap_or_else(|e| e.into_inner())
                .txn_append_commit_epoch(txns)?;
        }
        Ok(())
    }

    fn txn_finalize(&mut self) -> Result<()> {
        self.txn_staged_shards.get_mut().unwrap_or_else(|e| e.into_inner()).clear();
        // txn_reserve opened a batch on every shard; close them all.
        for shard in &mut self.shards {
            shard.get_mut().unwrap_or_else(|e| e.into_inner()).txn_finalize()?;
        }
        Ok(())
    }

    fn txn_id_floor(&self) -> u64 {
        (0..self.shards.len()).map(|s| self.lock_shard(s).txn_id_floor()).max().unwrap_or(1)
    }

    fn spill_supported(&self) -> bool {
        self.lock_shard(0).spill_supported()
    }

    fn spill_page(&mut self, pid: u64, page: &[u8]) -> Result<u64> {
        let (s, local) = self.locate(pid)?;
        self.shards[s].get_mut().unwrap_or_else(|e| e.into_inner()).spill_page(local, page)
    }

    fn read_spill(&mut self, pid: u64, handle: u64, out: &mut [u8]) -> Result<()> {
        let (s, local) = self.locate(pid)?;
        self.shards[s].get_mut().unwrap_or_else(|e| e.into_inner()).read_spill(local, handle, out)
    }

    fn free_spill(&mut self, pid: u64, handle: u64) -> Result<()> {
        let (s, local) = self.locate(pid)?;
        self.shards[s].get_mut().unwrap_or_else(|e| e.into_inner()).free_spill(local, handle)
    }

    fn txn_stage_struct_roots(
        &mut self,
        roots: &crate::page_store::StructRootsSnapshot,
        txn: u64,
    ) -> Result<()> {
        // Structure roots live on shard 0's root region. Marking shard 0
        // staged guarantees it also gets a commit record, so the winner
        // check at recovery can prove the record's transaction committed
        // from shard 0's own tables (the torn verdict is already global).
        self.txn_staged_shards.get_mut().unwrap_or_else(|e| e.into_inner()).insert(0);
        self.shards[0]
            .get_mut()
            .unwrap_or_else(|e| e.into_inner())
            .txn_stage_struct_roots(roots, txn)
    }

    fn struct_roots(&self) -> Option<crate::page_store::StructRootsSnapshot> {
        self.lock_shard(0).struct_roots()
    }

    fn struct_root_log_space(&self) -> u64 {
        self.lock_shard(0).struct_root_log_space()
    }

    fn per_shard_busy_us(&self) -> Vec<u64> {
        self.per_shard_pipeline_us()
    }

    fn checkpoint(&mut self) -> Result<()> {
        for shard in &mut self.shards {
            shard.get_mut().unwrap_or_else(|e| e.into_inner()).checkpoint()?;
        }
        Ok(())
    }

    fn chip(&self) -> &FlashChip {
        panic!(
            "ShardedStore spans {} chips and has no single chip; \
             use stats()/wear_summary()/with_shard()",
            self.shards.len()
        );
    }

    fn chip_mut(&mut self) -> &mut FlashChip {
        panic!(
            "ShardedStore spans {} chips and has no single chip; \
             use reset_stats()/with_shard()",
            self.shards.len()
        );
    }

    fn stats(&self) -> FlashStats {
        self.stats_shared()
    }

    fn reset_stats(&mut self) {
        for shard in &mut self.shards {
            shard.get_mut().unwrap_or_else(|e| e.into_inner()).reset_stats();
        }
    }

    fn wear_summary(&self) -> WearSummary {
        WearSummary::merged(self.per_shard_wear())
    }

    fn num_shards(&self) -> usize {
        self.shards.len()
    }

    fn name(&self) -> String {
        format!("Sharded x{} [{}]", self.shards.len(), self.kind.label())
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        // Sum per-shard counters by key, preserving shard 0's key order.
        let mut keys: Vec<&'static str> = Vec::new();
        let mut sums: Vec<u64> = Vec::new();
        for s in 0..self.shards.len() {
            for (k, v) in self.lock_shard(s).counters() {
                match keys.iter().position(|x| *x == k) {
                    Some(i) => sums[i] += v,
                    None => {
                        keys.push(k);
                        sums.push(v);
                    }
                }
            }
        }
        keys.into_iter().zip(sums).collect()
    }

    fn into_chips(self: Box<Self>) -> Vec<FlashChip> {
        self.into_shard_chips()
    }

    fn logical_page_size(&self) -> usize {
        self.opts.frames_per_page as usize * self.data_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdl_flash::FlashConfig;

    fn sharded(n: usize, pages: u64) -> ShardedStore {
        ShardedStore::with_uniform_chips(
            FlashConfig::tiny(),
            n,
            MethodKind::Pdl { max_diff_size: 64 },
            StoreOptions::new(pages),
        )
        .unwrap()
    }

    #[test]
    fn shard_pages_partition_the_space() {
        for total in [1u64, 5, 16, 17, 100] {
            for n in 1..=4usize {
                if (total as usize) < n {
                    continue;
                }
                let sum: u64 = (0..n).map(|s| shard_pages(total, n, s)).sum();
                assert_eq!(sum, total, "total {total} over {n} shards");
            }
        }
        assert_eq!(shard_pages(10, 4, 0), 3); // pids 0, 4, 8
        assert_eq!(shard_pages(10, 4, 1), 3); // pids 1, 5, 9
        assert_eq!(shard_pages(10, 4, 2), 2); // pids 2, 6
        assert_eq!(shard_pages(10, 4, 3), 2); // pids 3, 7
    }

    #[test]
    fn striping_routes_and_round_trips() {
        let mut s = sharded(3, 12);
        assert_eq!(s.num_shards(), 3);
        assert_eq!(s.shard_of(7), 1);
        let size = s.logical_page_size();
        for pid in 0..12u64 {
            let page = vec![pid as u8 + 1; size];
            s.write_page(pid, &page).unwrap();
        }
        let mut out = vec![0u8; size];
        for pid in 0..12u64 {
            s.read_page(pid, &mut out).unwrap();
            assert_eq!(out, vec![pid as u8 + 1; size], "pid {pid}");
        }
        assert!(s.read_page(12, &mut out).is_err(), "out-of-range pid");
    }

    #[test]
    fn shared_ops_report_flash_deltas() {
        let s = sharded(2, 8);
        let size = s.logical_page_size();
        let page = vec![7u8; size];
        let d = s.write_page_shared(3, &page).unwrap();
        assert!(d.total().writes > 0, "{d:?}");
        let mut out = vec![0u8; size];
        let d = s.read_page_shared(3, &mut out).unwrap();
        assert_eq!(out, page);
        assert!(d.total().reads > 0, "{d:?}");
        // The delta only covers the owning shard: aggregate equals sum.
        let agg = s.stats();
        let per: FlashStats =
            s.per_shard_stats().into_iter().fold(FlashStats::default(), |a, b| a + b);
        assert_eq!(agg, per);
    }

    #[test]
    fn aggregates_span_all_shards() {
        let mut s = sharded(4, 16);
        let size = s.logical_page_size();
        for pid in 0..16u64 {
            s.write_page(pid, &vec![0xA5; size]).unwrap();
        }
        s.flush().unwrap();
        let stats = PageStore::stats(&s);
        assert!(stats.total().writes >= 16);
        let wear = PageStore::wear_summary(&s);
        assert_eq!(wear.num_blocks, 4 * FlashConfig::tiny().geometry.num_blocks);
        PageStore::reset_stats(&mut s);
        assert_eq!(PageStore::stats(&s).total().total_ops(), 0);
        let counters = PageStore::counters(&s);
        assert!(!counters.is_empty(), "PDL shards expose counters");
    }

    #[test]
    fn recover_restores_every_shard() {
        let mut s = sharded(4, 16);
        let size = s.logical_page_size();
        for pid in 0..16u64 {
            s.write_page(pid, &vec![pid as u8; size]).unwrap();
        }
        s.flush().unwrap();
        let chips = s.into_shard_chips();
        assert_eq!(chips.len(), 4);
        let mut back = ShardedStore::recover(
            chips,
            MethodKind::Pdl { max_diff_size: 64 },
            StoreOptions::new(16),
        )
        .unwrap();
        let mut out = vec![0u8; size];
        for pid in 0..16u64 {
            back.read_page(pid, &mut out).unwrap();
            assert_eq!(out, vec![pid as u8; size], "pid {pid}");
        }
    }

    #[test]
    fn single_shard_behaves_like_into_chip() {
        let mut s = sharded(1, 6);
        let size = s.logical_page_size();
        s.write_page(2, &vec![9u8; size]).unwrap();
        s.flush().unwrap();
        let boxed: Box<dyn PageStore> = Box::new(s);
        let chip = boxed.into_chip(); // n == 1: the default into_chip works
        let mut back =
            crate::recover_store(chip, MethodKind::Pdl { max_diff_size: 64 }, StoreOptions::new(6))
                .unwrap();
        let mut out = vec![0u8; size];
        back.read_page(2, &mut out).unwrap();
        assert_eq!(out, vec![9u8; size]);
    }

    #[test]
    fn rejects_bad_configurations() {
        assert!(ShardedStore::new(Vec::new(), MethodKind::Opu, StoreOptions::new(4)).is_err());
        // More shards than pages.
        assert!(ShardedStore::with_uniform_chips(
            FlashConfig::tiny(),
            5,
            MethodKind::Opu,
            StoreOptions::new(4),
        )
        .is_err());
    }

    #[test]
    #[should_panic(expected = "no single chip")]
    fn chip_access_panics_on_multi_shard() {
        let s = sharded(2, 8);
        let _ = PageStore::chip(&s);
    }

    #[test]
    fn gc_policy_propagates_to_every_shard() {
        use crate::ftl::GcPolicy;
        const PAGES: usize = 16;
        let mut s = ShardedStore::with_uniform_chips(
            FlashConfig::tiny(),
            2,
            MethodKind::Pdl { max_diff_size: 64 },
            StoreOptions::new(PAGES as u64).with_gc_policy(GcPolicy::HotCold),
        )
        .unwrap();
        assert_eq!(s.options().gc_policy, GcPolicy::HotCold);
        // The real witness: every per-shard store was *constructed* with
        // the policy (each constructor hands opts.gc_policy to its
        // allocator — covered by the method unit tests), not just the
        // facade echoing its own input.
        for shard in 0..s.num_shards() {
            s.with_shard(shard, |st| {
                assert_eq!(st.options().gc_policy, GcPolicy::HotCold, "shard {shard}");
            });
        }
        // And the engine stays correct when churned into GC under the
        // policy: a hot 4-page set over write-once cold pages.
        let size = s.logical_page_size();
        let mut truth: Vec<Vec<u8>> = (0..PAGES).map(|i| vec![i as u8; size]).collect();
        for (pid, t) in truth.iter().enumerate() {
            s.write_page(pid as u64, t).unwrap();
        }
        for round in 0..600u32 {
            let pid = (round % 4) as usize;
            let at = (round as usize * 13) % (size - 16);
            truth[pid][at..at + 16].fill(round as u8);
            let p = truth[pid].clone();
            s.write_page(pid as u64, &p).unwrap();
        }
        let counters = PageStore::counters(&s);
        let gc_runs = counters.iter().find(|(k, _)| *k == "gc_runs").map(|(_, v)| *v).unwrap();
        assert!(gc_runs > 0, "churn must have garbage-collected");
        let mut out = vec![0u8; size];
        for pid in 0..PAGES {
            s.read_page(pid as u64, &mut out).unwrap();
            assert_eq!(out, truth[pid], "pid {pid}");
        }
    }
}
