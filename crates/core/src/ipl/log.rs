//! Update-log records, log sectors and the per-page log buffer for IPL.
//!
//! "Whenever logical pages are updated, the update logs of multiple logical
//! pages are first collected into a write buffer in memory. When this
//! buffer is full, it is written into a single physical page" (§3). As in
//! Lee & Moon, the in-memory buffer is per logical page and its size is a
//! fixed fraction of the page ("we set the size of log buffer for each
//! logical page to the size of a logical page x 1/16", footnote 13); a
//! full buffer is flushed as one *log sector* into the current log page of
//! the block.
//!
//! Sector layout (within a `sector_size`-byte slot of a log page):
//!
//! ```text
//! pid    : u64 LE      (u64::MAX = slot still erased)
//! count  : u16 LE      number of records
//! records: (offset u16 LE, len u16 LE, bytes[len])*
//! ```

use crate::error::CoreError;
use crate::Result;
use std::collections::VecDeque;

/// Bytes of sector overhead before records start.
pub(crate) const SECTOR_HEADER: usize = 10;
/// Per-record metadata cost.
pub(crate) const RECORD_OVERHEAD: usize = 4;

/// One update-log record: a changed byte range of a logical page.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct LogRecord {
    pub offset: u32,
    pub bytes: Vec<u8>,
}

impl LogRecord {
    pub fn cost(&self) -> usize {
        RECORD_OVERHEAD + self.bytes.len()
    }
}

/// Encode a sector image for `pid` from `records`. The image is
/// `sector_size` bytes with erased (0xFF) tail space.
pub(crate) fn encode_sector(pid: u64, records: &[LogRecord], sector_size: usize) -> Vec<u8> {
    let mut out = vec![0xFFu8; sector_size];
    out[0..8].copy_from_slice(&pid.to_le_bytes());
    out[8..10].copy_from_slice(&(records.len() as u16).to_le_bytes());
    let mut at = SECTOR_HEADER;
    for r in records {
        out[at..at + 2].copy_from_slice(&(r.offset as u16).to_le_bytes());
        out[at + 2..at + 4].copy_from_slice(&(r.bytes.len() as u16).to_le_bytes());
        out[at + 4..at + 4 + r.bytes.len()].copy_from_slice(&r.bytes);
        at += r.cost();
    }
    debug_assert!(at <= sector_size, "sector overflow");
    out
}

/// Decode one sector slot. Returns `None` for an erased slot.
pub(crate) fn decode_sector(bytes: &[u8]) -> Result<Option<(u64, Vec<LogRecord>)>> {
    if bytes.len() < SECTOR_HEADER {
        return Err(CoreError::Corruption("log sector shorter than its header".into()));
    }
    let pid = u64::from_le_bytes(bytes[0..8].try_into().unwrap());
    if pid == u64::MAX {
        return Ok(None);
    }
    let count = u16::from_le_bytes(bytes[8..10].try_into().unwrap()) as usize;
    let mut records = Vec::with_capacity(count);
    let mut at = SECTOR_HEADER;
    for _ in 0..count {
        if at + RECORD_OVERHEAD > bytes.len() {
            return Err(CoreError::Corruption("log record header truncated".into()));
        }
        let offset = u16::from_le_bytes(bytes[at..at + 2].try_into().unwrap()) as u32;
        let len = u16::from_le_bytes(bytes[at + 2..at + 4].try_into().unwrap()) as usize;
        if at + RECORD_OVERHEAD + len > bytes.len() {
            return Err(CoreError::Corruption("log record payload truncated".into()));
        }
        records.push(LogRecord { offset, bytes: bytes[at + 4..at + 4 + len].to_vec() });
        at += RECORD_OVERHEAD + len;
    }
    Ok(Some((pid, records)))
}

/// The in-memory log buffer of one logical page.
#[derive(Debug, Default)]
pub(crate) struct LogBuf {
    records: VecDeque<LogRecord>,
    bytes: usize,
}

impl LogBuf {
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total record cost currently buffered (diagnostics).
    #[allow(dead_code)]
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    pub fn append(&mut self, record: LogRecord) {
        self.bytes += record.cost();
        self.records.push_back(record);
    }

    /// Whether a full sector (payload capacity `cap`) can be packed.
    pub fn has_full_sector(&self, cap: usize) -> bool {
        self.bytes >= cap
    }

    /// Pack up to `cap` payload bytes of records, splitting the boundary
    /// record if necessary so that flush counts follow the paper's
    /// `ceil(size_of_update_logs / size_of_log_buffer)` model.
    pub fn pack(&mut self, cap: usize) -> Vec<LogRecord> {
        let mut taken = Vec::new();
        let mut used = 0usize;
        while let Some(front) = self.records.front_mut() {
            let cost = front.cost();
            if used + cost <= cap {
                used += cost;
                let r = self.records.pop_front().expect("front exists");
                taken.push(r);
            } else {
                let space = cap - used;
                if space > RECORD_OVERHEAD {
                    // Split: emit a prefix of the record now. The remainder
                    // keeps its own record overhead, so recompute below.
                    let n = space - RECORD_OVERHEAD;
                    let head: Vec<u8> = front.bytes.drain(..n).collect();
                    taken.push(LogRecord { offset: front.offset, bytes: head });
                    front.offset += n as u32;
                }
                break;
            }
        }
        self.bytes = self.records.iter().map(LogRecord::cost).sum();
        taken
    }

    /// Drain everything (eviction flush of a partial sector).
    pub fn drain_all(&mut self) -> Vec<LogRecord> {
        self.bytes = 0;
        self.records.drain(..).collect()
    }

    /// Apply the buffered records, in order, to a page image.
    pub fn apply_to(&self, page: &mut [u8]) {
        for r in &self.records {
            let at = r.offset as usize;
            page[at..at + r.bytes.len()].copy_from_slice(&r.bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(offset: u32, len: usize, fill: u8) -> LogRecord {
        LogRecord { offset, bytes: vec![fill; len] }
    }

    #[test]
    fn sector_round_trip() {
        let records = vec![rec(3, 5, 1), rec(100, 20, 2)];
        let img = encode_sector(42, &records, 128);
        let (pid, back) = decode_sector(&img).unwrap().unwrap();
        assert_eq!(pid, 42);
        assert_eq!(back, records);
    }

    #[test]
    fn erased_sector_decodes_none() {
        let img = vec![0xFFu8; 128];
        assert!(decode_sector(&img).unwrap().is_none());
    }

    #[test]
    fn buffer_accounts_costs() {
        let mut b = LogBuf::default();
        b.append(rec(0, 10, 1));
        assert_eq!(b.bytes(), 14);
        b.append(rec(20, 6, 2));
        assert_eq!(b.bytes(), 24);
        assert!(!b.has_full_sector(25));
        assert!(b.has_full_sector(24));
    }

    #[test]
    fn pack_takes_whole_records_when_they_fit() {
        let mut b = LogBuf::default();
        b.append(rec(0, 10, 1));
        b.append(rec(20, 10, 2));
        let taken = b.pack(28);
        assert_eq!(taken.len(), 2);
        assert!(b.is_empty());
        assert_eq!(b.bytes(), 0);
    }

    #[test]
    fn pack_splits_boundary_record() {
        let mut b = LogBuf::default();
        b.append(rec(0, 100, 7));
        let taken = b.pack(54); // 4 + 50 payload
        assert_eq!(taken.len(), 1);
        assert_eq!(taken[0].bytes.len(), 50);
        assert_eq!(taken[0].offset, 0);
        // Remainder keeps the tail at the right offset and re-pays the
        // record overhead.
        assert_eq!(b.bytes(), 4 + 50);
        let rest = b.drain_all();
        assert_eq!(rest[0].offset, 50);
        assert_eq!(rest[0].bytes.len(), 50);
    }

    #[test]
    fn split_then_apply_equals_original_update() {
        let mut page = vec![0u8; 256];
        let mut b = LogBuf::default();
        let mut update = vec![0u8; 100];
        for (i, v) in update.iter_mut().enumerate() {
            *v = i as u8;
        }
        b.append(LogRecord { offset: 30, bytes: update.clone() });
        let first = b.pack(54);
        let rest = b.drain_all();
        for r in first.iter().chain(rest.iter()) {
            let at = r.offset as usize;
            page[at..at + r.bytes.len()].copy_from_slice(&r.bytes);
        }
        assert_eq!(&page[30..130], &update[..]);
    }

    #[test]
    fn apply_to_respects_order() {
        let mut b = LogBuf::default();
        b.append(rec(0, 4, 1));
        b.append(rec(2, 4, 2)); // overlaps; later wins
        let mut page = vec![0u8; 8];
        b.apply_to(&mut page);
        assert_eq!(page, [1, 1, 2, 2, 2, 2, 0, 0]);
    }

    #[test]
    fn decode_rejects_truncation() {
        let records = vec![rec(0, 30, 9)];
        let img = encode_sector(1, &records, 64);
        assert!(decode_sector(&img[..20]).is_err());
    }
}
