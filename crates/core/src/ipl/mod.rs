//! IPL — **in-page logging** (Lee & Moon, SIGMOD 2007), the log-based
//! baseline of the paper (§3).
//!
//! IPL "divides the pages in each block into a fixed number of original
//! pages and log pages. It writes the update logs of a logical page into
//! only the log pages in the block containing the original (physical) page
//! of the logical page." When a block runs out of log space, the original
//! pages are *merged* with their logs and written into a new block; the old
//! block is erased.
//!
//! `IPL (y)` reserves `y` bytes of log space per block: the paper evaluates
//! `y = 18 Kbytes` (9 log pages of 64) and `y = 64 Kbytes` (32 log pages).
//!
//! IPL is **tightly coupled** with the storage system: every update command
//! must be reported through [`PageStore::apply_update`], which appends
//! update-log records to the page's in-memory log buffer (of size
//! `logical page size / 16`) and writes full buffers to flash as log
//! sectors. Evicting a dirty page flushes its partial buffer; the data
//! page itself is only rewritten at merge time.

mod log;

use crate::error::CoreError;
use crate::ftl::{make_spare, make_spare_preserving, GcPolicy};
use crate::page_store::{ChangeRange, MethodKind, PageStore, StoreOptions};
use crate::Result;
use log::{LogBuf, LogRecord, RECORD_OVERHEAD, SECTOR_HEADER};
use pdl_flash::{BlockId, FlashChip, OpContext, PageKind, Ppn};
use std::collections::{HashMap, VecDeque};

const NONE: u32 = u32::MAX;

/// Per-logical-block log-region state.
#[derive(Clone, Debug, Default)]
struct LogRegion {
    sectors_used: u32,
    /// For each log page, the set of pids having at least one sector there
    /// (so reads only touch log pages that matter).
    page_pids: Vec<Vec<u64>>,
}

/// In-page logging store.
pub struct Ipl {
    chip: FlashChip,
    opts: StoreOptions,
    /// Log pages per block (`y / data_size`).
    log_pages: u32,
    /// Data frames per block.
    data_frames: u32,
    /// Logical pages per block (`data_frames / frames_per_page`).
    lppb: u32,
    /// Log sector size: `logical_page_size / 16`.
    sector_size: usize,
    /// Sector slots per log page.
    sectors_per_log_page: u32,
    /// Logical block -> physical block.
    block_map: Vec<u32>,
    free_blocks: VecDeque<u32>,
    /// Merge-target selection policy. IPL's block structure already
    /// separates hot update traffic (log pages) from cold data pages, so
    /// only the wear-aware policy changes behaviour here: it picks the
    /// least-worn free block as each merge target instead of FIFO.
    policy: GcPolicy,
    regions: Vec<LogRegion>,
    bufs: HashMap<u64, LogBuf>,
    loaded: Vec<bool>,
    ts: u64,
    // Counters.
    sector_flushes: u64,
    merges: u64,
    direct_loads: u64,
    bad_blocks: u64,
}

/// Geometry derived from `log_bytes_per_block`.
struct IplLayout {
    log_pages: u32,
    data_frames: u32,
    lppb: u32,
    sector_size: usize,
    sectors_per_log_page: u32,
    num_logical_blocks: u32,
}

impl Ipl {
    fn layout(chip: &FlashChip, opts: &StoreOptions, log_bytes: usize) -> Result<IplLayout> {
        let g = chip.geometry();
        let ds = g.data_size;
        if log_bytes == 0 || !log_bytes.is_multiple_of(ds) {
            return Err(CoreError::BadConfig(format!(
                "IPL log region of {log_bytes} bytes is not a multiple of the {ds}-byte page"
            )));
        }
        let log_pages = (log_bytes / ds) as u32;
        if log_pages >= g.pages_per_block {
            return Err(CoreError::BadConfig(format!(
                "IPL log region of {log_pages} pages leaves no data pages in a {}-page block",
                g.pages_per_block
            )));
        }
        let k = opts.frames_per_page;
        if 16 % k != 0 {
            return Err(CoreError::BadConfig(format!(
                "frames_per_page {k} must divide 16 for the 1/16-page log sector"
            )));
        }
        let data_frames = g.pages_per_block - log_pages;
        let lppb = data_frames / k;
        if lppb == 0 {
            return Err(CoreError::BadConfig(
                "a logical page does not fit a block's data region".into(),
            ));
        }
        let logical_page = opts.logical_page_size(ds);
        let sector_size = logical_page / 16;
        if sector_size <= SECTOR_HEADER + RECORD_OVERHEAD {
            return Err(CoreError::BadConfig(format!(
                "log sector of {sector_size} bytes cannot hold any record"
            )));
        }
        let sectors_per_log_page = (ds / sector_size) as u32;
        let num_logical_blocks = opts.num_logical_pages.div_ceil(lppb as u64) as u32;
        if num_logical_blocks + 1 > g.num_blocks {
            return Err(CoreError::BadConfig(format!(
                "{num_logical_blocks} logical blocks (+1 merge spare) exceed {} physical blocks",
                g.num_blocks
            )));
        }
        Ok(IplLayout {
            log_pages,
            data_frames,
            lppb,
            sector_size,
            sectors_per_log_page,
            num_logical_blocks,
        })
    }

    /// Create an IPL store over a fresh chip. `log_bytes_per_block` is the
    /// paper's `y` parameter.
    pub fn new(mut chip: FlashChip, opts: StoreOptions, log_bytes_per_block: usize) -> Result<Ipl> {
        opts.validate(&chip)?;
        let l = Self::layout(&chip, &opts, log_bytes_per_block)?;
        // Log pages take one partial program per sector: sector-programmable
        // flash, as in Lee & Moon's prototype.
        if chip.config().nop_data < l.sectors_per_log_page as u8 {
            chip.set_nop_data(l.sectors_per_log_page as u8);
        }
        let block_map: Vec<u32> = (0..l.num_logical_blocks).collect();
        let free_blocks: VecDeque<u32> =
            (l.num_logical_blocks..chip.geometry().num_blocks).collect();
        let regions = (0..l.num_logical_blocks)
            .map(|_| LogRegion {
                sectors_used: 0,
                page_pids: vec![Vec::new(); l.log_pages as usize],
            })
            .collect();
        Ok(Ipl {
            opts,
            log_pages: l.log_pages,
            data_frames: l.data_frames,
            lppb: l.lppb,
            sector_size: l.sector_size,
            sectors_per_log_page: l.sectors_per_log_page,
            block_map,
            free_blocks,
            policy: opts.gc_policy,
            regions,
            bufs: HashMap::new(),
            loaded: vec![false; opts.num_logical_pages as usize],
            ts: 1,
            sector_flushes: 0,
            merges: 0,
            direct_loads: 0,
            bad_blocks: 0,
            chip,
        })
    }

    /// The `y` parameter in bytes.
    pub fn log_bytes_per_block(&self) -> usize {
        self.log_pages as usize * self.chip.geometry().data_size
    }

    /// Rebuild an IPL store from chip contents after a crash.
    ///
    /// One scan over the spare areas reassigns physical blocks to logical
    /// blocks. A crash during a merge can leave *two* physical blocks
    /// claiming the same logical block; the newer one (by data-page time
    /// stamp) wins only if its data region is complete — otherwise the
    /// merge had not finished and the old block, whose data and logs are
    /// intact, remains authoritative. The losing block is erased,
    /// completing (or rolling back) the interrupted merge. In-memory log
    /// buffers are lost, like any unflushed write buffer.
    pub fn recover(
        mut chip: FlashChip,
        opts: StoreOptions,
        log_bytes_per_block: usize,
    ) -> Result<Ipl> {
        opts.validate(&chip)?;
        let l = Self::layout(&chip, &opts, log_bytes_per_block)?;
        if chip.config().nop_data < l.sectors_per_log_page as u8 {
            chip.set_nop_data(l.sectors_per_log_page as u8);
        }
        let g = chip.geometry();
        let k = opts.frames_per_page as u64;

        #[derive(Default, Clone)]
        struct BlockScan {
            lb: Option<u64>,
            data_pages: u32,
            max_ts: u64,
            pids: Vec<u64>,
            has_any: bool,
        }

        chip.set_context(OpContext::Recovery);
        let scan_t0 = chip.sim_now_us();
        let mut scans: Vec<BlockScan> = vec![BlockScan::default(); g.num_blocks as usize];
        for p in 0..g.num_pages() {
            let ppn = Ppn(p);
            let b = g.block_of(ppn).0 as usize;
            let Some(info) = chip.read_spare(ppn)? else { continue };
            match info.kind {
                PageKind::Free => {}
                PageKind::IplData => {
                    let pid = info.tag / k;
                    let lb = pid / l.lppb as u64;
                    let s = &mut scans[b];
                    if s.lb.is_some_and(|cur| cur != lb) {
                        chip.set_context(OpContext::User);
                        return Err(CoreError::Corruption(format!(
                            "block {b} holds pages of two logical blocks"
                        )));
                    }
                    s.lb = Some(lb);
                    s.data_pages += 1;
                    s.max_ts = s.max_ts.max(info.ts);
                    if !s.pids.contains(&pid) {
                        s.pids.push(pid);
                    }
                    s.has_any = true;
                }
                PageKind::IplLog => {
                    let lb = info.tag;
                    let s = &mut scans[b];
                    if s.lb.is_some_and(|cur| cur != lb) {
                        chip.set_context(OpContext::User);
                        return Err(CoreError::Corruption(format!(
                            "block {b} holds log pages of a foreign logical block"
                        )));
                    }
                    s.lb = Some(lb);
                    s.has_any = true;
                }
                other => {
                    chip.set_context(OpContext::User);
                    return Err(CoreError::Corruption(format!(
                        "IPL recovery found a {other:?} page at {ppn}"
                    )));
                }
            }
        }

        // Resolve logical-block ownership.
        let mut block_map = vec![NONE; l.num_logical_blocks as usize];
        let mut losers: Vec<u32> = Vec::new();
        let mut max_ts = 0u64;
        for b in 0..g.num_blocks as usize {
            let s = &scans[b];
            if !s.has_any {
                continue;
            }
            max_ts = max_ts.max(s.max_ts);
            let Some(lb) = s.lb else { continue };
            if lb >= l.num_logical_blocks as u64 {
                losers.push(b as u32);
                continue;
            }
            let cur = block_map[lb as usize];
            if cur == NONE {
                block_map[lb as usize] = b as u32;
                continue;
            }
            // Two claimants: the interrupted-merge rule.
            let old = &scans[cur as usize];
            let new_wins = s.max_ts > old.max_ts && s.data_pages >= old.data_pages
                || old.max_ts > s.max_ts && old.data_pages < s.data_pages;
            if new_wins {
                losers.push(cur);
                block_map[lb as usize] = b as u32;
            } else {
                losers.push(b as u32);
            }
        }
        for b in &losers {
            match chip.erase_block(BlockId(*b)) {
                Ok(()) => {}
                // A loser that fails to erase (or was already broken) is
                // retired: the broken-block filters below keep it out of
                // both the identity assignment and the free pool.
                Err(pdl_flash::FlashError::EraseFailed(_))
                | Err(pdl_flash::FlashError::BadBlock(_)) => {}
                Err(e) => return Err(e.into()),
            }
        }

        // Rebuild loaded flags and per-block log-region state.
        let mut loaded = vec![false; opts.num_logical_pages as usize];
        let mut regions: Vec<LogRegion> = (0..l.num_logical_blocks)
            .map(|_| LogRegion {
                sectors_used: 0,
                page_pids: vec![Vec::new(); l.log_pages as usize],
            })
            .collect();
        let mut page_buf = vec![0u8; g.data_size];
        let spl = l.sectors_per_log_page;
        for lb in 0..l.num_logical_blocks as usize {
            let b = block_map[lb];
            if b == NONE {
                continue;
            }
            for pid in &scans[b as usize].pids {
                if (*pid as usize) < loaded.len() {
                    loaded[*pid as usize] = true;
                }
            }
            // Scan log pages in order until the first erased sector.
            'log_pages: for i in 0..l.log_pages {
                let ppn = g.page_at(BlockId(b), l.data_frames + i);
                let info = chip.read_spare(ppn)?;
                match info.map(|s| s.kind) {
                    Some(PageKind::IplLog) => {}
                    _ => break 'log_pages,
                }
                chip.read_data(ppn, &mut page_buf)?;
                for s in 0..spl as usize {
                    let at = s * l.sector_size;
                    match log::decode_sector(&page_buf[at..at + l.sector_size]) {
                        Ok(Some((pid, _))) => {
                            regions[lb].sectors_used += 1;
                            let pids = &mut regions[lb].page_pids[i as usize];
                            if !pids.contains(&pid) {
                                pids.push(pid);
                            }
                        }
                        _ => break 'log_pages,
                    }
                }
            }
        }
        crate::page_store::obs_event(
            &mut chip,
            pdl_flash::LatencyClass::RecoveryPhase,
            "recovery",
            "recovery",
            scan_t0,
            0,
            0,
        );
        chip.set_context(OpContext::User);

        // Any logical block never written gets its identity assignment;
        // remaining blocks form the free pool.
        let mut assigned: Vec<bool> = vec![false; g.num_blocks as usize];
        for b in block_map.iter().filter(|b| **b != NONE) {
            assigned[*b as usize] = true;
        }
        for slot in block_map.iter_mut() {
            if *slot == NONE {
                let b = (0..g.num_blocks)
                    .find(|b| {
                        !assigned[*b as usize]
                            && !chip.is_broken(BlockId(*b))
                            && (!scans[*b as usize].has_any || losers.contains(b))
                    })
                    .ok_or(CoreError::StorageFull)?;
                assigned[b as usize] = true;
                *slot = b;
            }
        }
        let free_blocks: VecDeque<u32> = (0..g.num_blocks)
            .filter(|b| !assigned[*b as usize] && !chip.is_broken(BlockId(*b)))
            .collect();
        if free_blocks.is_empty() {
            return Err(CoreError::BadConfig("no spare block left for merging".into()));
        }

        Ok(Ipl {
            opts,
            log_pages: l.log_pages,
            data_frames: l.data_frames,
            lppb: l.lppb,
            sector_size: l.sector_size,
            sectors_per_log_page: spl,
            block_map,
            free_blocks,
            policy: opts.gc_policy,
            regions,
            bufs: HashMap::new(),
            loaded,
            ts: max_ts + 1,
            sector_flushes: 0,
            merges: 0,
            direct_loads: 0,
            bad_blocks: 0,
            chip,
        })
    }

    fn k(&self) -> u32 {
        self.opts.frames_per_page
    }

    /// Physical page of frame `j` of logical page `pid`.
    fn frame_ppn(&self, pid: u64, j: u32) -> Ppn {
        let lb = (pid / self.lppb as u64) as usize;
        let slot = (pid % self.lppb as u64) as u32;
        let idx = slot * self.k() + j;
        self.chip.geometry().page_at(BlockId(self.block_map[lb]), idx)
    }

    /// Physical log page `i` of logical block `lb`.
    fn log_ppn(&self, lb: usize, i: u32) -> Ppn {
        self.chip.geometry().page_at(BlockId(self.block_map[lb]), self.data_frames + i)
    }

    fn sector_payload_cap(&self) -> usize {
        self.sector_size - SECTOR_HEADER
    }

    /// Write one sector of records for `pid` into the block's log region,
    /// merging first if the region is exhausted.
    fn flush_sector(&mut self, pid: u64, records: Vec<LogRecord>) -> Result<()> {
        if records.is_empty() {
            return Ok(());
        }
        let lb = (pid / self.lppb as u64) as usize;
        let capacity = self.log_pages * self.sectors_per_log_page;
        if self.regions[lb].sectors_used == capacity {
            self.merge(lb)?;
        }
        let idx = self.regions[lb].sectors_used;
        let log_page = idx / self.sectors_per_log_page;
        let slot = idx % self.sectors_per_log_page;
        let ppn = self.log_ppn(lb, log_page);
        if slot == 0 {
            // First sector of a fresh log page: program the spare metadata
            // together with it so scans can identify the page. The spare is
            // charged as part of this same program by writing it first is
            // not possible; instead the log-page kind is programmed lazily
            // via a dedicated spare program would cost an extra write. We
            // fold it into the sector program by programming the full page
            // image (sector + spare) once.
            let g = self.chip.geometry();
            let mut img = vec![0xFFu8; g.data_size];
            let sector = log::encode_sector(pid, &records, self.sector_size);
            img[..self.sector_size].copy_from_slice(&sector);
            let spare = make_spare(g.spare_size, PageKind::IplLog, lb as u64, self.ts, &[]);
            self.chip.program_page(ppn, &img, &spare)?;
        } else {
            let sector = log::encode_sector(pid, &records, self.sector_size);
            self.chip.program_partial(ppn, (slot as usize) * self.sector_size, &sector)?;
        }
        self.regions[lb].sectors_used += 1;
        let pids = &mut self.regions[lb].page_pids[log_page as usize];
        if !pids.contains(&pid) {
            pids.push(pid);
        }
        self.sector_flushes += 1;
        Ok(())
    }

    /// Merge a logical block: read the original pages and the log pages,
    /// apply the logs, write the merged pages into a new block, then erase
    /// the old block (IPL's garbage collection, footnote 11).
    fn merge(&mut self, lb: usize) -> Result<()> {
        self.chip.set_context(OpContext::Gc);
        let t0 = self.chip.sim_now_us();
        let result = self.merge_inner(lb);
        crate::page_store::obs_event(
            &mut self.chip,
            pdl_flash::LatencyClass::GcPause,
            "gc",
            "gc",
            t0,
            self.block_map[lb] as u64,
            lb as u64,
        );
        self.chip.set_context(OpContext::User);
        result
    }

    fn merge_inner(&mut self, lb: usize) -> Result<()> {
        let g = self.chip.geometry();
        let ds = g.data_size;
        let old_block = self.block_map[lb];
        let new_block = match self.policy {
            GcPolicy::WearAware => {
                // Level wear across the pool: merge into the least-worn
                // free block instead of strict FIFO.
                let at = self
                    .free_blocks
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, b)| self.chip.erase_count(BlockId(**b)))
                    .map(|(i, _)| i)
                    .ok_or(CoreError::StorageFull)?;
                self.free_blocks.remove(at).expect("index from enumerate")
            }
            _ => self.free_blocks.pop_front().ok_or(CoreError::StorageFull)?,
        };
        // Read every used log page once, bucketing records per pid in
        // global sector order.
        let mut per_pid: HashMap<u64, Vec<LogRecord>> = HashMap::new();
        let used = self.regions[lb].sectors_used;
        let used_pages = used.div_ceil(self.sectors_per_log_page);
        let mut page_buf = vec![0u8; ds];
        for i in 0..used_pages {
            let ppn = self.log_ppn(lb, i);
            self.chip.read_data(ppn, &mut page_buf)?;
            let sectors_here =
                (used - i * self.sectors_per_log_page).min(self.sectors_per_log_page);
            for s in 0..sectors_here as usize {
                let at = s * self.sector_size;
                if let Some((pid, records)) =
                    log::decode_sector(&page_buf[at..at + self.sector_size])?
                {
                    per_pid.entry(pid).or_default().extend(records);
                }
            }
        }
        // Rebuild and rewrite every loaded logical page of the block.
        let ts = self.ts;
        self.ts += 1;
        let k = self.k();
        let mut logical = vec![0u8; self.opts.logical_page_size(ds)];
        let mut fbuf = pdl_flash::PageBuf::for_chip(&self.chip);
        let first_pid = lb as u64 * self.lppb as u64;
        for slot in 0..self.lppb as u64 {
            let pid = first_pid + slot;
            if pid >= self.opts.num_logical_pages || !self.loaded[pid as usize] {
                continue;
            }
            // Original checksum of each frame that failed verification: the
            // merge applies logs on top of bytes it cannot trust, so the
            // merged frame keeps the *stale* checksum — a later read still
            // detects the damage instead of having it laundered by the
            // rewrite.
            let mut stale_csum: Vec<Option<u32>> = vec![None; k as usize];
            for j in 0..k {
                let ppn = self.frame_ppn(pid, j);
                let slice = &mut logical[(j as usize) * ds..(j as usize + 1) * ds];
                if self.opts.verify_checksums {
                    self.chip.read_full(ppn, &mut fbuf)?;
                    if self.chip.verify_read(ppn, &fbuf.data).is_err() {
                        stale_csum[j as usize] = fbuf.spare_info().map(|i| i.checksum);
                    }
                    slice.copy_from_slice(&fbuf.data);
                } else {
                    self.chip.read_data(ppn, slice)?;
                }
            }
            if let Some(records) = per_pid.get(&pid) {
                for r in records {
                    let at = r.offset as usize;
                    logical[at..at + r.bytes.len()].copy_from_slice(&r.bytes);
                }
            }
            for j in 0..k {
                let idx = (slot as u32) * k + j;
                let ppn = g.page_at(BlockId(new_block), idx);
                let frame_data = &logical[(j as usize) * ds..(j as usize + 1) * ds];
                let tag = pid * k as u64 + j as u64;
                let spare = match stale_csum[j as usize] {
                    Some(csum) => make_spare_preserving(
                        g.spare_size,
                        &pdl_flash::SpareInfo::new(PageKind::IplData, tag, ts, csum),
                    ),
                    None => make_spare(g.spare_size, PageKind::IplData, tag, ts, frame_data),
                };
                self.chip.program_page(ppn, frame_data, &spare)?;
            }
        }
        // Switch over, then retire the old block.
        self.block_map[lb] = new_block;
        match self.chip.erase_block(BlockId(old_block)) {
            Ok(()) => self.free_blocks.push_back(old_block),
            Err(pdl_flash::FlashError::EraseFailed(_)) => {
                // Bad-block management: the merged data lives in the new
                // block; the worn-out block simply leaves the pool.
                self.bad_blocks += 1;
            }
            Err(e) => return Err(e.into()),
        }
        let spl = self.sectors_per_log_page;
        self.regions[lb] =
            LogRegion { sectors_used: 0, page_pids: vec![Vec::new(); self.log_pages as usize] };
        debug_assert_eq!(spl, self.sectors_per_log_page);
        self.merges += 1;
        Ok(())
    }
}

impl PageStore for Ipl {
    fn options(&self) -> &StoreOptions {
        &self.opts
    }

    fn read_page(&mut self, pid: u64, out: &mut [u8]) -> Result<()> {
        self.opts.check_pid(pid)?;
        let ds = self.chip.geometry().data_size;
        self.opts.check_page_buf(ds, out)?;
        if !self.loaded[pid as usize] {
            out.fill(0);
            return Ok(());
        }
        // Read the original page... IPL keeps exactly one copy of an
        // original page (logs are deltas against it), so a checksum failure
        // here is reported, never repaired or served.
        for j in 0..self.k() {
            let ppn = self.frame_ppn(pid, j);
            let slice = &mut out[(j as usize) * ds..(j as usize + 1) * ds];
            if self.opts.verify_checksums {
                match self.chip.read_data_verified(ppn, slice) {
                    Ok(()) => {}
                    Err(pdl_flash::FlashError::ChecksumMismatch(p)) => {
                        out.fill(0);
                        return Err(CoreError::PageCorrupt { pid, ppn: p.0 });
                    }
                    Err(e) => return Err(e.into()),
                }
            } else {
                self.chip.read_data(ppn, slice)?;
            }
        }
        // ...then only the log pages holding sectors of this page...
        let lb = (pid / self.lppb as u64) as usize;
        let used = self.regions[lb].sectors_used;
        let mut page_buf = vec![0u8; ds];
        for i in 0..self.log_pages {
            if !self.regions[lb].page_pids[i as usize].contains(&pid) {
                continue;
            }
            let ppn = self.log_ppn(lb, i);
            self.chip.read_data(ppn, &mut page_buf)?;
            let sectors_here =
                (used.saturating_sub(i * self.sectors_per_log_page)).min(self.sectors_per_log_page);
            for s in 0..sectors_here as usize {
                let at = s * self.sector_size;
                if let Some((sector_pid, records)) =
                    log::decode_sector(&page_buf[at..at + self.sector_size])?
                {
                    if sector_pid == pid {
                        for r in records {
                            let off = r.offset as usize;
                            out[off..off + r.bytes.len()].copy_from_slice(&r.bytes);
                        }
                    }
                }
            }
        }
        // ...and finally any records still in the in-memory buffer.
        if let Some(buf) = self.bufs.get(&pid) {
            buf.apply_to(out);
        }
        Ok(())
    }

    /// Read-ahead: issue the in-place frame reads plus the log pages that
    /// hold this page's sectors, without waiting.
    fn prefetch(&mut self, pid: u64) -> Result<()> {
        self.opts.check_pid(pid)?;
        if !self.loaded[pid as usize] {
            return Ok(());
        }
        for j in 0..self.k() {
            let ppn = self.frame_ppn(pid, j);
            self.chip.prefetch_page(ppn)?;
        }
        let lb = (pid / self.lppb as u64) as usize;
        for i in 0..self.log_pages {
            if self.regions[lb].page_pids[i as usize].contains(&pid) {
                self.chip.prefetch_page(self.log_ppn(lb, i))?;
            }
        }
        Ok(())
    }

    /// Tightly-coupled update notification: append update logs to the
    /// page's log buffer; flush full sectors to the block's log region.
    fn apply_update(&mut self, pid: u64, page_after: &[u8], changes: &[ChangeRange]) -> Result<()> {
        self.opts.check_pid(pid)?;
        let ds = self.chip.geometry().data_size;
        self.opts.check_page_buf(ds, page_after)?;
        if !self.loaded[pid as usize] {
            // The page has never been written: the coming eviction stores
            // the full image, so logs would be redundant.
            return Ok(());
        }
        let cap = self.sector_payload_cap();
        for c in changes {
            let record = LogRecord {
                offset: c.offset,
                bytes: page_after[c.offset as usize..c.end()].to_vec(),
            };
            let buf = self.bufs.entry(pid).or_default();
            buf.append(record);
            while self.bufs.get(&pid).is_some_and(|b| b.has_full_sector(cap)) {
                let records = self.bufs.get_mut(&pid).expect("buffer exists").pack(cap);
                self.flush_sector(pid, records)?;
            }
        }
        Ok(())
    }

    fn evict_page(&mut self, pid: u64, page: &[u8]) -> Result<()> {
        self.opts.check_pid(pid)?;
        let g = self.chip.geometry();
        let ds = g.data_size;
        self.opts.check_page_buf(ds, page)?;
        if !self.loaded[pid as usize] {
            // Initial load: write the original data pages in place.
            let ts = self.ts;
            self.ts += 1;
            for (j, frame_data) in page.chunks_exact(ds).enumerate() {
                let ppn = self.frame_ppn(pid, j as u32);
                let tag = pid * self.k() as u64 + j as u64;
                let spare = make_spare(g.spare_size, PageKind::IplData, tag, ts, frame_data);
                self.chip.program_page(ppn, frame_data, &spare)?;
            }
            self.loaded[pid as usize] = true;
            self.bufs.remove(&pid);
            self.direct_loads += 1;
            return Ok(());
        }
        // Dirty eviction: flush the partial log buffer.
        if let Some(mut buf) = self.bufs.remove(&pid) {
            if !buf.is_empty() {
                let records = buf.drain_all();
                self.flush_sector(pid, records)?;
            }
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        let pids: Vec<u64> = self.bufs.keys().copied().collect();
        for pid in pids {
            if let Some(mut buf) = self.bufs.remove(&pid) {
                if !buf.is_empty() {
                    let records = buf.drain_all();
                    self.flush_sector(pid, records)?;
                }
            }
        }
        Ok(())
    }

    fn chip(&self) -> &FlashChip {
        &self.chip
    }

    fn chip_mut(&mut self) -> &mut FlashChip {
        &mut self.chip
    }

    fn name(&self) -> String {
        MethodKind::Ipl { log_bytes_per_block: self.log_bytes_per_block() }.label()
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("sector_flushes", self.sector_flushes),
            ("merges", self.merges),
            ("direct_loads", self.direct_loads),
            ("bad_blocks", self.bad_blocks),
        ]
    }

    fn into_chips(self: Box<Self>) -> Vec<FlashChip> {
        vec![self.chip]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdl_flash::FlashConfig;

    // Tiny geometry: 16 blocks x 8 pages x 256 bytes.
    // IPL(512B): 2 log pages, 6 data frames per block; sector = 16 bytes.
    const LOG_BYTES: usize = 512;

    fn store(pages: u64) -> Ipl {
        Ipl::new(FlashChip::new(FlashConfig::tiny()), StoreOptions::new(pages), LOG_BYTES).unwrap()
    }

    fn change(page: &mut [u8], at: usize, len: usize, fill: u8) -> ChangeRange {
        page[at..at + len].fill(fill);
        ChangeRange::new(at, len)
    }

    #[test]
    fn load_then_read_round_trips() {
        let mut s = store(12);
        let p = vec![0x5Au8; s.logical_page_size()];
        s.write_page(7, &p).unwrap();
        let mut out = vec![0u8; p.len()];
        s.read_page(7, &mut out).unwrap();
        assert_eq!(out, p);
    }

    #[test]
    fn update_logs_apply_on_read_before_flush() {
        let mut s = store(12);
        let mut p = vec![1u8; s.logical_page_size()];
        s.write_page(0, &p).unwrap();
        let c = change(&mut p, 3, 4, 9);
        s.apply_update(0, &p, &[c]).unwrap();
        // Not evicted yet: records are in memory but reads must see them.
        let mut out = vec![0u8; p.len()];
        s.read_page(0, &mut out).unwrap();
        assert_eq!(out, p);
    }

    #[test]
    fn eviction_flushes_one_partial_sector() {
        let mut s = store(12);
        let mut p = vec![1u8; s.logical_page_size()];
        s.write_page(0, &p).unwrap();
        // 5-byte record stays below the 6-byte sector payload capacity
        // (sector = 16 bytes, header = 10), so it flushes at eviction.
        let c = change(&mut p, 3, 1, 9);
        s.apply_update(0, &p, &[c]).unwrap();
        let before = s.chip().stats().total();
        s.evict_page(0, &p).unwrap();
        let d = s.chip().stats().total() - before;
        assert_eq!(d.writes, 1, "one log-sector write");
        assert_eq!(s.sector_flushes, 1);
        let mut out = vec![0u8; p.len()];
        s.read_page(0, &mut out).unwrap();
        assert_eq!(out, p);
    }

    #[test]
    fn reads_touch_only_log_pages_with_this_pid() {
        let mut s = store(12);
        let size = s.logical_page_size();
        for pid in 0..6u64 {
            s.write_page(pid, &vec![pid as u8; size]).unwrap();
        }
        // Update page 0 once (1 sector) and page 1 many times.
        let mut p0 = vec![0u8; size];
        let c = change(&mut p0, 0, 2, 0xEE);
        s.apply_update(0, &p0, &[c]).unwrap();
        s.evict_page(0, &p0).unwrap();
        let before = s.chip().stats().total();
        let mut out = vec![0u8; size];
        s.read_page(0, &mut out).unwrap();
        let d = s.chip().stats().total() - before;
        // Original page + exactly one log page.
        assert_eq!(d.reads, 2);
        assert_eq!(out, p0);
        // Page 2 has no logs: one read.
        let before = s.chip().stats().total();
        s.read_page(2, &mut out).unwrap();
        assert_eq!((s.chip().stats().total() - before).reads, 1);
    }

    #[test]
    fn exhausted_log_region_triggers_merge() {
        let mut s = store(6); // single logical block
        let size = s.logical_page_size();
        let mut truth: Vec<Vec<u8>> = (0..6).map(|i| vec![i as u8; size]).collect();
        for (pid, t) in truth.iter().enumerate() {
            s.write_page(pid as u64, t).unwrap();
        }
        // Log capacity: 2 log pages x 16 sectors = 32 sectors. Each update
        // of 4 bytes costs one sector on eviction.
        for round in 0..40u32 {
            let pid = (round % 6) as usize;
            let at = (round as usize * 7) % (size - 4);
            let c = change(&mut truth[pid], at, 4, round as u8);
            let p = truth[pid].clone();
            s.apply_update(pid as u64, &p, &[c]).unwrap();
            s.evict_page(pid as u64, &p).unwrap();
        }
        assert!(s.merges >= 1, "merge must have occurred");
        for pid in 0..6usize {
            let mut out = vec![0u8; size];
            s.read_page(pid as u64, &mut out).unwrap();
            assert_eq!(out, truth[pid], "pid {pid}");
        }
    }

    #[test]
    fn merge_resets_log_region_and_moves_block() {
        let mut s = store(6);
        let size = s.logical_page_size();
        let mut p = vec![3u8; size];
        for pid in 0..6u64 {
            s.write_page(pid, &p).unwrap();
        }
        let old_block = s.block_map[0];
        // Fill all 32 sectors of the block (one 1-byte update = one sector
        // per eviction), then one more flush forces a merge.
        for i in 0..33u32 {
            let c = change(&mut p, (i as usize * 5) % (size - 4), 1, i as u8);
            s.apply_update(0, &p, &[c]).unwrap();
            s.evict_page(0, &p).unwrap();
        }
        assert_eq!(s.merges, 1);
        assert_ne!(s.block_map[0], old_block);
        assert_eq!(s.regions[0].sectors_used, 1, "post-merge flush lands in the fresh region");
        let mut out = vec![0u8; size];
        s.read_page(0, &mut out).unwrap();
        assert_eq!(out, p);
    }

    #[test]
    fn multiple_updates_within_eviction_accumulate() {
        let mut s = store(12);
        let size = s.logical_page_size();
        let mut p = vec![0u8; size];
        s.write_page(0, &p).unwrap();
        // Two updates to the same region: the log keeps the history, the
        // read applies both in order.
        let c1 = change(&mut p, 10, 4, 1);
        s.apply_update(0, &p, &[c1]).unwrap();
        let c2 = change(&mut p, 12, 4, 2);
        s.apply_update(0, &p, &[c2]).unwrap();
        s.evict_page(0, &p).unwrap();
        let mut out = vec![0u8; size];
        s.read_page(0, &mut out).unwrap();
        assert_eq!(out, p);
        assert_eq!(&out[10..16], &[1, 1, 2, 2, 2, 2]);
    }

    #[test]
    fn big_update_spans_multiple_sectors() {
        let mut s = store(12);
        let size = s.logical_page_size();
        let mut p = vec![0u8; size];
        s.write_page(0, &p).unwrap();
        // 40-byte change against a 6-byte sector payload: many sectors.
        // Each split sector re-pays the 4-byte record overhead, carrying
        // only 2 payload bytes on this deliberately tiny geometry (with the
        // paper's 2 Kbyte pages a sector carries 118 payload bytes and the
        // overhead is negligible): 19 split sectors + 1 final whole record.
        let c = change(&mut p, 100, 40, 7);
        let before = s.chip().stats().total();
        s.apply_update(0, &p, &[c]).unwrap();
        s.evict_page(0, &p).unwrap();
        let d = s.chip().stats().total() - before;
        assert_eq!(d.writes, 20);
        let mut out = vec![0u8; size];
        s.read_page(0, &mut out).unwrap();
        assert_eq!(out, p);
    }

    #[test]
    fn rejects_bad_configs() {
        let chip = FlashChip::new(FlashConfig::tiny());
        // Not a page multiple.
        assert!(Ipl::new(chip.clone(), StoreOptions::new(4), 300).is_err());
        // Entire block as log region.
        assert!(Ipl::new(chip.clone(), StoreOptions::new(4), 8 * 256).is_err());
        // Too many logical pages for the chip.
        assert!(Ipl::new(chip, StoreOptions::new(10_000), 512).is_err());
    }
}
