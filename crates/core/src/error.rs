//! Error type for page-update methods.

use pdl_flash::FlashError;
use std::error::Error;
use std::fmt;

/// Errors surfaced by page-update methods.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoreError {
    /// Underlying flash operation failed.
    Flash(FlashError),
    /// Logical page id beyond the store's configured capacity.
    PageIdOutOfRange { pid: u64, num_pages: u64 },
    /// Caller buffer does not match the logical page size.
    BadPageSize { expected: usize, got: usize },
    /// The flash ran out of reclaimable space: garbage collection could not
    /// find a victim block with any obsolete page.
    StorageFull,
    /// Invalid configuration (geometry/option mismatch), with a reason.
    BadConfig(String),
    /// On-flash state is inconsistent with the in-memory tables; indicates
    /// a bug or external corruption. Carries a description.
    Corruption(String),
    /// A single-page failure (Graefe & Kuno's fourth failure class): the
    /// physical page backing `pid` failed checksum verification and no
    /// redundant source (differential chain, GC twin, checkpoint) could
    /// rebuild it. The corrupt bytes were NOT served; the page stays
    /// unreadable until a full overwrite refreshes it.
    PageCorrupt { pid: u64, ppn: u32 },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Flash(e) => write!(f, "flash error: {e}"),
            CoreError::PageIdOutOfRange { pid, num_pages } => {
                write!(f, "logical page {pid} out of range (store has {num_pages})")
            }
            CoreError::BadPageSize { expected, got } => {
                write!(f, "logical page buffer: expected {expected} bytes, got {got}")
            }
            CoreError::StorageFull => write!(f, "flash storage full: no reclaimable block"),
            CoreError::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
            CoreError::Corruption(msg) => write!(f, "corrupted store state: {msg}"),
            CoreError::PageCorrupt { pid, ppn } => write!(
                f,
                "logical page {pid} is corrupt (physical page p{ppn} failed checksum, no \
                 redundant source to repair from)"
            ),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Flash(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FlashError> for CoreError {
    fn from(e: FlashError) -> Self {
        CoreError::Flash(e)
    }
}

/// Whether the error is an injected power loss (used by crash tests to
/// distinguish expected aborts from real failures).
pub fn is_power_loss(e: &CoreError) -> bool {
    matches!(e, CoreError::Flash(FlashError::PowerLoss))
}

/// Whether the error reports an unrepairable single-page failure (used by
/// corruption tests to distinguish a *detected* failure from bad bytes
/// silently served).
pub fn is_page_corrupt(e: &CoreError) -> bool {
    matches!(e, CoreError::PageCorrupt { .. })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = CoreError::from(FlashError::PowerLoss);
        assert!(e.to_string().contains("power loss"));
        assert!(Error::source(&e).is_some());
        assert!(is_power_loss(&e));
        assert!(!is_power_loss(&CoreError::StorageFull));
        assert!(CoreError::PageIdOutOfRange { pid: 7, num_pages: 4 }.to_string().contains('7'));
    }
}
