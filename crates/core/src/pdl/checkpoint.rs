//! Checkpointed fast recovery — the paper's §4.5 future work:
//!
//! > "To recover the physical page mapping table without scanning all the
//! > physical pages in flash memory, we have to log the changes in the
//! > mapping table into flash memory. We leave this extension as a further
//! > study."
//!
//! Design: a small *root region* (the first `checkpoint_blocks` blocks of
//! the chip) is reserved and excluded from normal allocation and GC. It is
//! split into two halves used alternately, double-buffer style:
//! [`Pdl::checkpoint`] serialises the mapping tables (ppmt, vdct, the
//! time-stamp bookkeeping, allocator counts, and — since codec v2 — the
//! transaction tables: per-page tags, per-diff-page tag lists and live
//! commit-record locations) plus a per-block *fingerprint*, writes them as
//! payload pages into the idle half, and commits by writing a header page
//! last. A crash mid-checkpoint leaves the previous half's checkpoint
//! intact.
//!
//! Recovery ([`try_fast_recover`]) loads the newest committed checkpoint
//! and then performs a **delta scan**: for each block it reads at most two
//! spare areas (first and last-written page) and compares against the
//! fingerprint. Unchanged blocks are skipped entirely; blocks that grew a
//! tail are scanned from the old fill level; erased/rewritten blocks are
//! purged from the tables and rescanned in full, replayed through the same
//! Figure-11 logic as the full scan. For a fresh checkpoint this turns
//! recovery from one read per *page* into about one read per *block* — a
//! ~`pages_per_block`x reduction.
//!
//! The torn-transaction verdict composes with the delta scan: a
//! checkpoint is only ever taken outside a commit batch, so every tag it
//! records belongs to a committed transaction whose record location it
//! also records. Anything newer — including a commit torn by the crash —
//! lives in blocks the fingerprints flag as changed, so the verdict only
//! needs a mini-precheck over those blocks plus the checkpointed record
//! set.

use super::recovery::RecoveryTables;
use super::{Pdl, PpmtEntry, NONE};
use crate::diff::NO_TXN;
use crate::error::CoreError;
use crate::ftl::make_spare;
use crate::page_store::{StoreOptions, StructRootEntry, StructRootsSnapshot};
use crate::Result;
use pdl_flash::{BlockId, FlashChip, OpContext, PageKind, Ppn, SpareInfo};
use std::collections::HashSet;

const PAYLOAD_MAGIC: u32 = 0x504C_4B31; // "PLK1"
const HEADER_MAGIC: u32 = 0x504C_4831; // "PLH1"
/// Codec v3 appends the registered structure-root snapshot to the
/// payload; v2 checkpoints (no roots section) still load, with an empty
/// snapshot — the delta loader accepts both.
const VERSION: u16 = 3;
const MIN_VERSION: u16 = 2;
/// Fixed-size header record at the start of the header page's data area.
const HEADER_LEN: usize = 4 + 2 + 2 + 8 + 8 + 4 + 4 + 8 + 4;

/// Structure-root records programmed into the live half's tail (after
/// the header page) between checkpoints; see [`encode_root_record`].
const ROOT_MAGIC: u32 = 0x504C_5231; // "PLR1"
const ROOT_VERSION: u16 = 1;

/// 64-bit FNV-1a over a byte slice (block fingerprints, payload checksum).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Fingerprint of one block: identifies its erase generation by hashing
/// the spare identity of its first and last written pages plus the fill
/// level. 0 = block free.
fn block_fingerprint(chip: &mut FlashChip, block: BlockId, written: u32) -> Result<u64> {
    if written == 0 {
        return Ok(0);
    }
    let g = chip.geometry();
    let first = chip.read_spare(g.page_at(block, 0))?;
    let last = chip.read_spare(g.page_at(block, written - 1))?;
    let mut buf = [0u8; 38];
    encode_identity(&mut buf[0..17], first);
    encode_identity(&mut buf[17..34], last);
    buf[34..38].copy_from_slice(&written.to_le_bytes());
    Ok(fnv1a64(&buf).max(1)) // 0 is reserved for "free"
}

fn encode_identity(out: &mut [u8], info: Option<SpareInfo>) {
    match info {
        Some(i) => {
            out[0] = 1;
            out[1..9].copy_from_slice(&i.tag.to_le_bytes());
            out[9..17].copy_from_slice(&i.ts.to_le_bytes());
        }
        None => out[0] = 0,
    }
}

/// Serialised checkpoint stream layout (little-endian, fixed order):
/// dims, ppmt, frame_ts, diff_ts, vdct, written, obsolete, txn tables,
/// fingerprints.
struct Stream(Vec<u8>);

impl Stream {
    fn push_u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn push_u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn push_u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn push_u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn skip(&mut self, n: usize) -> Result<()> {
        self.take(n).map(|_| ())
    }
    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.at + n > self.bytes.len() {
            return Err(CoreError::Corruption("checkpoint stream truncated".into()));
        }
        let s = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }
    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// Serialise a structure-root snapshot (shared by the v3 payload section
/// and the tail records): next_pid u64, count u32, then per entry
/// id u64, kind u8, pad [u8;3], npids u32, pids u64...
fn push_roots(s: &mut Stream, roots: &StructRootsSnapshot) {
    s.push_u64(roots.next_pid);
    s.push_u32(roots.entries.len() as u32);
    for e in &roots.entries {
        s.push_u64(e.id);
        s.push_u8(e.kind);
        s.push_u8(0);
        s.push_u8(0);
        s.push_u8(0);
        s.push_u32(e.pids.len() as u32);
        for p in &e.pids {
            s.push_u64(*p);
        }
    }
}

fn parse_roots(c: &mut Cursor) -> Result<StructRootsSnapshot> {
    let next_pid = c.u64()?;
    let count = c.u32()? as usize;
    let mut entries = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        let id = c.u64()?;
        let kind = c.u8()?;
        c.skip(3)?;
        let npids = c.u32()? as usize;
        let mut pids = Vec::with_capacity(npids.min(4096));
        for _ in 0..npids {
            pids.push(c.u64()?);
        }
        entries.push(StructRootEntry { id, kind, pids });
    }
    Ok(StructRootsSnapshot { next_pid, entries })
}

/// Encode one durable structure-root record, staged into `txn`'s commit
/// batch and programmed into the live half's tail. The record is a full
/// snapshot (not a delta) guarded by a trailing FNV-1a checksum, so the
/// tail scan only needs the newest committed one and a torn trailer is
/// detected and skipped. The length matches
/// [`StructRootsSnapshot::encoded_len`].
pub(crate) fn encode_root_record(roots: &StructRootsSnapshot, txn: u64) -> Vec<u8> {
    let total = roots.encoded_len();
    let mut s = Stream(Vec::with_capacity(total));
    s.push_u32(ROOT_MAGIC);
    s.push_u32(total as u32);
    s.push_u16(ROOT_VERSION);
    s.push_u16(0);
    s.push_u64(txn);
    push_roots(&mut s, roots);
    let csum = fnv1a64(&s.0);
    s.push_u64(csum);
    debug_assert_eq!(s.0.len(), total, "root record length must match encoded_len");
    s.0
}

/// Decode a root record previously written by [`encode_root_record`].
/// `bytes` must cover the whole record; returns `None` for anything torn
/// or foreign (bad magic / version / checksum).
fn decode_root_record(bytes: &[u8]) -> Option<(u64, StructRootsSnapshot)> {
    if bytes.len() < 32 + 8 {
        return None;
    }
    let body = &bytes[..bytes.len() - 8];
    let want = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
    if fnv1a64(body) != want {
        return None;
    }
    let mut c = Cursor { bytes: body, at: 0 };
    if c.u32().ok()? != ROOT_MAGIC || c.u32().ok()? as usize != bytes.len() {
        return None;
    }
    if c.u16().ok()? != ROOT_VERSION {
        return None;
    }
    let _pad = c.u16().ok()?;
    let txn = c.u64().ok()?;
    let roots = parse_roots(&mut c).ok()?;
    Some((txn, roots))
}

/// The structure-root log state resolved at recovery: the authoritative
/// snapshot, where the live-half tail resumes, and which transaction's
/// record is currently authoritative (so its commit record stays
/// retained until the next checkpoint compacts the log).
pub(crate) struct RootLogState {
    pub seq: u64,
    pub live_half: Option<u8>,
    /// Next free ppn for tail records in the live half.
    pub tail: u32,
    /// Exclusive end of the live half (the log is full at `tail ==
    /// tail_end`).
    pub tail_end: u32,
    /// Records were written into half 0 before any checkpoint committed,
    /// so the first checkpoint must target half 1.
    pub tail_used: bool,
    pub roots: StructRootsSnapshot,
    /// The transaction whose tail record is authoritative (`None` when
    /// the roots come from the checkpoint payload baseline).
    pub live_txn: Option<u64>,
}

/// Resolve the durable structure roots and tail position from the
/// checkpoint root region: baseline from the newest committed checkpoint
/// payload (empty for v2), overridden by the newest *committed* tail
/// record. `is_committed` decides record eligibility from the recovery
/// tables (commit record present, not torn). Read-only, so running it
/// twice — a second recovery — resolves identically.
pub(crate) fn load_root_state(
    chip: &mut FlashChip,
    opts: &StoreOptions,
    is_committed: &dyn Fn(u64) -> bool,
) -> Result<RootLogState> {
    let g = chip.geometry();
    let half_blocks = opts.checkpoint_blocks / 2;
    let header = find_latest_header(chip, opts)?;

    let (seq, live_half, start, tail_end, mut roots) = match &header {
        Some(h) => {
            let half = if h.base_ppn / g.pages_per_block < half_blocks { 0u8 } else { 1 };
            let end = (half as u32 + 1) * half_blocks * g.pages_per_block;
            let baseline = load_payload_roots(chip, opts, h)?.unwrap_or_default();
            (h.seq, Some(half), h.base_ppn + h.payload_pages + 1, end, baseline)
        }
        None => (0, None, 0, half_blocks * g.pages_per_block, StructRootsSnapshot::default()),
    };

    // Scan the tail: records fill sequentially, so the newest committed
    // one wins and the first free page (or torn trailer) ends the log.
    let mut at = start;
    let mut live_txn = None;
    let mut img = vec![0u8; g.data_size];
    while at < tail_end {
        match chip.read_spare(Ppn(at))? {
            Some(info) if info.kind != PageKind::Free => {}
            _ => break,
        }
        let rec = read_root_record(chip, at, tail_end, &mut img)?;
        let Some((npages, txn, snap)) = rec else {
            // Torn trailer: probe past the programmed garbage so new
            // records never land on half-written pages.
            while at < tail_end {
                match chip.read_spare(Ppn(at))? {
                    Some(info) if info.kind != PageKind::Free => at += 1,
                    _ => break,
                }
            }
            break;
        };
        if is_committed(txn) {
            roots = snap;
            live_txn = Some(txn);
        }
        at += npages;
    }

    Ok(RootLogState {
        seq,
        live_half,
        tail: at,
        tail_end,
        tail_used: live_half.is_none() && at > start,
        roots,
        live_txn,
    })
}

/// Read one root record starting at `at`; `Ok(None)` means the bytes
/// there are torn or foreign. Returns the record's page count so the
/// caller can advance the scan.
fn read_root_record(
    chip: &mut FlashChip,
    at: u32,
    end: u32,
    img: &mut [u8],
) -> Result<Option<(u32, u64, StructRootsSnapshot)>> {
    let data_size = img.len();
    if chip.read_data(Ppn(at), img).is_err() {
        return Ok(None); // rotten first page: torn record
    }
    let magic = u32::from_le_bytes(img[0..4].try_into().unwrap());
    let total = u32::from_le_bytes(img[4..8].try_into().unwrap()) as usize;
    if magic != ROOT_MAGIC || total < 40 || total > (end - at) as usize * data_size {
        return Ok(None);
    }
    let npages = total.div_ceil(data_size) as u32;
    let mut bytes = Vec::with_capacity(npages as usize * data_size);
    bytes.extend_from_slice(img);
    for i in 1..npages {
        if chip.read_data(Ppn(at + i), img).is_err() {
            return Ok(None);
        }
        bytes.extend_from_slice(img);
    }
    bytes.truncate(total);
    Ok(decode_root_record(&bytes).map(|(txn, snap)| (npages, txn, snap)))
}

/// Parse just the roots section out of a committed checkpoint payload
/// (`None` for v2 payloads or when the payload fails verification —
/// callers fall back to an empty baseline).
fn load_payload_roots(
    chip: &mut FlashChip,
    opts: &StoreOptions,
    header: &Header,
) -> Result<Option<StructRootsSnapshot>> {
    let g = chip.geometry();
    let mut payload = Vec::with_capacity(header.payload_len as usize);
    let mut img = vec![0u8; g.data_size];
    for i in 0..header.payload_pages {
        if chip.read_data(Ppn(header.base_ppn + i), &mut img).is_err() {
            return Ok(None);
        }
        payload.extend_from_slice(&img);
    }
    payload.truncate(header.payload_len as usize);
    if payload.len() != header.payload_len as usize || (fnv1a64(&payload) as u32) != header.csum {
        return Ok(None);
    }
    let nl = opts.num_logical_pages as usize;
    let k = opts.frames_per_page as usize;
    let mut c = Cursor { bytes: &payload, at: 0 };
    if c.u32()? != PAYLOAD_MAGIC {
        return Ok(None);
    }
    let version = c.u16()?;
    if version < 3 {
        return Ok(None); // v2: no roots section
    }
    // Skip the mapping-table sections (fixed arithmetic given the dims).
    c.skip(2 + 8 + 4 + 4)?; // k, nl, blocks, pages (already validated by the loader)
    let blocks = g.num_blocks as usize;
    c.skip(nl * (k + 1) * 4)?; // ppmt
    c.skip(nl * k * 8)?; // frame_ts
    c.skip(nl * 8)?; // diff_ts
    c.skip(g.num_pages() as usize * 2)?; // vdct
    c.skip(blocks * 4)?; // written
    c.skip(blocks * 4)?; // obsolete
    c.skip(nl * 8)?; // diff_txn
    c.skip(nl * k * 8)?; // base_txn
    let n_locs = c.u32()? as usize;
    c.skip(n_locs * 12)?;
    c.skip(blocks * 8)?; // fingerprints
    Ok(Some(parse_roots(&mut c)?))
}

impl Pdl {
    /// Write a checkpoint of the mapping tables into the root region. The
    /// differential write buffer is flushed first so the tables are
    /// consistent with flash. Requires `StoreOptions::checkpoint_blocks`
    /// of at least 2 (two halves). Not callable inside a commit batch —
    /// the tables would capture uncommitted state.
    pub fn checkpoint(&mut self) -> Result<()> {
        let r = self.opts.checkpoint_blocks;
        if r < 2 {
            return Err(CoreError::BadConfig(
                "checkpointing needs a root region of at least 2 blocks".into(),
            ));
        }
        if self.in_txn_batch {
            return Err(CoreError::BadConfig(
                "checkpoint inside an open commit batch is not allowed".into(),
            ));
        }
        use crate::page_store::PageStore as _;
        self.flush()?;

        let g = self.chip.geometry();
        let nl = self.opts.num_logical_pages as usize;
        let k = self.opts.frames_per_page as usize;

        // Serialise the tables.
        let mut s = Stream(Vec::with_capacity(64 * 1024));
        s.push_u32(PAYLOAD_MAGIC);
        s.push_u16(VERSION);
        s.push_u16(k as u16);
        s.push_u64(nl as u64);
        s.push_u32(g.num_blocks);
        s.push_u32(g.num_pages());
        for e in &self.ppmt {
            for j in 0..k {
                s.push_u32(e.base[j]);
            }
            s.push_u32(e.diff);
        }
        // The recovery bookkeeping is not held by a running store; rebuild
        // it from the spare areas we already track implicitly. We persist
        // ts watermarks per frame/pid as "unknown" (0): replay relies on
        // strict ordering only for post-checkpoint pages, whose ts all
        // exceed the watermark, and purged entries reset to 0 anyway.
        // Instead of zeros we store the current global watermark for every
        // live entry, which preserves the "newer wins" semantics.
        let watermark = self.ts.saturating_sub(1);
        for e in &self.ppmt {
            for j in 0..k {
                s.push_u64(if e.base[j] == NONE { 0 } else { watermark });
            }
        }
        for e in &self.ppmt {
            s.push_u64(if e.diff == NONE { 0 } else { watermark });
        }
        for v in &self.vdct {
            s.push_u16(*v);
        }
        for b in 0..g.num_blocks {
            s.push_u32(self.alloc.written_in(BlockId(b)));
        }
        for b in 0..g.num_blocks {
            let written = self.alloc.written_in(BlockId(b));
            let valid = self.alloc.valid_in(BlockId(b));
            s.push_u32(written - valid);
        }
        // Transaction tables (codec v2): per-page tags and live
        // commit-record locations. Presence is recomputed at load time,
        // so it is not persisted.
        for t in &self.diff_txn {
            s.push_u64(*t);
        }
        for t in &self.base_txn {
            s.push_u64(*t);
        }
        s.push_u32(self.commit_locs.len() as u32);
        let mut loc_entries: Vec<(&u64, &u32)> = self.commit_locs.iter().collect();
        loc_entries.sort_by_key(|(t, _)| **t);
        for (t, p) in loc_entries {
            s.push_u64(*t);
            s.push_u32(*p);
        }
        for b in 0..g.num_blocks {
            let fp = if b < r {
                u64::MAX // root region: never delta-scanned
            } else {
                block_fingerprint(&mut self.chip, BlockId(b), self.alloc.written_in(BlockId(b)))?
            };
            s.push_u64(fp);
        }
        // Codec v3: the registered structure roots ride in the payload,
        // compacting the tail records accumulated since the last
        // checkpoint into the baseline.
        push_roots(&mut s, &self.struct_roots);
        let payload = s.0;
        let csum = fnv1a64(&payload);

        // Pick the idle half and erase it. Before the first checkpoint
        // the structure-root log grows from page 0 of half 0, so the
        // first checkpoint must land in half 1 to keep those records
        // intact until the header page commits their replacement.
        let half_blocks = r / 2;
        let target_half: u8 = match self.ckpt_live_half {
            Some(0) => 1,
            Some(_) => 0,
            None => u8::from(self.root_tail_used),
        };
        let first_block = target_half as u32 * half_blocks;
        let half_pages = half_blocks * g.pages_per_block;
        let payload_pages = payload.len().div_ceil(g.data_size) as u32;
        if payload_pages + 1 > half_pages {
            return Err(CoreError::BadConfig(format!(
                "checkpoint of {payload_pages} pages does not fit a root half of {half_pages}"
            )));
        }
        for b in first_block..first_block + half_blocks {
            // Skip the erase when the block is already clean.
            if self.chip.read_spare(g.first_page(BlockId(b)))?.map(|i| i.kind)
                != Some(PageKind::Free)
            {
                self.chip.erase_block(BlockId(b))?;
            }
        }

        // Program payload pages, then commit with the header.
        let seq = self.ckpt_seq + 1;
        let base_ppn = first_block * g.pages_per_block;
        let mut img = vec![0xFFu8; g.data_size];
        for (i, chunk) in payload.chunks(g.data_size).enumerate() {
            img.fill(0xFF);
            img[..chunk.len()].copy_from_slice(chunk);
            let spare = make_spare(g.spare_size, PageKind::Checkpoint, seq, watermark, &img);
            self.chip.program_page(Ppn(base_ppn + i as u32), &img, &spare)?;
        }
        img.fill(0xFF);
        let mut h = Vec::with_capacity(HEADER_LEN);
        h.extend_from_slice(&HEADER_MAGIC.to_le_bytes());
        h.extend_from_slice(&VERSION.to_le_bytes());
        h.extend_from_slice(&0u16.to_le_bytes());
        h.extend_from_slice(&seq.to_le_bytes());
        h.extend_from_slice(&watermark.to_le_bytes());
        h.extend_from_slice(&base_ppn.to_le_bytes());
        h.extend_from_slice(&payload_pages.to_le_bytes());
        h.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        h.extend_from_slice(&(csum as u32).to_le_bytes());
        img[..h.len()].copy_from_slice(&h);
        let header_ppn = Ppn(base_ppn + payload_pages);
        let spare = make_spare(g.spare_size, PageKind::CheckpointHead, seq, watermark, &img);
        self.chip.program_page(header_ppn, &img, &spare)?;

        self.ckpt_seq = seq;
        self.ckpt_live_half = Some(target_half);
        // The structure-root log restarts after the new header; the tail
        // record retaining the previous root-publishing transaction is
        // superseded by the payload baseline, so its commit-record pin
        // can drop. (Decremented only now that the header is durable: a
        // crash anywhere above leaves the old half — and that pin —
        // authoritative.)
        self.root_tail = base_ppn + payload_pages + 1;
        self.root_tail_end = (target_half as u32 + 1) * half_blocks * g.pages_per_block;
        self.root_tail_used = false;
        if let Some(t) = self.live_root_txn.take() {
            self.presence_dec(t, None)?;
        }
        self.counters.checkpoints += 1;
        Ok(())
    }
}

/// A decoded header page.
struct Header {
    seq: u64,
    watermark: u64,
    base_ppn: u32,
    payload_pages: u32,
    payload_len: u64,
    csum: u32,
}

/// Find the newest committed checkpoint header in the root region.
fn find_latest_header(chip: &mut FlashChip, opts: &StoreOptions) -> Result<Option<Header>> {
    let g = chip.geometry();
    let r = opts.checkpoint_blocks;
    let mut best: Option<(u64, Ppn)> = None;
    for b in 0..r {
        for i in 0..g.pages_per_block {
            let ppn = g.page_at(BlockId(b), i);
            match chip.read_spare(ppn)? {
                Some(info)
                    if info.kind == PageKind::CheckpointHead
                        && !info.obsolete
                        && best.map(|(s, _)| info.tag > s).unwrap_or(true) =>
                {
                    best = Some((info.tag, ppn));
                }
                Some(info) if info.kind == PageKind::Free => break, // halves fill sequentially
                _ => {}
            }
        }
    }
    let Some((_, ppn)) = best else { return Ok(None) };
    let mut img = vec![0u8; g.data_size];
    chip.read_data(ppn, &mut img)?;
    let mut c = Cursor { bytes: &img, at: 0 };
    if c.u32()? != HEADER_MAGIC || !(MIN_VERSION..=VERSION).contains(&c.u16()?) {
        return Ok(None);
    }
    let _pad = c.u16()?;
    Ok(Some(Header {
        seq: c.u64()?,
        watermark: c.u64()?,
        base_ppn: c.u32()?,
        payload_pages: c.u32()?,
        payload_len: c.u64()?,
        csum: c.u32()?,
    }))
}

/// Attempt checkpoint-based recovery: load the newest committed checkpoint
/// and delta-scan only the blocks that changed since. Returns `None` when
/// no usable checkpoint exists (caller falls back to the full scan).
/// `uncommitted` carries a globally computed torn set (sharded recovery);
/// `None` means "derive it from the changed blocks".
pub(crate) fn try_fast_recover(
    chip: &mut FlashChip,
    opts: &StoreOptions,
    uncommitted: Option<HashSet<u64>>,
) -> Result<Option<RecoveryTables>> {
    chip.set_context(OpContext::Recovery);
    let result = fast_recover_inner(chip, opts, uncommitted);
    chip.set_context(OpContext::User);
    result
}

/// The checkpoint-aware torn-commit precheck: the read-only first pass of
/// sharded recovery, restricted to the blocks changed since the latest
/// committed checkpoint (exactly the restriction the single-store fast
/// path applies to its table rebuild). Falls back to the full-chip
/// [`super::recovery::txn_precheck`] scan when no usable checkpoint
/// exists — so under a fresh checkpoint the per-shard precheck costs
/// ~two spare reads per block instead of one read per page, restoring
/// the `pages_per_block`× fast-recovery win for sharded stores.
///
/// Returns the loaded [`CheckpointDelta`] alongside the torn set so the
/// per-shard table rebuild can replay it directly instead of loading and
/// classifying the same checkpoint a second time.
pub(crate) fn txn_precheck_fast(
    chip: &mut FlashChip,
    opts: &StoreOptions,
) -> Result<(HashSet<u64>, Option<CheckpointDelta>)> {
    if opts.checkpoint_blocks > 0 {
        chip.set_context(OpContext::Recovery);
        let result = (|| -> Result<Option<(HashSet<u64>, CheckpointDelta)>> {
            match load_checkpoint_delta(chip, opts)? {
                Some(delta) => {
                    let torn = derive_torn_from_delta(chip, opts, &delta)?;
                    Ok(Some((torn, delta)))
                }
                None => Ok(None),
            }
        })();
        chip.set_context(OpContext::User);
        if let Some((torn, delta)) = result? {
            return Ok((torn, Some(delta)));
        }
    }
    Ok((super::recovery::txn_precheck(chip, opts)?.torn(), None))
}

/// A loaded checkpoint plus the block-level delta classification against
/// the current chip state: `invalidated` blocks were erased/rewritten
/// since the checkpoint (their table entries are already purged),
/// `tail_scan` blocks only grew a tail past the recorded fill level.
pub(crate) struct CheckpointDelta {
    tables: RecoveryTables,
    invalidated: Vec<u32>,
    tail_scan: Vec<(u32, u32)>,
}

/// Replay a loaded checkpoint delta into final recovery tables under the
/// supplied torn-transaction verdict (the second pass of fast recovery).
pub(crate) fn replay_delta(
    chip: &mut FlashChip,
    mut delta: CheckpointDelta,
    uncommitted: HashSet<u64>,
) -> Result<RecoveryTables> {
    chip.set_context(OpContext::Recovery);
    let result = replay_delta_inner(chip, &mut delta, uncommitted);
    chip.set_context(OpContext::User);
    result?;
    Ok(delta.tables)
}

fn replay_delta_inner(
    chip: &mut FlashChip,
    delta: &mut CheckpointDelta,
    uncommitted: HashSet<u64>,
) -> Result<()> {
    let g = chip.geometry();
    delta.tables.uncommitted = uncommitted;
    // Replay invalidated blocks fully and grown tails partially.
    let tables = &mut delta.tables;
    let mut data_buf = vec![0u8; g.data_size];
    let mut replay =
        |chip: &mut FlashChip, tables: &mut RecoveryTables, b: u32, from: u32| -> Result<()> {
            for i in from..g.pages_per_block {
                let ppn = g.page_at(BlockId(b), i);
                let Some(info) = chip.read_spare(ppn)? else { continue };
                if info.kind == PageKind::Free {
                    break; // blocks fill sequentially
                }
                tables.written[b as usize] += 1;
                if info.obsolete {
                    tables.obsolete[b as usize] += 1;
                    continue;
                }
                tables.apply_page(chip, ppn, info, &mut data_buf)?;
            }
            Ok(())
        };
    for b in delta.invalidated.clone() {
        replay(chip, tables, b, 0)?;
    }
    for (b, from) in delta.tail_scan.clone() {
        replay(chip, tables, b, from)?;
    }
    Ok(())
}

fn fast_recover_inner(
    chip: &mut FlashChip,
    opts: &StoreOptions,
    uncommitted: Option<HashSet<u64>>,
) -> Result<Option<RecoveryTables>> {
    let Some(mut delta) = load_checkpoint_delta(chip, opts)? else { return Ok(None) };

    // The torn-transaction verdict: supplied globally (sharded recovery
    // unions every shard's precheck) or derived from the changed blocks.
    let torn = match uncommitted {
        Some(u) => u,
        None => derive_torn_from_delta(chip, opts, &delta)?,
    };
    replay_delta_inner(chip, &mut delta, torn)?;
    Ok(Some(delta.tables))
}

/// Load and verify the newest committed checkpoint, classify every block
/// against its fingerprint, and purge table entries living in
/// erased/rewritten blocks. Returns `None` when no usable checkpoint
/// exists.
fn load_checkpoint_delta(
    chip: &mut FlashChip,
    opts: &StoreOptions,
) -> Result<Option<CheckpointDelta>> {
    let g = chip.geometry();
    let Some(header) = find_latest_header(chip, opts)? else { return Ok(None) };

    // Read and verify the payload.
    let mut payload = Vec::with_capacity(header.payload_len as usize);
    let mut img = vec![0u8; g.data_size];
    for i in 0..header.payload_pages {
        chip.read_data(Ppn(header.base_ppn + i), &mut img)?;
        payload.extend_from_slice(&img);
    }
    payload.truncate(header.payload_len as usize);
    if payload.len() != header.payload_len as usize || (fnv1a64(&payload) as u32) != header.csum {
        return Ok(None); // torn or stale checkpoint: fall back
    }

    // Deserialise; any dimension mismatch disqualifies the checkpoint.
    let nl = opts.num_logical_pages as usize;
    let k = opts.frames_per_page as usize;
    let mut c = Cursor { bytes: &payload, at: 0 };
    // v2 payloads simply end after the fingerprints (no roots section);
    // the cursor never reads past what each version wrote.
    if c.u32()? != PAYLOAD_MAGIC
        || !(MIN_VERSION..=VERSION).contains(&c.u16()?)
        || c.u16()? as usize != k
        || c.u64()? as usize != nl
        || c.u32()? != g.num_blocks
        || c.u32()? != g.num_pages()
    {
        return Ok(None);
    }
    let mut tables = RecoveryTables::empty(opts, g.num_pages(), g.num_blocks, HashSet::new());
    for pid in 0..nl {
        let mut e = PpmtEntry::default();
        for j in 0..k {
            e.base[j] = c.u32()?;
        }
        e.diff = c.u32()?;
        tables.ppmt[pid] = e;
    }
    for f in 0..nl * k {
        tables.frame_ts[f] = c.u64()?;
    }
    for pid in 0..nl {
        tables.diff_ts[pid] = c.u64()?;
    }
    for v in tables.vdct.iter_mut() {
        *v = c.u16()?;
    }
    for b in 0..g.num_blocks as usize {
        tables.written[b] = c.u32()?;
    }
    for b in 0..g.num_blocks as usize {
        tables.obsolete[b] = c.u32()?;
    }
    for pid in 0..nl {
        tables.diff_txn[pid] = c.u64()?;
    }
    for f in 0..nl * k {
        tables.base_txn[f] = c.u64()?;
    }
    let n_locs = c.u32()? as usize;
    for _ in 0..n_locs {
        let t = c.u64()?;
        let p = c.u32()?;
        tables.commit_locs.insert(t, p);
    }
    let mut fingerprints = vec![0u64; g.num_blocks as usize];
    for fp in fingerprints.iter_mut() {
        *fp = c.u64()?;
    }
    tables.max_ts = header.watermark;

    // Delta scan: classify each block.
    let r = opts.checkpoint_blocks;
    let mut invalidated: Vec<u32> = Vec::new();
    let mut tail_scan: Vec<(u32, u32)> = Vec::new(); // (block, from-index)
    for b in r..g.num_blocks {
        let ckpt_written = tables.written[b as usize];
        let fp_now = block_fingerprint(chip, BlockId(b), ckpt_written)?;
        if fp_now != fingerprints[b as usize] {
            invalidated.push(b);
        } else if ckpt_written < g.pages_per_block {
            // Same generation: only a grown tail can differ.
            tail_scan.push((b, ckpt_written));
        }
    }

    // Purge table entries referencing invalidated blocks: their pages were
    // relocated (same ts) before the erase, so replay of the changed
    // blocks must be allowed to re-register them.
    let in_invalid = |p: u32| invalidated.binary_search(&(p / g.pages_per_block)).is_ok();
    for pid in 0..nl {
        for j in 0..k {
            let b = tables.ppmt[pid].base[j];
            if b != NONE && in_invalid(b) {
                tables.ppmt[pid].base[j] = NONE;
                tables.frame_ts[pid * k + j] = 0;
                tables.base_txn[pid * k + j] = NO_TXN;
            }
        }
        let dp = tables.ppmt[pid].diff;
        if dp != NONE && in_invalid(dp) {
            tables.ppmt[pid].diff = NONE;
            tables.diff_ts[pid] = 0;
            tables.diff_txn[pid] = NO_TXN;
        }
    }
    tables.commit_locs.retain(|_, p| !in_invalid(*p));
    for b in &invalidated {
        let first = (*b * g.pages_per_block) as usize;
        for v in tables.vdct[first..first + g.pages_per_block as usize].iter_mut() {
            *v = 0;
        }
        tables.written[*b as usize] = 0;
        tables.obsolete[*b as usize] = 0;
    }

    Ok(Some(CheckpointDelta { tables, invalidated, tail_scan }))
}

/// The torn-transaction verdict over a checkpoint delta. Every tag the
/// checkpoint recorded is committed (checkpoints never run inside a
/// batch), so only the changed blocks can carry a torn transaction's
/// tags — and only they (plus the checkpointed record set) can prove a
/// commit. The loaded tables seed the time-stamp domination baselines,
/// so tags already superseded by checkpointed committed state read as
/// dead.
fn derive_torn_from_delta(
    chip: &mut FlashChip,
    opts: &StoreOptions,
    delta: &CheckpointDelta,
) -> Result<HashSet<u64>> {
    let g = chip.geometry();
    let nl = opts.num_logical_pages as usize;
    let k = opts.frames_per_page as usize;
    let tables = &delta.tables;
    let mut verdict = super::recovery::TxnVerdict::new(k);
    for t in tables.commit_locs.keys() {
        verdict.note_record(*t);
    }
    for pid in 0..nl {
        if tables.ppmt[pid].diff != NONE {
            verdict.note_committed_diff(pid as u64, tables.diff_ts[pid]);
        }
        for j in 0..k {
            if tables.ppmt[pid].base[j] != NONE {
                verdict.note_committed_base((pid * k + j) as u64, tables.frame_ts[pid * k + j]);
            }
        }
    }
    let mut data_buf = vec![0u8; g.data_size];
    let mut sweep = |chip: &mut FlashChip,
                     verdict: &mut super::recovery::TxnVerdict,
                     b: u32,
                     from: u32|
     -> Result<()> {
        for i in from..g.pages_per_block {
            let ppn = g.page_at(BlockId(b), i);
            let Some(info) = chip.read_spare(ppn)? else { continue };
            if info.kind == PageKind::Free {
                break;
            }
            if info.obsolete {
                continue;
            }
            verdict.note_page(chip, ppn, info, &mut data_buf)?;
        }
        Ok(())
    };
    for b in &delta.invalidated {
        sweep(chip, &mut verdict, *b, 0)?;
    }
    for (b, from) in &delta.tail_scan {
        sweep(chip, &mut verdict, *b, *from)?;
    }
    Ok(verdict.resolve().torn())
}
