//! The differential write buffer (§4.2).
//!
//! "The differential write buffer is used to collect differentials of
//! logical pages into memory and later write them into a differential page
//! in flash memory when it is full. The differential write buffer consists
//! of a single page, and thus, the memory usage is negligible."
//!
//! The buffer holds decoded [`Differential`]s — plus, in the `pdl-txn`
//! extension, [`CommitRecord`]s — and a running account of their encoded
//! size; at flush time they are serialised back-to-back into one
//! differential-page image. At most one differential per logical page is
//! ever buffered (staging a new one first removes the old one —
//! Figure 7, Step 3). Commit records are appended *after* the
//! differentials they cover, so a transaction whose records all fit one
//! page commits atomically with the page program.

use crate::diff::{CommitRecord, Differential, EpochRecord};

/// One buffered record.
#[derive(Debug)]
pub(crate) enum DwbEntry {
    Diff(Differential),
    Commit(CommitRecord),
    Epoch(EpochRecord),
}

impl DwbEntry {
    fn encoded_len(&self) -> usize {
        match self {
            DwbEntry::Diff(d) => d.encoded_len(),
            DwbEntry::Commit(_) => CommitRecord::ENCODED_LEN,
            DwbEntry::Epoch(e) => e.encoded_len(),
        }
    }
}

#[derive(Debug)]
pub(crate) struct DiffWriteBuffer {
    capacity: usize,
    used: usize,
    entries: Vec<DwbEntry>,
}

impl DiffWriteBuffer {
    pub fn new(capacity: usize) -> DiffWriteBuffer {
        DiffWriteBuffer { capacity, used: 0, entries: Vec::new() }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn free_space(&self) -> usize {
        self.capacity - self.used
    }

    pub fn used(&self) -> usize {
        self.used
    }

    /// Number of staged records (diagnostics).
    #[allow(dead_code)]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The buffered differential for `pid`, if any (the read path checks
    /// here before going to flash — Figure 9, Step 2).
    pub fn get(&self, pid: u64) -> Option<&Differential> {
        self.entries.iter().find_map(|e| match e {
            DwbEntry::Diff(d) if d.pid == pid => Some(d),
            _ => None,
        })
    }

    /// Remove and return the buffered differential for `pid`.
    pub fn remove(&mut self, pid: u64) -> Option<Differential> {
        let idx =
            self.entries.iter().position(|e| matches!(e, DwbEntry::Diff(d) if d.pid == pid))?;
        let e = self.entries.swap_remove(idx);
        self.used -= e.encoded_len();
        match e {
            DwbEntry::Diff(d) => Some(d),
            _ => unreachable!("position matched a differential"),
        }
    }

    /// Stage a differential. The caller must have established that it fits
    /// (`encoded_len() <= free_space()`) and removed any older entry for
    /// the same pid.
    pub fn push(&mut self, d: Differential) {
        debug_assert!(d.encoded_len() <= self.free_space(), "dwb overflow");
        debug_assert!(self.get(d.pid).is_none(), "duplicate pid in dwb");
        self.used += d.encoded_len();
        self.entries.push(DwbEntry::Diff(d));
    }

    /// Stage a commit record. The caller must have established that it
    /// fits.
    pub fn push_commit(&mut self, c: CommitRecord) {
        debug_assert!(CommitRecord::ENCODED_LEN <= self.free_space(), "dwb overflow");
        self.used += CommitRecord::ENCODED_LEN;
        self.entries.push(DwbEntry::Commit(c));
    }

    /// Stage an epoch record (codec v3: one record proving a whole
    /// batch's commits). The caller must have established that it fits.
    pub fn push_epoch(&mut self, e: EpochRecord) {
        debug_assert!(e.encoded_len() <= self.free_space(), "dwb overflow");
        self.used += e.encoded_len();
        self.entries.push(DwbEntry::Epoch(e));
    }

    /// Drain every entry (flush), leaving the buffer empty.
    pub fn drain(&mut self) -> Vec<DwbEntry> {
        self.used = 0;
        std::mem::take(&mut self.entries)
    }

    /// Serialise all entries into a differential-page image (erased bytes
    /// beyond the records). `out` must be exactly `capacity` bytes.
    /// Differentials are written before commit records, preserving the
    /// "commit record follows its differentials" order within the page.
    pub fn serialize_into(&self, out: &mut [u8]) {
        debug_assert_eq!(out.len(), self.capacity);
        out.fill(0xFF);
        let mut at = 0;
        for e in &self.entries {
            if let DwbEntry::Diff(d) = e {
                let n = d.encode(&mut out[at..]).expect("dwb accounting guarantees fit");
                at += n;
            }
        }
        for e in &self.entries {
            if let DwbEntry::Commit(c) = e {
                let n = c.encode(&mut out[at..]).expect("dwb accounting guarantees fit");
                at += n;
            }
        }
        // Epoch records last: like commit records, they must follow every
        // differential they prove within the page.
        for e in &self.entries {
            if let DwbEntry::Epoch(ep) = e {
                let n = ep.encode(&mut out[at..]).expect("dwb accounting guarantees fit");
                at += n;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::{DiffRun, PageRecord};

    fn diff(pid: u64, payload: usize) -> Differential {
        Differential {
            pid,
            ts: pid + 100,
            txn: pdl_flash::NO_TXN,
            runs: vec![DiffRun { offset: 0, bytes: vec![7u8; payload] }],
        }
    }

    #[test]
    fn accounting_tracks_encoded_size() {
        let mut b = DiffWriteBuffer::new(256);
        assert_eq!(b.free_space(), 256);
        let d = diff(1, 10);
        let n = d.encoded_len();
        b.push(d);
        assert_eq!(b.free_space(), 256 - n);
        assert_eq!(b.len(), 1);
        b.remove(1).unwrap();
        assert_eq!(b.free_space(), 256);
        assert!(b.is_empty());
    }

    #[test]
    fn get_and_remove_by_pid() {
        let mut b = DiffWriteBuffer::new(1024);
        b.push(diff(1, 4));
        b.push(diff(2, 4));
        b.push_commit(CommitRecord { txn: 9, ts: 1 });
        assert_eq!(b.get(2).unwrap().pid, 2);
        assert!(b.get(3).is_none());
        assert_eq!(b.remove(1).unwrap().pid, 1);
        assert!(b.remove(1).is_none());
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn serialize_then_parse_round_trips() {
        let mut b = DiffWriteBuffer::new(512);
        b.push(diff(10, 16));
        b.push_commit(CommitRecord { txn: 3, ts: 7 });
        b.push(diff(11, 32));
        let mut img = vec![0u8; 512];
        b.serialize_into(&mut img);
        let parsed = Differential::parse_page(&img).unwrap();
        assert_eq!(parsed.len(), 3);
        let pids: Vec<u64> = parsed
            .iter()
            .filter_map(|r| match r {
                PageRecord::Diff(d) => Some(d.pid),
                _ => None,
            })
            .collect();
        assert!(pids.contains(&10) && pids.contains(&11));
        // Commit records serialise after every differential.
        assert!(matches!(parsed.last(), Some(PageRecord::Commit(c)) if c.txn == 3));
    }

    #[test]
    fn drain_empties_buffer() {
        let mut b = DiffWriteBuffer::new(512);
        b.push(diff(1, 8));
        b.push(diff(2, 8));
        let all = b.drain();
        assert_eq!(all.len(), 2);
        assert!(b.is_empty());
        assert_eq!(b.free_space(), 512);
    }
}
