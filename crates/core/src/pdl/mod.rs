//! PDL — **page-differential logging**, the paper's contribution (§4).
//!
//! A logical page is stored as a *base page* (a whole copy, possibly old)
//! plus at most one *differential* (the byte-wise difference between the
//! base page and the up-to-date page). The method obeys the paper's three
//! design principles:
//!
//! * **writing-difference-only** — only the differential is written when a
//!   page is reflected into flash;
//! * **at-most-one-page writing** — the differential is computed *once*, at
//!   reflection time, regardless of how many times the page was updated in
//!   memory;
//! * **at-most-two-page reading** — recreating a page reads the base page
//!   and at most one differential page.
//!
//! Writing follows Figure 7's three cases: the differential is staged into
//! the one-page *differential write buffer* (Case 1), the buffer is written
//! out first when the differential no longer fits (Case 2), or — when the
//! differential exceeds `Max_Differential_Size` — the logical page itself
//! is written as a new base page (Case 3, where "PDL becomes the same as
//! the page-based method").
//!
//! Garbage collection relocates valid base pages and *compacts* valid
//! differentials into fresh differential pages (§4.1). Crash recovery
//! (§4.5) is in [`recovery`].
//!
//! # Transactional durability (`pdl-txn`)
//!
//! The paper's method is DBMS-independent at the page level, leaving
//! transaction atomicity to the layer above. This store closes that gap
//! with *differential commit records*: a commit batch
//! ([`crate::PageStore::txn_reserve`] → `txn_stage`* → `txn_flush_stage`
//! → `txn_append_commit` → `txn_finalize`) tags every staged differential
//! (and Case-3 base page) with the owning transaction id and appends a
//! durable [`CommitRecord`] through the same differential write buffer.
//! The record is the commit point; until it is on flash,
//!
//! * obsolete marks on the superseded pre-images are **deferred** (they
//!   are applied in `txn_finalize`, after the record is durable), and
//! * the blocks holding those pre-images are **pinned** against garbage
//!   collection,
//!
//! so recovery can always roll a torn commit back to the previous
//! committed state by discarding tagged pages whose transaction has no
//! commit record. Commit records stay alive — compaction re-stages them —
//! while any non-obsolete page still carries their transaction's tag (the
//! `presence` gauge below), and the tags themselves are shed as GC
//! rewrites committed data, so steady state carries no transactional
//! litter.

mod checkpoint;
mod dwb;
mod recovery;

pub(crate) use checkpoint::{txn_precheck_fast, CheckpointDelta};

use crate::diff::{CommitRecord, Differential, EpochRecord, PageRecord, NO_TXN};
use crate::error::CoreError;
use crate::ftl::{
    make_spare, make_spare_preserving, make_spare_txn, mark_obsolete_lenient, AllocOutcome,
    AllocStream, BlockManager, GcPolicy, HeatTable,
};
use crate::page_store::{ChangeRange, MethodKind, PageStore, StoreOptions, StructRootsSnapshot};
use crate::Result;
use dwb::{DiffWriteBuffer, DwbEntry};
use pdl_flash::{FlashChip, OpContext, PageKind, Ppn, SpareInfo};
use std::collections::{HashMap, HashSet};

pub(crate) const NONE: u32 = u32::MAX;
pub(crate) const MAX_FRAMES: usize = 8;

/// One entry of the physical page mapping table: `<base page address,
/// differential page address>` (Figure 6). `NONE` marks absent entries;
/// multi-frame logical pages keep one base address per frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct PpmtEntry {
    pub base: [u32; MAX_FRAMES],
    pub diff: u32,
}

impl Default for PpmtEntry {
    fn default() -> Self {
        PpmtEntry { base: [NONE; MAX_FRAMES], diff: NONE }
    }
}

/// Event counters exposed through [`PageStore::counters`].
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct PdlCounters {
    pub case1: u64,
    pub case2: u64,
    pub case3: u64,
    pub initial_base_writes: u64,
    pub dwb_flushes: u64,
    pub diff_pages_obsoleted: u64,
    pub gc_runs: u64,
    pub compacted_diffs: u64,
    pub relocated_bases: u64,
    /// GC base-page migrations routed to the hot / cold stream
    /// (hot/cold policy; both zero under the single-stream policies).
    pub migrated_hot: u64,
    pub migrated_cold: u64,
    pub unchanged_skips: u64,
    pub checkpoints: u64,
    pub bad_blocks: u64,
    /// Transactionally tagged reflections staged (diffs + base frames).
    pub txn_staged: u64,
    /// Commit records appended to the differential stream.
    pub txn_commits: u64,
    /// Commit records kept alive across GC compaction.
    pub commit_records_restaged: u64,
    /// Obsolete marks deferred past a commit record and applied at
    /// batch finalize.
    pub deferred_marks: u64,
    /// Single-page failures rebuilt online from a registered twin.
    pub repaired_pages: u64,
    /// Logical pages poisoned: corrupt with no redundant source left.
    pub poisoned_pages: u64,
    /// Cold MVCC versions spilled to flash for the retention ledger.
    pub spilled_versions: u64,
    /// Spilled versions read back for a snapshot reader.
    pub spill_reads: u64,
    /// Spill pages GC relocated (never destroyed while pinned).
    pub spill_relocations: u64,
    /// Epoch records appended by group commit.
    pub epoch_commits: u64,
    /// Committed ids coalesced into epoch records during compaction.
    pub epoch_coalesced: u64,
}

/// Page-differential logging store.
pub struct Pdl {
    chip: FlashChip,
    opts: StoreOptions,
    /// `Max_Differential_Size`: differentials larger than this (encoded)
    /// are discarded and the page is rewritten as a new base (Case 3).
    max_diff_size: usize,
    /// Physical page mapping table, indexed by logical page id.
    ppmt: Vec<PpmtEntry>,
    /// Valid differential count table, indexed by physical page number.
    /// Live commit records count too: a differential page is reclaimable
    /// only once nothing in it gates visibility.
    vdct: Vec<u16>,
    dwb: DiffWriteBuffer,
    alloc: BlockManager,
    /// Per-logical-page update-frequency gauge: the hotness signal the
    /// hot/cold policy separates allocation streams by.
    heat: HeatTable,
    ts: u64,
    in_gc: bool,
    /// Checkpoint bookkeeping (see `checkpoint.rs`): last committed
    /// sequence number and which root half holds it.
    ckpt_seq: u64,
    ckpt_live_half: Option<u8>,
    // --- durable structure roots (checkpoint root-region tail log) ----
    /// Newest *committed* structure-root snapshot (what
    /// `PageStore::struct_roots` reports and the next checkpoint
    /// compacts into its payload baseline).
    struct_roots: StructRootsSnapshot,
    /// Root record staged in the open commit batch, promoted to
    /// `struct_roots` at finalize (i.e. once its commit record is
    /// durable); discarded if the batch never finalizes.
    pending_roots: Option<(u64, StructRootsSnapshot)>,
    /// Transaction whose tail record is authoritative: its commit record
    /// is pinned (one presence ref) until a checkpoint compacts the log.
    live_root_txn: Option<u64>,
    /// Next free ppn for tail records in the live half, and the
    /// exclusive end of that half.
    root_tail: u32,
    root_tail_end: u32,
    /// Records were written into half 0 before any checkpoint existed
    /// (forces the first checkpoint into half 1).
    root_tail_used: bool,
    // --- pdl-txn state ---------------------------------------------------
    /// Transaction of each logical page's current durable differential
    /// ([`NO_TXN`] when untagged or absent).
    diff_txn: Vec<u64>,
    /// Transaction of each live base frame (indexed `pid * k + j`).
    base_txn: Vec<u64>,
    /// Live tagged items (current differentials, staged buffer entries,
    /// live base frames) referencing each transaction: its commit record
    /// must stay durable while > 0. Superseded (dead) tags drop out here
    /// the moment the superseding committed data is durable — recovery's
    /// torn-commit verdict ignores dead tags symmetrically, via the same
    /// time-stamp domination the Figure-11 resolution uses.
    presence: HashMap<u64, u32>,
    /// Durably committed transactions still referenced by live tags.
    committed: HashSet<u64>,
    /// Physical page holding each transaction's live commit record.
    commit_locs: HashMap<u64, u32>,
    /// Obsolete marks deferred until the data superseding them is safely
    /// on flash: past the commit record inside a commit batch, past the
    /// compaction flush inside GC.
    deferred: Vec<Ppn>,
    /// Blocks holding the current batch's pre-images: excluded from GC
    /// victim selection until finalize.
    batch_pins: HashSet<u32>,
    /// Whether a `txn_reserve` .. `txn_finalize` batch is open.
    in_txn_batch: bool,
    // --- single-page failure handling --------------------------------
    /// Logical pages known corrupt with no redundant source, mapped to
    /// the physical page whose checksum failed. Reads report
    /// [`CoreError::PageCorrupt`] immediately; a full overwrite (which
    /// needs none of the stored state) heals the page and clears the
    /// entry.
    poisoned: HashMap<u64, u32>,
    /// Single-page repair registry: live base ppn -> byte-identical twin
    /// still readable on flash (in a block whose erase failed, or a
    /// recovery duplicate that lost time-stamp resolution).
    twins: HashMap<u32, u32>,
    /// `(old, new)` base relocations of the current GC pass; committed
    /// into `twins` only when the victim's erase fails, leaving the old
    /// copies readable.
    gc_moves: Vec<(u32, u32)>,
    // --- retention-ledger spill tier ----------------------------------
    /// Spilled cold versions: handle -> the per-frame ppns holding the
    /// pre-image. Volatile by design — spill pages cache in-memory
    /// version-chain state for live read views, and no view survives a
    /// crash, so recovery starts this empty and GC reclaims any spill
    /// page it no longer finds here.
    spills: HashMap<u64, Vec<u32>>,
    /// Reverse map: spill ppn -> (handle, frame index), so GC can
    /// relocate a pinned spill page and re-point the handle.
    spill_rev: HashMap<u32, (u64, u32)>,
    /// Next spill handle.
    next_spill: u64,
    // Workhorse buffers.
    base_buf: Vec<u8>,
    frame_buf: Vec<u8>,
    page_img: Vec<u8>,
    counters: PdlCounters,
}

impl Pdl {
    /// Create a PDL store over a fresh chip.
    pub fn new(chip: FlashChip, opts: StoreOptions, max_diff_size: usize) -> Result<Pdl> {
        opts.validate(&chip)?;
        let g = chip.geometry();
        if max_diff_size == 0 {
            return Err(CoreError::BadConfig("max_diff_size must be > 0".into()));
        }
        if max_diff_size > g.data_size {
            return Err(CoreError::BadConfig(format!(
                "max_diff_size of {max_diff_size} bytes exceeds the {}-byte differential \
                 write buffer (one flash page)",
                g.data_size
            )));
        }
        let frames = opts.num_frames();
        let usable = (g.num_blocks.saturating_sub(opts.reserve_blocks + 1 + opts.checkpoint_blocks))
            as u64
            * g.pages_per_block as u64;
        if frames > usable {
            return Err(CoreError::BadConfig(format!(
                "{frames} base frames do not fit: only {usable} pages usable outside the reserve"
            )));
        }
        let mut alloc = BlockManager::new(g.num_blocks, g.pages_per_block, opts.reserve_blocks);
        alloc.set_policy(opts.gc_policy);
        for b in 0..opts.checkpoint_blocks {
            alloc.reserve_block(pdl_flash::BlockId(b));
        }
        let nl = opts.num_logical_pages as usize;
        let k = opts.frames_per_page as usize;
        Ok(Pdl {
            opts,
            max_diff_size,
            ppmt: vec![PpmtEntry::default(); nl],
            vdct: vec![0u16; g.num_pages() as usize],
            dwb: DiffWriteBuffer::new(g.data_size),
            alloc,
            heat: HeatTable::new(opts.num_logical_pages),
            ts: 1,
            in_gc: false,
            ckpt_seq: 0,
            ckpt_live_half: None,
            struct_roots: StructRootsSnapshot::default(),
            pending_roots: None,
            live_root_txn: None,
            root_tail: 0,
            root_tail_end: if opts.checkpoint_blocks >= 2 {
                (opts.checkpoint_blocks / 2) * g.pages_per_block
            } else {
                0
            },
            root_tail_used: false,
            diff_txn: vec![NO_TXN; nl],
            base_txn: vec![NO_TXN; nl * k],
            presence: HashMap::new(),
            committed: HashSet::new(),
            commit_locs: HashMap::new(),
            deferred: Vec::new(),
            batch_pins: HashSet::new(),
            in_txn_batch: false,
            poisoned: HashMap::new(),
            twins: HashMap::new(),
            gc_moves: Vec::new(),
            spills: HashMap::new(),
            spill_rev: HashMap::new(),
            next_spill: 0,
            base_buf: vec![0u8; opts.logical_page_size(g.data_size)],
            frame_buf: vec![0u8; g.data_size],
            page_img: vec![0u8; g.data_size],
            counters: PdlCounters::default(),
            chip,
        })
    }

    /// `Max_Differential_Size` this store runs with.
    pub fn max_diff_size(&self) -> usize {
        self.max_diff_size
    }

    /// Use a different GC victim-selection policy (ablation). Also
    /// recorded in [`PageStore::options`], so recovering with the
    /// store's own options resumes the same policy.
    pub fn set_gc_policy(&mut self, policy: GcPolicy) {
        self.opts.gc_policy = policy;
        self.alloc.set_policy(policy);
    }

    /// Bytes currently staged in the differential write buffer.
    pub fn dwb_used(&self) -> usize {
        self.dwb.used()
    }

    /// Whether `txn`'s commit record is durable (diagnostics and tests).
    pub fn txn_committed(&self, txn: u64) -> bool {
        self.committed.contains(&txn)
    }

    fn next_ts(&mut self) -> u64 {
        let t = self.ts;
        self.ts += 1;
        t
    }

    fn frames(&self) -> usize {
        self.opts.frames_per_page as usize
    }

    /// Which allocation stream `pid`'s pages belong on.
    fn stream_for(&self, pid: u64) -> AllocStream {
        self.heat.stream_for(self.alloc.policy(), pid)
    }

    /// Pin the block containing `ppn` against GC for the rest of the
    /// open commit batch (it holds a pre-image a torn commit rolls back
    /// to).
    fn pin_block(&mut self, ppn: u32) {
        if self.in_txn_batch {
            self.batch_pins.insert(ppn / self.chip.geometry().pages_per_block);
        }
    }

    // ------------------------------------------------------------------
    // Allocation & capacity
    // ------------------------------------------------------------------

    fn alloc_page(&mut self, stream: AllocStream) -> Result<Ppn> {
        match self.alloc.alloc_in(self.in_gc, stream)? {
            AllocOutcome::Page(p) => Ok(p),
            AllocOutcome::NeedsGc => {
                debug_assert!(false, "allocation after ensure_capacity must not need GC");
                self.gc_once()?;
                match self.alloc.alloc_in(self.in_gc, stream)? {
                    AllocOutcome::Page(p) => Ok(p),
                    AllocOutcome::NeedsGc => Err(CoreError::StorageFull),
                }
            }
        }
    }

    /// Run GC until `n` pages are allocatable in normal mode. Invoked at
    /// operation entry, so GC never interleaves with a half-applied write.
    fn ensure_capacity(&mut self, n: u64) -> Result<()> {
        let mut guard = 0u32;
        while self.alloc.normal_capacity() < n {
            self.gc_once()?;
            guard += 1;
            if guard > 2 * self.alloc.num_blocks() {
                return Err(CoreError::StorageFull);
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Transaction presence bookkeeping
    // ------------------------------------------------------------------

    fn presence_inc(&mut self, txn: u64) {
        *self.presence.entry(txn).or_insert(0) += 1;
    }

    /// One tagged item of `txn` is gone. At zero the transaction's commit
    /// record no longer gates anything: retire it (unless it sits in
    /// `dying_page`, which the caller is already tearing down).
    fn presence_dec(&mut self, txn: u64, dying_page: Option<u32>) -> Result<()> {
        let Some(c) = self.presence.get_mut(&txn) else {
            debug_assert!(false, "presence underflow for txn {txn}");
            return Ok(());
        };
        *c -= 1;
        if *c > 0 {
            return Ok(());
        }
        self.presence.remove(&txn);
        self.committed.remove(&txn);
        if let Some(loc) = self.commit_locs.remove(&txn) {
            if Some(loc) != dying_page {
                self.decrease_vdct(loc)?;
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Valid differential count table
    // ------------------------------------------------------------------

    /// `decreaseValidDifferentialCount` (Figure 8): decrement and, at zero,
    /// set the differential page to obsolete (one write operation) so it
    /// becomes available for garbage collection.
    fn decrease_vdct(&mut self, dp: u32) -> Result<()> {
        let c = &mut self.vdct[dp as usize];
        debug_assert!(*c > 0, "vdct underflow for page {dp}");
        *c -= 1;
        if *c == 0 {
            self.mark_dead_page(Ppn(dp), true)?;
        }
        Ok(())
    }

    /// `ppn` no longer holds anything valid: account for it and set it
    /// obsolete on flash — immediately, or deferred until the data that
    /// superseded it is durable (the commit record inside a batch, the
    /// compaction flush inside GC).
    fn mark_dead_page(&mut self, ppn: Ppn, diff_page: bool) -> Result<()> {
        if diff_page {
            self.counters.diff_pages_obsoleted += 1;
        }
        self.alloc.note_obsolete(ppn);
        if self.in_txn_batch || self.in_gc {
            self.deferred.push(ppn);
        } else {
            mark_obsolete_lenient(&mut self.chip, ppn)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Differential write buffer flushing
    // ------------------------------------------------------------------

    /// `writingDifferentialWriteBuffer` (Figure 8): write the buffer's
    /// contents into a newly allocated differential page, then update the
    /// physical page mapping table and the valid differential count table.
    ///
    /// Precondition: the caller has ensured one page of allocation
    /// capacity (or is inside GC, which allocates from the reserve).
    fn flush_dwb(&mut self) -> Result<()> {
        if self.dwb.is_empty() {
            return Ok(());
        }
        let g = self.chip.geometry();
        // Step 1: write the buffer into a new differential page q.
        // Differential pages hold deltas of recently-updated pages, so
        // they live on the hot stream under hot/cold separation.
        let q = self.alloc_page(AllocStream::Hot)?;
        let mut img = std::mem::take(&mut self.page_img);
        self.dwb.serialize_into(&mut img);
        // Every flash page consumes its own creation time stamp — Case-2
        // flushes and explicit write-throughs bump the same counter, so
        // recovery's newest-wins tie-break never sees two pages sharing
        // a ts with a later write.
        let ts = self.next_ts();
        let spare = make_spare(g.spare_size, PageKind::Diff, u64::MAX, ts, &img);
        let programmed = self.chip.program_page(q, &img, &spare);
        self.page_img = img;
        programmed?;
        // Step 2: update ppmt and vdct for every record in the buffer.
        // An epoch record counts one vdct reference per member: each
        // member behaves like its own commit record sharing the location,
        // so the page stays alive until the last member's presence drops.
        let drained = self.dwb.drain();
        self.vdct[q.0 as usize] = drained
            .iter()
            .map(|e| match e {
                DwbEntry::Epoch(ep) => ep.len() as u16,
                _ => 1,
            })
            .sum();
        for e in &drained {
            match e {
                DwbEntry::Diff(d) => {
                    let pid = d.pid as usize;
                    let old_dp = self.ppmt[pid].diff;
                    if old_dp != NONE {
                        // The superseded differential's tag dies with it.
                        let old_txn = self.diff_txn[pid];
                        if old_txn != NO_TXN {
                            self.presence_dec(old_txn, None)?;
                        }
                        self.decrease_vdct(old_dp)?;
                    }
                    self.ppmt[pid].diff = q.0;
                    self.diff_txn[pid] = d.txn;
                }
                DwbEntry::Commit(c) => {
                    // The record is durable: this is the commit point.
                    self.commit_locs.insert(c.txn, q.0);
                    self.committed.insert(c.txn);
                }
                DwbEntry::Epoch(ep) => {
                    // The epoch record is durable: the commit point of
                    // every member transaction at once.
                    for txn in ep.ids() {
                        self.commit_locs.insert(txn, q.0);
                        self.committed.insert(txn);
                    }
                }
            }
        }
        self.counters.dwb_flushes += 1;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Base-page writing
    // ------------------------------------------------------------------

    /// `writingNewBasePage` (Figure 8): write the logical page itself as a
    /// new base page, obsolete the old base page and release the old
    /// differential. Also used for the very first write of a page.
    /// Inside a commit batch the new frames carry `txn` in their spare
    /// (per-page commit visibility) and the obsolete marks are deferred.
    ///
    /// Precondition: `ensure_capacity(frames)` done by the caller.
    fn write_new_base(&mut self, pid: u64, page: &[u8], initial: bool, txn: u64) -> Result<()> {
        let g = self.chip.geometry();
        let ds = g.data_size;
        let k = self.frames();
        let ts = self.next_ts();
        let stream = self.stream_for(pid);
        let mut new_frames = [NONE; MAX_FRAMES];
        for (j, frame_data) in page.chunks_exact(ds).enumerate() {
            let q = self.alloc_page(stream)?;
            let tag = pid * k as u64 + j as u64;
            let spare = make_spare_txn(g.spare_size, PageKind::Base, tag, ts, txn, frame_data);
            self.chip.program_page(q, frame_data, &spare)?;
            new_frames[j] = q.0;
        }
        // Read the entry only now: GC during allocation may have moved it.
        let old = self.ppmt[pid as usize];
        // Any staged differential is against the old base: discard it.
        if let Some(staged) = self.dwb.remove(pid) {
            if staged.txn != NO_TXN {
                self.presence_dec(staged.txn, None)?;
            }
        }
        for j in 0..k {
            let frame = pid as usize * k + j;
            if old.base[j] != NONE {
                if txn != NO_TXN {
                    self.pin_block(old.base[j]);
                }
                let old_txn = self.base_txn[frame];
                if old_txn != NO_TXN {
                    self.presence_dec(old_txn, None)?;
                }
                self.mark_dead_page(Ppn(old.base[j]), false)?;
            }
            self.base_txn[frame] = txn;
            if txn != NO_TXN {
                self.presence_inc(txn);
                self.counters.txn_staged += 1;
            }
        }
        if old.diff != NONE {
            if txn != NO_TXN {
                self.pin_block(old.diff);
            }
            let old_txn = self.diff_txn[pid as usize];
            if old_txn != NO_TXN {
                self.presence_dec(old_txn, None)?;
            }
            self.decrease_vdct(old.diff)?;
        }
        self.ppmt[pid as usize] = PpmtEntry { base: new_frames, diff: NONE };
        self.diff_txn[pid as usize] = NO_TXN;
        if initial {
            self.counters.initial_base_writes += 1;
        }
        Ok(())
    }

    /// Read `pid`'s base frames into `out`. With verification on, every
    /// frame is checked against its spare-area checksum; a failing frame
    /// is rebuilt online from a registered twin when one exists, and
    /// otherwise poisons the page and reports [`CoreError::PageCorrupt`]
    /// — corrupt bytes are never returned. The mapping is re-read per
    /// frame because a repair can trigger GC, which relocates entries.
    fn read_base_into(&mut self, pid: u64, out: &mut [u8]) -> Result<()> {
        let ds = self.chip.geometry().data_size;
        for j in 0..self.frames() {
            let ppn = self.ppmt[pid as usize].base[j];
            debug_assert_ne!(ppn, NONE, "base frames are written together");
            let slice = &mut out[j * ds..(j + 1) * ds];
            if !self.opts.verify_checksums {
                self.chip.read_data(Ppn(ppn), slice)?;
                continue;
            }
            match self.chip.read_data_verified(Ppn(ppn), slice) {
                Ok(()) => {}
                Err(pdl_flash::FlashError::ChecksumMismatch(p)) => {
                    if self.repair_base_frame(pid, j)? {
                        slice.copy_from_slice(&self.frame_buf);
                    } else {
                        slice.fill(0);
                        self.poison(pid, p.0);
                        return Err(CoreError::PageCorrupt { pid, ppn: p.0 });
                    }
                }
                Err(e) => return Err(e.into()),
            }
        }
        Ok(())
    }

    /// Online single-page repair: rebuild base frame `j` of `pid` from a
    /// byte-identical twin left on flash by a failed GC erase or a
    /// recovery duplicate. On success the verified-good bytes are left in
    /// `frame_buf`, re-programmed through the normal allocation path, and
    /// the corrupt copy is marked obsolete. Costs two flash reads (twin
    /// spare + data) and one program — no recovery scan.
    fn repair_base_frame(&mut self, pid: u64, j: usize) -> Result<bool> {
        let t0 = self.chip.sim_now_us();
        let repaired = self.repair_base_frame_inner(pid, j);
        if matches!(repaired, Ok(true)) {
            crate::page_store::obs_event(
                &mut self.chip,
                pdl_flash::LatencyClass::RepairDetour,
                "repair",
                "user",
                t0,
                0,
                pid,
            );
        }
        repaired
    }

    fn repair_base_frame_inner(&mut self, pid: u64, j: usize) -> Result<bool> {
        // GC inside `ensure_capacity` may relocate the corrupt frame (its
        // stored checksum travels with it, so it stays detectable) and
        // re-key the twin registry; fetch the mapping only afterwards.
        self.ensure_capacity(1)?;
        let cur = self.ppmt[pid as usize].base[j];
        let Some(&twin) = self.twins.get(&cur) else { return Ok(false) };
        let k = self.frames() as u64;
        let Some(tinfo) = self.chip.read_spare(Ppn(twin))? else { return Ok(false) };
        if tinfo.kind != PageKind::Base || tinfo.tag != pid * k + j as u64 {
            return Ok(false); // registry gone stale: not our frame any more
        }
        let mut buf = std::mem::take(&mut self.frame_buf);
        let read = self.chip.read_data_verified(Ppn(twin), &mut buf);
        self.frame_buf = buf;
        match read {
            Ok(()) => {}
            Err(pdl_flash::FlashError::ChecksumMismatch(_)) => return Ok(false),
            Err(e) => return Err(e.into()),
        }
        let g = self.chip.geometry();
        let q = self.alloc_page(self.stream_for(pid))?;
        // The twin passed verification, so the fresh checksum computed
        // here covers known-good bytes; the original creation time stamp
        // and the frame's current visibility tag are carried over.
        let txn = self.base_txn[pid as usize * self.frames() + j];
        let spare =
            make_spare_txn(g.spare_size, PageKind::Base, tinfo.tag, tinfo.ts, txn, &self.frame_buf);
        self.chip.program_page(q, &self.frame_buf, &spare)?;
        self.twins.remove(&cur);
        self.twins.insert(q.0, twin);
        self.mark_dead_page(Ppn(cur), false)?;
        self.ppmt[pid as usize].base[j] = q.0;
        self.chip.note_repaired();
        self.counters.repaired_pages += 1;
        Ok(true)
    }

    /// Record that `pid` is corrupt with no redundant source (the failing
    /// physical page is kept for the error report).
    fn poison(&mut self, pid: u64, ppn: u32) {
        if self.poisoned.insert(pid, ppn).is_none() {
            self.counters.poisoned_pages += 1;
        }
    }

    // ------------------------------------------------------------------
    // Page reflection (Figure 7), shared by `evict_page` and `txn_stage`
    // ------------------------------------------------------------------

    /// `PDL_Writing` (Figure 7), with the differential tagged by `txn`
    /// ([`NO_TXN`] for the plain auto-committed path).
    fn stage_page(&mut self, pid: u64, page: &[u8], txn: u64) -> Result<()> {
        self.opts.check_pid(pid)?;
        let ds = self.chip.geometry().data_size;
        self.opts.check_page_buf(ds, page)?;
        let k = self.frames() as u64;
        // Worst case allocations: Case 3 writes k base frames; Case 2
        // writes one differential page.
        self.ensure_capacity(k + 1)?;
        let entry = self.ppmt[pid as usize];
        if entry.base[0] == NONE {
            return self.write_new_base(pid, page, true, txn);
        }
        if self.poisoned.contains_key(&pid) {
            // A full overwrite needs none of the unreadable stored state:
            // write the caller's complete image as a new base, healing
            // the page.
            self.write_new_base(pid, page, false, txn)?;
            self.poisoned.remove(&pid);
            self.counters.case3 += 1;
            return Ok(());
        }
        // Step 1: read the base page (charged to the writing step, as in
        // Figure 12(b) where lighter areas of write bars are read time).
        let mut base = std::mem::take(&mut self.base_buf);
        let read = self.read_base_into(pid, &mut base);
        if matches!(read, Err(CoreError::PageCorrupt { .. })) {
            // An unrepairable base frame surfaced during the read (which
            // poisoned the page); the overwrite in hand heals it. Repair
            // attempts may have consumed allocations, so top up first.
            self.base_buf = base;
            self.ensure_capacity(k)?;
            self.write_new_base(pid, page, false, txn)?;
            self.poisoned.remove(&pid);
            self.counters.case3 += 1;
            return Ok(());
        }
        // Step 2: create the differential by comparison.
        let ts = self.next_ts();
        let d = read.map(|()| Differential::compute(pid, ts, &base, page, self.opts.coalesce_gap));
        self.base_buf = base;
        let d = d?.with_txn(txn);
        // A repair inside the base read may have run GC: re-read the
        // mapping entry before relying on it below.
        let entry = self.ppmt[pid as usize];
        if d.is_empty() && entry.diff == NONE && self.dwb.get(pid).is_none() {
            // Nothing changed relative to the stored state.
            self.counters.unchanged_skips += 1;
            return Ok(());
        }
        // Step 3: write the differential into the differential write buffer.
        if let Some(old) = self.dwb.remove(pid) {
            if old.txn != NO_TXN {
                self.presence_dec(old.txn, None)?;
            }
        }
        let size = d.encoded_len();
        let limit = self.max_diff_size.min(self.dwb.capacity());
        if size > limit {
            // Case 3: discard the differential, write a new base page.
            self.counters.case3 += 1;
            return self.write_new_base(pid, page, false, txn);
        }
        if txn != NO_TXN {
            // The pre-image differential must survive until the commit
            // record is durable.
            if entry.diff != NONE {
                self.pin_block(entry.diff);
            }
            self.presence_inc(txn);
            self.counters.txn_staged += 1;
        }
        if size <= self.dwb.free_space() {
            self.counters.case1 += 1;
        } else {
            // Case 2: flush the buffer first.
            self.counters.case2 += 1;
            self.flush_dwb()?;
        }
        self.dwb.push(d);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Garbage collection
    // ------------------------------------------------------------------

    fn gc_once(&mut self) -> Result<()> {
        debug_assert!(!self.in_gc, "nested GC");
        self.in_gc = true;
        self.chip.set_context(OpContext::Gc);
        let t0 = self.chip.sim_now_us();
        let result = self.gc_inner();
        crate::page_store::obs_event(
            &mut self.chip,
            pdl_flash::LatencyClass::GcPause,
            "gc",
            "gc",
            t0,
            0,
            self.counters.gc_runs,
        );
        self.chip.set_context(OpContext::User);
        self.in_gc = false;
        result
    }

    fn gc_inner(&mut self) -> Result<()> {
        let g = self.chip.geometry();
        // Only victims whose relocation (plus slack) fits the free pool:
        // a failed erase must never strand GC mid-relocation.
        let budget = self.alloc.gc_capacity().saturating_sub(4) as u32;
        let victim = self
            .alloc
            .pick_victim_excluding(budget, &self.batch_pins)
            .ok_or(CoreError::StorageFull)?;
        self.gc_moves.clear();
        let written = self.alloc.written_in(victim);
        let mut staged_from_victim = false;
        for idx in 0..written {
            let ppn = g.page_at(victim, idx);
            let Some(info) = self.chip.read_spare(ppn)? else { continue };
            if info.kind == PageKind::Free || info.obsolete {
                continue;
            }
            match info.kind {
                PageKind::Base => self.relocate_base(ppn, info)?,
                PageKind::Diff => staged_from_victim |= self.compact_diff_page(ppn)?,
                PageKind::Spill => self.relocate_spill(ppn, info)?,
                other => {
                    return Err(CoreError::Corruption(format!(
                        "PDL GC found a {other:?} page at {ppn}"
                    )))
                }
            }
        }
        // Crash safety: compacted differentials must reach flash before
        // their only durable copy is erased with the victim.
        if staged_from_victim && !self.dwb.is_empty() {
            self.flush_dwb()?;
        }
        // Obsolete marks raised during this GC pass were deferred past
        // the compaction flush (the superseding copies are durable only
        // now). Marks aimed at the victim are moot — it is about to be
        // erased — and inside a commit batch everything keeps waiting
        // for the commit record.
        self.deferred.retain(|p| g.block_of(*p) != victim);
        if !self.in_txn_batch {
            for ppn in std::mem::take(&mut self.deferred) {
                mark_obsolete_lenient(&mut self.chip, ppn)?;
                self.counters.deferred_marks += 1;
            }
        }
        // The erase is *submitted*, not waited for: on a chip with queue
        // depth > 1 it completes in an otherwise-idle queue slot while
        // the foreground operation that tripped the GC threshold
        // proceeds (the `overlapped_erases` gauge attributes this).
        // Failure detection stays synchronous — the emulator reports it
        // at submission.
        match self.chip.erase_block(victim) {
            Ok(()) => {
                self.alloc.on_erased(victim);
                // Twin copies living in the erased block are gone.
                self.twins.retain(|_, t| g.block_of(Ppn(*t)) != victim);
            }
            // Bad-block management: everything valid was relocated or
            // compacted, so retire the block and move on — whether its
            // erase failed just now (`EraseFailed`) or before a crash
            // whose recovery rebuilt it as a regular `Used` block
            // (`BadBlock`); without retirement GC would pick the broken
            // block as a victim forever.
            Err(pdl_flash::FlashError::EraseFailed(b) | pdl_flash::FlashError::BadBlock(b)) => {
                self.alloc.retire_block(b);
                self.counters.bad_blocks += 1;
                // The failed erase leaves the victim's contents readable:
                // every base page just relocated out of it now has a
                // byte-identical twin there — free redundancy for online
                // single-page repair.
                for (old, new) in self.gc_moves.drain(..) {
                    self.twins.insert(new, old);
                }
            }
            Err(e) => return Err(e.into()),
        }
        self.gc_moves.clear();
        self.counters.gc_runs += 1;
        Ok(())
    }

    /// Move a valid base page to a new location, preserving its creation
    /// time stamp so recovery ordering is unaffected. A commit-visibility
    /// tag is shed once its transaction is durably committed (and the
    /// presence that kept the commit record alive goes with it); an
    /// in-flight tag travels with the copy.
    fn relocate_base(&mut self, ppn: Ppn, info: SpareInfo) -> Result<()> {
        let k = self.frames() as u64;
        let pid = (info.tag / k) as usize;
        let j = (info.tag % k) as usize;
        if pid >= self.ppmt.len() || self.ppmt[pid].base[j] != ppn.0 {
            // A stale copy that predates recovery; it dies with the block.
            return Ok(());
        }
        let g = self.chip.geometry();
        let mut buf = std::mem::take(&mut self.frame_buf);
        let read = self.chip.read_data(ppn, &mut buf);
        self.frame_buf = buf;
        read?;
        // Detection during migration: count a mismatch, but keep moving
        // the frame — with its *original* stored checksum, so the damage
        // stays detectable at the new location instead of being laundered
        // by the rewrite. (For an intact frame the preserved checksum is
        // identical to a freshly computed one.)
        let corrupt =
            self.opts.verify_checksums && self.chip.verify_read(ppn, &self.frame_buf).is_err();
        let frame = pid * self.frames() + j;
        let txn = if info.txn != NO_TXN && self.committed.contains(&info.txn) {
            self.base_txn[frame] = NO_TXN;
            self.presence_dec(info.txn, None)?;
            NO_TXN
        } else {
            info.txn
        };
        // Migration target by hotness: pages that survived GC unchanged
        // are usually cold, but a hot page caught between rewrites keeps
        // riding the hot stream so it does not pollute a cold block.
        let stream = self.stream_for(pid as u64);
        let q = self.alloc_page(stream)?;
        let spare = if corrupt {
            make_spare_preserving(g.spare_size, &SpareInfo { txn, ..info })
        } else {
            make_spare_txn(g.spare_size, PageKind::Base, info.tag, info.ts, txn, &self.frame_buf)
        };
        self.chip.program_page(q, &self.frame_buf, &spare)?;
        self.ppmt[pid].base[j] = q.0;
        // Keep the repair registry pointing at the live copy, and record
        // the move in case the victim's erase fails (old copy becomes a
        // twin).
        if let Some(t) = self.twins.remove(&ppn.0) {
            self.twins.insert(q.0, t);
        }
        self.gc_moves.push((ppn.0, q.0));
        self.counters.relocated_bases += 1;
        match stream {
            AllocStream::Hot => self.counters.migrated_hot += 1,
            AllocStream::Cold => self.counters.migrated_cold += 1,
        }
        Ok(())
    }

    /// Move a live retention-ledger spill page out of a GC victim,
    /// re-pointing its handle — "GC never reclaims a ledger-pinned
    /// pre-image" means relocated, never destroyed. A spill page with no
    /// ledger entry (a crash leftover, or freed moments ago) is dead and
    /// dies with the block.
    fn relocate_spill(&mut self, ppn: Ppn, info: SpareInfo) -> Result<()> {
        let Some(&(handle, j)) = self.spill_rev.get(&ppn.0) else {
            return Ok(());
        };
        let g = self.chip.geometry();
        let mut buf = std::mem::take(&mut self.frame_buf);
        let read = self.chip.read_data(ppn, &mut buf);
        self.frame_buf = buf;
        read?;
        // As with base relocation: a failing checksum travels with the
        // copy (never laundered), surfacing at the reader instead.
        let corrupt =
            self.opts.verify_checksums && self.chip.verify_read(ppn, &self.frame_buf).is_err();
        // Cold by definition: a spilled pre-image is never rewritten.
        let q = self.alloc_page(AllocStream::Cold)?;
        let spare = if corrupt {
            make_spare_preserving(g.spare_size, &info)
        } else {
            make_spare(g.spare_size, PageKind::Spill, info.tag, info.ts, &self.frame_buf)
        };
        self.chip.program_page(q, &self.frame_buf, &spare)?;
        self.spill_rev.remove(&ppn.0);
        self.spill_rev.insert(q.0, (handle, j));
        self.spills.get_mut(&handle).expect("rev map implies entry")[j as usize] = q.0;
        self.alloc.note_released(ppn);
        self.alloc.note_retained(q);
        self.counters.spill_relocations += 1;
        Ok(())
    }

    /// Re-stage durable proof of commit for `ids` through the write
    /// buffer: a plain commit record for a single id, epoch records
    /// (chunked to fit the buffer) for more. Returns whether anything was
    /// staged.
    fn stage_commit_proofs(&mut self, ids: &[u64]) -> Result<bool> {
        if ids.is_empty() {
            return Ok(false);
        }
        let ts = self.next_ts();
        if ids.len() == 1 {
            if CommitRecord::ENCODED_LEN > self.dwb.free_space() {
                if !self.in_gc {
                    self.ensure_capacity(2)?;
                }
                self.flush_dwb()?;
            }
            self.dwb.push_commit(CommitRecord { txn: ids[0], ts });
            return Ok(true);
        }
        let full = EpochRecord::from_ids(ts, ids);
        let ranges_per_rec = ((self.dwb.capacity() - crate::diff::EPOCH_HEADER) / 16).max(1);
        for chunk in full.ranges.chunks(ranges_per_rec) {
            let rec = EpochRecord { ts, ranges: chunk.to_vec() };
            if rec.encoded_len() > self.dwb.free_space() {
                if !self.in_gc {
                    self.ensure_capacity(2)?;
                }
                self.flush_dwb()?;
            }
            self.dwb.push_epoch(rec);
        }
        Ok(true)
    }

    /// Compaction (§4.1): "for differential pages, we move only valid
    /// differentials into a new differential page". Valid differentials are
    /// re-staged through the write buffer; superseded ones die with the
    /// victim. Committed tags are shed on the way; live commit records are
    /// re-staged so they outlive every page still tagged with their
    /// transaction. Returns whether anything was staged.
    fn compact_diff_page(&mut self, ppn: Ppn) -> Result<bool> {
        let mut buf = std::mem::take(&mut self.frame_buf);
        let read = if self.opts.verify_checksums {
            self.chip.read_data_verified(ppn, &mut buf)
        } else {
            self.chip.read_data(ppn, &mut buf)
        };
        let parsed = read.map_err(CoreError::from).and_then(|()| Differential::parse_page(&buf));
        self.frame_buf = buf;
        let records = match parsed {
            Ok(r) => r,
            Err(CoreError::Flash(pdl_flash::FlashError::ChecksumMismatch(_))) => {
                return self.salvage_corrupt_diff_page(ppn)
            }
            Err(e) => return Err(e),
        };
        let mut staged = false;
        // Commit proofs found live in this page — per-txn records and
        // epoch members alike — are coalesced into fresh epoch records at
        // the end of the pass, so long-lived committed tags cost one
        // compact record instead of one record each.
        let mut live_commits: Vec<u64> = Vec::new();
        for rec in &records {
            match rec {
                PageRecord::Diff(d) => {
                    let pid = d.pid as usize;
                    if pid >= self.ppmt.len() || self.ppmt[pid].diff != ppn.0 {
                        continue; // superseded or foreign: not the current differential
                    }
                    if self.dwb.get(d.pid).is_some() {
                        // A newer differential is already staged in memory;
                        // the durable truth moves to the buffer. (A tagged
                        // pre-image can never land here: its block is
                        // pinned for the whole batch.)
                        if self.diff_txn[pid] != NO_TXN {
                            let t = self.diff_txn[pid];
                            self.diff_txn[pid] = NO_TXN;
                            self.presence_dec(t, Some(ppn.0))?;
                        }
                        self.ppmt[pid].diff = NONE;
                        continue;
                    }
                    let d = if d.txn != NO_TXN && self.committed.contains(&d.txn) {
                        // Committed: shed the tag (the live reference moves
                        // to the untagged staged copy).
                        self.diff_txn[pid] = NO_TXN;
                        self.presence_dec(d.txn, Some(ppn.0))?;
                        d.clone().with_txn(NO_TXN)
                    } else {
                        // Untagged, or in-flight: the tag (and its live
                        // reference) travels with the staged copy.
                        d.clone()
                    };
                    if d.encoded_len() > self.dwb.free_space() {
                        self.flush_dwb()?;
                    }
                    self.ppmt[pid].diff = NONE; // pending in the buffer until flush
                    self.dwb.push(d);
                    self.counters.compacted_diffs += 1;
                    staged = true;
                }
                PageRecord::Commit(c) => {
                    if self.commit_locs.get(&c.txn) != Some(&ppn.0) {
                        // A stale twin (GC copy, or a superseded location):
                        // it dies with the block.
                        continue;
                    }
                    if self.presence.get(&c.txn).copied().unwrap_or(0) > 0 {
                        live_commits.push(c.txn);
                    } else {
                        // Nothing live references the transaction any
                        // more: retire its bookkeeping with the record.
                        self.commit_locs.remove(&c.txn);
                        self.committed.remove(&c.txn);
                        self.presence.remove(&c.txn);
                    }
                }
                PageRecord::Epoch(e) => {
                    // Each member behaves like its own commit record
                    // sharing this location.
                    for txn in e.ids() {
                        if self.commit_locs.get(&txn) != Some(&ppn.0) {
                            continue;
                        }
                        if self.presence.get(&txn).copied().unwrap_or(0) > 0 {
                            live_commits.push(txn);
                        } else {
                            self.commit_locs.remove(&txn);
                            self.committed.remove(&txn);
                            self.presence.remove(&txn);
                        }
                    }
                }
            }
        }
        if !live_commits.is_empty() {
            self.counters.commit_records_restaged += live_commits.len() as u64;
            if live_commits.len() > 1 {
                self.counters.epoch_coalesced += live_commits.len() as u64;
            }
            staged |= self.stage_commit_proofs(&live_commits)?;
        }
        self.vdct[ppn.0 as usize] = 0;
        Ok(staged)
    }

    /// A differential page failed verification during compaction: its
    /// records are unreadable. Every logical page whose only durable
    /// differential lived here is poisoned (the base alone would be
    /// silently stale — knowledge of the loss must outlive the mapping
    /// entry, which is cleared below); pages whose newer differential is
    /// already staged in the write buffer lose nothing. Live commit
    /// records stored here are rewritten from the in-memory tables.
    fn salvage_corrupt_diff_page(&mut self, ppn: Ppn) -> Result<bool> {
        let mut staged = false;
        for pid in 0..self.ppmt.len() {
            if self.ppmt[pid].diff != ppn.0 {
                continue;
            }
            let t = self.diff_txn[pid];
            if t != NO_TXN {
                self.diff_txn[pid] = NO_TXN;
                self.presence_dec(t, Some(ppn.0))?;
            }
            self.ppmt[pid].diff = NONE;
            if self.dwb.get(pid as u64).is_none() {
                self.poison(pid as u64, ppn.0);
            }
        }
        let lost: Vec<u64> =
            self.commit_locs.iter().filter(|(_, l)| **l == ppn.0).map(|(t, _)| *t).collect();
        let mut lost_live: Vec<u64> = Vec::new();
        for txn in lost {
            self.commit_locs.remove(&txn);
            if self.presence.get(&txn).copied().unwrap_or(0) > 0 {
                // Still gating visibility: re-stage fresh proof.
                lost_live.push(txn);
            } else {
                self.committed.remove(&txn);
                self.presence.remove(&txn);
            }
        }
        if !lost_live.is_empty() {
            self.counters.commit_records_restaged += lost_live.len() as u64;
            staged |= self.stage_commit_proofs(&lost_live)?;
        }
        self.vdct[ppn.0 as usize] = 0;
        Ok(staged)
    }
}

impl PageStore for Pdl {
    fn options(&self) -> &StoreOptions {
        &self.opts
    }

    /// `PDL_Reading` (Figure 9): read the base page, find the differential
    /// (write buffer first, then the differential page), and merge.
    fn read_page(&mut self, pid: u64, out: &mut [u8]) -> Result<()> {
        self.opts.check_pid(pid)?;
        let ds = self.chip.geometry().data_size;
        self.opts.check_page_buf(ds, out)?;
        if let Some(&ppn) = self.poisoned.get(&pid) {
            // Known corrupt with no redundant source: report, never
            // serve. A full overwrite clears this state.
            out.fill(0);
            return Err(CoreError::PageCorrupt { pid, ppn });
        }
        if self.ppmt[pid as usize].base[0] == NONE {
            out.fill(0);
            return Ok(());
        }
        // Step 1: read the base page (verified; repairs online).
        self.read_base_into(pid, out)?;
        // Step 2: find the differential. (Re-read the mapping entry: a
        // repair in Step 1 can run GC, which moves differential pages.)
        let entry = self.ppmt[pid as usize];
        if let Some(d) = self.dwb.get(pid) {
            d.apply(out);
            return Ok(());
        }
        if entry.diff != NONE {
            let mut buf = std::mem::take(&mut self.frame_buf);
            let read = if self.opts.verify_checksums {
                self.chip.read_data_verified(Ppn(entry.diff), &mut buf)
            } else {
                self.chip.read_data(Ppn(entry.diff), &mut buf)
            };
            let found =
                read.map_err(CoreError::from).and_then(|()| Differential::find_in_page(&buf, pid));
            self.frame_buf = buf;
            let d = match found {
                Ok(Some(d)) => d,
                Ok(None) => {
                    return Err(CoreError::Corruption(format!(
                        "differential for page {pid} missing from differential page {}",
                        entry.diff
                    )))
                }
                Err(CoreError::Flash(pdl_flash::FlashError::ChecksumMismatch(p))) => {
                    // The page's only durable differential is unreadable
                    // and the base alone is stale: serving it would be
                    // silently wrong. Poison until a full overwrite.
                    self.poison(pid, p.0);
                    out.fill(0);
                    return Err(CoreError::PageCorrupt { pid, ppn: p.0 });
                }
                Err(e) => return Err(e),
            };
            // Step 3: merge the base page with the differential.
            d.apply(out);
        }
        Ok(())
    }

    /// Read-ahead: issue the reads `PDL_Reading` will need — the base
    /// frames, plus the differential page unless the write buffer already
    /// holds the page's differential — without waiting on them.
    fn prefetch(&mut self, pid: u64) -> Result<()> {
        self.opts.check_pid(pid)?;
        let entry = self.ppmt[pid as usize];
        if entry.base[0] == NONE {
            return Ok(());
        }
        for j in 0..self.frames() {
            self.chip.prefetch_page(Ppn(entry.base[j]))?;
        }
        if entry.diff != NONE && self.dwb.get(pid).is_none() {
            self.chip.prefetch_page(Ppn(entry.diff))?;
        }
        Ok(())
    }

    fn apply_update(&mut self, pid: u64, _page: &[u8], _changes: &[ChangeRange]) -> Result<()> {
        // Loosely coupled: "when a logical page is simply updated, we just
        // update the logical page in memory without recording the log".
        // The notification still feeds the hot/cold policy's per-page
        // update-frequency gauge (no flash operation is performed).
        self.heat.note_update(pid);
        Ok(())
    }

    /// `PDL_Writing` (Figure 7).
    fn evict_page(&mut self, pid: u64, page: &[u8]) -> Result<()> {
        self.stage_page(pid, page, NO_TXN)
    }

    /// Write-through (§4.5): "when the write-through command is called, PDL
    /// flushes the differential write buffer out into flash memory".
    fn flush(&mut self) -> Result<()> {
        if self.dwb.is_empty() {
            return Ok(());
        }
        self.ensure_capacity(1)?;
        self.flush_dwb()
    }

    // --- pdl-txn: the atomic commit batch -----------------------------

    fn txn_supported(&self) -> bool {
        true
    }

    fn txn_reserve(&mut self, pages: u64) -> Result<()> {
        // Worst case per page: k base frames (Case 3) plus one flushed
        // differential page; plus one page for the commit-record flush
        // and one for any pre-existing buffer content. Reserving up
        // front keeps GC out of the batch in the common case (and the
        // pre-image pins keep it safe when an interleaved operation
        // triggers it anyway).
        let k = self.frames() as u64;
        self.ensure_capacity(pages.saturating_mul(k + 1) + 2)?;
        self.in_txn_batch = true;
        Ok(())
    }

    fn txn_stage(&mut self, pid: u64, page: &[u8], txn: u64) -> Result<()> {
        debug_assert!(self.in_txn_batch, "txn_stage outside a reserve..finalize batch");
        debug_assert_ne!(txn, NO_TXN, "txn_stage needs a real transaction id");
        self.stage_page(pid, page, txn)
    }

    fn txn_flush_stage(&mut self) -> Result<()> {
        if self.dwb.is_empty() {
            return Ok(());
        }
        self.ensure_capacity(1)?;
        self.flush_dwb()
    }

    fn txn_append_commit(&mut self, txn: u64) -> Result<()> {
        if CommitRecord::ENCODED_LEN > self.dwb.free_space() {
            self.ensure_capacity(2)?;
            self.flush_dwb()?;
        }
        let ts = self.next_ts();
        self.dwb.push_commit(CommitRecord { txn, ts });
        self.counters.txn_commits += 1;
        Ok(())
    }

    fn txn_append_commit_epoch(&mut self, txns: &[u64]) -> Result<()> {
        if txns.is_empty() {
            return Ok(());
        }
        self.stage_commit_proofs(txns)?;
        self.counters.txn_commits += txns.len() as u64;
        if txns.len() > 1 {
            self.counters.epoch_commits += 1;
        }
        Ok(())
    }

    // --- retention-ledger spill tier ----------------------------------

    fn spill_supported(&self) -> bool {
        true
    }

    fn spill_page(&mut self, pid: u64, page: &[u8]) -> Result<u64> {
        self.opts.check_pid(pid)?;
        let ds = self.chip.geometry().data_size;
        self.opts.check_page_buf(ds, page)?;
        let k = self.frames() as u64;
        self.ensure_capacity(k)?;
        let g = self.chip.geometry();
        let ts = self.next_ts();
        let handle = self.next_spill;
        self.next_spill += 1;
        let mut ppns = Vec::with_capacity(k as usize);
        for (j, frame_data) in page.chunks_exact(ds).enumerate() {
            // Spilled pre-images are cold by definition (never rewritten),
            // so they ride the cold stream and stay out of hot blocks.
            let q = self.alloc_page(AllocStream::Cold)?;
            let tag = pid * k + j as u64;
            let spare = make_spare(g.spare_size, PageKind::Spill, tag, ts, frame_data);
            self.chip.program_page(q, frame_data, &spare)?;
            self.alloc.note_retained(q);
            self.spill_rev.insert(q.0, (handle, j as u32));
            ppns.push(q.0);
        }
        self.spills.insert(handle, ppns);
        self.counters.spilled_versions += 1;
        Ok(handle)
    }

    fn read_spill(&mut self, pid: u64, handle: u64, out: &mut [u8]) -> Result<()> {
        let ds = self.chip.geometry().data_size;
        self.opts.check_page_buf(ds, out)?;
        let ppns = self
            .spills
            .get(&handle)
            .cloned()
            .ok_or_else(|| CoreError::Corruption(format!("unknown spill handle {handle}")))?;
        for (j, &ppn) in ppns.iter().enumerate() {
            let slice = &mut out[j * ds..(j + 1) * ds];
            if self.opts.verify_checksums {
                match self.chip.read_data_verified(Ppn(ppn), slice) {
                    Ok(()) => {}
                    Err(pdl_flash::FlashError::ChecksumMismatch(p)) => {
                        // A spill page has no twin: the cold version is
                        // lost. Surface it — the live page is unaffected.
                        slice.fill(0);
                        return Err(CoreError::PageCorrupt { pid, ppn: p.0 });
                    }
                    Err(e) => return Err(e.into()),
                }
            } else {
                self.chip.read_data(Ppn(ppn), slice)?;
            }
        }
        self.counters.spill_reads += 1;
        Ok(())
    }

    fn free_spill(&mut self, _pid: u64, handle: u64) -> Result<()> {
        let Some(ppns) = self.spills.remove(&handle) else {
            return Ok(()); // already freed: releasing is idempotent
        };
        for ppn in ppns {
            self.spill_rev.remove(&ppn);
            self.alloc.note_released(Ppn(ppn));
            self.mark_dead_page(Ppn(ppn), false)?;
        }
        Ok(())
    }

    fn txn_id_floor(&self) -> u64 {
        let recorded = self.commit_locs.keys().chain(self.committed.iter()).max().copied();
        let tagged = self.presence.keys().max().copied();
        recorded.max(tagged).map(|m| m + 1).unwrap_or(1)
    }

    fn checkpoint(&mut self) -> Result<()> {
        Pdl::checkpoint(self)
    }

    fn txn_stage_struct_roots(&mut self, roots: &StructRootsSnapshot, txn: u64) -> Result<()> {
        if self.opts.checkpoint_blocks < 2 {
            return Ok(()); // no root region: roots stay memory-resident
        }
        debug_assert!(self.in_txn_batch, "root staging outside a reserve..finalize batch");
        let record = checkpoint::encode_root_record(roots, txn);
        let g = self.chip.geometry();
        let npages = record.len().div_ceil(g.data_size) as u32;
        if self.root_tail + npages > self.root_tail_end {
            return Err(CoreError::StorageFull);
        }
        // A pending record from a batch that aborted mid-protocol left a
        // presence ref behind; replace it before taking our own.
        if let Some((orphan, _)) = self.pending_roots.take() {
            self.presence_dec(orphan, None)?;
        }
        // The record is programmed now but becomes authoritative only if
        // `txn`'s commit record lands: recovery's tail scan skips records
        // of torn transactions, so the crash-atomicity of the roots is
        // exactly the batch's.
        let ts = self.ts.saturating_sub(1);
        let mut img = vec![0xFFu8; g.data_size];
        for (i, chunk) in record.chunks(g.data_size).enumerate() {
            img.fill(0xFF);
            img[..chunk.len()].copy_from_slice(chunk);
            let spare = make_spare(g.spare_size, PageKind::Checkpoint, txn, ts, &img);
            self.chip.program_page(Ppn(self.root_tail + i as u32), &img, &spare)?;
        }
        self.root_tail += npages;
        if self.ckpt_live_half.is_none() {
            self.root_tail_used = true;
        }
        self.presence_inc(txn);
        self.pending_roots = Some((txn, roots.clone()));
        Ok(())
    }

    fn struct_roots(&self) -> Option<StructRootsSnapshot> {
        if self.opts.checkpoint_blocks < 2 {
            return None;
        }
        Some(self.struct_roots.clone())
    }

    fn struct_root_log_space(&self) -> u64 {
        if self.opts.checkpoint_blocks < 2 {
            return u64::MAX;
        }
        (self.root_tail_end - self.root_tail) as u64 * self.chip.geometry().data_size as u64
    }

    fn txn_finalize(&mut self) -> Result<()> {
        if !self.dwb.is_empty() {
            self.ensure_capacity(1)?;
            self.flush_dwb()?;
        }
        // The commit records are durable: the superseded pre-images are
        // now garbage on every timeline, so their obsolete marks can go
        // out.
        for ppn in std::mem::take(&mut self.deferred) {
            mark_obsolete_lenient(&mut self.chip, ppn)?;
            self.counters.deferred_marks += 1;
        }
        // The batch's root record is committed along with it: promote it
        // to the authoritative snapshot and drop the pin on the previous
        // root-publishing transaction's commit record.
        if let Some((txn, snap)) = self.pending_roots.take() {
            self.struct_roots = snap;
            if let Some(old) = self.live_root_txn.replace(txn) {
                self.presence_dec(old, None)?;
            }
        }
        self.batch_pins.clear();
        self.in_txn_batch = false;
        Ok(())
    }

    fn chip(&self) -> &FlashChip {
        &self.chip
    }

    fn chip_mut(&mut self) -> &mut FlashChip {
        &mut self.chip
    }

    fn name(&self) -> String {
        MethodKind::Pdl { max_diff_size: self.max_diff_size }.label()
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        let c = &self.counters;
        vec![
            ("case1_staged", c.case1),
            ("case2_flush_then_staged", c.case2),
            ("case3_new_base", c.case3),
            ("initial_base_writes", c.initial_base_writes),
            ("dwb_flushes", c.dwb_flushes),
            ("diff_pages_obsoleted", c.diff_pages_obsoleted),
            ("gc_runs", c.gc_runs),
            ("compacted_diffs", c.compacted_diffs),
            ("relocated_bases", c.relocated_bases),
            ("migrated_hot", c.migrated_hot),
            ("migrated_cold", c.migrated_cold),
            ("unchanged_skips", c.unchanged_skips),
            ("checkpoints", c.checkpoints),
            ("bad_blocks", c.bad_blocks),
            ("txn_staged", c.txn_staged),
            ("txn_commits", c.txn_commits),
            ("commit_records_restaged", c.commit_records_restaged),
            ("deferred_marks", c.deferred_marks),
            ("repaired_pages", c.repaired_pages),
            ("poisoned_pages", c.poisoned_pages),
            ("spilled_versions", c.spilled_versions),
            ("spill_reads", c.spill_reads),
            ("spill_relocations", c.spill_relocations),
            ("epoch_commits", c.epoch_commits),
            ("epoch_coalesced", c.epoch_coalesced),
            ("retention_pinned_skips", self.alloc.retention_skips()),
        ]
    }

    fn into_chips(self: Box<Self>) -> Vec<FlashChip> {
        vec![self.chip]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdl_flash::FlashConfig;

    fn store(pages: u64, max_diff: usize) -> Pdl {
        Pdl::new(FlashChip::new(FlashConfig::tiny()), StoreOptions::new(pages), max_diff).unwrap()
    }

    fn filled(s: &Pdl, fill: u8) -> Vec<u8> {
        vec![fill; s.logical_page_size()]
    }

    #[test]
    fn first_write_is_a_base_page() {
        let mut s = store(8, 64);
        let p = filled(&s, 5);
        let before = s.chip().stats().total();
        s.write_page(2, &p).unwrap();
        let d = s.chip().stats().total() - before;
        assert_eq!(d.writes, 1); // one base-page program, nothing else
        let mut out = filled(&s, 0);
        s.read_page(2, &mut out).unwrap();
        assert_eq!(out, p);
    }

    #[test]
    fn small_update_stays_in_write_buffer() {
        let mut s = store(8, 64);
        let mut p = filled(&s, 5);
        s.write_page(0, &p).unwrap();
        let before = s.chip().stats().total();
        p[10] = 99;
        s.write_page(0, &p).unwrap();
        let d = s.chip().stats().total() - before;
        // Case 1: one base read to compute the differential, zero writes.
        assert_eq!(d.reads, 1);
        assert_eq!(d.writes, 0);
        assert_eq!(s.counters.case1, 1);
        // The read path merges from the buffer.
        let mut out = filled(&s, 0);
        s.read_page(0, &mut out).unwrap();
        assert_eq!(out, p);
    }

    #[test]
    fn buffer_overflow_flushes_a_differential_page() {
        let mut s = store(8, 256);
        let ds = s.chip().geometry().data_size; // 256 on the tiny chip
        for pid in 0..8u64 {
            s.write_page(pid, &filled(&s, 1)).unwrap();
        }
        // Each differential is ~100 bytes encoded; the tiny 256-byte buffer
        // fits two, so repeated updates force Case 2 flushes.
        let mut flushed = false;
        for round in 0..6u8 {
            for pid in 0..8u64 {
                let mut p = filled(&s, 1);
                let at = (pid as usize * 17 + round as usize * 31) % (ds - 80);
                p[at..at + 80].fill(round + 2);
                s.write_page(pid, &p).unwrap();
                flushed |= s.counters.dwb_flushes > 0;
            }
        }
        assert!(flushed, "expected at least one dwb flush");
        assert!(s.counters.case2 > 0);
    }

    #[test]
    fn read_merges_base_and_flushed_differential() {
        let mut s = store(4, 256);
        let base = filled(&s, 0x11);
        s.write_page(1, &base).unwrap();
        let mut v2 = base.clone();
        v2[20..40].fill(0x22);
        s.write_page(1, &v2).unwrap();
        s.flush().unwrap(); // differential now on flash
        assert!(s.dwb.is_empty());
        let before = s.chip().stats().total();
        let mut out = filled(&s, 0);
        s.read_page(1, &mut out).unwrap();
        let d = s.chip().stats().total() - before;
        assert_eq!(out, v2);
        // At-most-two-page reading: base + differential page.
        assert_eq!(d.reads, 2);
    }

    #[test]
    fn read_without_differential_is_one_read() {
        let mut s = store(4, 256);
        s.write_page(0, &filled(&s, 9)).unwrap();
        let before = s.chip().stats().total();
        let mut out = filled(&s, 0);
        s.read_page(0, &mut out).unwrap();
        assert_eq!((s.chip().stats().total() - before).reads, 1);
    }

    #[test]
    fn oversized_differential_triggers_case3() {
        let mut s = store(4, 64);
        let p = filled(&s, 1);
        s.write_page(0, &p).unwrap();
        // Change far more than 64 bytes.
        let p2 = filled(&s, 2);
        s.write_page(0, &p2).unwrap();
        assert_eq!(s.counters.case3, 1);
        let mut out = filled(&s, 0);
        s.read_page(0, &mut out).unwrap();
        assert_eq!(out, p2);
        // No differential page involved afterwards.
        let before = s.chip().stats().total();
        s.read_page(0, &mut out).unwrap();
        assert_eq!((s.chip().stats().total() - before).reads, 1);
    }

    #[test]
    fn unchanged_eviction_is_free() {
        let mut s = store(4, 256);
        let p = filled(&s, 3);
        s.write_page(0, &p).unwrap();
        let before = s.chip().stats().total();
        s.write_page(0, &p).unwrap();
        let d = s.chip().stats().total() - before;
        // One base read to compute the (empty) differential; no writes.
        assert_eq!(d.writes, 0);
        assert_eq!(s.counters.unchanged_skips, 1);
    }

    #[test]
    fn differential_supersedes_older_one_in_buffer() {
        let mut s = store(4, 256);
        let base = filled(&s, 0);
        s.write_page(0, &base).unwrap();
        let mut v1 = base.clone();
        v1[0] = 1;
        s.write_page(0, &v1).unwrap();
        let mut v2 = base.clone();
        v2[0] = 2;
        s.write_page(0, &v2).unwrap();
        assert_eq!(s.dwb.len(), 1, "only the newest differential is buffered");
        let mut out = filled(&s, 0);
        s.read_page(0, &mut out).unwrap();
        assert_eq!(out, v2);
    }

    #[test]
    fn sustained_updates_gc_and_preserve_data() {
        let mut s = store(8, 128);
        let ds = s.chip().geometry().data_size;
        let mut truth: Vec<Vec<u8>> =
            (0..8).map(|i| vec![i as u8; s.logical_page_size()]).collect();
        for (pid, t) in truth.iter().enumerate() {
            s.write_page(pid as u64, t).unwrap();
        }
        let mut x: u32 = 12345;
        for round in 0..400u32 {
            x = x.wrapping_mul(1103515245).wrapping_add(12345);
            let pid = (x >> 8) as usize % 8;
            let at = (x >> 11) as usize % (ds - 16);
            truth[pid][at..at + 16].fill(round as u8);
            let p = truth[pid].clone();
            s.write_page(pid as u64, &p).unwrap();
        }
        assert!(s.counters.gc_runs > 0, "GC should have run");
        for pid in 0..8usize {
            let mut out = filled(&s, 0);
            s.read_page(pid as u64, &mut out).unwrap();
            assert_eq!(out, truth[pid], "pid {pid}");
        }
    }

    #[test]
    fn multi_frame_logical_pages() {
        let chip = FlashChip::new(FlashConfig::tiny());
        let mut s = Pdl::new(chip, StoreOptions::new(4).with_frames_per_page(2), 128).unwrap();
        let ds = s.chip().geometry().data_size;
        let mut p = vec![0u8; 2 * ds];
        p[..ds].fill(1);
        p[ds..].fill(2);
        s.write_page(0, &p).unwrap();
        // Small cross-frame change -> differential.
        p[ds - 4..ds + 4].fill(9);
        s.write_page(0, &p).unwrap();
        let mut out = vec![0u8; 2 * ds];
        let before = s.chip().stats().total();
        s.read_page(0, &mut out).unwrap();
        assert_eq!(out, p);
        // Two base frames + differential still buffered: 2 reads.
        assert_eq!((s.chip().stats().total() - before).reads, 2);
        s.flush().unwrap();
        let before = s.chip().stats().total();
        s.read_page(0, &mut out).unwrap();
        assert_eq!(out, p);
        // Two base frames + one differential page.
        assert_eq!((s.chip().stats().total() - before).reads, 3);
    }

    #[test]
    fn write_buffer_survives_reads_until_flush() {
        let mut s = store(4, 256);
        let base = filled(&s, 0);
        s.write_page(0, &base).unwrap();
        let mut v = base.clone();
        v[5] = 5;
        s.write_page(0, &v).unwrap();
        // Reading must not disturb the buffer.
        let mut out = filled(&s, 0);
        s.read_page(0, &mut out).unwrap();
        s.read_page(0, &mut out).unwrap();
        assert_eq!(s.dwb.len(), 1);
        s.flush().unwrap();
        assert!(s.dwb.is_empty());
        s.read_page(0, &mut out).unwrap();
        assert_eq!(out, v);
    }

    #[test]
    fn oversized_max_diff_size_is_rejected() {
        let chip = FlashChip::new(FlashConfig::tiny());
        let err = match Pdl::new(chip, StoreOptions::new(4), 2048) {
            Err(e) => e,
            Ok(_) => panic!("2048-byte max_diff_size must not fit a 256-byte page"),
        };
        assert!(matches!(err, CoreError::BadConfig(_)), "{err}");
    }

    #[test]
    fn commit_batch_lands_record_with_differentials() {
        let mut s = store(8, 128);
        for pid in 0..4u64 {
            s.write_page(pid, &filled(&s, 1)).unwrap();
        }
        s.flush().unwrap();
        let txn = 7u64;
        s.txn_reserve(2).unwrap();
        let mut p = filled(&s, 1);
        p[3..9].fill(0xEE);
        s.txn_stage(0, &p, txn).unwrap();
        let mut p2 = filled(&s, 1);
        p2[40..44].fill(0xDD);
        s.txn_stage(1, &p2, txn).unwrap();
        assert!(!s.txn_committed(txn), "not committed until the record is durable");
        s.txn_append_commit(txn).unwrap();
        s.txn_finalize().unwrap();
        assert!(s.txn_committed(txn));
        assert_eq!(s.counters.txn_commits, 1);
        let mut out = filled(&s, 0);
        s.read_page(0, &mut out).unwrap();
        assert_eq!(out, p);
        s.read_page(1, &mut out).unwrap();
        assert_eq!(out, p2);
    }

    #[test]
    fn committed_tags_are_shed_by_gc_churn() {
        let mut s = store(8, 128);
        let size = s.logical_page_size();
        for pid in 0..8u64 {
            s.write_page(pid, &vec![pid as u8; size]).unwrap();
        }
        s.flush().unwrap();
        // One tagged commit...
        s.txn_reserve(2).unwrap();
        let mut p = vec![0u8; size];
        p[7] = 7;
        s.txn_stage(0, &p, 42).unwrap();
        s.txn_append_commit(42).unwrap();
        s.txn_finalize().unwrap();
        assert!(s.presence.contains_key(&42));
        // ...then heavy untagged churn: compaction strips the tag and
        // eventually retires the commit record and every map entry.
        let mut truth: Vec<Vec<u8>> = (0..8).map(|i| vec![i as u8; size]).collect();
        truth[0] = p;
        for round in 0..600u32 {
            let pid = (round % 8) as usize;
            let at = (round as usize * 13) % (size - 8);
            truth[pid][at..at + 8].fill(round as u8);
            let q = truth[pid].clone();
            s.write_page(pid as u64, &q).unwrap();
        }
        assert!(s.counters.gc_runs > 0);
        assert!(!s.presence.contains_key(&42), "presence must drain");
        assert!(!s.committed.contains(&42), "bookkeeping must retire");
        assert!(!s.commit_locs.contains_key(&42));
        for pid in 0..8usize {
            let mut out = vec![0u8; size];
            s.read_page(pid as u64, &mut out).unwrap();
            assert_eq!(out, truth[pid], "pid {pid}");
        }
    }
}
