//! `PDL_RecoveringfromCrash` (§4.5, Figure 11), extended with
//! transaction-aware recovery (`pdl-txn`).
//!
//! After a system failure the physical page mapping table and the valid
//! differential count table are lost; one scan through the physical pages
//! reconstructs both. Creation time stamps stored in base pages and in
//! each differential decide which of several co-existing copies is the
//! most recent (a crash can leave a new base page written but the old one
//! not yet set to obsolete, and likewise for differential pages).
//!
//! The algorithm only *sets useless pages to obsolete* — it never writes
//! data — so it stays correct when the system crashes again during
//! recovery and the scan restarts from the beginning (the paper's
//! repeated-failure guarantee).
//!
//! The same time-stamp versioning covers crashes **mid-migration**:
//! garbage collection relocates a valid base page by programming a copy
//! that *preserves* the original's creation time stamp, so a crash
//! between the copy and the victim's erase leaves two byte-identical
//! twins with equal `(tag, ts)`. The scan keeps whichever it meets first
//! and sets the other to obsolete (the strict `ts >` comparison below),
//! discarding the half-migrated duplicate; compacted differentials are
//! flushed to a fresh differential page *before* the victim is erased,
//! and a crash before that erase leaves two equal-`ts` differential
//! copies resolved the same way.
//!
//! # The transaction pass
//!
//! Recovery now runs in two passes. The first ([`txn_precheck`]) is
//! read-only: it collects, per chip, the set of transactions that appear
//! as *tags* (on differentials or Case-3 base pages) and the set that
//! appear as durable *commit records*. A transaction is **torn** — it
//! crashed between its first staged page and its commit record — exactly
//! when some chip carries its tag but no local record (the commit
//! protocol writes a record to every involved shard, and garbage
//! collection keeps a shard's record alive while anything on that shard
//! still carries the tag). The second pass is the Figure-11 scan with the
//! torn set in hand: tagged base pages of torn transactions are set
//! obsolete, tagged differentials of torn transactions are skipped, and —
//! because the commit batch *deferred* the obsolete marks on the
//! pre-images it superseded — the previous committed state is still on
//! flash and wins the time-stamp resolution. Commit records themselves
//! are re-registered (and counted in the valid-differential table) while
//! any surviving page still carries their tag.
//!
//! Data that only reached the differential write buffer is not recovered,
//! "analogous to the situation where data retained only in the file buffer
//! but not written out to disk ... are not recovered"; durability requires
//! the write-through call ([`crate::PageStore::flush`]) or a transaction
//! commit.
//!
//! The per-page replay logic lives in [`RecoveryTables`] so that the
//! checkpointed fast-recovery path (`checkpoint.rs`, the paper's §4.5
//! future-work extension) can reuse it for its delta scan.

use super::dwb::DiffWriteBuffer;
use super::{Pdl, PdlCounters, PpmtEntry, NONE};
use crate::diff::{Differential, PageRecord, NO_TXN};
use crate::error::CoreError;
use crate::ftl::BlockManager;
use crate::page_store::StoreOptions;
use crate::Result;
use pdl_flash::{BlockId, FlashChip, OpContext, PageKind, Ppn, SpareInfo};
use std::collections::{HashMap, HashSet};

/// Read-ahead window of the sequential recovery scans: how many page
/// reads are kept in flight ahead of the cursor. Sized to fill a deep
/// (16-slot) command queue without monopolising it.
const SCAN_READAHEAD: u32 = 8;

/// The torn-commit verdict builder (first, read-only pass).
///
/// It collects every *tagged* candidate (differential or base page) with
/// its creation time stamp, every commit record, and the newest
/// *committed* time stamp per logical page / frame (untagged data, plus
/// baselines from a loaded checkpoint). [`TxnVerdict::resolve`] then
/// computes which tags are **live** — not dominated by newer committed
/// data under the same time-stamp order the Figure-11 resolution uses —
/// and a transaction is *torn* exactly when it has a live tag on a chip
/// without a local commit record. Dead (superseded) tags are ignored:
/// the running store drops its presence count and may retire the commit
/// record the moment a tag is dominated, and this verdict mirrors that.
#[derive(Clone, Debug, Default)]
pub(crate) struct TxnVerdict {
    frames_per_page: usize,
    records: HashSet<u64>,
    /// `(pid, ts, txn)` of tagged differentials.
    diff_cands: Vec<(u64, u64, u64)>,
    /// `(frame, ts, txn)` of tagged base pages.
    base_cands: Vec<(u64, u64, u64)>,
    /// Newest committed base ts per frame.
    eff_frame: HashMap<u64, u64>,
    /// Newest committed differential ts per pid.
    eff_diff: HashMap<u64, u64>,
}

/// Resolved first-pass result: live tags and local commit records.
#[derive(Clone, Debug, Default)]
pub struct TxnScan {
    pub tagged: HashSet<u64>,
    pub records: HashSet<u64>,
}

impl TxnScan {
    /// Transactions torn on this chip: live-tagged but without a local
    /// commit record. (For a sharded store the torn sets of every shard
    /// are unioned before the second pass.)
    pub fn torn(&self) -> HashSet<u64> {
        self.tagged.difference(&self.records).copied().collect()
    }
}

impl TxnVerdict {
    pub fn new(frames_per_page: usize) -> TxnVerdict {
        TxnVerdict { frames_per_page, ..TxnVerdict::default() }
    }

    pub fn note_committed_base(&mut self, frame: u64, ts: u64) {
        let e = self.eff_frame.entry(frame).or_insert(0);
        *e = (*e).max(ts);
    }

    pub fn note_committed_diff(&mut self, pid: u64, ts: u64) {
        let e = self.eff_diff.entry(pid).or_insert(0);
        *e = (*e).max(ts);
    }

    pub fn note_record(&mut self, txn: u64) {
        self.records.insert(txn);
    }

    /// Feed one non-obsolete page into the verdict.
    pub fn note_page(
        &mut self,
        chip: &mut FlashChip,
        ppn: Ppn,
        info: SpareInfo,
        data_buf: &mut [u8],
    ) -> Result<()> {
        match info.kind {
            PageKind::Base => {
                if info.txn == NO_TXN {
                    self.note_committed_base(info.tag, info.ts);
                } else {
                    self.base_cands.push((info.tag, info.ts, info.txn));
                }
            }
            PageKind::Diff => {
                chip.read_data(ppn, data_buf)?;
                // An unparseable page contributes nothing; the main scan
                // will set it obsolete.
                let Ok(records) = Differential::parse_page(data_buf) else { return Ok(()) };
                for rec in records {
                    match rec {
                        PageRecord::Diff(d) => {
                            if d.txn == NO_TXN {
                                self.note_committed_diff(d.pid, d.ts);
                            } else {
                                self.diff_cands.push((d.pid, d.ts, d.txn));
                            }
                        }
                        PageRecord::Commit(c) => self.note_record(c.txn),
                        // An epoch record proves every member id durably
                        // committed, exactly as per-txn records would.
                        PageRecord::Epoch(e) => {
                            for id in e.ids() {
                                self.note_record(id);
                            }
                        }
                    }
                }
            }
            _ => {}
        }
        Ok(())
    }

    /// Compute the live tag set. A tagged candidate whose transaction has
    /// a local record counts as committed and joins the domination
    /// baselines (so a committed rewrite kills the tags it superseded);
    /// domination is non-strict — a GC twin with an equal time stamp and
    /// identical content dominates its tagged original.
    pub fn resolve(mut self) -> TxnScan {
        for (frame, ts, txn) in &self.base_cands {
            if self.records.contains(txn) {
                let e = self.eff_frame.entry(*frame).or_insert(0);
                *e = (*e).max(*ts);
            }
        }
        for (pid, ts, txn) in &self.diff_cands {
            if self.records.contains(txn) {
                let e = self.eff_diff.entry(*pid).or_insert(0);
                *e = (*e).max(*ts);
            }
        }
        let k = self.frames_per_page.max(1) as u64;
        let mut tagged = HashSet::new();
        // Only unrecorded transactions can be torn, so only their
        // candidates need a liveness check.
        for (frame, ts, txn) in &self.base_cands {
            if self.records.contains(txn) {
                continue;
            }
            if self.eff_frame.get(frame).copied().unwrap_or(0) < *ts {
                tagged.insert(*txn);
            }
        }
        for (pid, ts, txn) in &self.diff_cands {
            if self.records.contains(txn) {
                continue;
            }
            // A differential is live only while newer than every base
            // frame of its page and newer than any committed differential.
            let base_ts = (0..k)
                .map(|j| self.eff_frame.get(&(pid * k + j)).copied().unwrap_or(0))
                .max()
                .unwrap_or(0);
            let committed_ts = base_ts.max(self.eff_diff.get(pid).copied().unwrap_or(0));
            if committed_ts < *ts {
                tagged.insert(*txn);
            }
        }
        TxnScan { tagged, records: self.records }
    }
}

/// The read-only transaction pass over a whole chip (outside the
/// checkpoint root region).
pub(crate) fn txn_precheck(chip: &mut FlashChip, opts: &StoreOptions) -> Result<TxnScan> {
    let g = chip.geometry();
    chip.set_context(OpContext::Recovery);
    let t0 = chip.sim_now_us();
    let result = (|| -> Result<TxnScan> {
        let mut verdict = TxnVerdict::new(opts.frames_per_page as usize);
        let mut data_buf = vec![0u8; g.data_size];
        let first = opts.checkpoint_blocks * g.pages_per_block;
        // Sequential read-ahead: keep the next window of pages in flight
        // while the current one is consumed (free at queue depth 1).
        let mut next_pf = first;
        for p in first..g.num_pages() {
            let end = (p + 1 + SCAN_READAHEAD).min(g.num_pages());
            while next_pf < end {
                chip.prefetch_page(Ppn(next_pf))?;
                next_pf += 1;
            }
            let ppn = Ppn(p);
            let Some(info) = chip.read_spare(ppn)? else { continue };
            if info.obsolete {
                continue;
            }
            verdict.note_page(chip, ppn, info, &mut data_buf)?;
        }
        Ok(verdict.resolve())
    })();
    crate::page_store::obs_event(
        chip,
        pdl_flash::LatencyClass::RecoveryPhase,
        "recovery",
        "recovery",
        t0,
        0,
        0, // phase 0: transaction precheck pass
    );
    chip.set_context(OpContext::User);
    result
}

/// Mapping tables under reconstruction, plus the time-stamp bookkeeping
/// Figure 11 relies on and the transaction bookkeeping the torn-commit
/// pass produces.
pub(crate) struct RecoveryTables {
    pub ppmt: Vec<PpmtEntry>,
    pub vdct: Vec<u16>,
    /// ts(bp) per frame.
    pub frame_ts: Vec<u64>,
    /// ts(dp, differential(pid)) per logical page.
    pub diff_ts: Vec<u64>,
    pub written: Vec<u32>,
    pub obsolete: Vec<u32>,
    pub max_ts: u64,
    /// Transactions whose commits are torn: their tagged pages are
    /// discarded by the scan.
    pub uncommitted: HashSet<u64>,
    /// Tag of the winning differential per logical page.
    pub diff_txn: Vec<u64>,
    /// Tag of the winning base page per frame.
    pub base_txn: Vec<u64>,
    /// Live commit-record location per transaction. Pre-populated (and
    /// already counted in `vdct`) by the checkpoint fast path; the full
    /// scan fills it in [`RecoveryTables::finish`].
    pub commit_locs: HashMap<u64, u32>,
    /// Commit-record copies discovered by the scan, per transaction.
    pub commit_cands: HashMap<u64, Vec<u32>>,
    /// Pages holding at least one commit record (their obsoletion is
    /// decided in [`RecoveryTables::finish`], once record liveness is
    /// known).
    pub has_record: HashSet<u32>,
    /// Diff pages that lost every differential but hold commit records.
    pending_dead: Vec<u32>,
    /// Differential pages whose data failed checksum verification,
    /// with their creation time stamps. They are *not* marked obsolete
    /// (so a repeated recovery re-detects them); [`RecoveryTables::finish`]
    /// poisons every logical page they could have superseded.
    corrupt_diffs: Vec<(u32, u64)>,
    /// Logical pages that must not be served after this recovery: a
    /// corrupt differential page may have held their newest state.
    pub poisoned: HashMap<u64, u32>,
    /// Byte-identical base duplicates (equal tag and time stamp) left by
    /// a crash mid-GC-migration: live ppn -> surviving twin. Seed for the
    /// running store's single-page repair registry.
    pub twins: HashMap<u32, u32>,
    /// Transaction whose structure-root tail record won the root-region
    /// scan: its commit record takes one extra presence ref in
    /// [`RecoveryTables::finish`] so the record outlives tag shedding
    /// until the next checkpoint compacts the root log.
    pub root_ref: Option<u64>,
    verify_checksums: bool,
    frames_per_page: usize,
}

impl RecoveryTables {
    pub fn empty(
        opts: &StoreOptions,
        num_flash_pages: u32,
        num_blocks: u32,
        uncommitted: HashSet<u64>,
    ) -> RecoveryTables {
        let nl = opts.num_logical_pages as usize;
        let k = opts.frames_per_page as usize;
        RecoveryTables {
            ppmt: vec![PpmtEntry::default(); nl],
            vdct: vec![0u16; num_flash_pages as usize],
            frame_ts: vec![0u64; nl * k],
            diff_ts: vec![0u64; nl],
            written: vec![0u32; num_blocks as usize],
            obsolete: vec![0u32; num_blocks as usize],
            max_ts: 0,
            uncommitted,
            diff_txn: vec![NO_TXN; nl],
            base_txn: vec![NO_TXN; nl * k],
            commit_locs: HashMap::new(),
            commit_cands: HashMap::new(),
            has_record: HashSet::new(),
            pending_dead: Vec::new(),
            corrupt_diffs: Vec::new(),
            poisoned: HashMap::new(),
            twins: HashMap::new(),
            root_ref: None,
            verify_checksums: opts.verify_checksums,
            frames_per_page: k,
        }
    }

    fn decrease_vdct(&mut self, chip: &mut FlashChip, dp: u32) -> Result<()> {
        debug_assert!(self.vdct[dp as usize] > 0, "recovery vdct underflow");
        self.vdct[dp as usize] -= 1;
        if self.vdct[dp as usize] == 0 {
            if self.has_record.contains(&dp) {
                // The page may still carry a live commit record; decide in
                // finish(), once record liveness is known.
                self.pending_dead.push(dp);
            } else {
                self.obsolete_diff_page(chip, dp)?;
            }
        }
        Ok(())
    }

    fn obsolete_diff_page(&mut self, chip: &mut FlashChip, dp: u32) -> Result<()> {
        let ppn = Ppn(dp);
        // Idempotent under repeated recovery: check before writing.
        let already = chip.read_spare(ppn)?.map(|i| i.obsolete).unwrap_or(false);
        if !already {
            crate::ftl::mark_obsolete_lenient(chip, ppn)?;
        }
        let block = (dp / chip.geometry().pages_per_block) as usize;
        self.obsolete[block] += 1;
        Ok(())
    }

    fn mark_page_obsolete(&mut self, chip: &mut FlashChip, ppn: Ppn) -> Result<()> {
        let already = chip.read_spare(ppn)?.map(|i| i.obsolete).unwrap_or(false);
        if !already {
            crate::ftl::mark_obsolete_lenient(chip, ppn)?;
        }
        self.obsolete[chip.geometry().block_of(ppn).0 as usize] += 1;
        Ok(())
    }

    /// Replay one non-free, non-obsolete physical page into the tables
    /// (Figure 11's loop body). `data_buf` is a page-sized scratch buffer.
    pub fn apply_page(
        &mut self,
        chip: &mut FlashChip,
        ppn: Ppn,
        info: SpareInfo,
        data_buf: &mut [u8],
    ) -> Result<()> {
        let g = chip.geometry();
        let p = ppn.0;
        let k = self.frames_per_page;
        let nl = self.ppmt.len();
        let num_frames = nl * k;
        self.max_ts = self.max_ts.max(info.ts);
        match info.kind {
            // Case 1: r is a base page.
            PageKind::Base => {
                // Torn transaction: the page never became visible.
                if info.txn != NO_TXN && self.uncommitted.contains(&info.txn) {
                    return self.mark_page_obsolete(chip, ppn);
                }
                let frame = info.tag as usize;
                if frame >= num_frames {
                    return self.mark_page_obsolete(chip, ppn);
                }
                let pid = frame / k;
                let j = frame % k;
                let cur = self.ppmt[pid].base[j];
                // Equal-ts twins arise from GC copies; when compaction
                // shed a committed tag, the untagged twin is the one
                // whose validity is unconditional — prefer it.
                let untagged_twin = info.ts == self.frame_ts[frame]
                    && self.base_txn[frame] != NO_TXN
                    && info.txn == NO_TXN;
                if cur == NONE || info.ts > self.frame_ts[frame] || untagged_twin {
                    // r is a more recent base page.
                    if cur != NONE {
                        let old = Ppn(cur);
                        let already = chip.read_spare(old)?.map(|i| i.obsolete).unwrap_or(false);
                        if !already {
                            crate::ftl::mark_obsolete_lenient(chip, old)?;
                        }
                        self.obsolete[g.block_of(old).0 as usize] += 1;
                        if info.ts == self.frame_ts[frame] {
                            // Equal-ts duplicates are byte-identical GC
                            // copies: the loser stays on flash — free
                            // redundancy for single-page repair.
                            self.twins.insert(p, cur);
                        }
                    }
                    self.ppmt[pid].base[j] = p;
                    self.frame_ts[frame] = info.ts;
                    self.base_txn[frame] = info.txn;
                    // r more recent than differential(pid)? Then the
                    // differential must be obsolete.
                    if self.ppmt[pid].diff != NONE && info.ts > self.diff_ts[pid] {
                        let dp = self.ppmt[pid].diff;
                        self.decrease_vdct(chip, dp)?;
                        self.ppmt[pid].diff = NONE;
                        self.diff_ts[pid] = 0;
                        self.diff_txn[pid] = NO_TXN;
                    }
                } else {
                    // The table already holds a more recent base page.
                    self.mark_page_obsolete(chip, ppn)?;
                    if info.ts == self.frame_ts[frame] && cur != NONE {
                        self.twins.insert(cur, p);
                    }
                }
                Ok(())
            }
            // Case 2: r is a differential page.
            PageKind::Diff => {
                let read = if self.verify_checksums {
                    chip.read_data_verified(ppn, data_buf)
                } else {
                    chip.read_data(ppn, data_buf)
                };
                match read {
                    Ok(()) => {}
                    Err(pdl_flash::FlashError::ChecksumMismatch(_)) => {
                        // The records are unreadable, and any logical page
                        // whose newest differential lived here would be
                        // silently stale without one. Deliberately *not*
                        // marked obsolete: a repeated recovery must
                        // re-detect it (the poison set is in-memory only).
                        self.corrupt_diffs.push((p, info.ts));
                        return Ok(());
                    }
                    Err(e) => return Err(e.into()),
                }
                let records = match Differential::parse_page(data_buf) {
                    Ok(r) => r,
                    Err(_) => {
                        // Unparseable: nothing in it can be trusted.
                        return self.mark_page_obsolete(chip, ppn);
                    }
                };
                for rec in records {
                    match rec {
                        PageRecord::Commit(c) => {
                            self.max_ts = self.max_ts.max(c.ts);
                            self.commit_cands.entry(c.txn).or_default().push(p);
                            self.has_record.insert(p);
                        }
                        PageRecord::Epoch(e) => {
                            // Each member behaves as if it had its own
                            // record on this page: a candidate location per
                            // member, sharing the page. finish() then keeps
                            // the page alive while any member is referenced.
                            self.max_ts = self.max_ts.max(e.ts);
                            for id in e.ids() {
                                self.commit_cands.entry(id).or_default().push(p);
                            }
                            self.has_record.insert(p);
                        }
                        PageRecord::Diff(d) => {
                            if d.txn != NO_TXN && self.uncommitted.contains(&d.txn) {
                                // Torn transaction: the differential never
                                // became visible.
                                continue;
                            }
                            let pid = d.pid as usize;
                            if pid >= nl {
                                continue;
                            }
                            self.max_ts = self.max_ts.max(d.ts);
                            let base_ts =
                                (0..k).map(|j| self.frame_ts[pid * k + j]).max().unwrap_or(0);
                            // Same untagged-twin preference as for bases.
                            let untagged_twin = d.ts == self.diff_ts[pid]
                                && self.diff_txn[pid] != NO_TXN
                                && d.txn == NO_TXN;
                            if d.ts > base_ts && (d.ts > self.diff_ts[pid] || untagged_twin) {
                                // d is the most recent differential of pid.
                                if self.ppmt[pid].diff != NONE {
                                    let dp = self.ppmt[pid].diff;
                                    self.decrease_vdct(chip, dp)?;
                                }
                                self.ppmt[pid].diff = p;
                                self.diff_ts[pid] = d.ts;
                                self.diff_txn[pid] = d.txn;
                                self.vdct[p as usize] += 1;
                            }
                        }
                    }
                }
                if self.vdct[p as usize] == 0 {
                    if self.has_record.contains(&p) {
                        self.pending_dead.push(p);
                    } else {
                        // r does not contain any valid differential.
                        self.obsolete_diff_page(chip, ppn.0)?;
                    }
                }
                Ok(())
            }
            // Spilled cold MVCC versions are a flash-resident cache of
            // in-memory retention state; no read view survives a crash, so
            // every spill page is garbage after one.
            PageKind::Spill => self.mark_page_obsolete(chip, ppn),
            other => {
                Err(CoreError::Corruption(format!("PDL recovery found a {other:?} page at {ppn}")))
            }
        }
    }

    /// Post-scan transaction resolution: count the *live* tags per
    /// transaction (winning differentials and base frames), keep one
    /// commit-record copy alive (counted in the valid-differential
    /// table) for every transaction still referenced, and set the
    /// remaining record-only pages obsolete. Returns the presence gauge
    /// the running store resumes with.
    pub fn finish(&mut self, chip: &mut FlashChip) -> Result<HashMap<u64, u32>> {
        let mut presence: HashMap<u64, u32> = HashMap::new();
        for (pid, t) in self.diff_txn.iter().enumerate() {
            if *t != NO_TXN && self.ppmt[pid].diff != NONE {
                *presence.entry(*t).or_insert(0) += 1;
            }
        }
        let k = self.frames_per_page;
        for (frame, t) in self.base_txn.iter().enumerate() {
            if *t != NO_TXN && self.ppmt[frame / k].base[frame % k] != NONE {
                *presence.entry(*t).or_insert(0) += 1;
            }
        }
        // The authoritative structure-root tail record pins its
        // transaction's commit record exactly like a live tag would —
        // added here, before record resolution, so the retention logic
        // below covers it and the pending-dead sweep never obsoletes it.
        if let Some(t) = self.root_ref {
            *presence.entry(t).or_insert(0) += 1;
        }
        // One live record copy per referenced transaction (the lowest
        // surviving physical page, deterministically, so repeated
        // recoveries agree). The checkpoint fast path pre-counts loaded
        // locations; only newly needed ones add to vdct here.
        for t in presence.keys() {
            if self.commit_locs.contains_key(t) {
                continue;
            }
            let Some(cands) = self.commit_cands.get(t) else {
                debug_assert!(false, "live tag without a commit record for txn {t}");
                continue;
            };
            let loc = *cands.iter().min().expect("candidate list is never empty");
            self.vdct[loc as usize] += 1;
            self.commit_locs.insert(*t, loc);
        }
        // Single-page failures: a corrupt differential page with creation
        // time stamp T may have held the newest differential of *any*
        // logical page whose resolved durable state is older than T (the
        // records are unreadable, so which pages is unknowable). Poison
        // every such page — coarse, but sound: availability is lost, wrong
        // bytes are never served. Pages whose resolved state is newer
        // than T cannot have been superseded by anything stored there.
        for (p, pts) in std::mem::take(&mut self.corrupt_diffs) {
            for pid in 0..self.ppmt.len() {
                if self.ppmt[pid].base[0] == NONE {
                    continue;
                }
                let newest = (0..k)
                    .map(|j| self.frame_ts[pid * k + j])
                    .max()
                    .unwrap_or(0)
                    .max(self.diff_ts[pid]);
                if newest < pts {
                    self.poisoned.entry(pid as u64).or_insert(p);
                }
            }
        }
        // Sweep: pages that lost every differential and whose records
        // turned out dead (or duplicates) are useless now.
        for p in std::mem::take(&mut self.pending_dead) {
            if self.vdct[p as usize] > 0 {
                continue; // a chosen record keeps it alive
            }
            let ppn = Ppn(p);
            let already = chip.read_spare(ppn)?.map(|i| i.obsolete).unwrap_or(false);
            if !already {
                crate::ftl::mark_obsolete_lenient(chip, ppn)?;
            }
            self.obsolete[chip.geometry().block_of(ppn).0 as usize] += 1;
        }
        Ok(presence)
    }
}

impl Pdl {
    /// Rebuild a PDL store from chip contents after a crash. When the
    /// store was built with a checkpoint root region
    /// ([`StoreOptions::with_checkpoint_blocks`]), the latest committed
    /// checkpoint is loaded and only blocks changed since are scanned;
    /// otherwise (or when no checkpoint exists) the full Figure-11 scan
    /// runs. The torn-transaction verdict is computed locally: on a
    /// single chip every commit record is local, so tagged-without-record
    /// means torn.
    pub fn recover(chip: FlashChip, opts: StoreOptions, max_diff_size: usize) -> Result<Pdl> {
        Pdl::recover_with_uncommitted(chip, opts, max_diff_size, None)
    }

    /// [`Pdl::recover`] continuing from a [`super::CheckpointDelta`] the
    /// caller already loaded (the sharded engine's precheck loads and
    /// classifies the checkpoint once; the table rebuild replays the same
    /// delta instead of re-reading the checkpoint region).
    pub(crate) fn recover_with_delta(
        mut chip: FlashChip,
        opts: StoreOptions,
        max_diff_size: usize,
        uncommitted: HashSet<u64>,
        delta: super::CheckpointDelta,
    ) -> Result<Pdl> {
        opts.validate(&chip)?;
        let tables = super::checkpoint::replay_delta(&mut chip, delta, uncommitted)?;
        Pdl::from_recovered(chip, opts, max_diff_size, tables)
    }

    /// [`Pdl::recover`] with the torn-transaction set supplied by the
    /// caller — the sharded engine unions every shard's precheck before
    /// any shard resolves, so a transaction torn on one chip is
    /// discarded on all of them.
    pub fn recover_with_uncommitted(
        mut chip: FlashChip,
        opts: StoreOptions,
        max_diff_size: usize,
        uncommitted: Option<HashSet<u64>>,
    ) -> Result<Pdl> {
        opts.validate(&chip)?;
        if opts.checkpoint_blocks > 0 {
            if let Some(tables) =
                super::checkpoint::try_fast_recover(&mut chip, &opts, uncommitted.clone())?
            {
                return Pdl::from_recovered(chip, opts, max_diff_size, tables);
            }
        }
        let uncommitted = match uncommitted {
            Some(u) => u,
            None => txn_precheck(&mut chip, &opts)?.torn(),
        };
        let tables = scan(&mut chip, &opts, uncommitted)?;
        Pdl::from_recovered(chip, opts, max_diff_size, tables)
    }

    pub(crate) fn from_recovered(
        mut chip: FlashChip,
        opts: StoreOptions,
        max_diff_size: usize,
        mut tables: RecoveryTables,
    ) -> Result<Pdl> {
        let g = chip.geometry();
        // Resolve the durable structure roots first: the winning tail
        // record's transaction must be noted before `finish` runs so its
        // commit record is retained (and never swept) by the normal
        // presence machinery.
        let root_state = if opts.checkpoint_blocks >= 2 {
            chip.set_context(OpContext::Recovery);
            let rs = super::checkpoint::load_root_state(&mut chip, &opts, &|t| {
                (tables.commit_locs.contains_key(&t) || tables.commit_cands.contains_key(&t))
                    && !tables.uncommitted.contains(&t)
            });
            chip.set_context(OpContext::User);
            let rs = rs?;
            tables.root_ref = rs.live_txn;
            Some(rs)
        } else {
            None
        };
        let presence = {
            chip.set_context(OpContext::Recovery);
            let t0 = chip.sim_now_us();
            let r = tables.finish(&mut chip);
            crate::page_store::obs_event(
                &mut chip,
                pdl_flash::LatencyClass::RecoveryPhase,
                "recovery",
                "recovery",
                t0,
                0,
                2, // phase 2: table finishing / record resolution
            );
            chip.set_context(OpContext::User);
            r?
        };
        let mut alloc = BlockManager::new(g.num_blocks, g.pages_per_block, opts.reserve_blocks);
        alloc.set_policy(opts.gc_policy);
        for b in 0..opts.checkpoint_blocks {
            alloc.reserve_block(BlockId(b));
        }
        alloc.rebuild(&tables.written, &tables.obsolete);
        // Blocks whose erase failed before the crash are permanently
        // broken on the chip; retire them up front so GC never selects
        // one as a victim (its erase would fail again, forever).
        for b in 0..g.num_blocks {
            if chip.is_broken(BlockId(b)) {
                alloc.retire_block(BlockId(b));
            }
        }
        let committed = tables.commit_locs.keys().copied().collect();
        let (ckpt_seq, ckpt_live_half, struct_roots, live_root_txn, root_tail, root_tail_end) =
            match &root_state {
                Some(rs) => {
                    (rs.seq, rs.live_half, rs.roots.clone(), rs.live_txn, rs.tail, rs.tail_end)
                }
                None => (0, None, Default::default(), None, 0, 0),
            };
        let pdl = Pdl {
            opts,
            max_diff_size,
            ppmt: tables.ppmt,
            vdct: tables.vdct,
            dwb: DiffWriteBuffer::new(g.data_size),
            alloc,
            heat: crate::ftl::HeatTable::new(opts.num_logical_pages),
            ts: tables.max_ts + 1,
            in_gc: false,
            ckpt_seq,
            ckpt_live_half,
            struct_roots,
            pending_roots: None,
            live_root_txn,
            root_tail,
            root_tail_end,
            root_tail_used: root_state.as_ref().map(|rs| rs.tail_used).unwrap_or(false),
            diff_txn: tables.diff_txn,
            base_txn: tables.base_txn,
            presence,
            committed,
            commit_locs: tables.commit_locs,
            deferred: Vec::new(),
            batch_pins: HashSet::new(),
            in_txn_batch: false,
            poisoned: tables.poisoned,
            twins: tables.twins,
            spills: HashMap::new(),
            spill_rev: HashMap::new(),
            next_spill: 0,
            gc_moves: Vec::new(),
            base_buf: vec![0u8; opts.logical_page_size(g.data_size)],
            frame_buf: vec![0u8; g.data_size],
            page_img: vec![0u8; g.data_size],
            counters: PdlCounters::default(),
            chip,
        };
        Ok(pdl)
    }
}

/// The scan of Figure 11: for every physical page (outside the checkpoint
/// root region), read the spare area and update the tables according to
/// the page's type and time stamps. Borrows the chip so a crashed
/// (power-loss) scan can simply be retried. `uncommitted` is the torn
/// transaction set from the precheck pass.
pub(crate) fn scan(
    chip: &mut FlashChip,
    opts: &StoreOptions,
    uncommitted: HashSet<u64>,
) -> Result<RecoveryTables> {
    let g = chip.geometry();
    let mut tables = RecoveryTables::empty(opts, g.num_pages(), g.num_blocks, uncommitted);
    chip.set_context(OpContext::Recovery);
    let t0 = chip.sim_now_us();
    let result = (|| -> Result<()> {
        let mut data_buf = vec![0u8; g.data_size];
        let first = opts.checkpoint_blocks * g.pages_per_block;
        // Figure-11's scan is strictly sequential: issue the next window
        // of page reads while the current page is consumed.
        let mut next_pf = first;
        for p in first..g.num_pages() {
            let end = (p + 1 + SCAN_READAHEAD).min(g.num_pages());
            while next_pf < end {
                chip.prefetch_page(Ppn(next_pf))?;
                next_pf += 1;
            }
            let ppn = Ppn(p);
            let block = g.block_of(ppn).0 as usize;
            let Some(info) = chip.read_spare(ppn)? else { continue };
            if info.kind == PageKind::Free {
                continue;
            }
            tables.written[block] += 1;
            if info.obsolete {
                tables.obsolete[block] += 1;
                continue;
            }
            tables.apply_page(chip, ppn, info, &mut data_buf)?;
        }
        Ok(())
    })();
    crate::page_store::obs_event(
        chip,
        pdl_flash::LatencyClass::RecoveryPhase,
        "recovery",
        "recovery",
        t0,
        0,
        1, // phase 1: the Figure-11 full scan
    );
    chip.set_context(OpContext::User);
    result?;
    Ok(tables)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::is_power_loss;
    use crate::page_store::PageStore;
    use pdl_flash::FlashConfig;

    const MAX_DIFF: usize = 128;

    fn fresh(pages: u64) -> Pdl {
        Pdl::new(FlashChip::new(FlashConfig::tiny()), StoreOptions::new(pages), MAX_DIFF).unwrap()
    }

    fn crash_and_recover(s: Pdl, pages: u64) -> Pdl {
        let chip = Box::new(s).into_chip();
        Pdl::recover(chip, StoreOptions::new(pages), MAX_DIFF).unwrap()
    }

    #[test]
    fn recovers_bases_and_flushed_differentials() {
        let mut s = fresh(8);
        let size = s.logical_page_size();
        let mut truth: Vec<Vec<u8>> = (0..8).map(|i| vec![i as u8; size]).collect();
        for (pid, t) in truth.iter().enumerate() {
            s.write_page(pid as u64, t).unwrap();
        }
        for pid in 0..4usize {
            truth[pid][10..20].fill(0xEE);
            let p = truth[pid].clone();
            s.write_page(pid as u64, &p).unwrap();
        }
        s.flush().unwrap(); // durability point
        let mut r = crash_and_recover(s, 8);
        for pid in 0..8usize {
            let mut out = vec![0u8; size];
            r.read_page(pid as u64, &mut out).unwrap();
            assert_eq!(out, truth[pid], "pid {pid}");
        }
    }

    #[test]
    fn unflushed_buffer_contents_are_lost_as_specified() {
        let mut s = fresh(4);
        let size = s.logical_page_size();
        let base = vec![1u8; size];
        s.write_page(0, &base).unwrap();
        let mut v2 = base.clone();
        v2[0] = 9;
        s.write_page(0, &v2).unwrap(); // stays in the write buffer
        let mut r = crash_and_recover(s, 4);
        let mut out = vec![0u8; size];
        r.read_page(0, &mut out).unwrap();
        // The update never reached flash: the base survives.
        assert_eq!(out, base);
    }

    #[test]
    fn recovery_is_idempotent() {
        let mut s = fresh(8);
        let size = s.logical_page_size();
        for pid in 0..8u64 {
            s.write_page(pid, &vec![pid as u8; size]).unwrap();
        }
        for pid in 0..8u64 {
            let mut p = vec![pid as u8; size];
            p[0] = 0xAA;
            s.write_page(pid, &p).unwrap();
        }
        s.flush().unwrap();
        let r1 = crash_and_recover(s, 8);
        let stats_after_first = r1.chip().stats().recovery;
        let mut r2 = crash_and_recover(r1, 8);
        // Second recovery performs the same scan but never needs to mark
        // anything obsolete again.
        let second = r2.chip().stats().recovery;
        assert_eq!(second.writes, stats_after_first.writes, "no new obsolete marks");
        for pid in 0..8u64 {
            let mut out = vec![0u8; size];
            r2.read_page(pid, &mut out).unwrap();
            assert_eq!(out[0], 0xAA);
        }
    }

    #[test]
    fn store_keeps_working_after_recovery() {
        let mut s = fresh(8);
        let size = s.logical_page_size();
        for pid in 0..8u64 {
            s.write_page(pid, &vec![pid as u8; size]).unwrap();
        }
        s.flush().unwrap();
        let mut r = crash_and_recover(s, 8);
        // Continue updating enough to force GC after recovery.
        let mut truth: Vec<Vec<u8>> = (0..8).map(|i| vec![i as u8; size]).collect();
        for round in 0..200u32 {
            let pid = (round % 8) as usize;
            let at = (round as usize * 13) % (size - 8);
            truth[pid][at..at + 8].fill(round as u8);
            let p = truth[pid].clone();
            r.write_page(pid as u64, &p).unwrap();
        }
        for pid in 0..8usize {
            let mut out = vec![0u8; size];
            r.read_page(pid as u64, &mut out).unwrap();
            assert_eq!(out, truth[pid], "pid {pid}");
        }
    }

    #[test]
    fn co_existing_base_pages_resolved_by_timestamp() {
        // Crash between "write new base page" and "set old base obsolete":
        // arm the fault so the obsolete mark fails.
        let mut s = fresh(4);
        let size = s.logical_page_size();
        s.write_page(0, &vec![1u8; size]).unwrap();
        // The next whole-page change is a Case 3 (oversized differential).
        s.chip_mut().arm_fault(1); // allow exactly the base program
        let err = s.write_page(0, &vec![2u8; size]).unwrap_err();
        assert!(is_power_loss(&err));
        s.chip_mut().disarm_fault();
        let mut r = crash_and_recover(s, 4);
        let mut out = vec![0u8; size];
        r.read_page(0, &mut out).unwrap();
        // The new base page carries the newer time stamp and must win.
        assert!(out.iter().all(|&b| b == 2));
    }

    #[test]
    fn repeated_crashes_during_recovery_still_converge() {
        let mut s = fresh(8);
        let size = s.logical_page_size();
        for pid in 0..8u64 {
            s.write_page(pid, &vec![pid as u8; size]).unwrap();
        }
        // Leave work for recovery: crash an eviction between the new base
        // program and the obsolete mark, so a stale copy co-exists.
        s.chip_mut().arm_fault(1);
        let err = s.write_page(3, &vec![0x77u8; size]).unwrap_err();
        assert!(is_power_loss(&err));
        s.chip_mut().disarm_fault();

        let mut chip = Box::new(s).into_chip();
        let opts = StoreOptions::new(8);
        // Crash during recovery repeatedly with growing op budgets; the
        // scan only marks useless pages obsolete, so partial progress
        // persists on the chip and later attempts converge.
        let mut attempts = 0;
        for budget in 0..8u64 {
            chip.arm_fault(budget);
            attempts += 1;
            if scan(&mut chip, &opts, HashSet::new()).is_ok() {
                break;
            }
        }
        chip.disarm_fault();
        assert!(attempts >= 1);
        let mut r = Pdl::recover(chip, opts, MAX_DIFF).unwrap();
        let mut out = vec![0u8; size];
        r.read_page(3, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0x77), "newest base must win after crashes");
        for pid in [0u64, 1, 2, 4, 5, 6, 7] {
            r.read_page(pid, &mut out).unwrap();
            assert!(out.iter().all(|&b| b == pid as u8), "pid {pid}");
        }
    }

    // ------------------------------------------------------------------
    // pdl-txn: torn-commit recovery
    // ------------------------------------------------------------------

    #[test]
    fn committed_transaction_survives_crash() {
        let mut s = fresh(8);
        let size = s.logical_page_size();
        for pid in 0..4u64 {
            s.write_page(pid, &vec![1u8; size]).unwrap();
        }
        s.flush().unwrap();
        s.txn_reserve(2).unwrap();
        let mut a = vec![1u8; size];
        a[0] = 0xA1;
        let mut b = vec![1u8; size];
        b[9] = 0xB2;
        s.txn_stage(0, &a, 50).unwrap();
        s.txn_stage(1, &b, 50).unwrap();
        s.txn_append_commit(50).unwrap();
        s.txn_finalize().unwrap();
        let mut r = crash_and_recover(s, 8);
        assert!(r.txn_committed(50));
        let mut out = vec![0u8; size];
        r.read_page(0, &mut out).unwrap();
        assert_eq!(out, a);
        r.read_page(1, &mut out).unwrap();
        assert_eq!(out, b);
    }

    #[test]
    fn torn_commit_rolls_back_to_pre_images() {
        // Stage two tagged pages (one of them forced through a Case-3
        // base write), flush the stage, and crash before the commit
        // record: recovery must restore both pre-images.
        let mut s = fresh(8);
        let size = s.logical_page_size();
        let pre0 = vec![3u8; size];
        let mut pre1 = vec![4u8; size];
        s.write_page(0, &pre0).unwrap();
        s.write_page(1, &pre1).unwrap();
        pre1[2..6].fill(0x44); // give pid 1 a committed differential too
        s.write_page(1, &pre1).unwrap();
        s.flush().unwrap();
        s.txn_reserve(2).unwrap();
        let mut a = pre0.clone();
        a[5..9].fill(0xAA); // small change: differential
        s.txn_stage(0, &a, 60).unwrap();
        let b = vec![0xBBu8; size]; // whole-page change: Case-3 tagged base
        s.txn_stage(1, &b, 60).unwrap();
        s.txn_flush_stage().unwrap();
        // Crash here: no commit record was ever appended.
        let mut r = crash_and_recover(s, 8);
        assert!(!r.txn_committed(60));
        let mut out = vec![0u8; size];
        r.read_page(0, &mut out).unwrap();
        assert_eq!(out, pre0, "pid 0 must roll back");
        r.read_page(1, &mut out).unwrap();
        assert_eq!(out, pre1, "pid 1 must roll back to base + committed differential");
        // And the rolled-back store keeps working.
        r.write_page(0, &vec![9u8; size]).unwrap();
        r.read_page(0, &mut out).unwrap();
        assert_eq!(out, vec![9u8; size]);
    }

    #[test]
    fn commit_record_keeps_tagged_data_valid_across_double_recovery() {
        let mut s = fresh(8);
        let size = s.logical_page_size();
        for pid in 0..4u64 {
            s.write_page(pid, &vec![7u8; size]).unwrap();
        }
        s.flush().unwrap();
        s.txn_reserve(1).unwrap();
        let mut a = vec![7u8; size];
        a[11..15].fill(0xCC);
        s.txn_stage(2, &a, 77).unwrap();
        s.txn_append_commit(77).unwrap();
        s.txn_finalize().unwrap();
        let r1 = crash_and_recover(s, 8);
        let mut r2 = crash_and_recover(r1, 8);
        let mut out = vec![0u8; size];
        r2.read_page(2, &mut out).unwrap();
        assert_eq!(out, a, "committed tagged differential survives repeated recovery");
    }

    #[test]
    fn precheck_reports_tags_and_records() {
        let mut s = fresh(8);
        let size = s.logical_page_size();
        s.write_page(0, &vec![1u8; size]).unwrap();
        s.write_page(1, &vec![1u8; size]).unwrap();
        s.flush().unwrap();
        // Committed txn 5 and torn txn 6.
        s.txn_reserve(1).unwrap();
        let mut a = vec![1u8; size];
        a[0] = 2;
        s.txn_stage(0, &a, 5).unwrap();
        s.txn_append_commit(5).unwrap();
        s.txn_finalize().unwrap();
        s.txn_reserve(1).unwrap();
        let mut b = vec![1u8; size];
        b[1] = 3;
        s.txn_stage(1, &b, 6).unwrap();
        s.txn_flush_stage().unwrap(); // no record: torn
        let opts = *s.options();
        let mut chip = Box::new(s).into_chip();
        let scan = txn_precheck(&mut chip, &opts).unwrap();
        // Only unrecorded live tags matter for the verdict: txn 5 is
        // proven committed by its record, txn 6 is live-tagged without
        // one — torn.
        assert!(scan.tagged.contains(&6));
        assert!(scan.records.contains(&5) && !scan.records.contains(&6));
        assert_eq!(scan.torn(), HashSet::from([6]));
    }
}
