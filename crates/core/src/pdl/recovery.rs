//! `PDL_RecoveringfromCrash` (§4.5, Figure 11).
//!
//! After a system failure the physical page mapping table and the valid
//! differential count table are lost; one scan through the physical pages
//! reconstructs both. Creation time stamps stored in base pages and in
//! each differential decide which of several co-existing copies is the
//! most recent (a crash can leave a new base page written but the old one
//! not yet set to obsolete, and likewise for differential pages).
//!
//! The algorithm only *sets useless pages to obsolete* — it never writes
//! data — so it stays correct when the system crashes again during
//! recovery and the scan restarts from the beginning (the paper's
//! repeated-failure guarantee).
//!
//! The same time-stamp versioning covers crashes **mid-migration**:
//! garbage collection relocates a valid base page by programming a copy
//! that *preserves* the original's creation time stamp, so a crash
//! between the copy and the victim's erase leaves two byte-identical
//! twins with equal `(tag, ts)`. The scan keeps whichever it meets first
//! and sets the other to obsolete (the strict `ts >` comparison below),
//! discarding the half-migrated duplicate; compacted differentials are
//! flushed to a fresh differential page *before* the victim is erased,
//! and a crash before that erase leaves two equal-`ts` differential
//! copies resolved the same way.
//!
//! Data that only reached the differential write buffer is not recovered,
//! "analogous to the situation where data retained only in the file buffer
//! but not written out to disk ... are not recovered"; durability requires
//! the write-through call ([`crate::PageStore::flush`]).
//!
//! The per-page replay logic lives in [`RecoveryTables`] so that the
//! checkpointed fast-recovery path (`checkpoint.rs`, the paper's §4.5
//! future-work extension) can reuse it for its delta scan.

use super::dwb::DiffWriteBuffer;
use super::{Pdl, PdlCounters, PpmtEntry, NONE};
use crate::diff::Differential;
use crate::error::CoreError;
use crate::ftl::BlockManager;
use crate::page_store::StoreOptions;
use crate::Result;
use pdl_flash::{BlockId, FlashChip, OpContext, PageKind, Ppn, SpareInfo};

/// Mapping tables under reconstruction, plus the time-stamp bookkeeping
/// Figure 11 relies on.
pub(crate) struct RecoveryTables {
    pub ppmt: Vec<PpmtEntry>,
    pub vdct: Vec<u16>,
    /// ts(bp) per frame.
    pub frame_ts: Vec<u64>,
    /// ts(dp, differential(pid)) per logical page.
    pub diff_ts: Vec<u64>,
    pub written: Vec<u32>,
    pub obsolete: Vec<u32>,
    pub max_ts: u64,
    frames_per_page: usize,
}

impl RecoveryTables {
    pub fn empty(opts: &StoreOptions, num_flash_pages: u32, num_blocks: u32) -> RecoveryTables {
        let nl = opts.num_logical_pages as usize;
        let k = opts.frames_per_page as usize;
        RecoveryTables {
            ppmt: vec![PpmtEntry::default(); nl],
            vdct: vec![0u16; num_flash_pages as usize],
            frame_ts: vec![0u64; nl * k],
            diff_ts: vec![0u64; nl],
            written: vec![0u32; num_blocks as usize],
            obsolete: vec![0u32; num_blocks as usize],
            max_ts: 0,
            frames_per_page: k,
        }
    }

    fn decrease_vdct(&mut self, chip: &mut FlashChip, dp: u32) -> Result<()> {
        debug_assert!(self.vdct[dp as usize] > 0, "recovery vdct underflow");
        self.vdct[dp as usize] -= 1;
        if self.vdct[dp as usize] == 0 {
            let ppn = Ppn(dp);
            // Idempotent under repeated recovery: check before writing.
            let already = chip.read_spare(ppn)?.map(|i| i.obsolete).unwrap_or(false);
            if !already {
                crate::ftl::mark_obsolete_lenient(chip, ppn)?;
            }
            let block = (dp / chip.geometry().pages_per_block) as usize;
            self.obsolete[block] += 1;
        }
        Ok(())
    }

    fn mark_page_obsolete(&mut self, chip: &mut FlashChip, ppn: Ppn) -> Result<()> {
        let already = chip.read_spare(ppn)?.map(|i| i.obsolete).unwrap_or(false);
        if !already {
            crate::ftl::mark_obsolete_lenient(chip, ppn)?;
        }
        self.obsolete[chip.geometry().block_of(ppn).0 as usize] += 1;
        Ok(())
    }

    /// Replay one non-free, non-obsolete physical page into the tables
    /// (Figure 11's loop body). `data_buf` is a page-sized scratch buffer.
    pub fn apply_page(
        &mut self,
        chip: &mut FlashChip,
        ppn: Ppn,
        info: SpareInfo,
        data_buf: &mut [u8],
    ) -> Result<()> {
        let g = chip.geometry();
        let block = g.block_of(ppn).0 as usize;
        let p = ppn.0;
        let k = self.frames_per_page;
        let nl = self.ppmt.len();
        let num_frames = nl * k;
        self.max_ts = self.max_ts.max(info.ts);
        match info.kind {
            // Case 1: r is a base page.
            PageKind::Base => {
                let frame = info.tag as usize;
                if frame >= num_frames {
                    return self.mark_page_obsolete(chip, ppn);
                }
                let pid = frame / k;
                let j = frame % k;
                let cur = self.ppmt[pid].base[j];
                if cur == NONE || info.ts > self.frame_ts[frame] {
                    // r is a more recent base page.
                    if cur != NONE {
                        let old = Ppn(cur);
                        let already = chip.read_spare(old)?.map(|i| i.obsolete).unwrap_or(false);
                        if !already {
                            crate::ftl::mark_obsolete_lenient(chip, old)?;
                        }
                        self.obsolete[g.block_of(old).0 as usize] += 1;
                    }
                    self.ppmt[pid].base[j] = p;
                    self.frame_ts[frame] = info.ts;
                    // r more recent than differential(pid)? Then the
                    // differential must be obsolete.
                    if self.ppmt[pid].diff != NONE && info.ts > self.diff_ts[pid] {
                        let dp = self.ppmt[pid].diff;
                        self.decrease_vdct(chip, dp)?;
                        self.ppmt[pid].diff = NONE;
                        self.diff_ts[pid] = 0;
                    }
                } else {
                    // The table already holds a more recent base page.
                    self.mark_page_obsolete(chip, ppn)?;
                }
                let _ = block;
                Ok(())
            }
            // Case 2: r is a differential page.
            PageKind::Diff => {
                chip.read_data(ppn, data_buf)?;
                let records = match Differential::parse_page(data_buf) {
                    Ok(r) => r,
                    Err(_) => {
                        // Unparseable: nothing in it can be trusted.
                        return self.mark_page_obsolete(chip, ppn);
                    }
                };
                for d in records {
                    let pid = d.pid as usize;
                    if pid >= nl {
                        continue;
                    }
                    self.max_ts = self.max_ts.max(d.ts);
                    let base_ts = (0..k).map(|j| self.frame_ts[pid * k + j]).max().unwrap_or(0);
                    if d.ts > base_ts && d.ts > self.diff_ts[pid] {
                        // d is the most recent differential of pid.
                        if self.ppmt[pid].diff != NONE {
                            let dp = self.ppmt[pid].diff;
                            self.decrease_vdct(chip, dp)?;
                        }
                        self.ppmt[pid].diff = p;
                        self.diff_ts[pid] = d.ts;
                        self.vdct[p as usize] += 1;
                    }
                }
                if self.vdct[p as usize] == 0 {
                    // r does not contain any valid differential.
                    self.mark_page_obsolete(chip, ppn)?;
                }
                Ok(())
            }
            other => {
                Err(CoreError::Corruption(format!("PDL recovery found a {other:?} page at {ppn}")))
            }
        }
    }
}

impl Pdl {
    /// Rebuild a PDL store from chip contents after a crash. When the
    /// store was built with a checkpoint root region
    /// ([`StoreOptions::with_checkpoint_blocks`]), the latest committed
    /// checkpoint is loaded and only blocks changed since are scanned;
    /// otherwise (or when no checkpoint exists) the full Figure-11 scan
    /// runs.
    pub fn recover(mut chip: FlashChip, opts: StoreOptions, max_diff_size: usize) -> Result<Pdl> {
        opts.validate(&chip)?;
        if opts.checkpoint_blocks > 0 {
            if let Some(tables) = super::checkpoint::try_fast_recover(&mut chip, &opts)? {
                return Pdl::from_recovered(chip, opts, max_diff_size, tables);
            }
        }
        let tables = scan(&mut chip, &opts)?;
        Pdl::from_recovered(chip, opts, max_diff_size, tables)
    }

    pub(crate) fn from_recovered(
        chip: FlashChip,
        opts: StoreOptions,
        max_diff_size: usize,
        tables: RecoveryTables,
    ) -> Result<Pdl> {
        let g = chip.geometry();
        let mut alloc = BlockManager::new(g.num_blocks, g.pages_per_block, opts.reserve_blocks);
        alloc.set_policy(opts.gc_policy);
        for b in 0..opts.checkpoint_blocks {
            alloc.reserve_block(BlockId(b));
        }
        alloc.rebuild(&tables.written, &tables.obsolete);
        // Blocks whose erase failed before the crash are permanently
        // broken on the chip; retire them up front so GC never selects
        // one as a victim (its erase would fail again, forever).
        for b in 0..g.num_blocks {
            if chip.is_broken(BlockId(b)) {
                alloc.retire_block(BlockId(b));
            }
        }
        let mut pdl = Pdl {
            opts,
            max_diff_size,
            ppmt: tables.ppmt,
            vdct: tables.vdct,
            dwb: DiffWriteBuffer::new(g.data_size),
            alloc,
            heat: crate::ftl::HeatTable::new(opts.num_logical_pages),
            ts: tables.max_ts + 1,
            in_gc: false,
            ckpt_seq: 0,
            ckpt_live_half: None,
            base_buf: vec![0u8; opts.logical_page_size(g.data_size)],
            frame_buf: vec![0u8; g.data_size],
            page_img: vec![0u8; g.data_size],
            counters: PdlCounters::default(),
            chip,
        };
        if opts.checkpoint_blocks > 0 {
            pdl.init_checkpoint_state()?;
        }
        Ok(pdl)
    }
}

/// The scan of Figure 11: for every physical page (outside the checkpoint
/// root region), read the spare area and update the tables according to
/// the page's type and time stamps. Borrows the chip so a crashed
/// (power-loss) scan can simply be retried.
pub(crate) fn scan(chip: &mut FlashChip, opts: &StoreOptions) -> Result<RecoveryTables> {
    let g = chip.geometry();
    let mut tables = RecoveryTables::empty(opts, g.num_pages(), g.num_blocks);
    chip.set_context(OpContext::Recovery);
    let result = (|| -> Result<()> {
        let mut data_buf = vec![0u8; g.data_size];
        let first = opts.checkpoint_blocks * g.pages_per_block;
        for p in first..g.num_pages() {
            let ppn = Ppn(p);
            let block = g.block_of(ppn).0 as usize;
            let Some(info) = chip.read_spare(ppn)? else { continue };
            if info.kind == PageKind::Free {
                continue;
            }
            tables.written[block] += 1;
            if info.obsolete {
                tables.obsolete[block] += 1;
                continue;
            }
            tables.apply_page(chip, ppn, info, &mut data_buf)?;
        }
        Ok(())
    })();
    chip.set_context(OpContext::User);
    result?;
    Ok(tables)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::is_power_loss;
    use crate::page_store::PageStore;
    use pdl_flash::FlashConfig;

    const MAX_DIFF: usize = 128;

    fn fresh(pages: u64) -> Pdl {
        Pdl::new(FlashChip::new(FlashConfig::tiny()), StoreOptions::new(pages), MAX_DIFF).unwrap()
    }

    fn crash_and_recover(s: Pdl, pages: u64) -> Pdl {
        let chip = Box::new(s).into_chip();
        Pdl::recover(chip, StoreOptions::new(pages), MAX_DIFF).unwrap()
    }

    #[test]
    fn recovers_bases_and_flushed_differentials() {
        let mut s = fresh(8);
        let size = s.logical_page_size();
        let mut truth: Vec<Vec<u8>> = (0..8).map(|i| vec![i as u8; size]).collect();
        for (pid, t) in truth.iter().enumerate() {
            s.write_page(pid as u64, t).unwrap();
        }
        for pid in 0..4usize {
            truth[pid][10..20].fill(0xEE);
            let p = truth[pid].clone();
            s.write_page(pid as u64, &p).unwrap();
        }
        s.flush().unwrap(); // durability point
        let mut r = crash_and_recover(s, 8);
        for pid in 0..8usize {
            let mut out = vec![0u8; size];
            r.read_page(pid as u64, &mut out).unwrap();
            assert_eq!(out, truth[pid], "pid {pid}");
        }
    }

    #[test]
    fn unflushed_buffer_contents_are_lost_as_specified() {
        let mut s = fresh(4);
        let size = s.logical_page_size();
        let base = vec![1u8; size];
        s.write_page(0, &base).unwrap();
        let mut v2 = base.clone();
        v2[0] = 9;
        s.write_page(0, &v2).unwrap(); // stays in the write buffer
        let mut r = crash_and_recover(s, 4);
        let mut out = vec![0u8; size];
        r.read_page(0, &mut out).unwrap();
        // The update never reached flash: the base survives.
        assert_eq!(out, base);
    }

    #[test]
    fn recovery_is_idempotent() {
        let mut s = fresh(8);
        let size = s.logical_page_size();
        for pid in 0..8u64 {
            s.write_page(pid, &vec![pid as u8; size]).unwrap();
        }
        for pid in 0..8u64 {
            let mut p = vec![pid as u8; size];
            p[0] = 0xAA;
            s.write_page(pid, &p).unwrap();
        }
        s.flush().unwrap();
        let r1 = crash_and_recover(s, 8);
        let stats_after_first = r1.chip().stats().recovery;
        let mut r2 = crash_and_recover(r1, 8);
        // Second recovery performs the same scan but never needs to mark
        // anything obsolete again.
        let second = r2.chip().stats().recovery;
        assert_eq!(second.writes, stats_after_first.writes, "no new obsolete marks");
        for pid in 0..8u64 {
            let mut out = vec![0u8; size];
            r2.read_page(pid, &mut out).unwrap();
            assert_eq!(out[0], 0xAA);
        }
    }

    #[test]
    fn store_keeps_working_after_recovery() {
        let mut s = fresh(8);
        let size = s.logical_page_size();
        for pid in 0..8u64 {
            s.write_page(pid, &vec![pid as u8; size]).unwrap();
        }
        s.flush().unwrap();
        let mut r = crash_and_recover(s, 8);
        // Continue updating enough to force GC after recovery.
        let mut truth: Vec<Vec<u8>> = (0..8).map(|i| vec![i as u8; size]).collect();
        for round in 0..200u32 {
            let pid = (round % 8) as usize;
            let at = (round as usize * 13) % (size - 8);
            truth[pid][at..at + 8].fill(round as u8);
            let p = truth[pid].clone();
            r.write_page(pid as u64, &p).unwrap();
        }
        for pid in 0..8usize {
            let mut out = vec![0u8; size];
            r.read_page(pid as u64, &mut out).unwrap();
            assert_eq!(out, truth[pid], "pid {pid}");
        }
    }

    #[test]
    fn co_existing_base_pages_resolved_by_timestamp() {
        // Crash between "write new base page" and "set old base obsolete":
        // arm the fault so the obsolete mark fails.
        let mut s = fresh(4);
        let size = s.logical_page_size();
        s.write_page(0, &vec![1u8; size]).unwrap();
        // The next whole-page change is a Case 3 (oversized differential).
        s.chip_mut().arm_fault(1); // allow exactly the base program
        let err = s.write_page(0, &vec![2u8; size]).unwrap_err();
        assert!(is_power_loss(&err));
        s.chip_mut().disarm_fault();
        let mut r = crash_and_recover(s, 4);
        let mut out = vec![0u8; size];
        r.read_page(0, &mut out).unwrap();
        // The new base page carries the newer time stamp and must win.
        assert!(out.iter().all(|&b| b == 2));
    }

    #[test]
    fn repeated_crashes_during_recovery_still_converge() {
        let mut s = fresh(8);
        let size = s.logical_page_size();
        for pid in 0..8u64 {
            s.write_page(pid, &vec![pid as u8; size]).unwrap();
        }
        // Leave work for recovery: crash an eviction between the new base
        // program and the obsolete mark, so a stale copy co-exists.
        s.chip_mut().arm_fault(1);
        let err = s.write_page(3, &vec![0x77u8; size]).unwrap_err();
        assert!(is_power_loss(&err));
        s.chip_mut().disarm_fault();

        let mut chip = Box::new(s).into_chip();
        let opts = StoreOptions::new(8);
        // Crash during recovery repeatedly with growing op budgets; the
        // scan only marks useless pages obsolete, so partial progress
        // persists on the chip and later attempts converge.
        let mut attempts = 0;
        for budget in 0..8u64 {
            chip.arm_fault(budget);
            attempts += 1;
            if scan(&mut chip, &opts).is_ok() {
                break;
            }
        }
        chip.disarm_fault();
        assert!(attempts >= 1);
        let mut r = Pdl::recover(chip, opts, MAX_DIFF).unwrap();
        let mut out = vec![0u8; size];
        r.read_page(3, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0x77), "newest base must win after crashes");
        for pid in [0u64, 1, 2, 4, 5, 6, 7] {
            r.read_page(pid, &mut out).unwrap();
            assert!(out.iter().all(|&b| b == pid as u8), "pid {pid}");
        }
    }
}
