//! # pdl-core — page-update methods for flash storage
//!
//! This crate implements the storage methods studied in *Page-Differential
//! Logging: An Efficient and DBMS-independent Approach for Storing Data
//! into Flash Memory* (Kim, Whang, Song — SIGMOD 2010):
//!
//! * [`Pdl`] — **page-differential logging**, the paper's contribution: a
//!   logical page is a base page plus at most one differential, computed
//!   once at eviction time (§4);
//! * [`Opu`] — the page-based baseline with out-place update and
//!   page-level mapping (§3);
//! * [`Ipu`] — the page-based baseline with in-place update (§3);
//! * [`Ipl`] — the log-based baseline, in-page logging (Lee & Moon,
//!   SIGMOD 2007).
//!
//! All methods implement the [`PageStore`] trait over a
//! [`pdl_flash::FlashChip`]; build one with [`build_store`] or recover one
//! from a crashed chip with [`recover_store`].
//!
//! ```
//! use pdl_core::{build_store, MethodKind, StoreOptions};
//! use pdl_flash::{FlashChip, FlashConfig};
//!
//! let chip = FlashChip::new(FlashConfig::tiny());
//! let mut store =
//!     build_store(chip, MethodKind::Pdl { max_diff_size: 64 }, StoreOptions::new(16)).unwrap();
//! let page = vec![7u8; store.logical_page_size()];
//! store.write_page(3, &page).unwrap();
//! let mut out = vec![0u8; page.len()];
//! store.read_page(3, &mut out).unwrap();
//! assert_eq!(out, page);
//! ```

pub mod diff;
mod error;
mod ftl;
mod ipl;
mod ipu;
mod opu;
mod page_store;
mod pdl;
mod shard;

pub use diff::NO_TXN;
pub use error::{is_page_corrupt, is_power_loss, CoreError};
pub use ftl::GcPolicy;
pub use ipl::Ipl;
pub use ipu::Ipu;
pub use opu::Opu;
pub use page_store::{
    ChangeRange, MethodKind, PageStore, StoreOptions, StructRootEntry, StructRootsSnapshot,
};
pub use pdl::Pdl;
pub use shard::{shard_pages, ShardedStore};

use pdl_flash::FlashChip;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Build a page store of the requested method over a fresh chip.
pub fn build_store(
    chip: FlashChip,
    kind: MethodKind,
    opts: StoreOptions,
) -> Result<Box<dyn PageStore>> {
    let mut chip = chip;
    chip.set_obs_enabled(opts.obs);
    Ok(match kind {
        MethodKind::Opu => Box::new(Opu::new(chip, opts)?),
        MethodKind::Ipu => Box::new(Ipu::new(chip, opts)?),
        MethodKind::Pdl { max_diff_size } => Box::new(Pdl::new(chip, opts, max_diff_size)?),
        MethodKind::Ipl { log_bytes_per_block } => {
            Box::new(Ipl::new(chip, opts, log_bytes_per_block)?)
        }
    })
}

/// Rebuild a page store of the requested method from a chip that survived
/// a crash (in-memory tables are reconstructed by scanning flash).
pub fn recover_store(
    chip: FlashChip,
    kind: MethodKind,
    opts: StoreOptions,
) -> Result<Box<dyn PageStore>> {
    let mut chip = chip;
    chip.set_obs_enabled(opts.obs);
    Ok(match kind {
        MethodKind::Opu => Box::new(Opu::recover(chip, opts)?),
        MethodKind::Ipu => Box::new(Ipu::recover(chip, opts)?),
        MethodKind::Pdl { max_diff_size } => Box::new(Pdl::recover(chip, opts, max_diff_size)?),
        MethodKind::Ipl { log_bytes_per_block } => {
            Box::new(Ipl::recover(chip, opts, log_bytes_per_block)?)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdl_flash::FlashConfig;

    #[test]
    fn factory_builds_every_method() {
        for kind in MethodKind::paper_six() {
            let kind = match kind {
                // Tiny geometry: shrink the method parameters accordingly.
                MethodKind::Ipl { .. } => MethodKind::Ipl { log_bytes_per_block: 512 },
                MethodKind::Pdl { max_diff_size } => {
                    MethodKind::Pdl { max_diff_size: max_diff_size.min(128) }
                }
                k => k,
            };
            let chip = FlashChip::new(FlashConfig::tiny());
            let mut store = build_store(chip, kind, StoreOptions::new(12)).unwrap();
            let page = vec![0xABu8; store.logical_page_size()];
            store.write_page(1, &page).unwrap();
            let mut out = vec![0u8; page.len()];
            store.read_page(1, &mut out).unwrap();
            assert_eq!(out, page, "{}", store.name());
        }
    }

    #[test]
    fn factory_recovers_every_method() {
        for kind in [
            MethodKind::Opu,
            MethodKind::Ipu,
            MethodKind::Pdl { max_diff_size: 128 },
            MethodKind::Ipl { log_bytes_per_block: 512 },
        ] {
            let chip = FlashChip::new(FlashConfig::tiny());
            let mut store = build_store(chip, kind, StoreOptions::new(12)).unwrap();
            let page = vec![0x5Eu8; store.logical_page_size()];
            store.write_page(2, &page).unwrap();
            store.flush().unwrap();
            let chip = store.into_chip();
            let mut back = recover_store(chip, kind, StoreOptions::new(12)).unwrap();
            let mut out = vec![0u8; page.len()];
            back.read_page(2, &mut out).unwrap();
            assert_eq!(out, page, "{}", back.name());
        }
    }
}
