//! OPU — the page-based method with **out-place update** and page-level
//! mapping (§3 of the paper).
//!
//! When an updated logical page must be reflected into flash, the whole
//! page is written into a freshly allocated physical page and the previous
//! copy is *set to obsolete* — which itself costs one (spare-area) write
//! operation, so OPU pays **two write operations per update** plus
//! amortised garbage collection. Reading a logical page costs exactly one
//! read operation per frame. The paper uses OPU with page-level mapping as
//! the representative page-based method because it "is known to have good
//! performance even though the method consumes memory excessively".

use crate::error::CoreError;
use crate::ftl::{
    make_spare, make_spare_preserving, mark_obsolete_lenient, AllocOutcome, AllocStream,
    BlockManager, GcPolicy, HeatTable,
};
use crate::page_store::{ChangeRange, MethodKind, PageStore, StoreOptions};
use crate::Result;
use pdl_flash::{FlashChip, OpContext, PageKind, Ppn};

const NONE: u32 = u32::MAX;

/// Out-place update page store.
pub struct Opu {
    chip: FlashChip,
    opts: StoreOptions,
    /// Frame -> physical page (page-level mapping table).
    map: Vec<u32>,
    alloc: BlockManager,
    /// Per-logical-page update-frequency gauge (hot/cold policy).
    heat: HeatTable,
    ts: u64,
    in_gc: bool,
    frame_buf: Vec<u8>,
    // Counters.
    gc_runs: u64,
    relocated_pages: u64,
    migrated_hot: u64,
    migrated_cold: u64,
    bad_blocks: u64,
}

impl Opu {
    /// Create an OPU store over a fresh (or fully erased region of a) chip.
    pub fn new(chip: FlashChip, opts: StoreOptions) -> Result<Opu> {
        opts.validate(&chip)?;
        let g = chip.geometry();
        let frames = opts.num_frames();
        let usable = (g.num_blocks.saturating_sub(opts.reserve_blocks + 1)) as u64
            * g.pages_per_block as u64;
        if frames > usable {
            return Err(CoreError::BadConfig(format!(
                "{frames} frames do not fit: only {usable} pages usable outside the GC reserve"
            )));
        }
        let mut alloc = BlockManager::new(g.num_blocks, g.pages_per_block, opts.reserve_blocks);
        alloc.set_policy(opts.gc_policy);
        let frame_buf = vec![0u8; g.data_size];
        Ok(Opu {
            chip,
            opts,
            map: vec![NONE; frames as usize],
            alloc,
            heat: HeatTable::new(opts.num_logical_pages),
            ts: 1,
            in_gc: false,
            frame_buf,
            gc_runs: 0,
            relocated_pages: 0,
            migrated_hot: 0,
            migrated_cold: 0,
            bad_blocks: 0,
        })
    }

    /// Rebuild an OPU store from chip contents after a crash: one scan over
    /// the spare areas reconstructs the page-level mapping table, keeping
    /// the most recent copy of every frame (by creation time stamp) and
    /// setting stale copies to obsolete.
    pub fn recover(mut chip: FlashChip, opts: StoreOptions) -> Result<Opu> {
        opts.validate(&chip)?;
        let g = chip.geometry();
        let frames = opts.num_frames() as usize;
        let mut map = vec![NONE; frames];
        let mut frame_ts = vec![0u64; frames];
        let mut written = vec![0u32; g.num_blocks as usize];
        let mut obsolete = vec![0u32; g.num_blocks as usize];
        let mut max_ts = 0u64;
        chip.set_context(OpContext::Recovery);
        let scan_t0 = chip.sim_now_us();
        for p in 0..g.num_pages() {
            let ppn = Ppn(p);
            let block = g.block_of(ppn).0 as usize;
            let Some(info) = chip.read_spare(ppn)? else { continue };
            if info.kind == PageKind::Free {
                continue;
            }
            written[block] += 1;
            if info.obsolete {
                obsolete[block] += 1;
                continue;
            }
            if info.kind != PageKind::Data {
                return Err(CoreError::Corruption(format!(
                    "OPU recovery found a {:?} page at {ppn}",
                    info.kind
                )));
            }
            max_ts = max_ts.max(info.ts);
            let frame = info.tag as usize;
            // Stale copies may sit in blocks whose erase failed: their
            // spare areas cannot be programmed, but the block is retired
            // below, so the lenient mark suffices.
            if frame >= frames {
                mark_obsolete_lenient(&mut chip, ppn)?;
                obsolete[block] += 1;
                continue;
            }
            if map[frame] == NONE || info.ts > frame_ts[frame] {
                if map[frame] != NONE {
                    let old = Ppn(map[frame]);
                    mark_obsolete_lenient(&mut chip, old)?;
                    obsolete[g.block_of(old).0 as usize] += 1;
                }
                map[frame] = p;
                frame_ts[frame] = info.ts;
            } else {
                mark_obsolete_lenient(&mut chip, ppn)?;
                obsolete[block] += 1;
            }
        }
        crate::page_store::obs_event(
            &mut chip,
            pdl_flash::LatencyClass::RecoveryPhase,
            "recovery",
            "recovery",
            scan_t0,
            0,
            0,
        );
        chip.set_context(OpContext::User);
        let mut alloc = BlockManager::new(g.num_blocks, g.pages_per_block, opts.reserve_blocks);
        alloc.set_policy(opts.gc_policy);
        alloc.rebuild(&written, &obsolete);
        // Retire blocks the chip knows are broken so GC never picks one
        // as a victim (its erase would fail again, forever).
        for b in 0..g.num_blocks {
            if chip.is_broken(pdl_flash::BlockId(b)) {
                alloc.retire_block(pdl_flash::BlockId(b));
            }
        }
        let frame_buf = vec![0u8; g.data_size];
        Ok(Opu {
            chip,
            opts,
            map,
            alloc,
            heat: HeatTable::new(opts.num_logical_pages),
            ts: max_ts + 1,
            in_gc: false,
            frame_buf,
            gc_runs: 0,
            relocated_pages: 0,
            migrated_hot: 0,
            migrated_cold: 0,
            bad_blocks: 0,
        })
    }

    /// Use a different GC victim-selection policy (ablation). Also
    /// recorded in [`PageStore::options`], so recovering with the
    /// store's own options resumes the same policy.
    pub fn set_gc_policy(&mut self, policy: GcPolicy) {
        self.opts.gc_policy = policy;
        self.alloc.set_policy(policy);
    }

    /// Which allocation stream `pid`'s frames belong on.
    fn stream_for(&self, pid: u64) -> AllocStream {
        self.heat.stream_for(self.alloc.policy(), pid)
    }

    fn alloc_page(&mut self, stream: AllocStream) -> Result<Ppn> {
        match self.alloc.alloc_in(self.in_gc, stream)? {
            AllocOutcome::Page(p) => Ok(p),
            AllocOutcome::NeedsGc => {
                debug_assert!(false, "allocation after ensure_capacity must not need GC");
                self.gc_once()?;
                match self.alloc.alloc_in(self.in_gc, stream)? {
                    AllocOutcome::Page(p) => Ok(p),
                    AllocOutcome::NeedsGc => Err(CoreError::StorageFull),
                }
            }
        }
    }

    /// Run GC until `n` further pages can be allocated without touching the
    /// reserve. Called at operation entry so GC never interleaves with a
    /// half-applied multi-frame write.
    fn ensure_capacity(&mut self, n: u32) -> Result<()> {
        let mut guard = 0u32;
        while self.alloc.normal_capacity() < n as u64 {
            self.gc_once()?;
            guard += 1;
            if guard > 2 * self.alloc.num_blocks() {
                return Err(CoreError::StorageFull);
            }
        }
        Ok(())
    }

    fn gc_once(&mut self) -> Result<()> {
        debug_assert!(!self.in_gc, "nested GC");
        self.in_gc = true;
        self.chip.set_context(OpContext::Gc);
        let t0 = self.chip.sim_now_us();
        let result = self.gc_inner();
        crate::page_store::obs_event(
            &mut self.chip,
            pdl_flash::LatencyClass::GcPause,
            "gc",
            "gc",
            t0,
            0,
            self.gc_runs,
        );
        self.chip.set_context(OpContext::User);
        self.in_gc = false;
        result
    }

    fn gc_inner(&mut self) -> Result<()> {
        let g = self.chip.geometry();
        // Only victims whose relocation (plus slack) fits the free pool:
        // a failed erase must never strand GC mid-relocation.
        let budget = self.alloc.gc_capacity().saturating_sub(0) as u32;
        let victim = self.alloc.pick_victim(budget).ok_or(CoreError::StorageFull)?;
        let written = self.alloc.written_in(victim);
        for idx in 0..written {
            let ppn = g.page_at(victim, idx);
            let Some(info) = self.chip.read_spare(ppn)? else { continue };
            if info.kind == PageKind::Free || info.obsolete {
                continue;
            }
            let frame = info.tag as usize;
            if frame >= self.map.len() || self.map[frame] != ppn.0 {
                // Stale copy that was never marked obsolete (pre-recovery
                // leftovers); it dies with the block.
                continue;
            }
            if self.opts.verify_checksums {
                match self.chip.read_data_verified(ppn, &mut self.frame_buf) {
                    // A corrupt page still migrates (GC must free the
                    // block), carrying the original checksum below so the
                    // damage stays detectable at the next read — OPU has
                    // no redundant source to rebuild from.
                    Ok(()) | Err(pdl_flash::FlashError::ChecksumMismatch(_)) => {}
                    Err(e) => return Err(e.into()),
                }
            } else {
                self.chip.read_data(ppn, &mut self.frame_buf)?;
            }
            // Migration target by page hotness (hot/cold policy): cold
            // survivors must not pollute the blocks hot pages churn.
            let stream = self.stream_for(frame as u64 / self.opts.frames_per_page as u64);
            let q = self.alloc_page(stream)?;
            let spare = make_spare_preserving(g.spare_size, &info);
            self.chip.program_page(q, &self.frame_buf, &spare)?;
            self.map[frame] = q.0;
            self.relocated_pages += 1;
            match stream {
                AllocStream::Hot => self.migrated_hot += 1,
                AllocStream::Cold => self.migrated_cold += 1,
            }
        }
        match self.chip.erase_block(victim) {
            Ok(()) => self.alloc.on_erased(victim),
            // Bad-block management: valid pages were already relocated,
            // so retire the block and let the caller pick another victim
            // — whether its erase failed just now (`EraseFailed`) or
            // before a crash whose recovery rebuilt it as a regular
            // `Used` block (`BadBlock`); without retirement GC would
            // pick the broken block as a victim forever.
            Err(pdl_flash::FlashError::EraseFailed(b) | pdl_flash::FlashError::BadBlock(b)) => {
                self.alloc.retire_block(b);
                self.bad_blocks += 1;
            }
            Err(e) => return Err(e.into()),
        }
        self.gc_runs += 1;
        Ok(())
    }
}

impl PageStore for Opu {
    fn options(&self) -> &StoreOptions {
        &self.opts
    }

    fn read_page(&mut self, pid: u64, out: &mut [u8]) -> Result<()> {
        self.opts.check_pid(pid)?;
        let ds = self.chip.geometry().data_size;
        self.opts.check_page_buf(ds, out)?;
        let k = self.opts.frames_per_page as u64;
        for j in 0..k {
            let frame = (pid * k + j) as usize;
            let slice = &mut out[(j as usize) * ds..(j as usize + 1) * ds];
            if self.map[frame] == NONE {
                slice.fill(0);
            } else if self.opts.verify_checksums {
                match self.chip.read_data_verified(Ppn(self.map[frame]), slice) {
                    Ok(()) => {}
                    // No redundant source: report, never serve.
                    Err(pdl_flash::FlashError::ChecksumMismatch(p)) => {
                        slice.fill(0);
                        return Err(CoreError::PageCorrupt { pid, ppn: p.0 });
                    }
                    Err(e) => return Err(e.into()),
                }
            } else {
                self.chip.read_data(Ppn(self.map[frame]), slice)?;
            }
        }
        Ok(())
    }

    /// Read-ahead: issue the mapped frame reads without waiting.
    fn prefetch(&mut self, pid: u64) -> Result<()> {
        self.opts.check_pid(pid)?;
        let k = self.opts.frames_per_page as u64;
        for j in 0..k {
            let frame = (pid * k + j) as usize;
            if self.map[frame] != NONE {
                self.chip.prefetch_page(Ppn(self.map[frame]))?;
            }
        }
        Ok(())
    }

    fn apply_update(&mut self, pid: u64, _page: &[u8], _changes: &[ChangeRange]) -> Result<()> {
        // Loosely coupled: OPU acts only when the page is reflected. The
        // notification still feeds the hot/cold policy's per-page
        // update-frequency gauge (no flash operation is performed).
        self.heat.note_update(pid);
        Ok(())
    }

    fn evict_page(&mut self, pid: u64, page: &[u8]) -> Result<()> {
        self.opts.check_pid(pid)?;
        let ds = self.chip.geometry().data_size;
        self.opts.check_page_buf(ds, page)?;
        let k = self.opts.frames_per_page;
        self.ensure_capacity(k)?;
        let g = self.chip.geometry();
        let ts = self.ts;
        self.ts += 1;
        let stream = self.stream_for(pid);
        for j in 0..k as usize {
            let frame = pid as usize * k as usize + j;
            let data = &page[j * ds..(j + 1) * ds];
            let q = self.alloc_page(stream)?;
            let spare = make_spare(g.spare_size, PageKind::Data, frame as u64, ts, data);
            self.chip.program_page(q, data, &spare)?;
            let old = self.map[frame];
            if old != NONE {
                // Setting the original page to obsolete: one write operation.
                mark_obsolete_lenient(&mut self.chip, Ppn(old))?;
                self.alloc.note_obsolete(Ppn(old));
            }
            self.map[frame] = q.0;
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        Ok(()) // nothing buffered in memory
    }

    fn chip(&self) -> &FlashChip {
        &self.chip
    }

    fn chip_mut(&mut self) -> &mut FlashChip {
        &mut self.chip
    }

    fn name(&self) -> String {
        MethodKind::Opu.label()
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("gc_runs", self.gc_runs),
            ("relocated_pages", self.relocated_pages),
            ("migrated_hot", self.migrated_hot),
            ("migrated_cold", self.migrated_cold),
            ("bad_blocks", self.bad_blocks),
        ]
    }

    fn into_chips(self: Box<Self>) -> Vec<FlashChip> {
        vec![self.chip]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdl_flash::FlashConfig;

    fn store(pages: u64) -> Opu {
        let chip = FlashChip::new(FlashConfig::tiny());
        Opu::new(chip, StoreOptions::new(pages)).unwrap()
    }

    fn page(fill: u8, store: &Opu) -> Vec<u8> {
        vec![fill; store.logical_page_size()]
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut s = store(8);
        let p = page(0xA7, &s);
        s.write_page(3, &p).unwrap();
        let mut out = page(0, &s);
        s.read_page(3, &mut out).unwrap();
        assert_eq!(out, p);
    }

    #[test]
    fn unwritten_pages_read_as_zero() {
        let mut s = store(4);
        let mut out = page(0xFF, &s);
        s.read_page(2, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));
    }

    #[test]
    fn update_costs_two_writes_and_read_costs_one() {
        let mut s = store(8);
        let p = page(1, &s);
        s.write_page(0, &p).unwrap();
        let before = s.chip().stats().total();
        let p2 = page(2, &s);
        s.write_page(0, &p2).unwrap();
        let d = s.chip().stats().total() - before;
        // One page program + one obsolete mark.
        assert_eq!(d.writes, 2);
        assert_eq!(d.reads, 0);
        let before = s.chip().stats().total();
        let mut out = page(0, &s);
        s.read_page(0, &mut out).unwrap();
        let d = s.chip().stats().total() - before;
        assert_eq!(d.reads, 1);
        assert_eq!(out, p2);
    }

    #[test]
    fn first_write_has_no_obsolete_cost() {
        let mut s = store(8);
        let before = s.chip().stats().total();
        s.write_page(5, &page(9, &s)).unwrap();
        let d = s.chip().stats().total() - before;
        assert_eq!(d.writes, 1);
    }

    #[test]
    fn sustained_updates_trigger_gc_and_preserve_data() {
        // Tiny chip: 16 blocks x 8 pages = 128 pages; 8 logical pages leave
        // plenty of slack, so GC must reclaim obsolete copies repeatedly.
        let mut s = store(8);
        for round in 0..200u32 {
            let pid = (round % 8) as u64;
            let p = page(round as u8, &s);
            s.write_page(pid, &p).unwrap();
        }
        assert!(s.gc_runs > 0, "GC should have run");
        // Last 8 writes are rounds 192..200.
        for pid in 0..8u64 {
            let mut out = page(0, &s);
            s.read_page(pid, &mut out).unwrap();
            let expect = (192 + pid) as u8;
            assert!(out.iter().all(|&b| b == expect), "pid {pid}");
        }
    }

    #[test]
    fn multi_frame_pages_round_trip() {
        let chip = FlashChip::new(FlashConfig::tiny());
        let mut s = Opu::new(chip, StoreOptions::new(4).with_frames_per_page(2)).unwrap();
        let ds = s.chip().geometry().data_size;
        let mut p = vec![0u8; 2 * ds];
        p[..ds].fill(1);
        p[ds..].fill(2);
        s.write_page(1, &p).unwrap();
        let mut out = vec![0u8; 2 * ds];
        s.read_page(1, &mut out).unwrap();
        assert_eq!(out, p);
        // Two frames -> two reads.
        let before = s.chip().stats().total();
        s.read_page(1, &mut out).unwrap();
        assert_eq!((s.chip().stats().total() - before).reads, 2);
    }

    #[test]
    fn recovery_rebuilds_mapping() {
        let mut s = store(8);
        for pid in 0..8u64 {
            s.write_page(pid, &page(pid as u8, &s)).unwrap();
        }
        for pid in 0..4u64 {
            s.write_page(pid, &page(0x80 | pid as u8, &s)).unwrap();
        }
        let chip = Box::new(s).into_chip();
        let mut r = Opu::recover(chip, StoreOptions::new(8)).unwrap();
        for pid in 0..8u64 {
            let mut out = page(0, &r);
            r.read_page(pid, &mut out).unwrap();
            let expect = if pid < 4 { 0x80 | pid as u8 } else { pid as u8 };
            assert!(out.iter().all(|&b| b == expect), "pid {pid}");
        }
        // Recovery accounting went to the recovery ledger.
        assert!(r.chip().stats().recovery.reads > 0);
        // And the store keeps working after recovery.
        r.write_page(0, &page(0x42, &r)).unwrap();
        let mut out = page(0, &r);
        r.read_page(0, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0x42));
    }

    #[test]
    fn too_many_pages_is_bad_config() {
        let chip = FlashChip::new(FlashConfig::tiny());
        // tiny chip has 128 pages; reserve 3+1 blocks of 8 -> 96 usable.
        assert!(Opu::new(chip, StoreOptions::new(100)).is_err());
    }
}
