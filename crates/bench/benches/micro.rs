//! Criterion micro-benchmarks: wall-clock cost of the hot primitives
//! (differential codec, emulator operations, method round trips, B+-tree
//! operations). These measure *our implementation's* speed, complementing
//! the experiment benches which report *simulated flash* time.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pdl_core::diff::Differential;
use pdl_core::{build_store, MethodKind, StoreOptions};
use pdl_flash::{fnv1a32, FlashChip, FlashConfig, PageKind, Ppn, SpareInfo};
use pdl_storage::{BTree, Database, KeyBuf};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

fn bench_diff_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("diff_codec");
    let mut rng = StdRng::seed_from_u64(7);
    let mut base = vec![0u8; 2048];
    rng.fill_bytes(&mut base);
    for pct in [2usize, 20, 90] {
        let mut new = base.clone();
        let len = 2048 * pct / 100;
        let at = rng.gen_range(0..=2048 - len);
        rng.fill_bytes(&mut new[at..at + len]);
        g.bench_function(format!("compute_{pct}pct"), |b| {
            b.iter(|| Differential::compute(1, 2, &base, &new, 8))
        });
        let d = Differential::compute(1, 2, &base, &new, 8);
        let mut buf = vec![0xFFu8; d.encoded_len() + 16];
        g.bench_function(format!("encode_{pct}pct"), |b| b.iter(|| d.encode(&mut buf).unwrap()));
        g.bench_function(format!("apply_{pct}pct"), |b| {
            b.iter_batched(|| base.clone(), |mut page| d.apply(&mut page), BatchSize::SmallInput)
        });
    }
    g.finish();
}

fn bench_flash_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("flash_emulator");
    let config = FlashConfig::scaled(16);
    let data = vec![0xA5u8; 2048];
    let mut spare = vec![0xFFu8; 64];
    SpareInfo::new(PageKind::Data, 1, 1, fnv1a32(&data)).encode(&mut spare).unwrap();
    g.bench_function("program_page", |b| {
        b.iter_batched(
            || FlashChip::new(config),
            |mut chip| chip.program_page(Ppn(0), &data, &spare).unwrap(),
            BatchSize::SmallInput,
        )
    });
    let mut chip = FlashChip::new(config);
    chip.program_page(Ppn(0), &data, &spare).unwrap();
    let mut out = vec![0u8; 2048];
    g.bench_function("read_data", |b| b.iter(|| chip.read_data(Ppn(0), &mut out).unwrap()));
    g.bench_function("read_spare", |b| b.iter(|| chip.read_spare(Ppn(0)).unwrap()));
    g.finish();
}

fn bench_method_round_trips(c: &mut Criterion) {
    let mut g = c.benchmark_group("method_round_trip");
    g.sample_size(20);
    for kind in [
        MethodKind::Opu,
        MethodKind::Pdl { max_diff_size: 256 },
        MethodKind::Ipl { log_bytes_per_block: 18 * 1024 },
    ] {
        let chip = FlashChip::new(FlashConfig::scaled(32));
        let mut store = build_store(chip, kind, StoreOptions::new(400)).unwrap();
        let mut page = vec![0u8; store.logical_page_size()];
        let mut rng = StdRng::seed_from_u64(1);
        for pid in 0..400u64 {
            rng.fill_bytes(&mut page);
            store.write_page(pid, &page).unwrap();
        }
        g.bench_function(format!("update_cycle_{}", store.name()), |b| {
            let mut pid = 0u64;
            b.iter(|| {
                pid = (pid + 17) % 400;
                store.read_page(pid, &mut page).unwrap();
                let at = (pid as usize * 13) % (page.len() - 41);
                rng.fill_bytes(&mut page[at..at + 41]);
                store.apply_update(pid, &page, &[pdl_core::ChangeRange::new(at, 41)]).unwrap();
                store.evict_page(pid, &page).unwrap();
            })
        });
    }
    g.finish();
}

fn bench_btree(c: &mut Criterion) {
    let mut g = c.benchmark_group("btree");
    g.sample_size(20);
    let chip = FlashChip::new(FlashConfig::scaled(64));
    let store = build_store(chip, MethodKind::Opu, StoreOptions::new(1000)).unwrap();
    let db = Database::new(store, 256);
    let tree = BTree::create(&db).unwrap();
    for v in 0..5_000u64 {
        tree.insert(&db, &KeyBuf::new().push_u64(v * 7 % 5_000).finish(), v).unwrap();
    }
    let mut i = 0u64;
    g.bench_function("get_hot", |b| {
        b.iter(|| {
            i = (i + 13) % 5_000;
            tree.get(&db, &KeyBuf::new().push_u64(i).finish()).unwrap()
        })
    });
    // Insert + delete pairs keep the tree size bounded across criterion's
    // millions of warm-up iterations.
    let mut next = 10_000u64;
    g.bench_function("insert_delete", |b| {
        b.iter(|| {
            next += 1;
            let key = KeyBuf::new().push_u64(10_000 + next % 1_000).finish();
            tree.insert(&db, &key, next).unwrap();
            tree.delete(&db, &key).unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_diff_codec, bench_flash_ops, bench_method_round_trips, bench_btree);
criterion_main!(benches);
