//! Experiment 5 / Figure 16: overall time per update operation as the
//! performance parameters of flash memory vary — `T_read` from 10 to 1500
//! µs, with `T_write` of 500 (a) and 1000 (b) µs, `T_erase = 1500 µs`.

use pdl_bench::experiments::{exp5, table1_banner};
use pdl_workload::Scale;

fn main() {
    let scale = Scale::from_env();
    println!("# Experiment 5 (Figure 16)");
    println!("{}", table1_banner(scale));
    println!("parameters: N_updates_till_write = 1, %ChangedByOneU_Op = 2\n");
    let started = std::time::Instant::now();
    for t_write in [500u64, 1000] {
        match exp5(scale, t_write) {
            Ok(t) => println!("{}", t.render()),
            Err(e) => {
                eprintln!("experiment failed (T_write={t_write}): {e}");
                std::process::exit(1);
            }
        }
    }
    println!("(wall time: {:.1?})", started.elapsed());
}
