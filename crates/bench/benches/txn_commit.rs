//! Transactional commit throughput (`pdl-txn`): group commit vs solo
//! commits, over 1 / 4 / 16 concurrent writers.
//!
//! Every writer issues multi-page transactions (2 pages each, the
//! TPC-C-style atomic unit) against a sharded PDL store through the
//! [`pdl_storage::ShardedBufferPool`] and commits through one of two
//! disciplines:
//!
//! * **solo** — each transaction pays its own differential-write-buffer
//!   flush and commit-record flush (the Adaptive-Logging "commit
//!   latency first" end of the trade-off);
//! * **group** — the group-commit coordinator batches concurrently
//!   committing transactions, so a whole batch's differentials share
//!   flash pages and its commit records share one flush per shard
//!   (amortizing the flush the way the paper's Case-2 buffer amortizes
//!   page writes).
//!
//! The headline column is **bound tps**: committed transactions per
//! second of *simulated flash time* — on a single-core host the wall
//! clock cannot separate the disciplines, but the flash-op ledger can.
//! At 16 writers group commit must reach >= 1.5x solo (the pdl-txn
//! acceptance bar); the run fails loudly if it does not.
//!
//! Run with `cargo bench -p pdl-bench --bench txn_commit`; set
//! `PDL_SCALE=quick|default|paper` to choose the transaction count.

use pdl_core::{MethodKind, ShardedStore, StoreOptions};
use pdl_flash::FlashConfig;
use pdl_storage::ShardedBufferPool;
use pdl_workload::{run_txn_commit_workload, Scale, Table, TxnCommitConfig, TxnCommitResult};

const SHARDS: usize = 4;
const PAGES: u64 = 512;

fn txns_per_writer(scale: Scale, writers: usize) -> u64 {
    let total = match scale.label() {
        "quick" => 256,
        "paper" => 16_384,
        _ => 4_096,
    };
    (total / writers as u64).max(8)
}

fn build_pool() -> ShardedBufferPool {
    let store = ShardedStore::with_uniform_chips(
        FlashConfig::scaled(64),
        SHARDS,
        MethodKind::Pdl { max_diff_size: 256 },
        StoreOptions::new(PAGES),
    )
    .expect("store");
    let pool = ShardedBufferPool::new(store, 256);
    for pid in 0..PAGES {
        pool.with_page_mut(pid, |p| p.write(0, &[1; 8])).expect("load");
    }
    pool.flush_all().expect("load flush");
    pool
}

fn run(scale: Scale, writers: usize, group: bool) -> TxnCommitResult {
    let pool = build_pool();
    let cfg = TxnCommitConfig::new(writers, txns_per_writer(scale, writers))
        .with_pages_per_txn(2)
        .with_group(group);
    run_txn_commit_workload(&pool, &cfg).expect("workload")
}

fn main() {
    let scale = Scale::from_env();
    println!("# Transactional commit throughput: group commit vs solo");
    println!(
        "method: PDL (256B) x{SHARDS} shards | {PAGES} pages | 2 pages/txn | scale: {}",
        scale.label()
    );
    println!();

    let mut table = Table::new(
        "group-commit batch-size sweep",
        &["writers", "discipline", "txns", "writes/txn", "sim us/txn", "bound tps", "speedup"],
    );
    let mut ratio_at_16 = 0.0f64;
    for writers in [1usize, 4, 16] {
        let solo = run(scale, writers, false);
        let group = run(scale, writers, true);
        let ratio = group.bound_tps() / solo.bound_tps().max(f64::MIN_POSITIVE);
        if writers == 16 {
            ratio_at_16 = ratio;
        }
        for (label, r, speedup) in [("solo", &solo, 1.0), ("group", &group, ratio)] {
            table.row(vec![
                writers.to_string(),
                label.to_string(),
                r.committed.to_string(),
                format!("{:.2}", r.writes as f64 / r.committed.max(1) as f64),
                format!("{:.1}", r.flash_us as f64 / r.committed.max(1) as f64),
                format!("{:.0}", r.bound_tps()),
                format!("{speedup:.2}x"),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "group commit at 16 writers: {ratio_at_16:.2}x solo throughput \
         (acceptance bar: >= 1.5x)"
    );
    assert!(
        ratio_at_16 >= 1.5,
        "group commit must reach >= 1.5x solo throughput at 16 writers, got {ratio_at_16:.2}x"
    );
}
