//! Transactional commit throughput (`pdl-txn`): group commit vs solo
//! commits, over 1 / 4 / 16 concurrent writers.
//!
//! Every writer issues multi-page transactions (2 pages each, the
//! TPC-C-style atomic unit) against a sharded PDL store through the
//! [`pdl_storage::ShardedBufferPool`] and commits through one of two
//! disciplines:
//!
//! * **solo** — each transaction pays its own differential-write-buffer
//!   flush and commit-record flush (the Adaptive-Logging "commit
//!   latency first" end of the trade-off);
//! * **group** — the group-commit coordinator batches concurrently
//!   committing transactions, so a whole batch's differentials share
//!   flash pages and its commit records share one flush per shard
//!   (amortizing the flush the way the paper's Case-2 buffer amortizes
//!   page writes).
//!
//! The headline column is **bound tps**: committed transactions per
//! second of *simulated flash time* — on a single-core host the wall
//! clock cannot separate the disciplines, but the flash-op ledger can.
//! At 16 writers group commit must reach >= 1.5x solo (the pdl-txn
//! acceptance bar); the run fails loudly if it does not.
//!
//! Each pool runs with the recorder on, so the run also reports the
//! **commit-latency distribution** (simulated-µs p50/p99 per committed
//! transaction, queue and flush stalls included) for each discipline,
//! and emits everything as a unified `BENCH_txn_commit.json`
//! (`pdl-metrics-v1`). The pool's leak gauges (`leaked_pids`,
//! `active_views`) must read 0 after every run.
//!
//! Run with `cargo bench -p pdl-bench --bench txn_commit`; set
//! `PDL_SCALE=quick|default|paper` to choose the transaction count.

use pdl_core::{MethodKind, ShardedStore, StoreOptions};
use pdl_flash::FlashConfig;
use pdl_obs::{json, LatencyClass, RecorderSnapshot};
use pdl_storage::ShardedBufferPool;
use pdl_workload::{obs, run_txn_commit_workload, Scale, Table, TxnCommitConfig, TxnCommitResult};

const SHARDS: usize = 4;
const PAGES: u64 = 512;

fn txns_per_writer(scale: Scale, writers: usize) -> u64 {
    let total = match scale.label() {
        "quick" => 256,
        "paper" => 16_384,
        _ => 4_096,
    };
    (total / writers as u64).max(8)
}

fn build_pool() -> ShardedBufferPool {
    let store = ShardedStore::with_uniform_chips(
        FlashConfig::scaled(64),
        SHARDS,
        MethodKind::Pdl { max_diff_size: 256 },
        StoreOptions::new(PAGES).with_obs(true),
    )
    .expect("store");
    let pool = ShardedBufferPool::new(store, 256);
    for pid in 0..PAGES {
        pool.with_page_mut(pid, |p| p.write(0, &[1; 8])).expect("load");
    }
    pool.flush_all().expect("load flush");
    pool
}

fn run(scale: Scale, writers: usize, group: bool) -> (TxnCommitResult, RecorderSnapshot) {
    let pool = build_pool();
    let cfg = TxnCommitConfig::new(writers, txns_per_writer(scale, writers))
        .with_pages_per_txn(2)
        .with_group(group);
    let r = run_txn_commit_workload(&pool, &cfg).expect("workload");
    assert_eq!(r.buffer.leaked_pids, 0, "run stranded pids");
    assert_eq!(r.buffer.active_views, 0, "run leaked read views");
    (r, pool.obs_pool_snapshot())
}

/// Commit-latency distribution of one run: every committed transaction
/// lands one sample in the solo or group class, whichever its batch
/// actually experienced.
fn commit_hist(snap: &RecorderSnapshot) -> pdl_obs::LatencyHistogram {
    let mut h = snap.hist(LatencyClass::CommitSolo).clone();
    h.merge(snap.hist(LatencyClass::CommitGroup));
    h
}

fn main() {
    let scale = Scale::from_env();
    println!("# Transactional commit throughput: group commit vs solo");
    println!(
        "method: PDL (256B) x{SHARDS} shards | {PAGES} pages | 2 pages/txn | scale: {}",
        scale.label()
    );
    println!();

    let mut table = Table::new(
        "group-commit batch-size sweep",
        &[
            "writers",
            "discipline",
            "txns",
            "writes/txn",
            "sim us/txn",
            "commit p50 us",
            "commit p99 us",
            "bound tps",
            "speedup",
        ],
    );
    let mut reg = obs::bench_registry("txn_commit", scale.label());
    reg.set_u64("shards", SHARDS as u64);
    reg.set_u64("pages", PAGES);
    let mut ratio_at_16 = 0.0f64;
    for writers in [1usize, 4, 16] {
        let (solo, solo_snap) = run(scale, writers, false);
        let (group, group_snap) = run(scale, writers, true);
        let ratio = group.bound_tps() / solo.bound_tps().max(f64::MIN_POSITIVE);
        if writers == 16 {
            ratio_at_16 = ratio;
        }
        for (label, r, snap, speedup) in
            [("solo", &solo, &solo_snap, 1.0), ("group", &group, &group_snap, ratio)]
        {
            let commits = commit_hist(snap);
            assert_eq!(
                commits.count(),
                r.committed,
                "{writers}x{label}: every commit lands one latency sample"
            );
            table.row(vec![
                writers.to_string(),
                label.to_string(),
                r.committed.to_string(),
                format!("{:.2}", r.writes as f64 / r.committed.max(1) as f64),
                format!("{:.1}", r.flash_us as f64 / r.committed.max(1) as f64),
                commits.p50_us().to_string(),
                commits.p99_us().to_string(),
                format!("{:.0}", r.bound_tps()),
                format!("{speedup:.2}x"),
            ]);
            let pre = format!("w{writers}.{label}");
            reg.set_u64(&format!("{pre}.committed"), r.committed);
            reg.set_u64(&format!("{pre}.writes"), r.writes);
            reg.set_u64(&format!("{pre}.flash_us"), r.flash_us);
            reg.set_f64(&format!("{pre}.bound_tps"), r.bound_tps());
            obs::put_buffer_stats(&mut reg, &format!("{pre}.buffer"), &r.buffer);
            // `<pre>.commit.solo.*` / `<pre>.commit.group.*` (whichever
            // classes the batches actually hit) plus the merged view.
            obs::put_recorder_snapshot(&mut reg, &pre, snap);
            reg.set_hist(&format!("{pre}.commit.all"), &commits);
        }
    }
    println!("{}", table.render());

    let doc = reg.to_json();
    let parsed = json::parse(&doc).expect("registry emits valid JSON");
    json::validate_metrics(&parsed).expect("registry emits pdl-metrics-v1");
    std::fs::write("BENCH_txn_commit.json", doc).expect("write BENCH_txn_commit.json");
    println!("wrote BENCH_txn_commit.json");
    println!(
        "group commit at 16 writers: {ratio_at_16:.2}x solo throughput \
         (acceptance bar: >= 1.5x)"
    );
    assert!(
        ratio_at_16 >= 1.5,
        "group commit must reach >= 1.5x solo throughput at 16 writers, got {ratio_at_16:.2}x"
    );
}
