//! Experiment 3 / Figure 14: overall time per update operation as
//! `%ChangedByOneU_Op` varies from 0.1 to 100, for `N_updates_till_write`
//! of 1 (a) and 5 (b).

use pdl_bench::experiments::{exp3, table1_banner};
use pdl_workload::Scale;

fn main() {
    let scale = Scale::from_env();
    println!("# Experiment 3 (Figure 14)");
    println!("{}", table1_banner(scale));
    println!("parameters: %ChangedByOneU_Op = 0.1..100, N_updates_till_write = 1, 5\n");
    let started = std::time::Instant::now();
    for n in [1u32, 5] {
        match exp3(scale, n) {
            Ok(t) => println!("{}", t.render()),
            Err(e) => {
                eprintln!("experiment failed (N={n}): {e}");
                std::process::exit(1);
            }
        }
    }
    println!("(wall time: {:.1?})", started.elapsed());
}
