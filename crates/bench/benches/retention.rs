//! The version-retention ledger under DRAM pressure: one epoch-long
//! scanner holds a read view across an entire readers-vs-writers run
//! while the retention budget is squeezed from unbounded down to 1% of
//! the database size.
//!
//! Before the flash ledger, a view that outlived `snapshot_version_cap`
//! read `SnapshotTooOld` — the cap was a correctness cliff sized by
//! DRAM. With the ledger, cold pre-images migrate to PDL spill pages
//! and `with_page_at` resolves DRAM chain → ledger → flash read, so the
//! budget is a *performance* knob: the epoch view must read its
//! open-time bytes byte-for-byte at every budget, with zero
//! `SnapshotTooOld` anywhere.
//!
//! The cost side is the second acceptance bar: gap-precise eviction
//! spills only versions some active view actually resolves to (≈ one
//! per written page per view gap, not one per commit), so the bound
//! write throughput at a 1% budget must stay within 1.5x of the
//! unbounded run's.
//!
//! Emits `BENCH_retention.json` (`pdl-metrics-v1`), one prefix per
//! budget point, including the `retention.*` gauges `obs_gate`
//! cross-checks.
//!
//! Run with `cargo bench -p pdl-bench --bench retention`; set
//! `PDL_SCALE=quick|default|paper` to choose the workload size.

use pdl_core::{MethodKind, ShardedStore, StoreOptions};
use pdl_flash::FlashConfig;
use pdl_obs::json;
use pdl_storage::ShardedBufferPool;
use pdl_workload::{
    obs, run_snapshot_read_workload, Scale, SnapshotReadConfig, SnapshotReadResult, Table,
};

const SHARDS: usize = 4;
const PAGES: u64 = 256;
const READERS: usize = 2;
const WRITERS: usize = 4;
const PAGES_PER_TXN: usize = 8;

/// The three DRAM retention budgets, as fractions of the database size
/// (`None` = unbounded: every retained version stays in DRAM).
const BUDGETS: [(&str, Option<u64>); 3] =
    [("unbounded", None), ("pct10", Some(10)), ("pct1", Some(100))];

fn workload_size(scale: Scale) -> (u64, u64) {
    // (scans per reader, txns per writer)
    match scale.label() {
        "quick" => (4, 48),
        "paper" => (48, 768),
        _ => (16, 256),
    }
}

struct BudgetRun {
    result: SnapshotReadResult,
    /// Pool statistics sampled after the epoch sweep (the workload
    /// result's sample predates it, and the sweep is where the cold
    /// ledger resolves happen).
    stats: pdl_storage::BufferStats,
    /// Epoch-view pages whose post-run bytes diverged from open time.
    mismatches: u64,
    /// GC victim passes that deprioritised ledger-pinned blocks.
    pinned_skips: u64,
    /// Bound write throughput: committed txns per second of the busiest
    /// shard's flash time (the engine's critical path).
    commits_per_sec: f64,
}

fn build_pool(budget_bytes: u64) -> ShardedBufferPool {
    // The version-count cap is parked at the ceiling so the byte budget
    // is the only retention trigger — the knob this bench turns.
    let opts = StoreOptions::new(PAGES)
        .with_snapshot_version_cap(u32::MAX)
        .with_snapshot_retention_bytes(budget_bytes)
        .with_obs(true);
    let store = ShardedStore::with_uniform_chips(
        FlashConfig::scaled(64),
        SHARDS,
        MethodKind::Pdl { max_diff_size: 256 },
        opts,
    )
    .expect("store");
    let pool = ShardedBufferPool::new(store, PAGES as usize / 4);
    for pid in 0..PAGES {
        let seed: Vec<u8> = (0..16).map(|i| (pid as u8).wrapping_mul(37).wrapping_add(i)).collect();
        pool.with_page_mut(pid, |p| p.write(0, &seed)).expect("seed");
    }
    pool.flush_all().expect("seed flush");
    pool
}

fn run(
    scale: Scale,
    label: &str,
    budget_bytes: u64,
    reg: &mut pdl_obs::MetricsRegistry,
) -> BudgetRun {
    let (scans, txns) = workload_size(scale);
    let pool = build_pool(budget_bytes);

    // The epoch view: opened before the first writer commits, held
    // across the whole run. Its oracle is captured through the view
    // itself, before the workload's measurement window opens.
    let view = pool.begin_read();
    let oracle: Vec<Vec<u8>> = (0..PAGES)
        .map(|pid| pool.with_page_at(&view, pid, |pg| pg.to_vec()).expect("open-time read"))
        .collect();

    let cfg = SnapshotReadConfig {
        pages_per_txn: PAGES_PER_TXN,
        ..SnapshotReadConfig::new(READERS, WRITERS)
    }
    .with_scans(scans)
    .with_txns_per_writer(txns);
    let result = run_snapshot_read_workload(&pool, &cfg).expect("workload");

    // Every page the epoch view reads after the run must still carry its
    // open-time bytes — the written groups have long overrun any finite
    // budget, so at the squeezed points these resolve from the flash
    // ledger.
    let mut mismatches = 0u64;
    for pid in 0..PAGES {
        let got = pool
            .with_page_at(&view, pid, |pg| pg.to_vec())
            .expect("the ledger must keep the epoch view alive: no SnapshotTooOld");
        if got != oracle[pid as usize] {
            mismatches += 1;
        }
    }
    pool.release_read(view);

    let stats = pool.stats();
    let snap = pool.obs_snapshot();
    let pinned_skips: u64 = (0..SHARDS)
        .map(|s| {
            pool.store().with_shard(s, |st| {
                st.counters()
                    .iter()
                    .find(|(name, _)| *name == "retention_pinned_skips")
                    .map(|(_, v)| *v)
                    .unwrap_or(0)
            })
        })
        .sum();
    // "Enabled" means engaged: the store can spill *and* a finite budget
    // exists to trip it (`obs_gate` fails an enabled ledger that never
    // resolved a cold version, and the unbounded point never should).
    let ledger_enabled = pool.store().spill_supported_shared() && budget_bytes > 0;
    let commits_per_sec =
        result.committed as f64 / (result.flash_us_max_shard.max(1) as f64 / 1_000_000.0);

    reg.set_u64(&format!("{label}.committed"), result.committed);
    reg.set_u64(&format!("{label}.scans"), result.scans);
    reg.set_u64(&format!("{label}.torn_scans"), result.torn_scans);
    reg.set_u64(&format!("{label}.too_old_retries"), result.too_old_retries);
    reg.set_u64(&format!("{label}.epoch_mismatches"), mismatches);
    reg.set_u64(&format!("{label}.flash_us_max_shard"), result.flash_us_max_shard);
    reg.set_f64(&format!("{label}.bound_commits_per_sec"), commits_per_sec);
    obs::put_buffer_stats(reg, &format!("{label}.buffer"), &stats);
    obs::put_retention_stats(reg, label, &stats, pinned_skips, ledger_enabled);
    obs::put_flash_stats(reg, label, &pool.io_stats());
    obs::put_recorder_snapshot(reg, label, &snap);

    BudgetRun { result, stats, mismatches, pinned_skips, commits_per_sec }
}

fn main() {
    let scale = Scale::from_env();
    let db_bytes = PAGES * 2048;
    println!("# Retention-budget sweep: one epoch-long view vs {WRITERS} committing writers");
    println!(
        "method: PDL (256B) x{SHARDS} shards | {PAGES} pages | {READERS} scanners + 1 epoch view \
         | budgets: unbounded, 10%, 1% of {db_bytes}B | scale: {}",
        scale.label()
    );
    println!();

    let mut reg = obs::bench_registry("retention", scale.label());
    let mut runs: Vec<(&str, BudgetRun)> = Vec::new();
    for (label, divisor) in BUDGETS {
        let budget_bytes = divisor.map(|d| db_bytes / d).unwrap_or(0);
        runs.push((label, run(scale, label, budget_bytes, &mut reg)));
    }

    let baseline = runs[0].1.commits_per_sec;
    let mut table = Table::new(
        "epoch view across the whole run, per DRAM budget",
        &[
            "budget",
            "committed",
            "scans",
            "too old",
            "mismatch",
            "spilled",
            "ledger hits",
            "flash resolves",
            "pinned skips",
            "bound commits/s",
            "vs unbounded",
        ],
    );
    for (label, r) in &runs {
        let b = &r.stats;
        table.row(vec![
            label.to_string(),
            r.result.committed.to_string(),
            r.result.scans.to_string(),
            r.result.too_old_retries.to_string(),
            r.mismatches.to_string(),
            b.spilled_versions.to_string(),
            b.ledger_hits.to_string(),
            b.flash_resolves.to_string(),
            r.pinned_skips.to_string(),
            format!("{:.1}", r.commits_per_sec),
            format!("{:.2}x", baseline / r.commits_per_sec.max(f64::MIN_POSITIVE)),
        ]);
    }
    println!("{}", table.render());

    for (label, r) in &runs {
        assert_eq!(
            r.result.too_old_retries, 0,
            "{label}: the ledger must absorb every cap overrun — zero SnapshotTooOld"
        );
        assert_eq!(r.mismatches, 0, "{label}: the epoch view diverged from its open-time bytes");
        assert_eq!(r.result.torn_scans, 0, "{label}: scans must observe atomic commit groups");
        assert_eq!(r.result.buffer.leaked_pids, 0, "{label}: a run may not strand pids");
    }
    let pct1 = &runs.iter().find(|(l, _)| *l == "pct1").expect("pct1 point").1;
    assert!(
        pct1.stats.spilled_versions > 0 && pct1.stats.flash_resolves > 0,
        "the 1% budget must exercise the ledger (spilled={}, resolves={})",
        pct1.stats.spilled_versions,
        pct1.stats.flash_resolves
    );
    let degradation = baseline / pct1.commits_per_sec.max(f64::MIN_POSITIVE);
    println!(
        "1% budget: {degradation:.2}x the unbounded run's bound write throughput \
         (acceptance bar: <= 1.5x), zero SnapshotTooOld at every budget"
    );
    assert!(
        degradation <= 1.5,
        "gap-precise retention must keep the 1%-budget write-throughput degradation <= 1.5x, \
         got {degradation:.2}x"
    );

    let doc = reg.to_json();
    let v = json::parse(&doc).expect("registry emits valid JSON");
    json::validate_metrics(&v).expect("valid pdl-metrics-v1");
    std::fs::write("BENCH_retention.json", &doc).expect("write BENCH_retention.json");
    println!("\nwrote BENCH_retention.json ({} bytes)", doc.len());
}
