//! Snapshot-read throughput: MVCC read views vs the locked read path,
//! with 4 scanners racing 4 committing writers.
//!
//! Before the read-view refactor, the only way to take a *consistent*
//! multi-page scan next to committing writers was to serialize: reader
//! and committer share one global lock, so every scan pays for every
//! commit that queues behind it (and vice versa). With MVCC views the
//! scan runs against the per-page version chains and never blocks a
//! commit — the run's critical path collapses from the *total* flash
//! time to the busiest *shard's* flash time.
//!
//! The headline column is **bound scans/s**: completed full-space scans
//! per second of the time the run's serialization structure charges the
//! read path (total flash µs for the locked baseline, max per-shard
//! flash µs for views) — the same machine-independent accounting the
//! sharded and group-commit benches use, since on a one-core host the
//! wall clock cannot separate lock disciplines.
//!
//! Acceptance bar (ISSUE 4): >= 1.5x read throughput for 4 scanners
//! racing 4 writers versus the locked read path. Every scan also
//! verifies it observed each writer's commit group atomically; a torn
//! snapshot fails the run.
//!
//! Run with `cargo bench -p pdl-bench --bench snapshot_reads`; set
//! `PDL_SCALE=quick|default|paper` to choose the workload size.

use pdl_core::{MethodKind, ShardedStore, StoreOptions};
use pdl_flash::FlashConfig;
use pdl_storage::ShardedBufferPool;
use pdl_workload::{
    run_snapshot_read_workload, Scale, SnapshotReadConfig, SnapshotReadResult, Table,
};

const SHARDS: usize = 4;
const PAGES: u64 = 256;
const READERS: usize = 4;
const WRITERS: usize = 4;
const PAGES_PER_TXN: usize = 8;

fn workload_size(scale: Scale) -> (u64, u64) {
    // (scans per reader, txns per writer)
    match scale.label() {
        "quick" => (4, 48),
        "paper" => (48, 768),
        _ => (16, 256),
    }
}

fn build_pool() -> ShardedBufferPool {
    let store = ShardedStore::with_uniform_chips(
        FlashConfig::scaled(64),
        SHARDS,
        MethodKind::Pdl { max_diff_size: 256 },
        StoreOptions::new(PAGES),
    )
    .expect("store");
    // A small cache (1/4 of the space) keeps scans faulting into flash,
    // so the read path carries real simulated I/O.
    let pool = ShardedBufferPool::new(store, PAGES as usize / 4);
    for pid in 0..PAGES {
        pool.with_page_mut(pid, |p| p.write(0, &[0; 8])).expect("load");
    }
    pool.flush_all().expect("load flush");
    pool
}

fn run(scale: Scale, locked: bool, structure_churn: bool) -> SnapshotReadResult {
    let (scans, txns) = workload_size(scale);
    let pool = build_pool();
    let cfg = SnapshotReadConfig {
        pages_per_txn: PAGES_PER_TXN,
        ..SnapshotReadConfig::new(READERS, WRITERS)
    }
    .with_scans(scans)
    .with_txns_per_writer(txns)
    .with_locked_baseline(locked)
    .with_structure_churn(structure_churn);
    let r = run_snapshot_read_workload(&pool, &cfg).expect("workload");
    assert_eq!(
        r.torn_scans, 0,
        "every scan must observe atomic commit groups \
         (locked={locked}, structure_churn={structure_churn})"
    );
    assert_eq!(r.buffer.active_views, 0, "a run may not leave read views open");
    assert_eq!(r.buffer.leaked_pids, 0, "a run may not strand allocated pids");
    r
}

fn main() {
    let scale = Scale::from_env();
    println!("# Snapshot-read throughput: MVCC read views vs the locked read path");
    println!(
        "method: PDL (256B) x{SHARDS} shards | {PAGES} pages | {READERS} scanners vs {WRITERS} \
         writers x {PAGES_PER_TXN} pages/txn | scale: {}",
        scale.label()
    );
    println!();

    let locked = run(scale, true, false);
    let mvcc = run(scale, false, false);
    // The split-heavy case: every writer transaction also *changes the
    // shape* of a commit-clock-versioned structure (its page list), so
    // scanners must resolve the structure-root log at their view. Zero
    // torn scans is the acceptance bar — a scan pairing its view with the
    // current shape would read pages that did not exist at view time.
    let churn = run(scale, false, true);
    let locked_tp = locked.bound_scans_per_sec(true);
    let mvcc_tp = mvcc.bound_scans_per_sec(false);
    let churn_tp = churn.bound_scans_per_sec(false);
    let ratio = mvcc_tp / locked_tp.max(f64::MIN_POSITIVE);

    let mut table = Table::new(
        "scanners racing committing writers",
        &[
            "read path",
            "scans",
            "txns",
            "torn",
            "version reads",
            "open views",
            "leaked pids",
            "bound time us",
            "bound scans/s",
        ],
    );
    for (label, r, tp, us) in [
        ("locked", &locked, locked_tp, locked.flash_us_total),
        ("views", &mvcc, mvcc_tp, mvcc.flash_us_max_shard),
        ("views + structure_churn", &churn, churn_tp, churn.flash_us_max_shard),
    ] {
        table.row(vec![
            label.to_string(),
            r.scans.to_string(),
            r.committed.to_string(),
            r.torn_scans.to_string(),
            r.version_reads.to_string(),
            r.buffer.active_views.to_string(),
            r.buffer.leaked_pids.to_string(),
            us.to_string(),
            format!("{tp:.1}"),
        ]);
    }
    println!("{}", table.render());
    println!(
        "read views: {ratio:.2}x the locked read path's bound scan throughput \
         (acceptance bar: >= 1.5x); structure_churn: {} scans, 0 torn",
        churn.scans
    );
    assert!(
        mvcc.version_reads > 0,
        "scans racing writers must have been served from version chains"
    );
    assert!(
        ratio >= 1.5,
        "MVCC views must reach >= 1.5x the locked read path at {READERS} scanners vs {WRITERS} \
         writers, got {ratio:.2}x"
    );
}
