//! GC-policy shoot-out: greedy vs cost-benefit vs hot/cold data
//! separation, at 1/2/4 shards, under uniform and skewed (80/20) page
//! sets — the comparison of Dayan & Bonnet's "Garbage Collection
//! Techniques for Flash-Resident Page-Mapping FTLs", transplanted onto
//! the PDL engine.
//!
//! For each configuration the table reports:
//!
//! * **bound ops/s** — the machine-independent concurrency bound
//!   `cycles / max-shard-busy-time`, as in the `sharded` bench;
//! * **sim us/op** — simulated flash I/O time per update operation;
//! * **WA** — write amplification (total page programs per user page
//!   program; GC migration traffic is the difference from 1.0);
//! * **migrated** — pages programmed by GC during the measured phase
//!   (`FlashStats::migrated_pages`: relocated bases, compacted
//!   differential pages, obsolete marks issued by GC);
//! * **gc erases** — erase operations triggered by GC;
//! * **wear spread** — max-erase-count / avg-erase-count over all blocks.
//!
//! Under the uniform page set the three policies are nearly
//! indistinguishable (every block ages the same way); under the 80/20
//! skew cold blocks stay nearly fully valid, greedy pays to migrate
//! them, and cost-benefit / hot-cold pull ahead — the divergence Dayan &
//! Bonnet's Figures 4-6 show growing with skew.
//!
//! Run with `cargo bench -p pdl-bench --bench gc_policies`; set
//! `PDL_SCALE=quick|default|paper` and `PDL_BENCH_THREADS` as usual.

use pdl_core::{GcPolicy, MethodKind, PageStore, ShardedStore, StoreOptions};
use pdl_flash::FlashConfig;
use pdl_workload::{
    db_pages_for, load_database, run_threaded_update_workload, Measurement, PageSetMode, Scale,
    Table, ThreadedConfig, UpdateConfig,
};
use std::time::Duration;

fn threads_from_env() -> usize {
    std::env::var("PDL_BENCH_THREADS").ok().and_then(|v| v.parse().ok()).unwrap_or(4)
}

const POLICIES: [(GcPolicy, &str); 3] = [
    (GcPolicy::Greedy, "greedy"),
    (GcPolicy::CostBenefit, "cost-benefit"),
    (GcPolicy::HotCold, "hot/cold"),
];

struct Point {
    policy: &'static str,
    shards: usize,
    measurement: Measurement,
    max_busy_secs: f64,
    write_amp: f64,
    migrated: u64,
    gc_erases: u64,
    wear_spread: f64,
}

fn run_config(
    scale: Scale,
    policy: GcPolicy,
    label: &'static str,
    shards: usize,
    threads: usize,
    mode: PageSetMode,
) -> Point {
    let kind = MethodKind::Pdl { max_diff_size: 256 };
    let blocks_per_shard = (scale.num_blocks() / shards as u32).max(8);
    // Twice the paper-experiment load (~50% of the frames live, ~60%
    // with steady-state differentials): reclamation pressure high enough
    // that victim selection matters, which is where policies diverge.
    let pages = (2 * db_pages_for(scale, 1)).min(blocks_per_shard as u64 * shards as u64 * 32);
    let mut store = ShardedStore::with_uniform_chips(
        FlashConfig::scaled(blocks_per_shard),
        shards,
        kind,
        StoreOptions::new(pages).with_gc_policy(policy),
    )
    .expect("store");
    load_database(&mut store).expect("load");

    // Warm into steady state (not timed) so the hot/cold heat gauge and
    // the block populations reach their stable regime before measuring.
    let warm = ThreadedConfig::new(
        threads,
        UpdateConfig::new(2.0, 1)
            .with_measured_cycles(0)
            .with_warmup(
                scale.warmup_erases_per_block() * scale.num_blocks() as u64 / 4,
                scale.warmup_max_cycles() / 4,
            )
            .with_phase_jitter(110),
    )
    .with_mode(mode);
    run_threaded_update_workload(&store, &warm).expect("warm-up");

    let measured = ThreadedConfig::new(
        threads,
        UpdateConfig::new(2.0, 1)
            .with_measured_cycles(scale.measured_cycles() * 8)
            .with_warmup(0, 0),
    )
    .with_mode(mode);
    store.reset_busy();
    let measurement = run_threaded_update_workload(&store, &measured).expect("measure");
    let max_busy_secs =
        store.per_shard_busy().iter().map(Duration::as_secs_f64).fold(0.0, f64::max);
    // The workload driver resets statistics before its measured cycles,
    // so these figures are measurement-scoped.
    let stats = store.stats_shared();
    Point {
        policy: label,
        shards,
        measurement,
        max_busy_secs,
        write_amp: stats.write_amplification(),
        migrated: stats.migrated_pages(),
        gc_erases: stats.gc_erases(),
        wear_spread: PageStore::wear_summary(&store).spread(),
    }
}

fn mode_label(mode: PageSetMode) -> &'static str {
    match mode {
        PageSetMode::Disjoint => "disjoint",
        PageSetMode::Overlapping => "uniform",
        PageSetMode::Skewed => "skewed 80/20",
    }
}

fn main() {
    let scale = Scale::from_env();
    let threads = threads_from_env();
    println!("# GC policies: greedy vs cost-benefit vs hot/cold (PDL 256B)");
    println!(
        "workload: %Changed = 2, N = 1 | threads: {threads} | scale: {} | \
         constant total flash budget per shard count",
        scale.label()
    );
    println!();

    for mode in [PageSetMode::Overlapping, PageSetMode::Skewed] {
        let mut t = Table::new(
            format!("{} page set, {threads} threads", mode_label(mode)),
            &[
                "policy",
                "shards",
                "cycles",
                "bound ops/s",
                "sim us/op",
                "WA",
                "migrated",
                "gc erases",
                "wear spread",
            ],
        );
        for (policy, label) in POLICIES {
            for shards in [1usize, 2, 4] {
                eprintln!("... {label} x{shards} ({})", mode_label(mode));
                let p = run_config(scale, policy, label, shards, threads, mode);
                let bound_ops = p.measurement.cycles as f64 / p.max_busy_secs;
                t.row(vec![
                    p.policy.to_string(),
                    p.shards.to_string(),
                    p.measurement.cycles.to_string(),
                    format!("{bound_ops:.0}"),
                    format!("{:.1}", p.measurement.overall_us_per_op()),
                    format!("{:.3}", p.write_amp),
                    p.migrated.to_string(),
                    p.gc_erases.to_string(),
                    format!("{:.2}", p.wear_spread),
                ]);
            }
        }
        println!("{}", t.render());
    }
}
