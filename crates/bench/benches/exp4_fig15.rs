//! Experiment 4 / Figure 15: overall time per operation for mixes of
//! read-only and update operations as `%UpdateOps` varies from 0 to 100,
//! for `N_updates_till_write` of 1 (a) and 5 (b).

use pdl_bench::experiments::{exp4, table1_banner};
use pdl_workload::Scale;

fn main() {
    let scale = Scale::from_env();
    println!("# Experiment 4 (Figure 15)");
    println!("{}", table1_banner(scale));
    println!("parameters: %ChangedByOneU_Op = 2, %UpdateOps = 0..100\n");
    let started = std::time::Instant::now();
    for n in [1u32, 5] {
        match exp4(scale, n) {
            Ok(t) => println!("{}", t.render()),
            Err(e) => {
                eprintln!("experiment failed (N={n}): {e}");
                std::process::exit(1);
            }
        }
    }
    println!("(wall time: {:.1?})", started.elapsed());
}
