//! Experiment 2 / Figure 13: overall time per update operation as
//! `N_updates_till_write` varies from 1 to 8, for 2 Kbyte (a) and 8 Kbyte
//! (b) logical pages.

use pdl_bench::experiments::{exp2, table1_banner};
use pdl_workload::Scale;

fn main() {
    let scale = Scale::from_env();
    println!("# Experiment 2 (Figure 13)");
    println!("{}", table1_banner(scale));
    println!("parameters: %ChangedByOneU_Op = 2, N_updates_till_write = 1..8\n");
    let started = std::time::Instant::now();
    for frames in [1u32, 4] {
        match exp2(scale, frames) {
            Ok(t) => println!("{}", t.render()),
            Err(e) => {
                eprintln!("experiment failed (frames={frames}): {e}");
                std::process::exit(1);
            }
        }
    }
    println!("(wall time: {:.1?})", started.elapsed());
}
