//! Sharded-engine throughput: update-operation throughput as the shard
//! count varies under a fixed 4-thread workload. The total flash block
//! budget is held constant across shard counts, so the comparison
//! isolates concurrency.
//!
//! Two throughput figures are reported:
//!
//! * **wall ops/s** — raw wall-clock throughput on *this* machine. It
//!   only shows scaling when the machine has spare cores for the worker
//!   threads (the banner prints the available parallelism).
//! * **bound ops/s** — the machine-independent concurrency bound
//!   `cycles / max-shard-busy-time`: every operation holds exactly its
//!   owning shard's lock, so the busiest shard's total lock-hold time is
//!   the critical path no thread count can compress. One shard
//!   serializes everything behind one lock; N shards divide the critical
//!   path ~N ways — this is the speedup sharding buys, and what wall
//!   clock converges to given >= N cores.
//!
//! Run with `cargo bench -p pdl-bench --bench sharded`; set
//! `PDL_SCALE=quick|default|paper` to choose the scale and
//! `PDL_BENCH_THREADS` to override the worker count.

use pdl_core::{MethodKind, ShardedStore, StoreOptions};
use pdl_flash::FlashConfig;
use pdl_workload::{
    db_pages_for, load_database, run_threaded_update_workload, wear_table, Measurement,
    PageSetMode, Scale, Table, ThreadedConfig, UpdateConfig,
};
use std::time::{Duration, Instant};

fn threads_from_env() -> usize {
    std::env::var("PDL_BENCH_THREADS").ok().and_then(|v| v.parse().ok()).unwrap_or(4)
}

struct Point {
    shards: usize,
    measurement: Measurement,
    wall_secs: f64,
    /// The busiest shard's lock-hold time: the critical path.
    max_busy_secs: f64,
    wear: Vec<pdl_flash::WearSummary>,
}

fn run_config(scale: Scale, shards: usize, threads: usize, mode: PageSetMode) -> Point {
    let kind = MethodKind::Pdl { max_diff_size: 256 };
    let blocks_per_shard = (scale.num_blocks() / shards as u32).max(8);
    let pages = db_pages_for(scale, 1).min(blocks_per_shard as u64 * shards as u64 * 16);
    let mut store = ShardedStore::with_uniform_chips(
        FlashConfig::scaled(blocks_per_shard),
        shards,
        kind,
        StoreOptions::new(pages),
    )
    .expect("store");
    load_database(&mut store).expect("load");

    // Warm into steady state (not timed), then measure a pure run. The
    // phase jitter decoheres PDL's per-page differential saw-tooth, as
    // the single-threaded experiment runner does for buffered methods.
    let warm = ThreadedConfig::new(
        threads,
        UpdateConfig::new(2.0, 1)
            .with_measured_cycles(0)
            .with_warmup(
                scale.warmup_erases_per_block() * scale.num_blocks() as u64 / 4,
                scale.warmup_max_cycles() / 4,
            )
            .with_phase_jitter(110),
    )
    .with_mode(mode);
    run_threaded_update_workload(&store, &warm).expect("warm-up");

    // Wall-clock throughput needs far more cycles than the simulated-time
    // experiments to rise above thread spawn/join noise.
    let measured = ThreadedConfig::new(
        threads,
        UpdateConfig::new(2.0, 1)
            .with_measured_cycles(scale.measured_cycles() * 64)
            .with_warmup(0, 0),
    )
    .with_mode(mode);
    store.reset_busy();
    let started = Instant::now();
    let measurement = run_threaded_update_workload(&store, &measured).expect("measure");
    let wall_secs = started.elapsed().as_secs_f64();
    let max_busy_secs =
        store.per_shard_busy().iter().map(Duration::as_secs_f64).fold(0.0, f64::max);
    Point { shards, measurement, wall_secs, max_busy_secs, wear: store.per_shard_wear() }
}

fn mode_label(mode: PageSetMode) -> &'static str {
    match mode {
        PageSetMode::Disjoint => "disjoint",
        PageSetMode::Overlapping => "overlapping",
        PageSetMode::Skewed => "skewed 80/20",
    }
}

fn main() {
    let scale = Scale::from_env();
    let threads = threads_from_env();
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("# Sharded engine: update-operation throughput");
    println!(
        "method: PDL (256B) | workload: %Changed = 2, N = 1 | threads: {threads} | \
         cores available: {cores} | scale: {} | constant total flash budget",
        scale.label()
    );
    if cores < threads {
        println!(
            "(only {cores} core(s): wall ops/s cannot scale here; \
             the bound ops/s column carries the shard-scaling result)"
        );
    }
    println!();

    for mode in [PageSetMode::Disjoint, PageSetMode::Overlapping] {
        let points: Vec<Point> =
            [1usize, 2, 4].iter().map(|&s| run_config(scale, s, threads, mode)).collect();
        let base_wall = points[0].measurement.cycles as f64 / points[0].wall_secs;
        let base_bound = points[0].measurement.cycles as f64 / points[0].max_busy_secs;
        let mut t = Table::new(
            format!("{} page sets, {threads} threads", mode_label(mode)),
            &[
                "shards",
                "cycles",
                "wall ms",
                "wall ops/s",
                "max-shard busy ms",
                "bound ops/s",
                "speedup",
                "sim us/op",
            ],
        );
        for p in &points {
            let wall_ops = p.measurement.cycles as f64 / p.wall_secs;
            let bound_ops = p.measurement.cycles as f64 / p.max_busy_secs;
            t.row(vec![
                p.shards.to_string(),
                p.measurement.cycles.to_string(),
                format!("{:.0}", p.wall_secs * 1e3),
                format!("{wall_ops:.0} ({:.2}x)", wall_ops / base_wall),
                format!("{:.0}", p.max_busy_secs * 1e3),
                format!("{bound_ops:.0}"),
                format!("{:.2}x", bound_ops / base_bound),
                format!("{:.1}", p.measurement.overall_us_per_op()),
            ]);
        }
        println!("{}", t.render());
        if let Some(p4) = points.iter().find(|p| p.shards == 4) {
            println!(
                "{}",
                wear_table(format!("wear, 4 shards ({})", mode_label(mode)), &p4.wear).render()
            );
        }
    }
}
