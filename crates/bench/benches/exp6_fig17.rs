//! Experiment 6 / Figure 17: the number of erase operations per update
//! operation (flash longevity) as `N_updates_till_write` varies, for the
//! five methods of the paper's figure.

use pdl_bench::experiments::{exp6, table1_banner};
use pdl_workload::Scale;

fn main() {
    let scale = Scale::from_env();
    println!("# Experiment 6 (Figure 17)");
    println!("{}", table1_banner(scale));
    println!("parameters: %ChangedByOneU_Op = 2, N_updates_till_write = 1..8\n");
    let started = std::time::Instant::now();
    match exp6(scale) {
        Ok(t) => println!("{}", t.render()),
        Err(e) => {
            eprintln!("experiment failed: {e}");
            std::process::exit(1);
        }
    }
    println!("(wall time: {:.1?})", started.elapsed());
}
