//! Experiment 1 / Figure 12: read, write and overall I/O time per update
//! operation for IPL(18KB), IPL(64KB), PDL(2KB), PDL(256B), OPU and IPU.
//!
//! Run with `cargo bench -p pdl-bench --bench exp1_fig12`; set
//! `PDL_SCALE=quick|default|paper` to choose the scale.

use pdl_bench::experiments::{exp1, table1_banner};
use pdl_workload::Scale;

fn main() {
    let scale = Scale::from_env();
    println!("# Experiment 1 (Figure 12)");
    println!("{}", table1_banner(scale));
    println!("parameters: N_updates_till_write = 1, %ChangedByOneU_Op = 2\n");
    let started = std::time::Instant::now();
    match exp1(scale) {
        Ok(tables) => {
            for t in tables {
                println!("{}", t.render());
            }
            println!("(wall time: {:.1?})", started.elapsed());
        }
        Err(e) => {
            eprintln!("experiment failed: {e}");
            std::process::exit(1);
        }
    }
}
