//! Concurrent structural writers (`pdl-struct`): scaling of latch-coupled
//! B+-tree growth with shard count.
//!
//! W writer threads each grow a private registered tree on one shared
//! `&Database`, committing durably every few inserts so split-moved roots
//! flow through the commit-clock structure-root log. Total insert volume
//! is held constant across points, so the headline column — **max shard
//! busy µs**, the simulated pipeline bound on the slowest shard — must
//! *fall* as shards (and writers) are added: structural mutation no
//! longer funnels through one `&mut Database` writer.
//!
//! Acceptance gates (the run fails loudly on any):
//!
//! * 4 shards / 4 writers reach >= 2x the 1-shard / 1-writer throughput
//!   bound (equivalently, at most half the max-shard busy time);
//! * zero ordering violations in the post-quiesce oracle scans;
//! * zero torn snapshots observed by the concurrent reader;
//! * `leaked_pids` and `active_views` both 0 after every run;
//! * a crash after the run recovers every tree from the checkpointed
//!   structure-root log alone (`recover_structures`, no `attach`).
//!
//! With the recorder on, the run also exports the pool-side latch-wait
//! histogram and the structural span trace
//! (`BENCH_struct_writers_trace.json`, Chrome trace-event format —
//! concurrent split lanes are visible in Perfetto) plus the unified
//! `BENCH_struct_writers.json` (`pdl-metrics-v1`).
//!
//! Run with `cargo bench -p pdl-bench --bench struct_writers`; set
//! `PDL_SCALE=quick|default|paper` to choose the insert volume.

use pdl_core::{MethodKind, ShardedStore, StoreOptions};
use pdl_flash::FlashConfig;
use pdl_obs::json;
use pdl_storage::{Database, Durability};
use pdl_workload::{obs, run_struct_writers_workload, Scale, StructWritersConfig, Table};

const PAGES: u64 = 1024;
const KIND: MethodKind = MethodKind::Pdl { max_diff_size: 256 };

fn options() -> StoreOptions {
    StoreOptions::new(PAGES).with_obs(true).with_checkpoint_blocks(2)
}

fn build_db(shards: usize) -> Database {
    let store = ShardedStore::with_uniform_chips(FlashConfig::scaled(64), shards, KIND, options())
        .expect("store");
    Database::new(Box::new(store), 1024).with_durability(Durability::Commit)
}

fn total_inserts(scale: Scale) -> u64 {
    match scale.label() {
        "quick" => 3_072,
        "paper" => 24_576,
        _ => 6_144,
    }
}

fn run_point(
    scale: Scale,
    shards: usize,
    writers: usize,
) -> (pdl_workload::StructWritersResult, Database) {
    let db = build_db(shards);
    let cfg = StructWritersConfig::new(writers, total_inserts(scale) / writers as u64)
        .with_batch(8)
        .with_snapshots(8);
    let r = run_struct_writers_workload(&db, &cfg).expect("workload");
    assert_eq!(r.ordering_violations, 0, "{shards}s/{writers}w: oracle scan mismatch");
    assert_eq!(r.torn_snapshots, 0, "{shards}s/{writers}w: snapshot tore");
    assert_eq!(r.buffer.leaked_pids, 0, "{shards}s/{writers}w: run stranded pids");
    assert_eq!(r.buffer.active_views, 0, "{shards}s/{writers}w: run leaked read views");
    (r, db)
}

/// Crash the finished database without flushing and rebuild it from the
/// chips: every tree must come back from the checkpointed structure-root
/// log alone (no remembered roots, no `attach`) holding its writer's
/// full committed key sequence.
fn recovery_smoke(db: Database, writers: usize, per_writer: u64) {
    let chips = db.into_store_without_flush().into_chips();
    let store = ShardedStore::recover(chips, KIND, options()).expect("recover");
    let back = Database::new(Box::new(store), 1024).with_durability(Durability::Commit);
    let recovered = back.recover_structures();
    assert_eq!(recovered.len(), writers, "every registered tree must recover");
    for (w, s) in recovered.into_iter().enumerate() {
        let tree = s.into_btree();
        tree.check_invariants(&back).expect("recovered tree invariants");
        assert_eq!(
            tree.len(&back).expect("recovered scan"),
            per_writer as usize,
            "writer {w}: committed inserts must survive the crash"
        );
    }
}

fn main() {
    let scale = Scale::from_env();
    let total = total_inserts(scale);
    println!("# Concurrent structural writers: latch-coupled B+-tree growth");
    println!(
        "method: PDL (256B) | {PAGES} pages | {total} inserts total | batch 8 | scale: {}",
        scale.label()
    );
    println!();

    let mut table = Table::new(
        "shard scaling at constant insert volume",
        &[
            "shards",
            "writers",
            "committed",
            "retries",
            "snapshots",
            "latch waits",
            "max shard busy us",
            "bound ops/s",
            "speedup",
        ],
    );
    let mut reg = obs::bench_registry("struct_writers", scale.label());
    reg.set_u64("pages", PAGES);
    reg.set_u64("total_inserts", total);

    let mut baseline_bound = 0.0f64;
    let mut ratio_at_4 = 0.0f64;
    for (shards, writers) in [(1usize, 1usize), (2, 2), (4, 4)] {
        let (r, db) = run_point(scale, shards, writers);
        let pool_snap = db.pool_obs_snapshot();
        let latch_waits = pool_snap.hist(pdl_obs::LatencyClass::LatchWait).count();
        if shards == 1 {
            baseline_bound = r.bound_ops_per_s();
        }
        let speedup = r.bound_ops_per_s() / baseline_bound.max(f64::MIN_POSITIVE);
        if shards == 4 {
            ratio_at_4 = speedup;
            let trace = db.obs_struct_trace_json();
            let parsed = json::parse(&trace).expect("struct trace is valid JSON");
            json::validate_trace(&parsed).expect("struct trace-event shape");
            std::fs::write("BENCH_struct_writers_trace.json", &trace)
                .expect("write BENCH_struct_writers_trace.json");
        }
        table.row(vec![
            shards.to_string(),
            writers.to_string(),
            r.committed.to_string(),
            r.conflict_retries.to_string(),
            r.snapshots_taken.to_string(),
            latch_waits.to_string(),
            r.max_shard_busy_us().to_string(),
            format!("{:.0}", r.bound_ops_per_s()),
            format!("{speedup:.2}x"),
        ]);
        let pre = format!("s{shards}.w{writers}");
        reg.set_u64(&format!("{pre}.committed"), r.committed);
        reg.set_u64(&format!("{pre}.conflict_retries"), r.conflict_retries);
        reg.set_u64(&format!("{pre}.torn_snapshots"), r.torn_snapshots);
        reg.set_u64(&format!("{pre}.ordering_violations"), r.ordering_violations);
        reg.set_u64(&format!("{pre}.max_shard_busy_us"), r.max_shard_busy_us());
        reg.set_u64(&format!("{pre}.flash_us"), r.flash_us);
        reg.set_f64(&format!("{pre}.bound_ops_per_s"), r.bound_ops_per_s());
        obs::put_buffer_stats(&mut reg, &format!("{pre}.buffer"), &r.buffer);
        obs::put_recorder_snapshot(&mut reg, &pre, &pool_snap);

        recovery_smoke(db, writers, total / writers as u64);
    }
    println!("{}", table.render());

    let doc = reg.to_json();
    let parsed = json::parse(&doc).expect("registry emits valid JSON");
    json::validate_metrics(&parsed).expect("registry emits pdl-metrics-v1");
    std::fs::write("BENCH_struct_writers.json", doc).expect("write BENCH_struct_writers.json");
    println!("wrote BENCH_struct_writers.json + BENCH_struct_writers_trace.json");
    println!(
        "4 shards / 4 writers: {ratio_at_4:.2}x the single-shard bound \
         (acceptance bar: >= 2x)"
    );
    assert!(
        ratio_at_4 >= 2.0,
        "structural writers must reach >= 2x the single-shard bound at 4 shards, \
         got {ratio_at_4:.2}x"
    );
}
