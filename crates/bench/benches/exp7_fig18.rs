//! Experiment 7 / Figure 18: the TPC-C benchmark — I/O time per
//! transaction as the DBMS buffer size varies from 0.1% to 10% of the
//! database size.

use pdl_bench::experiments::table1_banner;
use pdl_bench::tpcc_exp::{exp7, tpcc_scale_for, txns_for};
use pdl_workload::Scale;

fn main() {
    let scale = Scale::from_env();
    let t = tpcc_scale_for(scale);
    println!("# Experiment 7 (Figure 18): TPC-C");
    println!("{}", table1_banner(scale));
    println!(
        "TPC-C: {} warehouse(s), {} districts, {} customers/district, {} items, {} txns/point\n",
        t.warehouses,
        t.districts_per_warehouse,
        t.customers_per_district,
        t.items,
        txns_for(scale),
    );
    let started = std::time::Instant::now();
    match exp7(scale) {
        Ok(table) => {
            println!("{}", table.render());
            println!("(wall time: {:.1?})", started.elapsed());
        }
        Err(e) => {
            eprintln!("experiment failed: {e}");
            std::process::exit(1);
        }
    }
}
