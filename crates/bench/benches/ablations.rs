//! Ablation benches for the design choices DESIGN.md §6 calls out:
//!
//! 1. `Max_Differential_Size` beyond the paper's two settings;
//! 2. differential run-coalescing gap (metadata vs payload trade);
//! 3. update placement (sequential records vs uniform vs scattered);
//! 4. GC victim policy: greedy (the paper's) vs wear-aware.

use pdl_core::{GcPolicy, MethodKind, PageStore, Pdl, StoreOptions};
use pdl_flash::FlashTiming;
use pdl_workload::{
    chip_for, db_pages_for, load_database, run_update_workload, Placement, Scale, Table,
    UpdateConfig,
};

fn base_config(scale: Scale) -> UpdateConfig {
    UpdateConfig::new(2.0, 1)
        .with_measured_cycles(scale.measured_cycles())
        .with_warmup(
            scale.warmup_erases_per_block() * scale.num_blocks() as u64,
            scale.warmup_max_cycles(),
        )
        .with_phase_jitter(110)
        .with_seed(0x0AB1)
}

fn build_pdl(scale: Scale, max_diff: usize, gap: usize, policy: GcPolicy) -> Pdl {
    let chip = chip_for(scale, FlashTiming::PAPER);
    let opts = StoreOptions::new(db_pages_for(scale, 1)).with_coalesce_gap(gap);
    let mut pdl = Pdl::new(chip, opts, max_diff).expect("valid config");
    pdl.set_gc_policy(policy);
    pdl
}

fn run(store: &mut dyn PageStore, cfg: &UpdateConfig) -> (f64, f64, f64) {
    load_database(store).expect("load");
    let m = run_update_workload(store, cfg).expect("workload");
    (m.overall_us_per_op(), m.erases_per_op(), m.gc_us_per_op())
}

fn ablate_max_diff_size(scale: Scale) -> Table {
    let mut t = Table::new(
        "Ablation 1: Max_Differential_Size sweep (PDL, N=1, %changed=2)",
        &["max_diff", "overall us/op", "erases/op"],
    );
    for max_diff in [64usize, 128, 256, 512, 1024, 2048] {
        let mut pdl = build_pdl(scale, max_diff, 8, GcPolicy::Greedy);
        let (us, erases, _) = run(&mut pdl, &base_config(scale));
        t.row(vec![format!("{max_diff}B"), format!("{us:.1}"), format!("{erases:.4}")]);
    }
    t
}

fn ablate_coalesce_gap(scale: Scale) -> Table {
    let mut t = Table::new(
        "Ablation 2: differential run-coalescing gap (PDL 2KB)",
        &["gap", "overall us/op"],
    );
    for gap in [0usize, 2, 8, 32, 128] {
        let mut pdl = build_pdl(scale, 2048, gap, GcPolicy::Greedy);
        let (us, _, _) = run(&mut pdl, &base_config(scale));
        t.row(vec![format!("{gap}B"), format!("{us:.1}")]);
    }
    t
}

fn ablate_placement(scale: Scale) -> Table {
    let mut t = Table::new(
        "Ablation 3: update placement within a page (PDL 2KB vs 256B)",
        &["placement", "PDL(2KB) us/op", "PDL(256B) us/op"],
    );
    for (label, placement) in [
        ("round-robin (paper model)", Placement::RoundRobin),
        ("uniform random", Placement::Uniform),
        ("scattered x4", Placement::Scattered),
    ] {
        let cfg = base_config(scale).with_placement(placement);
        let mut pdl2k = build_pdl(scale, 2048, 8, GcPolicy::Greedy);
        let (us2k, _, _) = run(&mut pdl2k, &cfg);
        let mut pdl256 = build_pdl(scale, 256, 8, GcPolicy::Greedy);
        let (us256, _, _) = run(&mut pdl256, &cfg);
        t.row(vec![label.to_string(), format!("{us2k:.1}"), format!("{us256:.1}")]);
    }
    t
}

fn ablate_gc_policy(scale: Scale) -> Table {
    let mut t = Table::new(
        "Ablation 4: GC victim policy (PDL 256B): wear spread vs cost",
        &["policy", "overall us/op", "gc us/op", "wear max/avg"],
    );
    for (label, policy) in
        [("greedy (paper)", GcPolicy::Greedy), ("wear-aware", GcPolicy::WearAware)]
    {
        let mut pdl = build_pdl(scale, 256, 8, policy);
        let (us, _, gc_us) = run(&mut pdl, &base_config(scale));
        let wear = pdl.chip().wear_summary();
        let spread =
            if wear.avg_erases() > 0.0 { wear.max_erases as f64 / wear.avg_erases() } else { 0.0 };
        t.row(vec![
            label.to_string(),
            format!("{us:.1}"),
            format!("{gc_us:.1}"),
            format!("{spread:.2}"),
        ]);
    }
    t
}

fn main() {
    let scale = Scale::from_env();
    println!("# Ablation benches (DESIGN.md §6) — scale: {}\n", scale.label());
    let started = std::time::Instant::now();
    println!("{}", ablate_max_diff_size(scale).render());
    println!("{}", ablate_coalesce_gap(scale).render());
    println!("{}", ablate_placement(scale).render());
    println!("{}", ablate_gc_policy(scale).render());
    println!(
        "methods under test elsewhere: {:?}",
        MethodKind::paper_six().iter().map(|k| k.label()).collect::<Vec<_>>()
    );
    println!("(wall time: {:.1?})", started.elapsed());
}
