//! Flash pipeline: throughput vs command-queue depth (QD 1 / 4 / 16).
//!
//! The pipelined command model keeps per-chip submission/completion
//! queues and schedules commands onto planes in simulated time; QD=1
//! reproduces the old synchronous model exactly (the serial Table-1
//! latency sum), so everything this bench shows above the QD=1 row is
//! overlap the queue found:
//!
//! * **erase-heavy TPC-C** — physical space barely exceeds the logical
//!   footprint and the buffer flushes on a short group-commit cadence,
//!   so GC runs during the measured phase; deeper queues hide its
//!   erases in otherwise-idle slots (Dayan & Bonnet's GC-scheduling
//!   argument) and stripe the flush bursts across planes;
//! * **readers workload** — 4 scanners racing 4 committing writers on a
//!   4-shard store; range-scan read-ahead and overlapped commit flushes
//!   shrink the busiest shard's pipeline time. Thread interleaving makes
//!   the *work done* nondeterministic across runs, so this half reports
//!   same-run overlap efficiency (serial time / pipeline time) rather
//!   than comparing throughput across depths.
//!
//! The bound-throughput columns divide work done by *pipeline busy
//! time* (the chip's simulated horizon), the same machine-independent
//! accounting the other benches use. The TPC-C points run with the
//! `pdl-obs` recorder enabled (the QD=1 == serial identity is asserted
//! *with observation on* — recording must not perturb the simulated
//! timing), so the run emits `BENCH_queue_depth.json` as a
//! `pdl-metrics-v1` registry snapshot (per-point gauges plus every
//! latency histogram) and `obs_out/trace_queue_depth.json`, a Chrome
//! trace of the QD-16 point asserting >= 2 plane lanes run programs
//! concurrently. With `PDL_QD_ASSERT=<ratio>` (CI smoke) it asserts
//! QD4 >= ratio x QD1 on the erase-heavy TPC-C case.
//!
//! Run with `cargo bench -p pdl-bench --bench queue_depth`; set
//! `PDL_SCALE=quick|default|paper` to choose the workload size.

use pdl_bench::tpcc_exp::{run_tpcc_qd_point_traced, QdObs, QdPoint};
use pdl_core::{MethodKind, ShardedStore, StoreOptions};
use pdl_flash::{FlashConfig, IntegrityCounts, PipelineCounts};
use pdl_obs::{json, max_concurrent_lanes};
use pdl_storage::ShardedBufferPool;
use pdl_workload::{
    obs, pipeline_table, run_snapshot_read_workload, Scale, SnapshotReadConfig, Table,
};

const DEPTHS: [u32; 3] = [1, 4, 16];
const PLANES: u32 = 4;

const SHARDS: usize = 4;
const PAGES: u64 = 256;
const READERS: usize = 4;
const WRITERS: usize = 4;

struct ReaderPoint {
    scans: u64,
    bound_scans_per_sec: f64,
    pipeline_us: u64,
    serial_us: u64,
    pipeline: PipelineCounts,
    integrity: IntegrityCounts,
}

/// Readers workload at one queue depth: bound scan throughput over the
/// busiest shard's *pipeline* time.
fn run_readers_point(scale: Scale, depth: u32) -> ReaderPoint {
    let (scans, txns) = match scale.label() {
        "quick" => (4, 48),
        "paper" => (48, 768),
        _ => (16, 256),
    };
    let store = ShardedStore::with_uniform_chips(
        FlashConfig::scaled(64).with_queue_depth(depth).with_planes(PLANES),
        SHARDS,
        MethodKind::Pdl { max_diff_size: 256 },
        StoreOptions::new(PAGES),
    )
    .expect("store");
    let pool = ShardedBufferPool::new(store, PAGES as usize / 4);
    for pid in 0..PAGES {
        pool.with_page_mut(pid, |p| p.write(0, &[0; 8])).expect("load");
    }
    pool.flush_all().expect("load flush");

    let cfg =
        SnapshotReadConfig::new(READERS, WRITERS).with_scans(scans).with_txns_per_writer(txns);
    let r = run_snapshot_read_workload(&pool, &cfg).expect("workload");
    assert_eq!(r.torn_scans, 0, "QD {depth}: torn scan");
    assert_eq!(r.pipeline.ordering_violations, 0, "QD {depth}: ordering violation");

    ReaderPoint {
        scans: r.scans,
        bound_scans_per_sec: r.scans as f64 / (r.pipeline_us_max_shard.max(1) as f64 / 1e6),
        pipeline_us: r.pipeline_us_max_shard,
        serial_us: r.flash_us_max_shard,
        pipeline: r.pipeline,
        integrity: pool.io_stats().integrity,
    }
}

/// Emit the run as a unified `pdl-metrics-v1` document: every point's
/// counters under `tpcc.qd<D>.*` / `readers.qd<D>.*`, including the
/// per-op-class latency histograms the recorder sampled.
fn write_json(
    path: &str,
    scale: Scale,
    tpcc: &[(u32, QdPoint, QdObs)],
    readers: &[(u32, ReaderPoint)],
) {
    let mut reg = obs::bench_registry("queue_depth", scale.label());
    reg.set_u64("planes", PLANES as u64);
    for (qd, p, o) in tpcc {
        let pre = format!("tpcc.qd{qd}");
        reg.set_f64(&format!("{pre}.bound_tps"), p.bound_tps);
        reg.set_u64(&format!("{pre}.pipeline_us"), p.pipeline_us);
        reg.set_u64(&format!("{pre}.serial_us"), p.serial_us);
        reg.set_f64(&format!("{pre}.write_amp"), p.write_amp);
        reg.set_u64(&format!("{pre}.gc_erases"), p.gc_erases);
        obs::put_pipeline_counts(&mut reg, &format!("{pre}.pipeline"), &p.pipeline);
        obs::put_integrity_counts(&mut reg, &format!("{pre}.integrity"), &p.integrity);
        obs::put_recorder_snapshot(&mut reg, &pre, &o.snapshot);
    }
    for (qd, p) in readers {
        let pre = format!("readers.qd{qd}");
        reg.set_f64(&format!("{pre}.bound_scans_per_sec"), p.bound_scans_per_sec);
        reg.set_u64(&format!("{pre}.scans"), p.scans);
        reg.set_u64(&format!("{pre}.pipeline_us"), p.pipeline_us);
        reg.set_u64(&format!("{pre}.serial_us"), p.serial_us);
        obs::put_pipeline_counts(&mut reg, &format!("{pre}.pipeline"), &p.pipeline);
        obs::put_integrity_counts(&mut reg, &format!("{pre}.integrity"), &p.integrity);
    }
    let doc = reg.to_json();
    let parsed = json::parse(&doc).expect("registry emits valid JSON");
    json::validate_metrics(&parsed).expect("registry emits pdl-metrics-v1");
    std::fs::write(path, doc).expect("write BENCH_queue_depth.json");
}

fn main() {
    let scale = Scale::from_env();
    println!("# Flash pipeline: throughput vs command-queue depth");
    println!(
        "method: PDL (256B) | planes: {PLANES} | queue depths: {DEPTHS:?} | scale: {}",
        scale.label()
    );
    println!();

    let tpcc: Vec<(u32, QdPoint, QdObs)> = DEPTHS
        .iter()
        .map(|&qd| {
            let (p, o) = run_tpcc_qd_point_traced(scale, qd, PLANES, 0x7C0C).expect("tpcc point");
            (qd, p, o)
        })
        .collect();
    let readers: Vec<(u32, ReaderPoint)> =
        DEPTHS.iter().map(|&qd| (qd, run_readers_point(scale, qd))).collect();

    let mut t = Table::new(
        "erase-heavy TPC-C (GC-pressured, group-commit flush cadence)",
        &["queue depth", "pipeline us", "serial us", "WA", "gc erases", "bound txn/s"],
    );
    for (qd, p, _) in &tpcc {
        t.row(vec![
            qd.to_string(),
            p.pipeline_us.to_string(),
            p.serial_us.to_string(),
            format!("{:.2}", p.write_amp),
            p.gc_erases.to_string(),
            format!("{:.1}", p.bound_tps),
        ]);
    }
    println!("{}", t.render());

    let mut t = Table::new(
        format!("readers: {READERS} scanners vs {WRITERS} writers, {SHARDS} shards"),
        &[
            "queue depth",
            "scans",
            "pipeline us (max shard)",
            "serial us",
            "overlap",
            "bound scans/s",
        ],
    );
    for (qd, p) in &readers {
        t.row(vec![
            qd.to_string(),
            p.scans.to_string(),
            p.pipeline_us.to_string(),
            p.serial_us.to_string(),
            format!("{:.2}x", p.serial_us as f64 / p.pipeline_us.max(1) as f64),
            format!("{:.1}", p.bound_scans_per_sec),
        ]);
    }
    println!("{}", t.render());

    let rows: Vec<(String, PipelineCounts, IntegrityCounts)> = tpcc
        .iter()
        .map(|(qd, p, _)| (format!("tpcc QD={qd}"), p.pipeline, p.integrity))
        .chain(readers.iter().map(|(qd, p)| (format!("readers QD={qd}"), p.pipeline, p.integrity)))
        .collect();
    println!("{}", pipeline_table("pipeline gauges per configuration", &rows).render());

    write_json("BENCH_queue_depth.json", scale, &tpcc, &readers);
    println!("wrote BENCH_queue_depth.json");

    // Chrome trace export of the QD=16 measured phase: the pipeline's
    // schedule, one thread row per plane. The acceptance witness for the
    // whole pipeline story: >= 2 planes concurrently busy with programs.
    std::fs::create_dir_all("obs_out").expect("create obs_out");
    let qd16 = &tpcc[2].2;
    std::fs::write("obs_out/trace_queue_depth.json", &qd16.trace_json).expect("write trace");
    let v = json::parse(&qd16.trace_json).expect("trace is valid JSON");
    json::validate_trace(&v).expect("trace-event shape");
    let lanes = max_concurrent_lanes(&qd16.snapshot.spans, Some("program"));
    println!(
        "QD16 concurrent planes on programs: {lanes} (bar: >= 2); \
         trace: obs_out/trace_queue_depth.json"
    );
    assert!(lanes >= 2, "QD=16 trace must show >= 2 concurrent plane program spans, got {lanes}");

    // QD=1 must reproduce the pre-pipeline (serial) accounting exactly,
    // and the bound throughput must improve monotonically with depth.
    assert_eq!(
        tpcc[0].1.pipeline_us, tpcc[0].1.serial_us,
        "QD=1 must equal the serial Table-1 time sum"
    );
    for w in tpcc.windows(2) {
        assert!(
            w[1].1.bound_tps >= w[0].1.bound_tps,
            "TPC-C bound txn/s regressed from QD={} to QD={}",
            w[0].0,
            w[1].0
        );
    }
    // Readers: thread interleaving varies the serial work across runs,
    // so assert same-run overlap efficiency instead of cross-depth
    // throughput. The busiest shard's pipeline time never exceeds its
    // serial time (equality at QD=1).
    assert_eq!(
        readers[0].1.pipeline_us, readers[0].1.serial_us,
        "readers QD=1 must equal the serial per-shard sum"
    );
    for (qd, p) in &readers {
        assert!(
            p.pipeline_us <= p.serial_us,
            "readers QD={qd}: pipeline time {} exceeds serial time {}",
            p.pipeline_us,
            p.serial_us
        );
    }
    let speedup16 = tpcc[2].1.bound_tps / tpcc[0].1.bound_tps;
    let speedup4 = tpcc[1].1.bound_tps / tpcc[0].1.bound_tps;
    println!(
        "erase-heavy TPC-C speedup: QD4 = {speedup4:.2}x, QD16 = {speedup16:.2}x over QD1 \
         (acceptance bar: QD16 >= 2x)"
    );
    assert!(
        speedup16 >= 2.0,
        "QD16 must reach >= 2x QD1 on erase-heavy TPC-C, got {speedup16:.2}x"
    );
    if let Ok(bar) = std::env::var("PDL_QD_ASSERT") {
        let bar: f64 = bar.parse().expect("PDL_QD_ASSERT must be a number");
        assert!(speedup4 >= bar, "PDL_QD_ASSERT: QD4 must reach >= {bar}x QD1, got {speedup4:.2}x");
        println!("PDL_QD_ASSERT passed: QD4 {speedup4:.2}x >= {bar}x");
    }
}
