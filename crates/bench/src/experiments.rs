//! One module per experiment of §5 of the paper. Each function runs the
//! parameter sweep of one figure and returns printable tables whose rows /
//! series match what the figure plots.

use crate::runner::{five_methods, run_points, six_methods, PointSpec};
use pdl_core::Result;
use pdl_flash::FlashTiming;
use pdl_workload::{Scale, Table};

fn fmt1(v: f64) -> String {
    format!("{v:.1}")
}

fn fmt3(v: f64) -> String {
    format!("{v:.3}")
}

/// Experiment 1 / Figure 12: read, write, and overall time per update
/// operation for the six methods (`N_updates_till_write = 1`,
/// `%ChangedByOneU_Op = 2`).
pub fn exp1(scale: Scale) -> Result<Vec<Table>> {
    let kinds = six_methods();
    let specs: Vec<PointSpec> = kinds.iter().map(|k| PointSpec::new(*k)).collect();
    let results = run_points(scale, &specs)?;

    let mut read = Table::new(
        "Figure 12(a): I/O time of the reading step per update operation (us)",
        &["method", "read us/op", "reads/op"],
    );
    let mut write = Table::new(
        "Figure 12(b): I/O time of the writing step per update operation (us; gc = slashed area)",
        &["method", "write us/op", "gc us/op", "writes/op", "erases/op"],
    );
    let mut overall = Table::new(
        "Figure 12(c): overall time per update operation (us)",
        &["method", "overall us/op"],
    );
    for (kind, m) in kinds.iter().zip(results.iter()) {
        let label = kind.label();
        read.row(vec![
            label.clone(),
            fmt1(m.read_us_per_op()),
            fmt3(m.read_step.total().reads as f64 / m.cycles as f64),
        ]);
        write.row(vec![
            label.clone(),
            fmt1(m.write_us_per_op()),
            fmt1(m.gc_us_per_op()),
            fmt3(m.write_step.total().writes as f64 / m.cycles as f64),
            fmt3(m.write_step.total().erases as f64 / m.cycles as f64),
        ]);
        overall.row(vec![label, fmt1(m.overall_us_per_op())]);
    }
    Ok(vec![read, write, overall])
}

/// Experiment 2 / Figure 13: overall time per update operation as
/// `N_updates_till_write` varies from 1 to 8; (a) 2 Kbyte logical pages,
/// (b) 8 Kbyte logical pages.
pub fn exp2(scale: Scale, frames_per_page: u32) -> Result<Table> {
    let kinds = six_methods();
    let ns: Vec<u32> = (1..=8).collect();
    let mut specs = Vec::new();
    for kind in &kinds {
        for n in &ns {
            specs.push(PointSpec::new(*kind).with_frames(frames_per_page).with_n_updates(*n));
        }
    }
    let results = run_points(scale, &specs)?;
    let page_kb = frames_per_page * 2;
    let sub = if frames_per_page == 1 { "a" } else { "b" };
    let mut header: Vec<String> = vec!["method".into()];
    header.extend(ns.iter().map(|n| format!("N={n}")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(
        format!(
            "Figure 13({sub}): overall us per update operation vs N_updates_till_write \
             (logical page = {page_kb}KB)"
        ),
        &header_refs,
    );
    for (i, kind) in kinds.iter().enumerate() {
        let mut row = vec![kind.label()];
        for j in 0..ns.len() {
            row.push(fmt1(results[i * ns.len() + j].overall_us_per_op()));
        }
        t.row(row);
    }
    Ok(t)
}

/// Experiment 3 / Figure 14: overall time per update operation as
/// `%ChangedByOneU_Op` varies (0.1 — 100), for `N_updates_till_write` of
/// 1 (a) or 5 (b).
pub fn exp3(scale: Scale, n_updates: u32) -> Result<Table> {
    let kinds = six_methods();
    let pcts = [0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 90.0, 100.0];
    let mut specs = Vec::new();
    for kind in &kinds {
        for pct in pcts {
            specs.push(PointSpec::new(*kind).with_pct_changed(pct).with_n_updates(n_updates));
        }
    }
    let results = run_points(scale, &specs)?;
    let sub = if n_updates == 1 { "a" } else { "b" };
    let mut header: Vec<String> = vec!["method".into()];
    header.extend(pcts.iter().map(|p| format!("{p}%")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(
        format!(
            "Figure 14({sub}): overall us per update operation vs %ChangedByOneU_Op \
             (N_updates_till_write = {n_updates})"
        ),
        &header_refs,
    );
    for (i, kind) in kinds.iter().enumerate() {
        let mut row = vec![kind.label()];
        for j in 0..pcts.len() {
            row.push(fmt1(results[i * pcts.len() + j].overall_us_per_op()));
        }
        t.row(row);
    }
    Ok(t)
}

/// Experiment 4 / Figure 15: overall time per operation for mixes of
/// read-only and update operations as `%UpdateOps` varies, for
/// `N_updates_till_write` of 1 (a) or 5 (b).
pub fn exp4(scale: Scale, n_updates: u32) -> Result<Table> {
    let kinds = six_methods();
    let mixes = [0.0, 5.0, 10.0, 20.0, 40.0, 60.0, 80.0, 100.0];
    let mut specs = Vec::new();
    for kind in &kinds {
        for mix in mixes {
            specs.push(PointSpec::new(*kind).with_mix(mix).with_n_updates(n_updates));
        }
    }
    let results = run_points(scale, &specs)?;
    let sub = if n_updates == 1 { "a" } else { "b" };
    let mut header: Vec<String> = vec!["method".into()];
    header.extend(mixes.iter().map(|m| format!("{m}%upd")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(
        format!(
            "Figure 15({sub}): overall us per operation for read-only/update mixes \
             (N_updates_till_write = {n_updates})"
        ),
        &header_refs,
    );
    for (i, kind) in kinds.iter().enumerate() {
        let mut row = vec![kind.label()];
        for j in 0..mixes.len() {
            row.push(fmt1(results[i * mixes.len() + j].overall_us_per_op()));
        }
        t.row(row);
    }
    Ok(t)
}

/// Experiment 5 / Figure 16: overall time per update operation as the
/// flash timing parameters vary: `T_read` sweeps 10 — 1500 µs with
/// `T_write` of 500 (a) or 1000 (b) µs and `T_erase = 1500 µs`.
pub fn exp5(scale: Scale, t_write_us: u64) -> Result<Table> {
    let kinds = six_methods();
    let treads = [10u64, 50, 110, 200, 400, 800, 1500];
    let mut specs = Vec::new();
    for kind in &kinds {
        for tr in treads {
            let timing = FlashTiming { t_read_us: tr, t_write_us, t_erase_us: 1500 };
            specs.push(PointSpec::new(*kind).with_timing(timing));
        }
    }
    let results = run_points(scale, &specs)?;
    let sub = if t_write_us == 500 { "a" } else { "b" };
    let mut header: Vec<String> = vec!["method".into()];
    header.extend(treads.iter().map(|t| format!("Tr={t}us")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(
        format!(
            "Figure 16({sub}): overall us per update operation vs T_read \
             (T_write = {t_write_us}us, T_erase = 1500us)"
        ),
        &header_refs,
    );
    for (i, kind) in kinds.iter().enumerate() {
        let mut row = vec![kind.label()];
        for j in 0..treads.len() {
            row.push(fmt1(results[i * treads.len() + j].overall_us_per_op()));
        }
        t.row(row);
    }
    Ok(t)
}

/// Experiment 6 / Figure 17: number of erase operations per update
/// operation as `N_updates_till_write` varies (longevity). Five methods,
/// as in the paper.
pub fn exp6(scale: Scale) -> Result<Table> {
    let kinds = five_methods();
    let ns: Vec<u32> = (1..=8).collect();
    let mut specs = Vec::new();
    for kind in &kinds {
        for n in &ns {
            specs.push(PointSpec::new(*kind).with_n_updates(*n));
        }
    }
    let results = run_points(scale, &specs)?;
    let mut header: Vec<String> = vec!["method".into()];
    header.extend(ns.iter().map(|n| format!("N={n}")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(
        "Figure 17: erase operations per update operation vs N_updates_till_write",
        &header_refs,
    );
    for (i, kind) in kinds.iter().enumerate() {
        let mut row = vec![kind.label()];
        for j in 0..ns.len() {
            row.push(fmt3(results[i * ns.len() + j].erases_per_op()));
        }
        t.row(row);
    }
    Ok(t)
}

/// Table 1 banner: the flash parameters every bench prints for context.
pub fn table1_banner(scale: Scale) -> String {
    let chip = pdl_workload::chip_for(scale, FlashTiming::PAPER);
    let g = chip.geometry();
    let t = chip.timing();
    format!(
        "chip: {} blocks x {} pages x ({} + {}) bytes | T_read {}us, T_write {}us, \
         T_erase {}us | scale: {} | db: {} logical pages",
        g.num_blocks,
        g.pages_per_block,
        g.data_size,
        g.spare_size,
        t.t_read_us,
        t.t_write_us,
        t.t_erase_us,
        scale.label(),
        pdl_workload::db_pages_for(scale, 1),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_point;
    use pdl_core::MethodKind;

    /// The headline result of the paper at quick scale: Figure 12's
    /// orderings hold.
    #[test]
    fn exp1_shapes_match_figure12() {
        let kinds = six_methods();
        let specs: Vec<PointSpec> = kinds.iter().map(|k| PointSpec::new(*k)).collect();
        let results = run_points(Scale::Quick, &specs).unwrap();
        let get = |k: MethodKind| {
            let i = kinds.iter().position(|x| *x == k).unwrap();
            &results[i]
        };
        let ipl18 = get(MethodKind::Ipl { log_bytes_per_block: 18 * 1024 });
        let ipl64 = get(MethodKind::Ipl { log_bytes_per_block: 64 * 1024 });
        let pdl2k = get(MethodKind::Pdl { max_diff_size: 2048 });
        let pdl256 = get(MethodKind::Pdl { max_diff_size: 256 });
        let opu = get(MethodKind::Opu);
        let ipu = get(MethodKind::Ipu);

        // Figure 12(a): log-based methods need multiple reads; PDL at most
        // two; page-based exactly one. (Our IPL keeps a per-page log-page
        // index, so IPL(18KB) reads fewer pages than the paper's
        // unindexed IPL — see EXPERIMENTS.md; the IPL(64K) > PDL > OPU
        // ordering is what the design guarantees.)
        assert!(ipl64.read_us_per_op() > ipl18.read_us_per_op(), "IPL(64K) reads most");
        assert!(ipl64.read_us_per_op() > pdl2k.read_us_per_op());
        assert!(ipl18.read_us_per_op() > opu.read_us_per_op());
        assert!(pdl2k.read_us_per_op() >= opu.read_us_per_op());
        assert!((opu.read_us_per_op() - 110.0).abs() < 1.0, "OPU reads exactly one page");
        assert!((ipu.read_us_per_op() - 110.0).abs() < 1.0);

        // Figure 12(b): writing-step order IPU >> OPU > PDL(2K) and
        // PDL(256B) cheapest.
        assert!(ipu.write_us_per_op() > 10.0 * opu.write_us_per_op(), "IPU block cycles");
        assert!(opu.write_us_per_op() > pdl2k.write_us_per_op());
        let others = [ipl18, ipl64, pdl2k, opu, ipu];
        for m in others {
            assert!(
                pdl256.write_us_per_op() < m.write_us_per_op(),
                "PDL(256B) must have the cheapest writing step"
            );
        }

        // Figure 12(c): PDL(256B) has the best overall time.
        for m in others {
            assert!(pdl256.overall_us_per_op() < m.overall_us_per_op());
        }
    }

    /// Figure 13 shapes: OPU flat in N; IPL grows; PDL(256B) approaches OPU.
    #[test]
    fn exp2_shapes_match_figure13() {
        let opu_1 = run_point(Scale::Quick, PointSpec::new(MethodKind::Opu)).unwrap();
        let opu_8 =
            run_point(Scale::Quick, PointSpec::new(MethodKind::Opu).with_n_updates(8)).unwrap();
        let rel = (opu_8.overall_us_per_op() - opu_1.overall_us_per_op()).abs()
            / opu_1.overall_us_per_op();
        assert!(rel < 0.10, "OPU must be steady in N (changed by {rel:.2})");

        let ipl = MethodKind::Ipl { log_bytes_per_block: 18 * 1024 };
        let ipl_1 = run_point(Scale::Quick, PointSpec::new(ipl)).unwrap();
        let ipl_8 = run_point(Scale::Quick, PointSpec::new(ipl).with_n_updates(8)).unwrap();
        assert!(
            ipl_8.overall_us_per_op() > 1.5 * ipl_1.overall_us_per_op(),
            "IPL write cost grows with N: {} vs {}",
            ipl_8.overall_us_per_op(),
            ipl_1.overall_us_per_op()
        );

        let pdl = MethodKind::Pdl { max_diff_size: 256 };
        let pdl_8 = run_point(Scale::Quick, PointSpec::new(pdl).with_n_updates(8)).unwrap();
        let opu_like = opu_8.overall_us_per_op();
        assert!(
            pdl_8.overall_us_per_op() < 1.4 * opu_like,
            "PDL(256B) at N=8 approaches OPU: {} vs {}",
            pdl_8.overall_us_per_op(),
            opu_like
        );
    }

    /// Figure 15 shape: at %UpdateOps = 0 OPU beats PDL (the paper's 0.5x
    /// special case); at 100% PDL(256B) wins.
    #[test]
    fn exp4_shapes_match_figure15() {
        let pdl = MethodKind::Pdl { max_diff_size: 256 };
        let opu_read =
            run_point(Scale::Quick, PointSpec::new(MethodKind::Opu).with_mix(0.0)).unwrap();
        let pdl_read = run_point(Scale::Quick, PointSpec::new(pdl).with_mix(0.0)).unwrap();
        let ratio = opu_read.overall_us_per_op() / pdl_read.overall_us_per_op();
        assert!(
            ratio > 0.45 && ratio < 0.75,
            "read-only on updated pages: OPU ~1 read vs PDL ~2 reads (ratio {ratio:.2})"
        );
        let opu_upd =
            run_point(Scale::Quick, PointSpec::new(MethodKind::Opu).with_mix(100.0)).unwrap();
        let pdl_upd = run_point(Scale::Quick, PointSpec::new(pdl).with_mix(100.0)).unwrap();
        assert!(pdl_upd.overall_us_per_op() < opu_upd.overall_us_per_op());
    }

    /// Figure 17 shape: OPU erases most; PDL(256B) and IPL(64K) erase least.
    #[test]
    fn exp6_shapes_match_figure17() {
        let opu = run_point(Scale::Quick, PointSpec::new(MethodKind::Opu)).unwrap();
        let pdl256 =
            run_point(Scale::Quick, PointSpec::new(MethodKind::Pdl { max_diff_size: 256 }))
                .unwrap();
        let ipl64 = run_point(
            Scale::Quick,
            PointSpec::new(MethodKind::Ipl { log_bytes_per_block: 64 * 1024 }),
        )
        .unwrap();
        assert!(opu.erases_per_op() > pdl256.erases_per_op(), "PDL(256B) improves longevity");
        assert!(opu.erases_per_op() > ipl64.erases_per_op());
    }
}
