//! Experiment 7 / Figure 18: TPC-C I/O time per transaction as the DBMS
//! buffer size varies from 0.1% to 10% of the database size, for the five
//! methods of the paper's figure.

use pdl_core::{build_store, CoreError, MethodKind, StoreOptions};
use pdl_flash::{FlashChip, FlashConfig};
use pdl_storage::Database;
use pdl_tpcc::{load, run_mix, TpccDb, TpccRand, TpccScale};
use pdl_workload::{Scale, Table};

/// Buffer sizes as percentages of the loaded database (the paper's x-axis:
/// 0.1% — 10%).
pub const BUFFER_PCTS: [f64; 7] = [0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0];

/// TPC-C sizing per experiment scale.
pub fn tpcc_scale_for(scale: Scale) -> TpccScale {
    match scale {
        Scale::Quick => TpccScale::scaled(1),
        Scale::Default => TpccScale::scaled(2),
        // The paper's 1-Gbyte database: 10 warehouses at spec cardinality.
        Scale::Paper => TpccScale::full(10),
    }
}

/// Measured transactions per point.
pub fn txns_for(scale: Scale) -> u64 {
    match scale {
        Scale::Quick => 400,
        Scale::Default => 1_500,
        Scale::Paper => 20_000,
    }
}

/// One Experiment-7 point: load TPC-C, warm the buffer, measure I/O time
/// per transaction. Returns `(io_us_per_txn, loaded_pages)`.
pub fn run_tpcc_point(
    scale: Scale,
    kind: MethodKind,
    buffer_pct: f64,
    seed: u64,
) -> Result<(f64, u64), CoreError> {
    let tpcc_scale = tpcc_scale_for(scale);
    let txns = txns_for(scale);
    let warmup = txns / 4;

    // Size the store: loaded pages + growth room, at the synthetic
    // experiments' ~25% space utilisation (DESIGN.md §2).
    let est = tpcc_scale.estimated_loaded_pages(2048);
    let num_pages = est * 2 + (txns + warmup) + 128;
    let blocks = ((num_pages * 4).div_ceil(64) + 16) as u32;
    let chip = FlashChip::new(FlashConfig::scaled(blocks));
    let store = build_store(chip, kind, StoreOptions::new(num_pages))?;

    // Load with a tiny provisional buffer; the real buffer is set below.
    let db = Database::new(store, 256);
    let mut t: TpccDb =
        load(db, tpcc_scale, seed).map_err(|e| CoreError::BadConfig(e.to_string()))?;
    let loaded = t.db.allocated_pages();

    // Re-wrap the store with the experiment's buffer size, carrying the
    // table and index handles across the rebuild.
    let buffer_pages = ((loaded as f64 * buffer_pct / 100.0).round() as usize).max(2);
    t.detach_structures();
    let store = t.db.into_store().map_err(|e| CoreError::BadConfig(e.to_string()))?;
    t.db = Database::new_with_allocated(store, buffer_pages, loaded);
    t.attach_structures();

    let mut r = TpccRand::new(seed ^ 0xABCD);
    run_mix(&mut t, &mut r, warmup).map_err(|e| CoreError::BadConfig(e.to_string()))?;
    t.db.reset_io_stats();
    run_mix(&mut t, &mut r, txns).map_err(|e| CoreError::BadConfig(e.to_string()))?;
    let io_us = t.db.io_stats().total().total_us();
    Ok((io_us as f64 / txns as f64, loaded))
}

/// One point of the flash-pipeline (queue-depth) experiment.
#[derive(Clone, Copy, Debug)]
pub struct QdPoint {
    /// Transactions per second of *pipeline* time — the chip's busy
    /// horizon, which shrinks as deeper queues overlap commands. At
    /// queue depth 1 this equals the serial Table-1 time sum.
    pub bound_tps: f64,
    /// Pipeline busy time of the measured phase, µs.
    pub pipeline_us: u64,
    /// Serial (Table-1 sum) flash time of the measured phase, µs.
    pub serial_us: u64,
    pub write_amp: f64,
    pub gc_erases: u64,
    pub pipeline: pdl_flash::PipelineCounts,
    /// Checksum mismatches detected / pages repaired during the measured
    /// phase (0/0 on a healthy chip — nonzero means the run served from
    /// self-repair, which distorts the timing comparison).
    pub integrity: pdl_flash::IntegrityCounts,
}

/// Observability capture of one traced queue-depth point.
#[derive(Clone, Debug)]
pub struct QdObs {
    /// The chip recorder after the measured phase (warm-up is cleared by
    /// the statistics reset): per-class latency histograms plus the
    /// attributed span ring.
    pub snapshot: pdl_obs::RecorderSnapshot,
    /// Chrome trace-event JSON of the measured phase.
    pub trace_json: String,
}

/// One queue-depth point: TPC-C on an **erase-heavy** PDL store. The
/// physical space barely exceeds the logical footprint (vs Figure 18's
/// 4x headroom) and the buffer is flushed on a short group-commit
/// cadence, so garbage collection runs during the measured phase and
/// its erases — plus the flush bursts of programs — are the commands a
/// deeper queue can hide (Dayan & Bonnet's GC-scheduling argument).
/// Same load/warmup/measure protocol as [`run_tpcc_point`].
pub fn run_tpcc_qd_point(
    scale: Scale,
    queue_depth: u32,
    planes: u32,
    seed: u64,
) -> Result<QdPoint, CoreError> {
    run_tpcc_qd_point_inner(scale, queue_depth, planes, seed, false).map(|(p, _)| p)
}

/// [`run_tpcc_qd_point`] with the recorder on: same store, same seed,
/// same protocol, plus the measured phase's histograms and trace.
pub fn run_tpcc_qd_point_traced(
    scale: Scale,
    queue_depth: u32,
    planes: u32,
    seed: u64,
) -> Result<(QdPoint, QdObs), CoreError> {
    run_tpcc_qd_point_inner(scale, queue_depth, planes, seed, true)
        .map(|(p, o)| (p, o.expect("obs was enabled")))
}

fn run_tpcc_qd_point_inner(
    scale: Scale,
    queue_depth: u32,
    planes: u32,
    seed: u64,
    obs: bool,
) -> Result<(QdPoint, Option<QdObs>), CoreError> {
    let kind = MethodKind::Pdl { max_diff_size: 256 };
    let tpcc_scale = tpcc_scale_for(scale);
    let txns = txns_for(scale);
    // A long warmup: it must push the append cursor into the reclamation
    // regime, so the *measured* phase is GC-pressured from its first
    // transaction.
    let warmup = txns * 2;
    // Group-commit cadence: flush the buffer every K transactions, like
    // a durability checkpoint. Each flush is a burst of programs — the
    // traffic pattern the pipelined submit-all/drain-all path overlaps.
    const FLUSH_EVERY: u64 = 5;

    // A tight store: the logical space is just the loaded footprint plus
    // growth room, and the physical space barely exceeds it (vs Figure
    // 18's 4x headroom) — the store reclaims constantly, so GC
    // migrations and erases dominate the command stream.
    let est = tpcc_scale.estimated_loaded_pages(2048);
    let num_pages = est + txns + 128;
    let blocks = (num_pages.div_ceil(64) + 10) as u32;
    let config = FlashConfig::scaled(blocks).with_queue_depth(queue_depth).with_planes(planes);
    let store =
        build_store(FlashChip::new(config), kind, StoreOptions::new(num_pages).with_obs(obs))?;

    let db = Database::new(store, 256);
    let mut t: TpccDb =
        load(db, tpcc_scale, seed).map_err(|e| CoreError::BadConfig(e.to_string()))?;
    let loaded = t.db.allocated_pages();

    // A generous buffer (30% of the loaded footprint): most re-reads hit
    // DRAM, while the periodic commit flushes and GC still reach flash —
    // so the command stream is dominated by program/erase bursts,
    // exactly the commands a deeper queue can overlap.
    let buffer_pages = ((loaded as f64 * 30.0 / 100.0).round() as usize).max(2);
    t.detach_structures();
    let store = t.db.into_store().map_err(|e| CoreError::BadConfig(e.to_string()))?;
    t.db = Database::new_with_allocated(store, buffer_pages, loaded);
    t.attach_structures();

    let mut r = TpccRand::new(seed ^ 0xABCD);
    let run_chunked = |t: &mut TpccDb, r: &mut TpccRand, total: u64| -> Result<(), CoreError> {
        let mut done = 0;
        while done < total {
            let n = FLUSH_EVERY.min(total - done);
            run_mix(t, r, n).map_err(|e| CoreError::BadConfig(e.to_string()))?;
            t.db.flush().map_err(|e| CoreError::BadConfig(e.to_string()))?;
            done += n;
        }
        Ok(())
    };
    run_chunked(&mut t, &mut r, warmup)?;
    t.db.reset_io_stats(); // also rebases the pipeline clock
    run_chunked(&mut t, &mut r, txns)?;

    let stats = t.db.io_stats();
    let pipeline_us = t.db.with_store(|s| s.pipeline_busy_us());
    let capture =
        obs.then(|| QdObs { snapshot: t.db.obs_snapshot(), trace_json: t.db.obs_trace_json() });
    let point = QdPoint {
        bound_tps: txns as f64 / (pipeline_us.max(1) as f64 / 1e6),
        pipeline_us,
        serial_us: stats.total().total_us(),
        write_amp: stats.write_amplification(),
        gc_erases: stats.gc_erases(),
        pipeline: stats.pipeline,
        integrity: stats.integrity,
    };
    Ok((point, capture))
}

/// Experiment 7 / Figure 18 sweep.
pub fn exp7(scale: Scale) -> Result<Table, CoreError> {
    let kinds = MethodKind::paper_five();
    let mut specs = Vec::new();
    for kind in &kinds {
        for pct in BUFFER_PCTS {
            specs.push((*kind, pct));
        }
    }
    // Run points in parallel (each loads its own database).
    let max_workers = match scale {
        Scale::Paper => 2,
        _ => 12,
    };
    let workers = specs.len().clamp(1, max_workers);
    let next = std::sync::atomic::AtomicUsize::new(0);
    type PointResult = Result<(f64, u64), CoreError>;
    let results: Vec<parking_lot::Mutex<Option<PointResult>>> =
        specs.iter().map(|_| parking_lot::Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= specs.len() {
                    break;
                }
                let (kind, pct) = specs[i];
                *results[i].lock() = Some(run_tpcc_point(scale, kind, pct, 0x7C0C));
            });
        }
    });
    let results: Vec<(f64, u64)> = results
        .into_iter()
        .map(|m| m.into_inner().expect("worker filled every slot"))
        .collect::<Result<_, _>>()?;

    let mut header: Vec<String> = vec!["method".into()];
    header.extend(BUFFER_PCTS.iter().map(|p| format!("{p}%buf")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let loaded = results.first().map(|(_, l)| *l).unwrap_or(0);
    let mut t = Table::new(
        format!(
            "Figure 18: TPC-C I/O time per transaction (us) vs DBMS buffer size \
             (database = {loaded} pages)"
        ),
        &header_refs,
    );
    for (i, kind) in kinds.iter().enumerate() {
        let mut row = vec![kind.label()];
        for j in 0..BUFFER_PCTS.len() {
            row.push(format!("{:.0}", results[i * BUFFER_PCTS.len() + j].0));
        }
        t.row(row);
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 18 shape at quick scale: PDL beats OPU and IPL, and bigger
    /// buffers reduce I/O time for every method.
    #[test]
    fn exp7_shapes_match_figure18() {
        let pdl = MethodKind::Pdl { max_diff_size: 256 };
        let opu = MethodKind::Opu;
        let ipl = MethodKind::Ipl { log_bytes_per_block: 64 * 1024 };
        let (pdl_small, _) = run_tpcc_point(Scale::Quick, pdl, 1.0, 7).unwrap();
        let (opu_small, _) = run_tpcc_point(Scale::Quick, opu, 1.0, 7).unwrap();
        let (ipl_small, _) = run_tpcc_point(Scale::Quick, ipl, 1.0, 7).unwrap();
        assert!(
            pdl_small < opu_small,
            "PDL(256B) must beat OPU on TPC-C: {pdl_small:.0} vs {opu_small:.0}"
        );
        assert!(
            pdl_small < ipl_small,
            "PDL(256B) must beat IPL(64KB) on TPC-C: {pdl_small:.0} vs {ipl_small:.0}"
        );
        let (pdl_big, _) = run_tpcc_point(Scale::Quick, pdl, 10.0, 7).unwrap();
        assert!(pdl_big < pdl_small, "a larger buffer absorbs I/O");
    }
}
