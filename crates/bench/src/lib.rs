//! # pdl-bench — experiment harness
//!
//! One bench target per table/figure of the paper's evaluation (§5); see
//! `benches/`. The shared machinery lives here so the bench targets stay
//! thin and the shape assertions can run as ordinary tests.

pub mod experiments;
pub mod runner;
pub mod tpcc_exp;

pub use runner::{five_methods, run_point, run_points, six_methods, PointSpec};
