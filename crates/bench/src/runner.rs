//! Experiment point runner: build a store at a given scale, load the
//! database, warm up, measure — optionally many points in parallel.

use pdl_core::{build_store, MethodKind, PageStore, Result, StoreOptions};
use pdl_flash::FlashTiming;
use pdl_workload::{
    chip_for, db_pages_for, load_database, run_mix_workload, run_update_workload, Measurement,
    MixConfig, Scale, UpdateConfig,
};

/// Everything that defines one experiment point.
#[derive(Clone, Copy, Debug)]
pub struct PointSpec {
    pub kind: MethodKind,
    pub timing: FlashTiming,
    pub frames_per_page: u32,
    /// `%ChangedByOneU_Op`.
    pub pct_changed: f64,
    /// `N_updates_till_write`.
    pub n_updates: u32,
    /// `Some(%UpdateOps)` runs the Experiment-4 mix; `None` runs pure
    /// updates.
    pub mix_pct_update: Option<f64>,
    pub seed: u64,
}

impl PointSpec {
    pub fn new(kind: MethodKind) -> PointSpec {
        PointSpec {
            kind,
            timing: FlashTiming::PAPER,
            frames_per_page: 1,
            pct_changed: 2.0,
            n_updates: 1,
            mix_pct_update: None,
            seed: 0x5EED,
        }
    }

    pub fn with_timing(mut self, timing: FlashTiming) -> PointSpec {
        self.timing = timing;
        self
    }

    pub fn with_frames(mut self, frames: u32) -> PointSpec {
        self.frames_per_page = frames;
        self
    }

    pub fn with_pct_changed(mut self, pct: f64) -> PointSpec {
        self.pct_changed = pct;
        self
    }

    pub fn with_n_updates(mut self, n: u32) -> PointSpec {
        self.n_updates = n;
        self
    }

    pub fn with_mix(mut self, pct_update_ops: f64) -> PointSpec {
        self.mix_pct_update = Some(pct_update_ops);
        self
    }
}

/// Run one experiment point at the given scale.
pub fn run_point(scale: Scale, spec: PointSpec) -> Result<Measurement> {
    let chip = chip_for(scale, spec.timing);
    let opts = StoreOptions::new(db_pages_for(scale, spec.frames_per_page))
        .with_frames_per_page(spec.frames_per_page);
    let mut store: Box<dyn PageStore> = build_store(chip, spec.kind, opts)?;
    load_database(store.as_mut())?;
    // Buffered methods (PDL, IPL) need their per-page differential / log
    // state saturated AND phase-decohered before measuring (footnote 16:
    // the steady-state differential is ~half a page on average). The
    // saw-tooth period scales inversely with the per-update change size,
    // so the jitter bound does too.
    let jitter = match spec.kind {
        MethodKind::Pdl { .. } | MethodKind::Ipl { .. } => {
            let n = spec.n_updates.max(1) as f64;
            ((220.0 / (spec.pct_changed * n)).ceil() as u32).clamp(8, 256)
        }
        MethodKind::Opu | MethodKind::Ipu => 0,
    };
    let update = UpdateConfig::new(spec.pct_changed, spec.n_updates)
        .with_measured_cycles(scale.measured_cycles())
        .with_warmup(
            scale.warmup_erases_per_block() * scale.num_blocks() as u64,
            scale.warmup_max_cycles(),
        )
        .with_phase_jitter(jitter)
        .with_seed(spec.seed);
    match spec.mix_pct_update {
        Some(pct_update_ops) => {
            run_mix_workload(store.as_mut(), &MixConfig { pct_update_ops, update })
        }
        None => run_update_workload(store.as_mut(), &update),
    }
}

/// Run many points, parallelising across worker threads. Point order is
/// preserved in the result. At paper scale the concurrency is capped so
/// that only a couple of 4-GiB chips are resident at once.
pub fn run_points(scale: Scale, specs: &[PointSpec]) -> Result<Vec<Measurement>> {
    let max_workers = match scale {
        Scale::Paper => 2,
        _ => 12,
    };
    let workers = specs.len().clamp(1, max_workers);
    if workers <= 1 {
        return specs.iter().map(|s| run_point(scale, *s)).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results: Vec<parking_lot::Mutex<Option<Result<Measurement>>>> =
        specs.iter().map(|_| parking_lot::Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= specs.len() {
                    break;
                }
                let r = run_point(scale, specs[i]);
                *results[i].lock() = Some(r);
            });
        }
    });
    results.into_iter().map(|m| m.into_inner().expect("worker filled every slot")).collect()
}

/// The method labels/kinds of Figure 12, paper order.
pub fn six_methods() -> Vec<MethodKind> {
    MethodKind::paper_six()
}

/// The method labels/kinds of Figures 17/18 (no IPU).
pub fn five_methods() -> Vec<MethodKind> {
    MethodKind::paper_five()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_points_preserves_order_and_determinism() {
        let specs = vec![
            PointSpec::new(MethodKind::Opu),
            PointSpec::new(MethodKind::Pdl { max_diff_size: 256 }),
        ];
        let a = run_points(Scale::Quick, &specs).unwrap();
        let b = run_points(Scale::Quick, &specs).unwrap();
        assert_eq!(a.len(), 2);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.cycles, y.cycles);
            assert!((x.overall_us_per_op() - y.overall_us_per_op()).abs() < 1e-9);
        }
        // OPU's overall cost must differ from PDL's (they are different
        // methods measured independently).
        assert!((a[0].overall_us_per_op() - a[1].overall_us_per_op()).abs() > 1.0);
    }
}
