//! CI gate over emitted metrics documents (`BENCH_*.json`).
//!
//! Usage: `obs_gate <file.json>...` — walks every numeric leaf of each
//! document and fails (exit 1, naming the offending path) if
//!
//! * any `ordering_violations` counter is nonzero — a read overtook a
//!   program/erase it depends on, which invalidates every timing the
//!   run reported; or
//! * any `detected_corruptions` counter exceeds its sibling
//!   `repaired_pages` — the run served data whose checksum mismatch was
//!   never repaired (an *explained* detection is one the online
//!   single-page repair path fixed); or
//! * any `retention.ledger_enabled` marker is nonzero while its sibling
//!   `retention.flash_resolves` is zero — the run claimed the flash
//!   version-retention ledger was on but never resolved a single cold
//!   version from it, so the spill path went unexercised (a silently
//!   dead ledger would hide regressions in exactly the code the
//!   retention bench exists to cover).
//!
//! Files that fail to parse are an error too: a truncated or
//! hand-mangled document must not pass the gate silently.

use pdl_obs::json;
use std::process::ExitCode;

fn check_file(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = json::parse(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    let leaves = doc.numeric_leaves();
    let mut failures = Vec::new();
    for (key, value) in &leaves {
        if key == "ordering_violations" || key.ends_with(".ordering_violations") {
            if *value != 0.0 {
                failures.push(format!("{key} = {value} (must be 0)"));
            }
        } else if key == "detected_corruptions" || key.ends_with(".detected_corruptions") {
            let sibling =
                format!("{}repaired_pages", &key[..key.len() - "detected_corruptions".len()]);
            let repaired = leaves.get(&sibling).copied().unwrap_or(0.0);
            if *value > repaired {
                failures.push(format!(
                    "{key} = {value} exceeds {sibling} = {repaired} (unexplained corruption)"
                ));
            }
        } else if key == "retention.ledger_enabled" || key.ends_with(".retention.ledger_enabled") {
            let sibling = format!("{}flash_resolves", &key[..key.len() - "ledger_enabled".len()]);
            let resolves = leaves.get(&sibling).copied().unwrap_or(0.0);
            if *value != 0.0 && resolves == 0.0 {
                failures.push(format!(
                    "{key} = {value} but {sibling} = {resolves} (ledger enabled yet no cold \
                     version was ever resolved from flash)"
                ));
            }
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(format!("{path}:\n  {}", failures.join("\n  ")))
    }
}

fn main() -> ExitCode {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() {
        eprintln!("usage: obs_gate <metrics.json>...");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for path in &files {
        match check_file(path) {
            Ok(()) => println!("obs_gate: {path}: clean"),
            Err(msg) => {
                eprintln!("obs_gate: FAIL {msg}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
