//! Observability smoke: one quick erase-heavy TPC-C run with the
//! recorder on, exporting both observability documents and validating
//! them against their schemas:
//!
//! * `obs_out/trace_tpcc.json` — Chrome trace-event JSON of the
//!   measured phase (load it in `chrome://tracing` or Perfetto);
//! * `obs_out/metrics_tpcc.json` — the unified `pdl-metrics-v1`
//!   registry snapshot: flash ledger, pipeline/integrity gauges, and
//!   every latency histogram the recorder sampled.
//!
//! Exits nonzero (panics) if either export fails validation, if the
//! recorder captured nothing, or if the run shows ordering violations.

use pdl_bench::tpcc_exp::run_tpcc_qd_point_traced;
use pdl_obs::json;
use pdl_workload::{obs, Scale};

fn main() {
    const QUEUE_DEPTH: u32 = 4;
    const PLANES: u32 = 2;
    let scale = Scale::Quick;
    let (point, capture) =
        run_tpcc_qd_point_traced(scale, QUEUE_DEPTH, PLANES, 0x0B5).expect("tpcc point");

    std::fs::create_dir_all("obs_out").expect("create obs_out");
    std::fs::write("obs_out/trace_tpcc.json", &capture.trace_json).expect("write trace");
    let trace = json::parse(&capture.trace_json).expect("trace is valid JSON");
    json::validate_trace(&trace).expect("trace-event shape");

    let mut reg = obs::bench_registry("obs_smoke", scale.label());
    reg.set_u64("queue_depth", QUEUE_DEPTH as u64);
    reg.set_u64("planes", PLANES as u64);
    reg.set_f64("bound_tps", point.bound_tps);
    reg.set_u64("pipeline_us", point.pipeline_us);
    reg.set_u64("serial_us", point.serial_us);
    obs::put_pipeline_counts(&mut reg, "pipeline", &point.pipeline);
    obs::put_integrity_counts(&mut reg, "integrity", &point.integrity);
    obs::put_recorder_snapshot(&mut reg, "", &capture.snapshot);
    let doc = reg.to_json();
    let metrics = json::parse(&doc).expect("metrics are valid JSON");
    json::validate_metrics(&metrics).expect("pdl-metrics-v1 shape");
    std::fs::write("obs_out/metrics_tpcc.json", &doc).expect("write metrics");

    let spans = capture.snapshot.spans.len();
    assert!(spans > 0, "the recorder must capture spans on a measured TPC-C run");
    assert_eq!(point.pipeline.ordering_violations, 0, "dependency ordering violated");
    let reads = capture.snapshot.hist(pdl_obs::LatencyClass::ReadUser).count();
    let programs = capture.snapshot.hist(pdl_obs::LatencyClass::ProgramUser).count();
    assert!(reads > 0 && programs > 0, "user reads and programs must both be sampled");

    println!(
        "obs_smoke: ok — {spans} spans ({} dropped), {reads} user reads, {programs} user \
         programs; wrote obs_out/trace_tpcc.json + obs_out/metrics_tpcc.json",
        capture.snapshot.dropped_spans
    );
}
