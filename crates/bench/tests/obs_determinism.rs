//! Determinism of the observability exports: the recorder runs on the
//! *simulated* clock, so two identical seeded single-threaded runs must
//! export byte-identical documents — any divergence means wall-clock or
//! iteration-order nondeterminism leaked into the pipeline schedule.
//! (Threaded workloads interleave nondeterministically by design, so
//! the witness is the single-threaded TPC-C driver.)

use pdl_bench::tpcc_exp::{run_tpcc_qd_point_traced, QdObs, QdPoint};
use pdl_workload::{obs, Scale};

fn traced_run() -> (QdPoint, QdObs) {
    run_tpcc_qd_point_traced(Scale::Quick, 4, 2, 0xD00D).expect("tpcc point")
}

fn metrics_doc(point: &QdPoint, capture: &QdObs) -> String {
    let mut reg = obs::bench_registry("obs_determinism", "quick");
    reg.set_f64("bound_tps", point.bound_tps);
    reg.set_u64("pipeline_us", point.pipeline_us);
    reg.set_u64("serial_us", point.serial_us);
    obs::put_pipeline_counts(&mut reg, "pipeline", &point.pipeline);
    obs::put_integrity_counts(&mut reg, "integrity", &point.integrity);
    obs::put_recorder_snapshot(&mut reg, "", &capture.snapshot);
    reg.to_json()
}

#[test]
fn identical_seeded_runs_export_byte_identical_documents() {
    let (p1, o1) = traced_run();
    let (p2, o2) = traced_run();
    assert_eq!(o1.trace_json, o2.trace_json, "trace exports diverged");
    assert_eq!(metrics_doc(&p1, &o1), metrics_doc(&p2, &o2), "metrics exports diverged");
    assert_eq!(o1.snapshot.spans.len(), o2.snapshot.spans.len());
    assert!(!o1.snapshot.spans.is_empty(), "the runs must actually record");
}

#[test]
fn different_seeds_actually_change_the_trace() {
    // The determinism witness above would pass vacuously if the capture
    // ignored the run; a different seed must produce a different trace.
    let (_, a) = traced_run();
    let (_, b) = run_tpcc_qd_point_traced(Scale::Quick, 4, 2, 0xBEEF).expect("tpcc point");
    assert_ne!(a.trace_json, b.trace_json, "trace is insensitive to the workload");
}
