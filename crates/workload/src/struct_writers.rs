//! Concurrent structural writers (`pdl-struct`): W threads grow private
//! B+-trees on one shared [`Database`] through the latch-coupled insert
//! path, committing durably every `batch` inserts so split-moved roots
//! flow through the commit-clock structure-root log.
//!
//! The driver measures the same machine-independent quantity every other
//! experiment in this repo reports — *simulated flash time* — but per
//! **shard**: structural writers on disjoint trees dirty disjoint page
//! sets, so with S shards the per-shard busy time must fall roughly S-ways
//! while a single shard serializes everything. The headline metric is
//! therefore `max(per_shard_busy_us)`, the pipeline bound on the slowest
//! shard.
//!
//! Two correctness gauges ride along and must read zero after any run:
//!
//! * **ordering violations** — after the writers quiesce, each tree is
//!   range-scanned in current state; every writer inserted the dense key
//!   sequence `(w, 0..n)` with value `i`, so any missing, duplicated, or
//!   misplaced entry counts.
//! * **torn snapshots** — a concurrent reader repeatedly freezes a
//!   [`ReadView`](pdl_storage::ReadView) mid-run and scans every tree
//!   through it. Commits are atomic at the commit clock, so each scan
//!   must observe a *dense prefix* of a writer's keys whose length is a
//!   multiple of the commit batch; anything else is a torn snapshot.

use crate::Scale;
use pdl_storage::{BTree, Database, Key, KeyBuf, StorageError};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Parameters of a concurrent structural-writer workload.
#[derive(Clone, Copy, Debug)]
pub struct StructWritersConfig {
    /// Concurrent writer threads, one private registered tree each.
    pub writers: usize,
    /// Keys each writer inserts (dense `0..n`, ascending).
    pub inserts_per_writer: u64,
    /// Inserts per durable commit batch.
    pub batch: u64,
    /// Upper bound on mid-run snapshot probes by the reader thread
    /// (`0` disables the reader).
    pub snapshots: u64,
}

impl StructWritersConfig {
    pub fn new(writers: usize, inserts_per_writer: u64) -> StructWritersConfig {
        StructWritersConfig { writers, inserts_per_writer, batch: 16, snapshots: 64 }
    }

    /// Insert count scaled like the other drivers: quick CI runs stay
    /// small, `PDL_SCALE=paper` grows the trees deep enough for
    /// multi-level split chains.
    pub fn scaled(scale: Scale, writers: usize) -> StructWritersConfig {
        let per_writer = match scale.label() {
            "quick" => 384,
            "paper" => 8_192,
            _ => 2_048,
        };
        StructWritersConfig::new(writers, per_writer)
    }

    pub fn with_batch(mut self, batch: u64) -> StructWritersConfig {
        self.batch = batch.max(1);
        self
    }

    pub fn with_snapshots(mut self, snapshots: u64) -> StructWritersConfig {
        self.snapshots = snapshots;
        self
    }
}

/// Result of one structural-writer run.
#[derive(Clone, Debug)]
pub struct StructWritersResult {
    /// Durable commit batches that succeeded.
    pub committed: u64,
    /// Keys inserted (and verified present afterwards).
    pub inserts: u64,
    /// Batches retried after a [`StorageError::TxnConflict`] abort.
    pub conflict_retries: u64,
    /// Snapshot probes the reader completed.
    pub snapshots_taken: u64,
    /// Snapshot probes that saw a non-prefix or mid-batch state.
    pub torn_snapshots: u64,
    /// Post-quiesce scan mismatches (missing/misplaced/duplicated keys).
    pub ordering_violations: u64,
    /// Simulated flash time consumed, per shard (µs, run delta).
    pub per_shard_busy_us: Vec<u64>,
    /// Simulated flash time of the whole run (µs, all shards).
    pub flash_us: u64,
    /// Pool statistics at the end of the run; `leaked_pids` and
    /// `active_views` must both read 0.
    pub buffer: pdl_storage::BufferStats,
    pub wall: Duration,
}

impl StructWritersResult {
    /// The pipeline bound: busy time of the slowest shard. This is the
    /// number that must *fall* as shards are added — the whole point of
    /// latched structural concurrency.
    pub fn max_shard_busy_us(&self) -> u64 {
        self.per_shard_busy_us.iter().copied().max().unwrap_or(0)
    }

    /// Machine-independent throughput bound: inserts per second of the
    /// slowest shard's simulated busy time.
    pub fn bound_ops_per_s(&self) -> f64 {
        let us = self.max_shard_busy_us();
        if us == 0 {
            return 0.0;
        }
        self.inserts as f64 / (us as f64 / 1e6)
    }
}

fn key_of(writer: usize, i: u64) -> Key {
    KeyBuf::new().push_u8(writer as u8).push_u64(i).finish()
}

/// Scan `tree` through `s`, verifying it holds exactly the dense prefix
/// `(writer, 0..k)` with value `i` at key `i`. Returns `(k, violations)`.
fn scan_prefix<S: pdl_storage::PageRead>(
    tree: &BTree,
    s: &S,
    writer: usize,
    limit: u64,
) -> pdl_storage::Result<(u64, u64)> {
    let mut next = 0u64;
    let mut violations = 0u64;
    tree.range_at(s, &key_of(writer, 0), &key_of(writer, u64::MAX), |k, v| {
        if *k != key_of(writer, next) || v != next {
            violations += 1;
        }
        next += 1;
        next <= limit
    })?;
    Ok((next, violations))
}

/// Run the workload against `db` (which should be in
/// [`Durability::Commit`](pdl_storage::Durability) mode so commits stage
/// the structure-root log). Trees are created and registered up front in
/// one setup transaction; statistics are deltas over the measured phase.
pub fn run_struct_writers_workload(
    db: &Database,
    cfg: &StructWritersConfig,
) -> pdl_storage::Result<StructWritersResult> {
    let writers = cfg.writers.max(1);
    db.begin()?;
    let trees = (0..writers).map(|_| BTree::create(db)).collect::<pdl_storage::Result<Vec<_>>>()?;
    db.commit()?;

    let io_before = db.io_stats().total();
    let busy_before = db.with_store(|s| s.per_shard_busy_us());
    let started = Instant::now();
    let stop = AtomicBool::new(false);
    let retries = AtomicU64::new(0);
    let committed = AtomicU64::new(0);

    let reader_out = std::sync::Mutex::new((0u64, 0u64)); // (taken, torn)
    let writer_results: Vec<pdl_storage::Result<()>> = std::thread::scope(|scope| {
        let reader = (cfg.snapshots > 0).then(|| {
            let trees = &trees;
            let stop = &stop;
            let out = &reader_out;
            scope.spawn(move || -> pdl_storage::Result<()> {
                let (mut taken, mut torn) = (0u64, 0u64);
                while taken < cfg.snapshots && !stop.load(Ordering::Relaxed) {
                    db.with_read_view(|view| -> pdl_storage::Result<()> {
                        let snap = db.snapshot(view);
                        for (w, tree) in trees.iter().enumerate() {
                            let (seen, bad) = scan_prefix(tree, &snap, w, cfg.inserts_per_writer)?;
                            if bad > 0 || seen % cfg.batch.max(1) != 0 {
                                torn += 1;
                            }
                        }
                        Ok(())
                    })?;
                    taken += 1;
                    std::thread::sleep(Duration::from_micros(200));
                }
                *out.lock().unwrap_or_else(|e| e.into_inner()) = (taken, torn);
                Ok(())
            })
        });

        let handles: Vec<_> = (0..writers)
            .map(|w| {
                let tree = &trees[w];
                let retries = &retries;
                let committed = &committed;
                scope.spawn(move || -> pdl_storage::Result<()> {
                    let mut i = 0u64;
                    while i < cfg.inserts_per_writer {
                        let end = (i + cfg.batch).min(cfg.inserts_per_writer);
                        'batch: loop {
                            db.begin()?;
                            for j in i..end {
                                match tree.insert(db, &key_of(w, j), j) {
                                    Ok(()) => {}
                                    Err(StorageError::TxnConflict { .. }) => {
                                        db.abort()?;
                                        retries.fetch_add(1, Ordering::Relaxed);
                                        std::thread::yield_now();
                                        continue 'batch;
                                    }
                                    Err(e) => {
                                        db.abort()?;
                                        return Err(e);
                                    }
                                }
                            }
                            db.commit()?;
                            committed.fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                        i = end;
                    }
                    Ok(())
                })
            })
            .collect();
        let results = handles.into_iter().map(|h| h.join().expect("writer panicked")).collect();
        stop.store(true, Ordering::Relaxed);
        if let Some(r) = reader {
            r.join().expect("reader panicked").expect("snapshot probe failed");
        }
        results
    });
    for r in writer_results {
        r?;
    }

    // Quiesced oracle check: every tree must hold exactly its writer's
    // dense key sequence, in order, with matching values.
    let mut ordering_violations = 0u64;
    for (w, tree) in trees.iter().enumerate() {
        let (seen, bad) = scan_prefix(tree, db, w, cfg.inserts_per_writer)?;
        ordering_violations += bad + seen.abs_diff(cfg.inserts_per_writer);
        tree.check_invariants(db)?;
    }

    let (snapshots_taken, torn_snapshots) = *reader_out.lock().unwrap_or_else(|e| e.into_inner());
    let busy_after = db.with_store(|s| s.per_shard_busy_us());
    let per_shard_busy_us: Vec<u64> = busy_after
        .iter()
        .zip(busy_before.iter().chain(std::iter::repeat(&0)))
        .map(|(a, b)| a.saturating_sub(*b))
        .collect();
    let io_delta = db.io_stats().total() - io_before;
    Ok(StructWritersResult {
        committed: committed.load(Ordering::Relaxed),
        inserts: writers as u64 * cfg.inserts_per_writer,
        conflict_retries: retries.load(Ordering::Relaxed),
        snapshots_taken,
        torn_snapshots,
        ordering_violations,
        per_shard_busy_us,
        flash_us: io_delta.total_us(),
        buffer: db.buffer_stats(),
        wall: started.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdl_core::{MethodKind, ShardedStore, StoreOptions};
    use pdl_flash::FlashConfig;
    use pdl_storage::Durability;

    fn db(shards: usize) -> Database {
        let store = ShardedStore::with_uniform_chips(
            FlashConfig::scaled(16),
            shards,
            MethodKind::Pdl { max_diff_size: 256 },
            StoreOptions::new(512).with_checkpoint_blocks(2),
        )
        .unwrap();
        Database::new(Box::new(store), 256).with_durability(Durability::Commit)
    }

    #[test]
    fn concurrent_writers_stay_clean() {
        let d = db(2);
        let cfg = StructWritersConfig::new(4, 96).with_batch(8).with_snapshots(16);
        let r = run_struct_writers_workload(&d, &cfg).unwrap();
        assert_eq!(r.inserts, 4 * 96);
        assert_eq!(r.committed, 4 * 96 / 8);
        assert_eq!(r.ordering_violations, 0, "quiesced trees must match the oracle");
        assert_eq!(r.torn_snapshots, 0, "snapshots must land on commit boundaries");
        assert_eq!(r.buffer.leaked_pids, 0, "no pids may strand");
        assert_eq!(r.buffer.active_views, 0, "no views may outlive the run");
        assert!(r.max_shard_busy_us() > 0);
        assert_eq!(r.per_shard_busy_us.len(), 2);
    }

    #[test]
    fn single_writer_baseline_runs() {
        let d = db(1);
        let cfg = StructWritersConfig::new(1, 64).with_batch(16).with_snapshots(0);
        let r = run_struct_writers_workload(&d, &cfg).unwrap();
        assert_eq!(r.committed, 4);
        assert_eq!(r.snapshots_taken, 0);
        assert_eq!(r.ordering_violations, 0);
        assert!(r.bound_ops_per_s() > 0.0);
    }
}
