//! Experiment scaling.
//!
//! The paper loads ~1 Gbyte of synthetic data into the Table-1 chip and
//! reaches steady state by running until "garbage collection is invoked
//! for each block at least ten times on the average". Replaying that
//! verbatim takes hours; because I/O time is *simulated*, the shape of
//! every result is invariant under scaling the block count while keeping
//! the paper's block/page geometry, timing and space-utilisation ratio.
//!
//! Three profiles are provided; benches select one via the `PDL_SCALE`
//! environment variable (`quick` | `default` | `paper`).

use pdl_flash::{FlashChip, FlashConfig, FlashTiming};

/// Experiment scale profile.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Unit-test scale: seconds per experiment point.
    Quick,
    /// Default scale: a couple of minutes for the whole suite.
    Default,
    /// The paper's chip (32768 blocks); hours for the full suite.
    Paper,
}

impl Scale {
    /// Resolve from the `PDL_SCALE` environment variable.
    pub fn from_env() -> Scale {
        match std::env::var("PDL_SCALE").unwrap_or_default().to_lowercase().as_str() {
            "quick" => Scale::Quick,
            "paper" => Scale::Paper,
            _ => Scale::Default,
        }
    }

    /// Number of flash blocks at this scale (paper geometry otherwise).
    pub fn num_blocks(&self) -> u32 {
        match self {
            Scale::Quick => 64,
            Scale::Default => 256,
            Scale::Paper => 32_768,
        }
    }

    /// Measured update operations (read-modify-reflect cycles) per point.
    pub fn measured_cycles(&self) -> u64 {
        match self {
            Scale::Quick => 2_000,
            Scale::Default => 8_000,
            Scale::Paper => 100_000,
        }
    }

    /// Steady-state target: total erases >= this multiple of the block
    /// count before measurement starts (the paper uses 10).
    pub fn warmup_erases_per_block(&self) -> u64 {
        match self {
            Scale::Quick => 2,
            Scale::Default => 4,
            Scale::Paper => 10,
        }
    }

    /// Hard cap on warm-up cycles (methods with very low write
    /// amplification approach the erase target slowly).
    pub fn warmup_max_cycles(&self) -> u64 {
        match self {
            Scale::Quick => 100_000,
            Scale::Default => 400_000,
            Scale::Paper => 4_000_000,
        }
    }

    /// Buffered methods (PDL differentials, IPL logs) additionally need
    /// their per-page state to saturate: PDL (2KB) differentials take ~35
    /// evictions of a page to cycle from empty to a full page and back
    /// (footnote 16: "the size of a differential in a steady state is
    /// approximately half a page on the average"). Warm up for at least
    /// this many evictions per logical page, subject to the cycle cap.
    pub fn warmup_min_evictions_per_page(&self) -> u64 {
        40
    }

    pub fn label(&self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Default => "default",
            Scale::Paper => "paper",
        }
    }
}

/// Database size in logical pages for a given scale and frames-per-page.
///
/// The paper loads "approximately 1 Gbyte" into the chip of Table 1, whose
/// parameters multiply out to a 4 GiB data area (32768 x 64 x 2048): the
/// database occupies ~25% of the flash frames. We keep that ratio (minus a
/// small slack so IPL (64KB), whose 32-page data regions are the tightest
/// fit, always has blocks to merge into). PDL (2KB)'s steady-state
/// differentials then add ~12% live occupancy, leaving garbage collection
/// in the regime the paper's Figure 12(b) shows.
pub fn db_pages_for(scale: Scale, frames_per_page: u32) -> u64 {
    let frames = (scale.num_blocks() as u64 - 8) * 16;
    frames / frames_per_page as u64
}

/// Build a chip at the given scale with custom timing (Experiment 5) or
/// [`FlashTiming::PAPER`].
pub fn chip_for(scale: Scale, timing: FlashTiming) -> FlashChip {
    FlashChip::new(FlashConfig::scaled(scale.num_blocks()).with_timing(timing))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilisation_is_quarter_minus_slack() {
        for scale in [Scale::Quick, Scale::Default] {
            let pages = db_pages_for(scale, 1);
            let total_frames = scale.num_blocks() as u64 * 64;
            let util = pages as f64 / total_frames as f64;
            assert!(util > 0.2 && util < 0.26, "{util}");
        }
    }

    #[test]
    fn multi_frame_pages_divide_capacity() {
        assert_eq!(db_pages_for(Scale::Quick, 4) * 4, db_pages_for(Scale::Quick, 1));
    }

    #[test]
    fn chip_matches_scale() {
        let chip = chip_for(Scale::Quick, FlashTiming::PAPER);
        assert_eq!(chip.geometry().num_blocks, 64);
        assert_eq!(chip.geometry().data_size, 2048);
        assert_eq!(chip.timing(), FlashTiming::PAPER);
    }

    #[test]
    fn env_resolution_defaults() {
        // Not setting the variable in tests: default profile.
        assert_eq!(Scale::from_env().num_blocks() % 64, 0);
    }
}
