//! The mixed readers-alongside-writers driver: N snapshot scanners race
//! M committing writers over one [`ShardedBufferPool`].
//!
//! Each writer owns a contiguous page group spanning every shard and
//! stamps a monotonically increasing round counter into *all* of its
//! pages per transaction (one cross-shard atomic unit). Each scanner
//! sweeps the whole page space and checks, per writer group, that every
//! page carries the same stamp — the witness that the scan observed an
//! atomic prefix of that writer's commit history.
//!
//! Two read disciplines are compared:
//!
//! * **locked** — the pre-MVCC way to get a consistent scan: reader and
//!   committer serialize on one global lock (a scan blocks every commit
//!   and vice versa). Its reader throughput is bounded by the *total*
//!   simulated flash time of the run, because everything funnels through
//!   the lock.
//! * **snapshot** — readers open a [`pdl_storage::ReadView`] and never
//!   take the global lock: commits proceed while scans run, and the
//!   engine's critical path is the busiest *shard*, not the sum. Reader
//!   throughput is bounded by the maximum per-shard flash time — the same
//!   machine-independent accounting the sharded and group-commit
//!   experiments use (on a one-core host the wall clock cannot separate
//!   the disciplines, but the serialization structure can).

use pdl_core::PageStore;
use pdl_storage::{PageRead, ShardedBufferPool, StorageError, StructId, StructRoot};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Parameters of a snapshot-read workload.
#[derive(Clone, Copy, Debug)]
pub struct SnapshotReadConfig {
    /// Concurrent snapshot scanners.
    pub readers: usize,
    /// Concurrent committing writers.
    pub writers: usize,
    /// Full page-space sweeps per reader.
    pub scans_per_reader: u64,
    /// Transactions per writer.
    pub txns_per_writer: u64,
    /// Pages per writer transaction (its contiguous group — contiguous
    /// pids stripe round-robin, so a group of >= shard-count pages spans
    /// every shard and exercises cross-shard snapshot atomicity).
    pub pages_per_txn: usize,
    /// `true` = the pre-MVCC locked read path; `false` = read views.
    pub locked_baseline: bool,
    /// Split-heavy structure churn: each writer transaction *changes the
    /// shape* of a registered structure (its commit-clock-versioned page
    /// list grows each round, collapsing when it fills its group) in
    /// addition to stamping the listed pages. Scanners resolve the list
    /// through the structure-root log at their view and require every
    /// listed page to carry the view's round stamp — a scan that paired
    /// its view with the *current* list would read pages that did not
    /// exist at view time and report torn.
    pub structure_churn: bool,
}

impl SnapshotReadConfig {
    pub fn new(readers: usize, writers: usize) -> SnapshotReadConfig {
        SnapshotReadConfig {
            readers,
            writers,
            scans_per_reader: 8,
            txns_per_writer: 64,
            pages_per_txn: 8,
            locked_baseline: false,
            structure_churn: false,
        }
    }

    pub fn with_scans(mut self, scans: u64) -> SnapshotReadConfig {
        self.scans_per_reader = scans;
        self
    }

    pub fn with_txns_per_writer(mut self, txns: u64) -> SnapshotReadConfig {
        self.txns_per_writer = txns;
        self
    }

    pub fn with_locked_baseline(mut self, locked: bool) -> SnapshotReadConfig {
        self.locked_baseline = locked;
        self
    }

    pub fn with_structure_churn(mut self, churn: bool) -> SnapshotReadConfig {
        self.structure_churn = churn;
        self
    }
}

/// Result of one snapshot-read run.
#[derive(Clone, Copy, Debug)]
pub struct SnapshotReadResult {
    /// Completed consistent scans.
    pub scans: u64,
    /// Committed writer transactions.
    pub committed: u64,
    /// Scans that observed a torn writer group (must be 0).
    pub torn_scans: u64,
    /// Scans retried because the view outlived the version cap.
    pub too_old_retries: u64,
    /// Snapshot reads served from version chains instead of frames.
    pub version_reads: u64,
    /// Total simulated flash time of the run (µs), all shards.
    pub flash_us_total: u64,
    /// Maximum per-shard simulated flash time (µs): the engine's
    /// critical path when nothing global serializes the run.
    pub flash_us_max_shard: u64,
    /// Maximum per-shard *pipeline* busy time (µs): the critical path
    /// once the command queue overlaps programs/erases with later work.
    /// Equals [`Self::flash_us_max_shard`] at queue depth 1.
    pub pipeline_us_max_shard: u64,
    /// Command-queue gauges of the run, aggregated over the shards
    /// (`max_inflight` is the run-level peak, not a delta).
    pub pipeline: pdl_flash::PipelineCounts,
    /// Pool statistics sampled at the end of the run. `active_views` and
    /// `leaked_pids` must both read 0 after a clean teardown — the
    /// benches assert on them.
    pub buffer: pdl_storage::BufferStats,
    pub wall: Duration,
}

impl SnapshotReadResult {
    /// Machine-independent read throughput: scans per second of the time
    /// the run's serialization structure charges the read path — total
    /// flash time under the global lock, busiest shard under views.
    pub fn bound_scans_per_sec(&self, locked: bool) -> f64 {
        let us = if locked { self.flash_us_total } else { self.flash_us_max_shard };
        if us == 0 {
            return 0.0;
        }
        self.scans as f64 / (us as f64 / 1e6)
    }
}

/// Run the workload. Writer `w` owns pages
/// `[w * pages_per_txn, (w+1) * pages_per_txn)`; pages past
/// `writers * pages_per_txn` are read-only ballast the scanners fault in.
pub fn run_snapshot_read_workload(
    pool: &ShardedBufferPool,
    cfg: &SnapshotReadConfig,
) -> pdl_storage::Result<SnapshotReadResult> {
    let num_pages = pool.store().options().num_logical_pages;
    let group = cfg.pages_per_txn.max(1) as u64;
    assert!(
        cfg.writers as u64 * group <= num_pages,
        "writer groups ({} x {group}) exceed the page space ({num_pages})",
        cfg.writers
    );
    // Seed every writer group with stamp 0 so scans are consistent from
    // the first round. In structure-churn mode each writer additionally
    // registers its page-list structure, one page long to start.
    let mut struct_ids: Vec<StructId> = Vec::new();
    for w in 0..cfg.writers as u64 {
        let txn = pool.begin();
        for pid in w * group..(w + 1) * group {
            pool.with_page_mut_txn(pid, txn, |page| page.write(0, &0u64.to_le_bytes()))?;
        }
        pool.commit(txn)?;
        if cfg.structure_churn {
            struct_ids.push(pool.register_struct(StructRoot::Heap { pages: vec![w * group] }));
        }
    }
    let struct_ids = &struct_ids;

    let big_lock = Mutex::new(()); // the locked baseline's read path
    let torn = AtomicU64::new(0);
    let retries = AtomicU64::new(0);
    let stats_before = pool.store().per_shard_stats();
    let pipeline_before = pool.store().per_shard_pipeline_us();
    let cache_before = pool.stats();
    let started = Instant::now();

    let results: Vec<pdl_storage::Result<u64>> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..cfg.writers as u64 {
            let pool = &pool;
            let big_lock = &big_lock;
            let cfg = *cfg;
            handles.push(scope.spawn(move || -> pdl_storage::Result<u64> {
                let mut committed = 0u64;
                let mut len = 1u64;
                for round in 1..=cfg.txns_per_writer {
                    let _serial = cfg
                        .locked_baseline
                        .then(|| big_lock.lock().unwrap_or_else(|e| e.into_inner()));
                    let txn = pool.begin();
                    if cfg.structure_churn {
                        // Grow (or collapse) the registered page list and
                        // stamp exactly the listed pages; the shape change
                        // and the stamps commit atomically.
                        len = if len == group { 1 } else { len + 1 };
                        let pages: Vec<u64> = (w * group..w * group + len).collect();
                        for &pid in &pages {
                            pool.with_page_mut_txn(pid, txn, |page| {
                                page.write(0, &round.to_le_bytes())
                            })?;
                        }
                        pool.publish_struct_txn(
                            txn,
                            struct_ids[w as usize],
                            StructRoot::Heap { pages },
                        );
                    } else {
                        for pid in w * group..(w + 1) * group {
                            pool.with_page_mut_txn(pid, txn, |page| {
                                page.write(0, &round.to_le_bytes())
                            })?;
                        }
                    }
                    pool.commit(txn)?;
                    committed += 1;
                }
                Ok(committed)
            }));
        }
        for _ in 0..cfg.readers {
            let pool = &pool;
            let big_lock = &big_lock;
            let torn = &torn;
            let retries = &retries;
            let cfg = *cfg;
            handles.push(scope.spawn(move || -> pdl_storage::Result<u64> {
                let mut scans = 0u64;
                while scans < cfg.scans_per_reader {
                    let outcome = if cfg.locked_baseline {
                        let _serial = big_lock.lock().unwrap_or_else(|e| e.into_inner());
                        if cfg.structure_churn {
                            scan_structs(*pool, struct_ids, group, num_pages)
                        } else {
                            scan_current(pool, cfg.writers as u64, group, num_pages)
                        }
                    } else if cfg.structure_churn {
                        // The leak-proof bracket: the guard releases the
                        // view even on a `?` early return below.
                        pool.with_read_view(|view| {
                            scan_structs(&pool.snapshot(view), struct_ids, group, num_pages)
                        })
                    } else {
                        pool.with_read_view(|view| {
                            scan_snapshot(pool, view, cfg.writers as u64, group, num_pages)
                        })
                    };
                    match outcome {
                        Ok(consistent) => {
                            if !consistent {
                                torn.fetch_add(1, Ordering::Relaxed);
                            }
                            scans += 1;
                        }
                        Err(StorageError::SnapshotTooOld { .. }) => {
                            // The view outlived the retention cap; retry
                            // with a fresh one.
                            retries.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => return Err(e),
                    }
                }
                Ok(scans)
            }));
        }
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });

    let mut committed = 0u64;
    let mut scans = 0u64;
    for (i, r) in results.into_iter().enumerate() {
        if i < cfg.writers {
            committed += r?;
        } else {
            scans += r?;
        }
    }
    let stats_after = pool.store().per_shard_stats();
    let per_shard_us: Vec<u64> = stats_after
        .iter()
        .zip(stats_before.iter())
        .map(|(a, b)| (a.total() - b.total()).total_us())
        .collect();
    let pipeline_us_max_shard = pool
        .store()
        .per_shard_pipeline_us()
        .iter()
        .zip(pipeline_before.iter())
        .map(|(a, b)| a.saturating_sub(*b))
        .max()
        .unwrap_or(0);
    let mut pipeline = stats_after
        .iter()
        .zip(stats_before.iter())
        .map(|(a, b)| a.delta_since(b).pipeline)
        .fold(pdl_flash::PipelineCounts::default(), |acc, p| acc + p);
    // `max_inflight` is a high-water mark, so its delta is 0 whenever the
    // peak predates the workload; report the run-level peak instead.
    pipeline.max_inflight = stats_after.iter().map(|s| s.pipeline.max_inflight).max().unwrap_or(0);
    Ok(SnapshotReadResult {
        scans,
        committed,
        torn_scans: torn.load(Ordering::Relaxed),
        too_old_retries: retries.load(Ordering::Relaxed),
        version_reads: pool.stats().version_reads - cache_before.version_reads,
        flash_us_total: per_shard_us.iter().sum(),
        flash_us_max_shard: per_shard_us.iter().copied().max().unwrap_or(0),
        pipeline_us_max_shard,
        pipeline,
        buffer: pool.stats(),
        wall: started.elapsed(),
    })
}

/// One full sweep through a [`pdl_storage::ReadView`]; returns whether
/// every writer group was observed atomically.
fn scan_snapshot(
    pool: &ShardedBufferPool,
    view: &pdl_storage::ReadView,
    writers: u64,
    group: u64,
    num_pages: u64,
) -> pdl_storage::Result<bool> {
    let mut consistent = true;
    for w in 0..writers {
        let mut first = None;
        for pid in w * group..(w + 1) * group {
            let stamp = pool
                .with_page_at(view, pid, |pg| u64::from_le_bytes(pg[0..8].try_into().unwrap()))?;
            match first {
                None => first = Some(stamp),
                Some(f) if f != stamp => consistent = false,
                _ => {}
            }
        }
    }
    for pid in writers * group..num_pages {
        pool.with_page_at(view, pid, |pg| pg[0])?;
    }
    Ok(consistent)
}

/// The split-heavy sweep, generic over the read discipline: resolve
/// every writer's page-list structure through `s` (a snapshot resolves
/// through the structure-root log *as of the view*; the locked
/// baseline's live reader resolves the current list under the global
/// lock), then require every listed page to carry one uniform round
/// stamp. A resolver that handed back a shape from a different
/// commit-clock point than the page bytes would report torn.
fn scan_structs<S: PageRead>(
    s: &S,
    ids: &[StructId],
    group: u64,
    num_pages: u64,
) -> pdl_storage::Result<bool> {
    let mut consistent = true;
    for id in ids {
        let Some(StructRoot::Heap { pages }) = s.struct_root(*id) else {
            consistent = false;
            continue;
        };
        if pages.is_empty() {
            consistent = false;
            continue;
        }
        let mut first = None;
        for pid in pages {
            let stamp = s.with_page(pid, |pg| u64::from_le_bytes(pg[0..8].try_into().unwrap()))?;
            match first {
                None => first = Some(stamp),
                Some(f) if f != stamp => consistent = false,
                _ => {}
            }
        }
    }
    for pid in ids.len() as u64 * group..num_pages {
        s.with_page(pid, |pg| pg[0])?;
    }
    Ok(consistent)
}

/// The locked baseline's sweep: plain current-state reads (the caller
/// holds the global lock, which is what makes them consistent).
fn scan_current(
    pool: &ShardedBufferPool,
    writers: u64,
    group: u64,
    num_pages: u64,
) -> pdl_storage::Result<bool> {
    let mut consistent = true;
    for w in 0..writers {
        let mut first = None;
        for pid in w * group..(w + 1) * group {
            let stamp =
                pool.with_page(pid, |pg| u64::from_le_bytes(pg[0..8].try_into().unwrap()))?;
            match first {
                None => first = Some(stamp),
                Some(f) if f != stamp => consistent = false,
                _ => {}
            }
        }
    }
    for pid in writers * group..num_pages {
        pool.with_page(pid, |pg| pg[0])?;
    }
    Ok(consistent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdl_core::{MethodKind, ShardedStore, StoreOptions};
    use pdl_flash::FlashConfig;

    fn pool(shards: usize, pages: u64, capacity: usize) -> ShardedBufferPool {
        let store = ShardedStore::with_uniform_chips(
            FlashConfig::scaled(16),
            shards,
            MethodKind::Pdl { max_diff_size: 256 },
            StoreOptions::new(pages),
        )
        .unwrap();
        let pool = ShardedBufferPool::new(store, capacity);
        for pid in 0..pages {
            pool.with_page_mut(pid, |p| p.write(0, &[0; 8])).unwrap();
        }
        pool.flush_all().unwrap();
        pool
    }

    #[test]
    fn snapshot_scans_are_never_torn() {
        let p = pool(4, 128, 32);
        let cfg = SnapshotReadConfig::new(2, 2).with_scans(6).with_txns_per_writer(24);
        let r = run_snapshot_read_workload(&p, &cfg).unwrap();
        assert_eq!(r.scans, 12);
        assert_eq!(r.committed, 48);
        assert_eq!(r.torn_scans, 0, "a view must observe atomic commit prefixes");
        assert!(r.flash_us_max_shard > 0);
        assert!(r.flash_us_total >= r.flash_us_max_shard);
        assert_eq!(r.buffer.active_views, 0, "every view must be released");
        assert_eq!(r.buffer.leaked_pids, 0);
    }

    #[test]
    fn structure_churn_scans_resolve_view_time_page_lists() {
        let p = pool(4, 128, 32);
        let cfg = SnapshotReadConfig::new(2, 2)
            .with_scans(6)
            .with_txns_per_writer(24)
            .with_structure_churn(true);
        let r = run_snapshot_read_workload(&p, &cfg).unwrap();
        assert_eq!(r.scans, 12);
        assert_eq!(r.committed, 48);
        assert_eq!(r.torn_scans, 0, "structure shape and page stamps must move atomically");
        // Teardown: the view registry drained and nothing stayed pinned.
        assert_eq!(p.stats().active_views, 0);
        assert_eq!(p.retained_versions(), 0);
        assert_eq!(p.retained_struct_versions(), 0);
    }

    #[test]
    fn locked_baseline_scans_are_consistent_too() {
        let p = pool(2, 64, 16);
        let cfg = SnapshotReadConfig::new(2, 2)
            .with_scans(4)
            .with_txns_per_writer(12)
            .with_locked_baseline(true);
        let r = run_snapshot_read_workload(&p, &cfg).unwrap();
        assert_eq!(r.torn_scans, 0, "the global lock serializes scans against commits");
        assert_eq!(r.too_old_retries, 0);
    }
}
