//! # pdl-workload — synthetic workloads and experiment drivers
//!
//! Reproduces the experimental methodology of §5.1 of the paper:
//!
//! * An **update operation** consists of "(1) reading the addressed page;
//!   (2) changing the data in the page; and (3) writing the updated page",
//!   executed directly against the page store so DBMS buffering effects
//!   are excluded.
//! * `N_updates_till_write` is the number of update commands applied to a
//!   logical page in memory between recreating it from flash and
//!   reflecting it back — one *measured* update operation therefore spans
//!   one read-modify-reflect cycle with `N` in-memory changes (this is the
//!   denominator under which OPU's cost is flat in Figure 13).
//! * `%ChangedByOneU_Op` is the fraction of the logical page changed by a
//!   single update command; "the portion of data to be changed is randomly
//!   selected" — a contiguous run at a uniformly random offset.
//! * Mixes of read-only and update operations are driven by `%UpdateOps`
//!   (Experiment 4).
//! * A database is loaded to ~50% space utilisation (as in the paper) and
//!   warmed until "garbage collection is invoked for each block at least
//!   ten times on the average", scaled down by default (see [`Scale`]).

mod driver;
mod measure;
mod mutate;
pub mod obs;
mod readers;
mod report;
mod scale;
mod struct_writers;
mod threaded;
mod txn;

pub use driver::{load_database, run_mix_workload, run_update_workload, MixConfig, UpdateConfig};
pub use measure::{Measurement, StepCosts};
pub use mutate::{Placement, UpdateGen};
pub use readers::{run_snapshot_read_workload, SnapshotReadConfig, SnapshotReadResult};
pub use report::{format_us, pipeline_table, wear_table, Table};
pub use scale::{chip_for, db_pages_for, Scale};
pub use struct_writers::{run_struct_writers_workload, StructWritersConfig, StructWritersResult};
pub use threaded::{run_threaded_update_workload, PageSetMode, ThreadedConfig};
pub use txn::{run_txn_commit_workload, TxnCommitConfig, TxnCommitResult};
