//! The transactional commit driver (`pdl-txn`): W concurrent writers
//! issue multi-page transactions against a [`ShardedBufferPool`] and
//! commit them either through the **group-commit coordinator** (batches
//! share differential pages and commit-record flushes per shard) or
//! **solo** (every transaction pays its own flushes) — the commit-latency
//! versus flash-throughput trade-off Adaptive Logging (Yao et al.)
//! studies at commit time.
//!
//! Throughput is reported against *simulated flash time* (the same
//! machine-independent accounting every experiment in this repo uses):
//! on a single-core host the wall clock cannot separate the two commit
//! disciplines, but the flash-op ledger can — group commit's whole
//! advantage is fewer page programs per committed transaction.

use crate::mutate::UpdateGen;
use pdl_core::PageStore;
use pdl_storage::ShardedBufferPool;
use std::time::{Duration, Instant};

/// Parameters of a transactional commit workload.
#[derive(Clone, Copy, Debug)]
pub struct TxnCommitConfig {
    /// Concurrent committing writers.
    pub writers: usize,
    /// Transactions per writer.
    pub txns_per_writer: u64,
    /// Pages each transaction updates (its multi-page atomic unit).
    pub pages_per_txn: usize,
    /// `true` = group commit; `false` = solo commits (the baseline).
    pub group: bool,
    pub seed: u64,
}

impl TxnCommitConfig {
    pub fn new(writers: usize, txns_per_writer: u64) -> TxnCommitConfig {
        TxnCommitConfig { writers, txns_per_writer, pages_per_txn: 2, group: true, seed: 0x7C9 }
    }

    pub fn with_pages_per_txn(mut self, pages: usize) -> TxnCommitConfig {
        self.pages_per_txn = pages;
        self
    }

    pub fn with_group(mut self, group: bool) -> TxnCommitConfig {
        self.group = group;
        self
    }
}

/// Result of one transactional commit run.
#[derive(Clone, Copy, Debug)]
pub struct TxnCommitResult {
    pub committed: u64,
    /// Flash page programs consumed by the run.
    pub writes: u64,
    /// Simulated flash time consumed by the run (µs).
    pub flash_us: u64,
    /// Pool statistics sampled at the end of the run. `leaked_pids` and
    /// `active_views` must both read 0 after a clean run — a nonzero
    /// value is a leak, and the benches assert on it.
    pub buffer: pdl_storage::BufferStats,
    pub wall: Duration,
}

impl TxnCommitResult {
    /// Machine-independent throughput: committed transactions per second
    /// of simulated flash time.
    pub fn bound_tps(&self) -> f64 {
        if self.flash_us == 0 {
            return 0.0;
        }
        self.committed as f64 / (self.flash_us as f64 / 1e6)
    }
}

/// Run the workload: every writer owns the strided pid class
/// `{p | p % writers == w}` (no conflicts), updates `pages_per_txn` of
/// its pages per transaction, and commits. Statistics are deltas over
/// the run.
pub fn run_txn_commit_workload(
    pool: &ShardedBufferPool,
    cfg: &TxnCommitConfig,
) -> pdl_storage::Result<TxnCommitResult> {
    let num_pages = pool.store().options().num_logical_pages;
    let page_size = pool.page_size();
    let writers = cfg.writers.max(1);
    let before = pool.io_stats();
    let started = Instant::now();
    let results: Vec<pdl_storage::Result<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..writers)
            .map(|w| {
                let pool = &pool;
                let cfg = *cfg;
                scope.spawn(move || -> pdl_storage::Result<u64> {
                    let mut gen = UpdateGen::new(
                        cfg.seed ^ (0x9E37_79B9u64.wrapping_mul(w as u64 + 1)),
                        page_size,
                        2.0,
                    );
                    let owned = pdl_core::shard_pages(num_pages, writers, w);
                    let mut committed = 0u64;
                    for _ in 0..cfg.txns_per_writer {
                        let txn = pool.begin();
                        for k in 0..cfg.pages_per_txn {
                            // The k-th page of this txn, within w's class.
                            let local = (gen.pick_page(owned.max(1)) + k as u64) % owned.max(1);
                            let pid = w as u64 + local * writers as u64;
                            pool.with_page_mut_txn(pid, txn, |page| {
                                let len = page.len();
                                let at = (committed as usize * 13 + k * 31) % (len - 8);
                                page.write(at, &[(committed as u8).wrapping_add(k as u8); 8]);
                            })?;
                        }
                        if cfg.group {
                            pool.commit(txn)?;
                        } else {
                            pool.commit_solo(txn)?;
                        }
                        committed += 1;
                    }
                    Ok(committed)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("writer panicked")).collect()
    });
    let mut committed = 0u64;
    for r in results {
        committed += r?;
    }
    let delta = pool.io_stats().total() - before.total();
    Ok(TxnCommitResult {
        committed,
        writes: delta.writes,
        flash_us: delta.total_us(),
        buffer: pool.stats(),
        wall: started.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdl_core::{MethodKind, ShardedStore, StoreOptions};
    use pdl_flash::FlashConfig;

    fn pool(shards: usize, pages: u64) -> ShardedBufferPool {
        let store = ShardedStore::with_uniform_chips(
            FlashConfig::scaled(8),
            shards,
            MethodKind::Pdl { max_diff_size: 256 },
            StoreOptions::new(pages),
        )
        .unwrap();
        let pool = ShardedBufferPool::new(store, 256);
        for pid in 0..pages {
            pool.with_page_mut(pid, |p| p.write(0, &[1; 4])).unwrap();
        }
        pool.flush_all().unwrap();
        pool
    }

    #[test]
    fn drives_and_counts_commits() {
        let p = pool(2, 64);
        let cfg = TxnCommitConfig::new(4, 5);
        let r = run_txn_commit_workload(&p, &cfg).unwrap();
        assert_eq!(r.committed, 20);
        assert!(r.writes > 0);
        assert!(r.bound_tps() > 0.0);
        assert_eq!(r.buffer.leaked_pids, 0, "no pids may strand in a clean run");
        assert_eq!(r.buffer.active_views, 0, "no views may outlive the run");
    }

    #[test]
    fn group_commit_uses_no_more_writes_than_solo() {
        let run = |group: bool| {
            let p = pool(2, 64);
            let cfg = TxnCommitConfig::new(8, 6).with_group(group);
            run_txn_commit_workload(&p, &cfg).unwrap()
        };
        let grouped = run(true);
        let solo = run(false);
        assert_eq!(grouped.committed, solo.committed);
        assert!(grouped.writes <= solo.writes, "group {} vs solo {}", grouped.writes, solo.writes);
    }
}
