//! Registry naming: the one place that maps every subsystem's counters
//! and gauges — the flash ledger ([`FlashStats`]), command-queue and
//! integrity gauges, wear summaries, buffer-pool statistics — and the
//! recorder's latency histograms into the `pdl-metrics-v1` schema that
//! every emitted `BENCH_*.json` shares.
//!
//! Naming convention: dotted paths, the producing layer owns its prefix.
//!
//! * `flash.<ctx>.{reads,writes,erases,read_us,write_us,erase_us}` for
//!   `ctx` in `user` / `gc` / `recovery`, plus `flash.total.*` and the
//!   derived `flash.write_amplification`.
//! * `pipeline.{max_inflight,stall_us,overlapped_erases,readahead_hits,
//!   ordering_violations}`.
//! * `integrity.{detected_corruptions,repaired_pages}`.
//! * `wear.{num_blocks,min_erases,avg_erases,max_erases,total_erases}`.
//! * `buffer.{hits,misses,evictions,dirty_writebacks,version_reads,
//!   active_views,commit_flush_us_sum,commit_flush_us_max,leaked_pids}`.
//! * `retention.{ledger_enabled,spilled_versions,ledger_hits,
//!   flash_resolves,pinned_skips}` for the flash version-retention
//!   ledger (`obs_gate` cross-checks `ledger_enabled` against
//!   `flash_resolves`).
//! * `<class>.{count,sum_us,mean_us,p50_us,p90_us,p99_us,max_us}` for
//!   every recorded [`LatencyClass`] (e.g. `commit.group.p99_us`,
//!   `read.user.p50_us`), plus `spans.{recorded,dropped}`.

use pdl_flash::{FlashStats, IntegrityCounts, OpCounts, PipelineCounts, WearSummary};
use pdl_obs::{LatencyClass, MetricsRegistry, RecorderSnapshot};
use pdl_storage::BufferStats;

/// Start a registry for one bench run: the `bench` label and the
/// experiment scale come first so every document self-describes.
pub fn bench_registry(bench: &str, scale: &str) -> MetricsRegistry {
    let mut reg = MetricsRegistry::new();
    reg.set_str("bench", bench);
    reg.set_str("scale", scale);
    reg
}

fn put_op_counts(reg: &mut MetricsRegistry, prefix: &str, c: &OpCounts) {
    reg.set_u64(&format!("{prefix}.reads"), c.reads);
    reg.set_u64(&format!("{prefix}.writes"), c.writes);
    reg.set_u64(&format!("{prefix}.erases"), c.erases);
    reg.set_u64(&format!("{prefix}.read_us"), c.read_us);
    reg.set_u64(&format!("{prefix}.write_us"), c.write_us);
    reg.set_u64(&format!("{prefix}.erase_us"), c.erase_us);
}

/// The full flash ledger under `<prefix>.flash.*` (pass `""` for the
/// bare `flash.*` names), including the pipeline and integrity gauges
/// it carries.
pub fn put_flash_stats(reg: &mut MetricsRegistry, prefix: &str, s: &FlashStats) {
    let p = |tail: &str| {
        if prefix.is_empty() {
            tail.to_string()
        } else {
            format!("{prefix}.{tail}")
        }
    };
    put_op_counts(reg, &p("flash.user"), &s.user);
    put_op_counts(reg, &p("flash.gc"), &s.gc);
    put_op_counts(reg, &p("flash.recovery"), &s.recovery);
    put_op_counts(reg, &p("flash.total"), &s.total());
    reg.set_f64(&p("flash.write_amplification"), s.write_amplification());
    put_pipeline_counts(reg, &p("pipeline"), &s.pipeline);
    put_integrity_counts(reg, &p("integrity"), &s.integrity);
}

pub fn put_pipeline_counts(reg: &mut MetricsRegistry, prefix: &str, p: &PipelineCounts) {
    reg.set_u64(&format!("{prefix}.max_inflight"), p.max_inflight);
    reg.set_u64(&format!("{prefix}.stall_us"), p.queue_stall_ns / 1_000);
    reg.set_u64(&format!("{prefix}.overlapped_erases"), p.overlapped_erases);
    reg.set_u64(&format!("{prefix}.readahead_hits"), p.readahead_hits);
    reg.set_u64(&format!("{prefix}.ordering_violations"), p.ordering_violations);
}

pub fn put_integrity_counts(reg: &mut MetricsRegistry, prefix: &str, c: &IntegrityCounts) {
    reg.set_u64(&format!("{prefix}.detected_corruptions"), c.detected_corruptions);
    reg.set_u64(&format!("{prefix}.repaired_pages"), c.repaired_pages);
}

pub fn put_wear_summary(reg: &mut MetricsRegistry, prefix: &str, w: &WearSummary) {
    reg.set_u64(&format!("{prefix}.num_blocks"), w.num_blocks as u64);
    reg.set_u64(&format!("{prefix}.min_erases"), w.min_erases);
    reg.set_f64(&format!("{prefix}.avg_erases"), w.avg_erases());
    reg.set_u64(&format!("{prefix}.max_erases"), w.max_erases);
    reg.set_u64(&format!("{prefix}.total_erases"), w.total_erases);
}

pub fn put_buffer_stats(reg: &mut MetricsRegistry, prefix: &str, b: &BufferStats) {
    reg.set_u64(&format!("{prefix}.hits"), b.hits);
    reg.set_u64(&format!("{prefix}.misses"), b.misses);
    reg.set_u64(&format!("{prefix}.evictions"), b.evictions);
    reg.set_u64(&format!("{prefix}.dirty_writebacks"), b.dirty_writebacks);
    reg.set_u64(&format!("{prefix}.version_reads"), b.version_reads);
    reg.set_u64(&format!("{prefix}.active_views"), b.active_views);
    reg.set_u64(&format!("{prefix}.commit_flush_us_sum"), b.commit_flush_us_sum);
    reg.set_u64(&format!("{prefix}.commit_flush_us_max"), b.commit_flush_us_max);
    reg.set_u64(&format!("{prefix}.leaked_pids"), b.leaked_pids);
}

/// The flash version-retention ledger under `<prefix>.retention.*`
/// (pass `""` for the bare `retention.*` names). The spill/hit/resolve
/// counters come from the pool's [`BufferStats`]; `pinned_skips` is the
/// store's `retention_pinned_skips` counter (GC victim passes that
/// deprioritised a block dense in ledger-pinned pre-images); and
/// `ledger_enabled` records whether the store could spill at all, so
/// `obs_gate` can fail a ledger-enabled run that never resolved a cold
/// version from flash.
pub fn put_retention_stats(
    reg: &mut MetricsRegistry,
    prefix: &str,
    b: &BufferStats,
    pinned_skips: u64,
    ledger_enabled: bool,
) {
    let p = |tail: &str| {
        if prefix.is_empty() {
            tail.to_string()
        } else {
            format!("{prefix}.{tail}")
        }
    };
    reg.set_u64(&p("retention.ledger_enabled"), ledger_enabled as u64);
    reg.set_u64(&p("retention.spilled_versions"), b.spilled_versions);
    reg.set_u64(&p("retention.ledger_hits"), b.ledger_hits);
    reg.set_u64(&p("retention.flash_resolves"), b.flash_resolves);
    reg.set_u64(&p("retention.pinned_skips"), pinned_skips);
}

/// Every latency class the recorder sampled, each under its snake-case
/// name turned dotted (`commit_group` → `commit.group`), plus the span
/// ring's occupancy. Classes with no samples are skipped, so a
/// recorder-off snapshot contributes nothing but the span gauges.
pub fn put_recorder_snapshot(reg: &mut MetricsRegistry, prefix: &str, snap: &RecorderSnapshot) {
    let p = |tail: String| {
        if prefix.is_empty() {
            tail
        } else {
            format!("{prefix}.{tail}")
        }
    };
    for class in LatencyClass::ALL {
        let h = snap.hist(class);
        if h.count() > 0 {
            reg.set_hist(&p(class.name().replace('_', ".")), h);
        }
    }
    reg.set_u64(&p("spans.recorded".to_string()), snap.spans.len() as u64);
    reg.set_u64(&p("spans.dropped".to_string()), snap.dropped_spans);
}

/// Write a registry to `path` as a `pdl-metrics-v1` document.
pub fn write_metrics_json(path: &str, reg: &MetricsRegistry) -> std::io::Result<()> {
    std::fs::write(path, reg.to_json())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdl_obs::json;

    #[test]
    fn registry_names_every_subsystem_and_validates() {
        let mut reg = bench_registry("unit", "quick");
        let stats = FlashStats {
            user: OpCounts {
                reads: 3,
                writes: 2,
                erases: 0,
                read_us: 330,
                write_us: 2020,
                erase_us: 0,
            },
            ..FlashStats::default()
        };
        put_flash_stats(&mut reg, "", &stats);
        put_wear_summary(&mut reg, "wear", &WearSummary::default());
        put_buffer_stats(&mut reg, "buffer", &BufferStats { leaked_pids: 0, ..Default::default() });
        put_retention_stats(
            &mut reg,
            "",
            &BufferStats {
                spilled_versions: 4,
                ledger_hits: 3,
                flash_resolves: 3,
                ..Default::default()
            },
            2,
            true,
        );
        let mut rec = pdl_obs::Recorder::disabled();
        rec.enable(64);
        rec.record(LatencyClass::CommitGroup, 1010);
        put_recorder_snapshot(&mut reg, "", &rec.snapshot());

        assert_eq!(reg.get_u64("flash.user.reads"), Some(3));
        assert_eq!(reg.get_u64("flash.total.write_us"), Some(2020));
        assert_eq!(reg.get_u64("pipeline.ordering_violations"), Some(0));
        assert_eq!(reg.get_u64("integrity.detected_corruptions"), Some(0));
        assert_eq!(reg.get_u64("buffer.leaked_pids"), Some(0));
        assert_eq!(reg.get_u64("retention.ledger_enabled"), Some(1));
        assert_eq!(reg.get_u64("retention.flash_resolves"), Some(3));
        assert_eq!(reg.get_u64("retention.pinned_skips"), Some(2));
        assert_eq!(reg.get_u64("commit.group.count"), Some(1));
        assert!(reg.get_u64("commit.group.p99_us").unwrap() >= 1010);
        assert_eq!(reg.get_u64("read.user.count"), None, "unsampled classes are skipped");

        let doc = reg.to_json();
        let v = json::parse(&doc).expect("valid JSON");
        json::validate_metrics(&v).expect("valid pdl-metrics-v1");
    }

    #[test]
    fn delta_via_registry_replaces_hand_threaded_stats_deltas() {
        let mut before = MetricsRegistry::new();
        let mut after = MetricsRegistry::new();
        let s0 = FlashStats {
            user: OpCounts { reads: 10, read_us: 1100, ..Default::default() },
            ..Default::default()
        };
        let mut s1 = s0;
        s1.user.reads += 5;
        s1.user.read_us += 550;
        put_flash_stats(&mut before, "", &s0);
        put_flash_stats(&mut after, "", &s1);
        let d = after.delta_since(&before);
        assert_eq!(d.get_u64("flash.user.reads"), Some(5));
        assert_eq!(d.get_u64("flash.user.read_us"), Some(550));
    }
}
