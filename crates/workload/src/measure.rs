//! Measurement results: per-operation cost decomposition matching the
//! paper's figures.

use pdl_flash::{FlashStats, OpCounts};

/// Flash-operation costs attributed to one step of the workload, split
//  into regular and garbage-collection activity.
#[derive(Clone, Copy, Debug, Default)]
pub struct StepCosts {
    /// Regular (non-GC) operations.
    pub regular: OpCounts,
    /// Garbage-collection / merge operations (the "slashed area" of
    /// Figure 12(b)).
    pub gc: OpCounts,
}

impl StepCosts {
    pub fn add_delta(&mut self, delta: FlashStats) {
        self.regular += delta.user;
        self.gc += delta.gc;
    }

    pub fn total(&self) -> OpCounts {
        self.regular + self.gc
    }

    pub fn total_us(&self) -> u64 {
        self.total().total_us()
    }

    /// Fold another step's costs into this one (per-thread merging).
    pub fn merge(&mut self, other: &StepCosts) {
        self.regular += other.regular;
        self.gc += other.gc;
    }
}

/// Result of a measured workload phase.
#[derive(Clone, Copy, Debug, Default)]
pub struct Measurement {
    /// Measured update operations (read-modify-reflect cycles).
    pub cycles: u64,
    /// Read-only operations (mix workloads only).
    pub read_ops: u64,
    /// Costs of the reading step (Figure 12(a)).
    pub read_step: StepCosts,
    /// Costs of the writing step: update notifications + eviction,
    /// including amortised GC (Figure 12(b)).
    pub write_step: StepCosts,
    /// Warm-up cycles executed before measurement started.
    pub warmup_cycles: u64,
    /// Total erases during warm-up (steady-state evidence).
    pub warmup_erases: u64,
}

impl Measurement {
    /// Fold another thread's measurement into this one: operation counts
    /// and step costs add up. `warmup_cycles` adds (total work done);
    /// `warmup_erases` takes the maximum, since each thread observes the
    /// same global erase gauge rather than a private share of it.
    pub fn merge(&mut self, other: &Measurement) {
        self.cycles += other.cycles;
        self.read_ops += other.read_ops;
        self.read_step.merge(&other.read_step);
        self.write_step.merge(&other.write_step);
        self.warmup_cycles += other.warmup_cycles;
        self.warmup_erases = self.warmup_erases.max(other.warmup_erases);
    }

    /// Total operations (cycles + read-only operations).
    pub fn total_ops(&self) -> u64 {
        self.cycles + self.read_ops
    }

    /// I/O time of the reading step per update operation (µs).
    pub fn read_us_per_op(&self) -> f64 {
        self.read_step.total_us() as f64 / self.total_ops().max(1) as f64
    }

    /// I/O time of the writing step per update operation (µs).
    pub fn write_us_per_op(&self) -> f64 {
        self.write_step.total_us() as f64 / self.total_ops().max(1) as f64
    }

    /// Overall I/O time per operation (µs) — the paper's headline metric.
    pub fn overall_us_per_op(&self) -> f64 {
        (self.read_step.total_us() + self.write_step.total_us()) as f64
            / self.total_ops().max(1) as f64
    }

    /// GC share of the writing step per operation (µs).
    pub fn gc_us_per_op(&self) -> f64 {
        (self.read_step.gc.total_us() + self.write_step.gc.total_us()) as f64
            / self.total_ops().max(1) as f64
    }

    /// Erase operations per update operation (Figure 17).
    pub fn erases_per_op(&self) -> f64 {
        (self.read_step.total().erases + self.write_step.total().erases) as f64
            / self.total_ops().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(reads: u64, writes: u64, erases: u64) -> OpCounts {
        OpCounts {
            reads,
            writes,
            erases,
            read_us: reads * 110,
            write_us: writes * 1010,
            erase_us: erases * 1500,
        }
    }

    #[test]
    fn per_op_math() {
        let m = Measurement {
            cycles: 10,
            read_ops: 0,
            read_step: StepCosts { regular: counts(10, 0, 0), gc: OpCounts::default() },
            write_step: StepCosts { regular: counts(0, 20, 0), gc: counts(5, 5, 2) },
            warmup_cycles: 0,
            warmup_erases: 0,
        };
        assert!((m.read_us_per_op() - 110.0).abs() < 1e-9);
        let write_us = (20.0 * 1010.0 + 5.0 * 110.0 + 5.0 * 1010.0 + 2.0 * 1500.0) / 10.0;
        assert!((m.write_us_per_op() - write_us).abs() < 1e-9);
        assert!((m.overall_us_per_op() - (110.0 + write_us)).abs() < 1e-9);
        assert!((m.erases_per_op() - 0.2).abs() < 1e-9);
        let gc_us = (5.0 * 110.0 + 5.0 * 1010.0 + 2.0 * 1500.0) / 10.0;
        assert!((m.gc_us_per_op() - gc_us).abs() < 1e-9);
    }

    #[test]
    fn mix_ops_count_both_kinds() {
        let m = Measurement { cycles: 30, read_ops: 70, ..Measurement::default() };
        assert_eq!(m.total_ops(), 100);
    }
}
