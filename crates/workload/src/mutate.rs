//! Update-command generation: "changing the data in the page".
//!
//! A single update command changes `%ChangedByOneU_Op` of the logical
//! page: a contiguous run of fresh random bytes (the paper's running
//! example `aaaaaa -> bbbbba -> bcccba` changes contiguous runs; "the
//! portion of data to be changed is randomly selected").
//!
//! Successive update commands against the *same* page advance through the
//! page from a random starting offset (one record after another, as a
//! DBMS updating rows in a slotted page does). This placement makes a
//! PDL differential grow linearly with the page's update count, matching
//! the paper's steady-state model ("the size of a differential changes
//! from 0 to 1 page size and back to 0 ... approximately half a page on
//! the average", footnote 16). Two other placements are available for the
//! ablation bench: independently uniform offsets (whose coverage union
//! grows concavely, inflating differentials) and scattered multi-run
//! updates.

use pdl_core::ChangeRange;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::collections::HashMap;

/// Where successive update commands land within a page.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Placement {
    /// Random start per page, then sequential slots (default; see module
    /// docs).
    #[default]
    RoundRobin,
    /// Independently uniform random offset per update command.
    Uniform,
    /// Four scattered runs per update command.
    Scattered,
}

/// Generates update commands over logical pages.
pub struct UpdateGen {
    rng: StdRng,
    page_size: usize,
    /// Bytes changed by one update command.
    change_len: usize,
    placement: Placement,
    /// Per-page next-offset cursor for round-robin placement.
    cursors: HashMap<u64, usize>,
}

impl UpdateGen {
    /// `pct_changed` is `%ChangedByOneU_Op` (0.1 means 0.1%, 100 means the
    /// whole page). At least one byte always changes.
    pub fn new(seed: u64, page_size: usize, pct_changed: f64) -> UpdateGen {
        let change_len =
            (((page_size as f64) * pct_changed / 100.0).round() as usize).clamp(1, page_size);
        UpdateGen {
            rng: StdRng::seed_from_u64(seed),
            page_size,
            change_len,
            placement: Placement::default(),
            cursors: HashMap::new(),
        }
    }

    /// Override the placement policy (ablation).
    pub fn with_placement(mut self, placement: Placement) -> UpdateGen {
        self.placement = placement;
        self
    }

    /// Bytes changed per update command.
    pub fn change_len(&self) -> usize {
        self.change_len
    }

    /// Pick a uniformly random logical page.
    pub fn pick_page(&mut self, num_pages: u64) -> u64 {
        self.rng.gen_range(0..num_pages)
    }

    /// Pick a logical page under an 80/20 skew: 80% of picks land
    /// uniformly in the first 20% of the page space (the *hot set*), the
    /// rest uniformly in the remainder. The regime where GC policies
    /// diverge — hot-set churn leaves cold blocks nearly fully valid, so
    /// greedy victim selection migrates them at high cost while
    /// cost-benefit and hot/cold separation avoid it.
    pub fn pick_page_skewed(&mut self, num_pages: u64) -> u64 {
        let hot = (num_pages / 5).clamp(1, num_pages);
        if hot == num_pages || self.rng.gen_range(0.0..100.0) < 80.0 {
            self.rng.gen_range(0..hot)
        } else {
            self.rng.gen_range(hot..num_pages)
        }
    }

    /// Decide whether the next operation of a mix is an update
    /// (`pct_update_ops` percent of operations are updates).
    pub fn next_is_update(&mut self, pct_update_ops: f64) -> bool {
        self.rng.gen_range(0.0..100.0) < pct_update_ops
    }

    /// Apply one update command of page `pid` to `page`, returning the
    /// changed ranges.
    pub fn apply(&mut self, pid: u64, page: &mut [u8]) -> Vec<ChangeRange> {
        debug_assert_eq!(page.len(), self.page_size);
        match self.placement {
            Placement::RoundRobin => {
                let len = self.change_len;
                let span = self.page_size - len; // last valid run offset
                let cursor = match self.cursors.get(&pid) {
                    Some(c) => *c,
                    None => {
                        let start = if span == 0 { 0 } else { self.rng.gen_range(0..=span) };
                        self.cursors.insert(pid, start);
                        start
                    }
                };
                let at = cursor.min(span);
                self.rng.fill_bytes(&mut page[at..at + len]);
                // Advance; the final run of a pass lands exactly at `span`
                // so the page tail is covered before wrapping to 0.
                let next = if at >= span { 0 } else { (at + len).min(span) };
                self.cursors.insert(pid, next);
                vec![ChangeRange::new(at, len)]
            }
            Placement::Uniform => {
                let at = self.rng.gen_range(0..=self.page_size - self.change_len);
                self.rng.fill_bytes(&mut page[at..at + self.change_len]);
                vec![ChangeRange::new(at, self.change_len)]
            }
            Placement::Scattered => {
                let runs = 4usize;
                let per = (self.change_len / runs).max(1);
                let mut out = Vec::with_capacity(runs);
                for _ in 0..runs {
                    let at = self.rng.gen_range(0..=self.page_size - per);
                    self.rng.fill_bytes(&mut page[at..at + per]);
                    out.push(ChangeRange::new(at, per));
                }
                out
            }
        }
    }

    /// Fill a page with the initial database content for `pid`
    /// (deterministic pseudo-random bytes).
    pub fn fill_initial(pid: u64, page: &mut [u8]) {
        let mut rng = StdRng::seed_from_u64(0x9E37_79B9_7F4A_7C15 ^ pid);
        rng.fill_bytes(page);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn change_len_follows_percentage() {
        assert_eq!(UpdateGen::new(1, 2048, 2.0).change_len(), 41);
        assert_eq!(UpdateGen::new(1, 2048, 100.0).change_len(), 2048);
        assert_eq!(UpdateGen::new(1, 2048, 0.1).change_len(), 2);
        // Never zero.
        assert_eq!(UpdateGen::new(1, 2048, 0.0001).change_len(), 1);
    }

    #[test]
    fn apply_changes_exactly_the_reported_range() {
        for placement in [Placement::RoundRobin, Placement::Uniform] {
            let mut g = UpdateGen::new(7, 512, 10.0).with_placement(placement);
            let mut page = vec![0u8; 512];
            let before = page.clone();
            let ranges = g.apply(3, &mut page);
            assert_eq!(ranges.len(), 1);
            let r = ranges[0];
            assert_eq!(r.len as usize, g.change_len());
            for (i, (a, b)) in before.iter().zip(page.iter()).enumerate() {
                if i < r.offset as usize || i >= r.end() {
                    assert_eq!(a, b, "byte {i} outside the range changed");
                }
            }
        }
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = UpdateGen::new(42, 256, 5.0);
        let mut b = UpdateGen::new(42, 256, 5.0);
        let mut pa = vec![0u8; 256];
        let mut pb = vec![0u8; 256];
        assert_eq!(a.pick_page(100), b.pick_page(100));
        assert_eq!(a.apply(9, &mut pa), b.apply(9, &mut pb));
        assert_eq!(pa, pb);
    }

    #[test]
    fn round_robin_covers_the_page_linearly() {
        // 10% updates: eleven successive updates of one page fully cover
        // it, adding the whole run as fresh bytes on all but the one
        // clamped step at the end of a pass.
        let mut g = UpdateGen::new(3, 500, 10.0);
        let mut page = vec![0u8; 500];
        let mut covered = vec![false; 500];
        let mut new_bytes_per_step = Vec::new();
        for _ in 0..11 {
            let ranges = g.apply(0, &mut page);
            let mut fresh = 0;
            for r in ranges {
                for i in r.offset as usize..r.end() {
                    if !covered[i] {
                        fresh += 1;
                    }
                    covered[i] = true;
                }
            }
            new_bytes_per_step.push(fresh);
        }
        assert!(covered.iter().all(|&c| c), "one pass covers the whole page");
        assert_eq!(new_bytes_per_step.iter().sum::<usize>(), 500);
        let full_steps = new_bytes_per_step.iter().filter(|&&f| f == 50).count();
        assert!(full_steps >= 9, "{new_bytes_per_step:?}");
    }

    #[test]
    fn skewed_picks_follow_the_80_20_rule() {
        let mut g = UpdateGen::new(11, 256, 2.0);
        let num_pages = 100u64;
        let mut hot_hits = 0u64;
        for _ in 0..10_000 {
            let pid = g.pick_page_skewed(num_pages);
            assert!(pid < num_pages);
            if pid < 20 {
                hot_hits += 1;
            }
        }
        // 80% +- sampling noise of picks land in the first 20 pages.
        assert!((7_500..8_500).contains(&hot_hits), "{hot_hits}");
        // Degenerate sizes stay in range.
        for _ in 0..100 {
            assert!(g.pick_page_skewed(1) == 0);
            assert!(g.pick_page_skewed(3) < 3);
        }
    }

    #[test]
    fn uniform_mode_is_independent_of_pid() {
        let mut g = UpdateGen::new(5, 256, 5.0).with_placement(Placement::Uniform);
        let mut page = vec![0u8; 256];
        // No cursor state: two pages interleave freely without panic.
        for pid in [1u64, 2, 1, 2] {
            g.apply(pid, &mut page);
        }
    }

    #[test]
    fn scattered_mode_reports_multiple_runs() {
        let mut g = UpdateGen::new(3, 1024, 10.0).with_placement(Placement::Scattered);
        let mut page = vec![0u8; 1024];
        let ranges = g.apply(0, &mut page);
        assert_eq!(ranges.len(), 4);
    }

    #[test]
    fn initial_fill_is_deterministic_and_distinct() {
        let mut a = vec![0u8; 128];
        let mut b = vec![0u8; 128];
        let mut a2 = vec![0u8; 128];
        UpdateGen::fill_initial(1, &mut a);
        UpdateGen::fill_initial(2, &mut b);
        UpdateGen::fill_initial(1, &mut a2);
        assert_eq!(a, a2);
        assert_ne!(a, b);
    }

    #[test]
    fn mix_probability_is_roughly_respected() {
        let mut g = UpdateGen::new(11, 128, 1.0);
        let updates = (0..10_000).filter(|_| g.next_is_update(30.0)).count();
        assert!((2_500..3_500).contains(&updates), "{updates}");
    }
}
