//! The multi-threaded experiment driver: M worker threads issue update
//! operations concurrently against a [`ShardedStore`].
//!
//! Each worker owns its own [`UpdateGen`] stream and page buffer and
//! performs the paper's read—modify—reflect cycle through the store's
//! `*_shared` entry points, which lock only the shard owning the
//! addressed page. Flash costs are attributed per thread from the
//! per-operation [`pdl_flash::FlashStats`] deltas those entry points
//! return, and the per-thread [`Measurement`]s are merged into one result
//! (see [`Measurement::merge`]).
//!
//! Two page-set modes are provided: [`PageSetMode::Disjoint`] gives every
//! worker a private slice of the logical page space (no two threads ever
//! touch the same page — the pure-scaling regime), while
//! [`PageSetMode::Overlapping`] lets every worker address the whole space
//! (threads contend on shard locks and interleave updates to shared
//! pages — the stress regime the smoke tests exercise).

use crate::driver::UpdateConfig;
use crate::measure::Measurement;
use crate::mutate::UpdateGen;
use pdl_core::{PageStore, Result, ShardedStore};

/// Which logical pages each worker may address.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PageSetMode {
    /// Worker `w` of `M` owns the strided pid class `{p | p % M == w}`.
    /// The stride matches the store's shard striping, so whenever the
    /// shard count divides the worker count (or vice versa) each worker
    /// confines itself to its own shard subset — the pure-scaling regime.
    Disjoint,
    /// Every worker addresses the whole page space.
    #[default]
    Overlapping,
    /// Every worker addresses the whole page space under an 80/20 skew
    /// (see [`UpdateGen::pick_page_skewed`]): the regime where GC
    /// victim-selection policies diverge by integer factors.
    Skewed,
}

/// Parameters of a multi-threaded pure-update workload.
#[derive(Clone, Copy, Debug)]
pub struct ThreadedConfig {
    /// Number of worker threads (`M`).
    pub threads: usize,
    /// Page-set assignment across workers.
    pub mode: PageSetMode,
    /// The per-cycle parameters; `measured_cycles` is the *total* across
    /// all workers, split evenly.
    pub update: UpdateConfig,
}

impl ThreadedConfig {
    pub fn new(threads: usize, update: UpdateConfig) -> ThreadedConfig {
        ThreadedConfig { threads: threads.max(1), mode: PageSetMode::default(), update }
    }

    pub fn with_mode(mut self, mode: PageSetMode) -> ThreadedConfig {
        self.mode = mode;
        self
    }
}

/// Pick worker `w`'s next pid: the `k`-th page of its page set, `k`
/// uniform over the set.
fn worker_pid(
    mode: PageSetMode,
    num_pages: u64,
    threads: usize,
    w: usize,
    gen: &mut UpdateGen,
) -> u64 {
    match mode {
        PageSetMode::Overlapping => gen.pick_page(num_pages),
        PageSetMode::Skewed => gen.pick_page_skewed(num_pages),
        PageSetMode::Disjoint => {
            let owned = pdl_core::shard_pages(num_pages, threads, w);
            if owned == 0 {
                // More workers than pages: fall back to the whole space.
                gen.pick_page(num_pages)
            } else {
                w as u64 + gen.pick_page(owned) * threads as u64
            }
        }
    }
}

/// One worker's generator stream. Each worker owns one for the whole
/// workload — warm-up batches and the measured phase continue a single
/// stream, as the single-threaded driver does, so per-page differential
/// state keeps advancing instead of replaying the same updates.
fn worker_gen(cfg: &ThreadedConfig, page_size: usize, w: usize) -> UpdateGen {
    UpdateGen::new(
        cfg.update.seed ^ (0x9E37_79B9u64.wrapping_mul(w as u64 + 1)),
        page_size,
        cfg.update.pct_changed,
    )
    .with_placement(cfg.update.placement)
}

/// One worker's measured loop.
fn worker_run(
    store: &ShardedStore,
    cfg: &ThreadedConfig,
    w: usize,
    cycles: u64,
    measured: bool,
    gen: &mut UpdateGen,
) -> Result<Measurement> {
    let page_size = store.logical_page_size();
    let mut page = vec![0u8; page_size];
    let num_pages = store.options().num_logical_pages;
    let mut m = Measurement::default();
    for _ in 0..cycles {
        let pid = worker_pid(cfg.mode, num_pages, cfg.threads, w, gen);
        let read_delta = store.read_page_shared(pid, &mut page)?;
        for _ in 0..cfg.update.n_updates_till_write {
            let changes = gen.apply(pid, &mut page);
            let d = store.apply_update_shared(pid, &page, &changes)?;
            if measured {
                m.write_step.add_delta(d);
            }
        }
        let evict_delta = store.evict_page_shared(pid, &page)?;
        if measured {
            m.read_step.add_delta(read_delta);
            m.write_step.add_delta(evict_delta);
            m.cycles += 1;
        } else {
            m.warmup_cycles += 1;
        }
    }
    Ok(m)
}

/// Fan `total_cycles` update operations out over `cfg.threads` workers and
/// merge their results. `measured` selects whether costs are attributed.
/// Each worker continues its own generator in `gens`.
fn run_workers(
    store: &ShardedStore,
    cfg: &ThreadedConfig,
    total_cycles: u64,
    measured: bool,
    gens: &mut [UpdateGen],
) -> Result<Measurement> {
    let threads = cfg.threads.max(1);
    let per = total_cycles / threads as u64;
    let extra = total_cycles % threads as u64;
    let results: Vec<Result<Measurement>> = std::thread::scope(|scope| {
        let handles: Vec<_> = gens
            .iter_mut()
            .enumerate()
            .map(|(w, gen)| {
                let cycles = per + u64::from((w as u64) < extra);
                scope.spawn(move || worker_run(store, cfg, w, cycles, measured, gen))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });
    let mut merged = Measurement::default();
    for r in results {
        merged.merge(&r?);
    }
    Ok(merged)
}

/// Run a multi-threaded pure-update workload: warm the store into steady
/// state (concurrently, same worker layout), reset statistics, then run
/// the measured cycles. The store must already be loaded
/// (e.g. via [`crate::load_database`]).
pub fn run_threaded_update_workload(
    store: &ShardedStore,
    cfg: &ThreadedConfig,
) -> Result<Measurement> {
    let threads = cfg.threads.max(1);
    let page_size = store.logical_page_size();
    // One generator per worker for the whole workload: phase jitter,
    // every warm-up batch and the measured phase continue one stream.
    let mut gens: Vec<UpdateGen> = (0..threads).map(|w| worker_gen(cfg, page_size, w)).collect();
    let mut warmup_cycles = 0u64;

    // Phase decoherence, as in the single-threaded driver: evict every
    // page a uniform-random number of times in 0..phase_jitter so pages
    // loaded together don't march through PDL's differential saw-tooth
    // in lockstep. Worker w jitters the pids congruent to w mod M.
    if cfg.update.phase_jitter > 1 {
        let num_pages = store.options().num_logical_pages;
        let results: Vec<Result<u64>> = std::thread::scope(|scope| {
            let handles: Vec<_> = gens
                .iter_mut()
                .enumerate()
                .map(|(w, gen)| {
                    scope.spawn(move || {
                        let mut page = vec![0u8; page_size];
                        let mut cycles = 0u64;
                        let mut pid = w as u64;
                        while pid < num_pages {
                            let r = gen.pick_page(cfg.update.phase_jitter as u64);
                            for _ in 0..r {
                                store.read_page_shared(pid, &mut page)?;
                                for _ in 0..cfg.update.n_updates_till_write {
                                    let changes = gen.apply(pid, &mut page);
                                    store.apply_update_shared(pid, &page, &changes)?;
                                }
                                store.evict_page_shared(pid, &page)?;
                                cycles += 1;
                            }
                            pid += threads as u64;
                        }
                        Ok(cycles)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("jitter worker panicked")).collect()
        });
        for r in results {
            warmup_cycles += r?;
        }
    }

    // Warm-up in batches until the erase target or the cycle cap, as the
    // single-threaded driver does — but checking the aggregate gauge only
    // between batches, so workers stay off any global synchronisation.
    let batch = 1024u64.min(cfg.update.warmup_max_cycles.max(1));
    loop {
        let erases = store.stats_shared().total().erases;
        let steady = erases >= cfg.update.warmup_erase_target
            && warmup_cycles >= cfg.update.warmup_min_cycles;
        if steady || warmup_cycles >= cfg.update.warmup_max_cycles {
            break;
        }
        let m = run_workers(store, cfg, batch, false, &mut gens)?;
        warmup_cycles += m.warmup_cycles;
    }
    let warmup_erases = store.stats_shared().total().erases;

    store.reset_stats_shared();
    let mut m = run_workers(store, cfg, cfg.update.measured_cycles, true, &mut gens)?;
    m.warmup_cycles = warmup_cycles;
    m.warmup_erases = warmup_erases;
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::load_database;
    use pdl_core::{MethodKind, PageStore, ShardedStore, StoreOptions};
    use pdl_flash::FlashConfig;

    fn loaded(shards: usize, pages: u64) -> ShardedStore {
        let mut s = ShardedStore::with_uniform_chips(
            FlashConfig::scaled(8),
            shards,
            MethodKind::Pdl { max_diff_size: 256 },
            StoreOptions::new(pages),
        )
        .unwrap();
        load_database(&mut s).unwrap();
        s
    }

    #[test]
    fn threaded_workload_counts_every_cycle() {
        let store = loaded(4, 200);
        let cfg = ThreadedConfig::new(
            4,
            UpdateConfig::new(2.0, 1).with_measured_cycles(403).with_warmup(4, 2_000),
        );
        let m = run_threaded_update_workload(&store, &cfg).unwrap();
        assert_eq!(m.cycles, 403, "uneven split still covers every cycle");
        assert!(m.read_step.total().reads >= m.cycles);
        assert!(m.write_step.total().writes > 0);
        // Attributed per-thread costs cover exactly what the chips saw.
        let chip_total = store.stats_shared().total();
        let attributed = m.read_step.total() + m.write_step.total();
        assert_eq!(attributed, chip_total);
    }

    #[test]
    fn disjoint_mode_partitions_the_page_space() {
        use crate::mutate::UpdateGen;
        for threads in [1usize, 3, 8] {
            let mut seen = vec![None; 100];
            for w in 0..threads {
                let mut gen = UpdateGen::new(w as u64, 64, 2.0);
                for _ in 0..2_000 {
                    let pid = worker_pid(PageSetMode::Disjoint, 100, threads, w, &mut gen);
                    assert!(pid < 100);
                    assert_eq!(pid as usize % threads, w, "strided ownership");
                    match seen[pid as usize] {
                        None => seen[pid as usize] = Some(w),
                        Some(owner) => assert_eq!(owner, w, "page {pid} claimed twice"),
                    }
                }
            }
            // Every worker's sampling covers its whole class eventually.
            assert!(
                seen.iter().filter(|s| s.is_some()).count() == 100,
                "{threads} threads left pages unvisited"
            );
        }
    }

    #[test]
    fn disjoint_workload_is_consistent_after_join() {
        let store = loaded(2, 64);
        let cfg = ThreadedConfig::new(
            4,
            UpdateConfig::new(5.0, 2).with_measured_cycles(200).with_warmup(1, 200),
        )
        .with_mode(PageSetMode::Disjoint);
        let m = run_threaded_update_workload(&store, &cfg).unwrap();
        assert_eq!(m.cycles, 200);
        // Every page still reads back at full size without error.
        let mut out = vec![0u8; store.logical_page_size()];
        for pid in 0..64u64 {
            store.read_page_shared(pid, &mut out).unwrap();
        }
    }
}
