//! Plain-text table formatting for the experiment harness: the bench
//! targets print the same rows/series the paper's figures plot.

use pdl_flash::{IntegrityCounts, PipelineCounts, WearSummary};
use std::fmt::Write as _;

/// Format microseconds with thousands separators, e.g. `12,345 us`.
pub fn format_us(us: f64) -> String {
    let rounded = us.round() as i64;
    let mut digits = rounded.abs().to_string();
    let mut grouped = String::new();
    while digits.len() > 3 {
        let tail = digits.split_off(digits.len() - 3);
        grouped = if grouped.is_empty() { tail } else { format!("{tail},{grouped}") };
    }
    grouped = if grouped.is_empty() { digits } else { format!("{digits},{grouped}") };
    if rounded < 0 {
        format!("-{grouped}")
    } else {
        grouped
    }
}

/// A simple aligned table: one header row, then data rows.
#[derive(Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, header: &[&str]) -> Table {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) -> &mut Table {
        debug_assert_eq!(cells.len(), self.header.len(), "row arity");
        self.rows.push(cells);
        self
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with right-aligned numeric columns (every column except the
    /// first is right-aligned).
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "## {}", self.title);
        }
        let mut line = String::new();
        for (i, h) in self.header.iter().enumerate() {
            if i == 0 {
                let _ = write!(line, "{:<width$}", h, width = widths[i]);
            } else {
                let _ = write!(line, "  {:>width$}", h, width = widths[i]);
            }
        }
        let _ = writeln!(out, "{line}");
        let _ = writeln!(out, "{}", "-".repeat(line.len()));
        for row in &self.rows {
            let mut line = String::new();
            for i in 0..cols {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                if i == 0 {
                    let _ = write!(line, "{:<width$}", cell, width = widths[i]);
                } else {
                    let _ = write!(line, "  {:>width$}", cell, width = widths[i]);
                }
            }
            let _ = writeln!(out, "{line}");
        }
        out
    }

    /// Render as CSV (for plotting).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.header.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }
}

/// Wear-leveling table for a sharded engine: one row per shard plus the
/// aggregate over all chips, so wear numbers stay meaningful when the
/// block population is split across shards.
pub fn wear_table(title: impl Into<String>, per_shard: &[WearSummary]) -> Table {
    let mut t = Table::new(
        title,
        &["shard", "blocks", "min erases", "avg erases", "max erases", "total erases"],
    );
    let row = |label: String, w: &WearSummary| {
        vec![
            label,
            w.num_blocks.to_string(),
            w.min_erases.to_string(),
            format!("{:.1}", w.avg_erases()),
            w.max_erases.to_string(),
            w.total_erases.to_string(),
        ]
    };
    for (i, w) in per_shard.iter().enumerate() {
        t.row(row(format!("{i}"), w));
    }
    if per_shard.len() > 1 {
        let all = WearSummary::merged(per_shard.iter().copied());
        t.row(row("all".to_string(), &all));
    }
    t
}

/// Pipeline-gauge table: one labelled row per configuration, so a bench
/// sweeping queue depth can show *why* a config is faster (queue
/// occupancy, stall time, erases overlapped with foreground work,
/// read-ahead hits) next to its ops/s — plus the run's integrity
/// counters (checksum mismatches detected on the data path, pages
/// repaired online), which should read 0/0 on healthy silicon.
pub fn pipeline_table(
    title: impl Into<String>,
    rows: &[(String, PipelineCounts, IntegrityCounts)],
) -> Table {
    let mut t = Table::new(
        title,
        &[
            "config",
            "max inflight",
            "stall (us)",
            "overlapped erases",
            "readahead hits",
            "detected corruptions",
            "repaired pages",
        ],
    );
    for (label, p, integ) in rows {
        t.row(vec![
            label.clone(),
            p.max_inflight.to_string(),
            format_us((p.queue_stall_ns / 1_000) as f64),
            p.overlapped_erases.to_string(),
            p.readahead_hits.to_string(),
            integ.detected_corruptions.to_string(),
            integ.repaired_pages.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wear_table_aggregates_across_shards() {
        let shards = [
            WearSummary {
                min_erases: 2,
                max_erases: 8,
                total_erases: 30,
                num_blocks: 6,
                ..WearSummary::default()
            },
            WearSummary {
                min_erases: 1,
                max_erases: 9,
                total_erases: 34,
                num_blocks: 6,
                ..WearSummary::default()
            },
        ];
        let t = wear_table("wear", &shards);
        let s = t.render();
        // Aggregate row spans both block populations.
        let all = s.lines().last().unwrap();
        assert!(all.starts_with("all"), "{s}");
        assert!(all.contains("12"), "{s}");
        assert!(all.contains("64"), "{s}");
        assert!(all.contains('1') && all.contains('9'), "{s}");
    }

    #[test]
    fn pipeline_table_shows_gauges() {
        let p = PipelineCounts {
            max_inflight: 16,
            queue_stall_ns: 2_500_000,
            overlapped_erases: 7,
            readahead_hits: 42,
            ordering_violations: 0,
        };
        let integ = IntegrityCounts { detected_corruptions: 3, repaired_pages: 2 };
        let s = pipeline_table("pipeline", &[("QD 16".to_string(), p, integ)]).render();
        assert!(s.contains("QD 16"), "{s}");
        assert!(s.contains("16"), "{s}");
        assert!(s.contains("2,500"), "{s}");
        assert!(s.contains("42"), "{s}");
        assert!(s.contains("detected corruptions"), "{s}");
        assert!(s.contains("repaired pages"), "{s}");
        assert!(s.contains('3') && s.contains('2'), "{s}");
    }

    #[test]
    fn groups_thousands() {
        assert_eq!(format_us(0.4), "0");
        assert_eq!(format_us(999.0), "999");
        assert_eq!(format_us(1_000.0), "1,000");
        assert_eq!(format_us(1_234_567.8), "1,234,568");
        assert_eq!(format_us(-1234.0), "-1,234");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Figure X", &["method", "us/op"]);
        t.row(vec!["OPU".into(), "2,020".into()]);
        t.row(vec!["PDL (256B)".into(), "610".into()]);
        let s = t.render();
        assert!(s.contains("## Figure X"));
        assert!(s.contains("OPU"));
        let lines: Vec<&str> = s.lines().collect();
        // header + rule + 2 rows
        assert_eq!(lines.len(), 5);
        // Right-aligned numeric column: both rows end aligned.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn csv_output() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }
}
