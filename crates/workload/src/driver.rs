//! The experiment driver: load, warm up, measure.

use crate::measure::Measurement;
use crate::mutate::{Placement, UpdateGen};
use pdl_core::{PageStore, Result};

/// Parameters of a pure-update workload (Experiments 1, 2, 3, 5, 6).
#[derive(Clone, Copy, Debug)]
pub struct UpdateConfig {
    /// `%ChangedByOneU_Op`.
    pub pct_changed: f64,
    /// `N_updates_till_write`.
    pub n_updates_till_write: u32,
    /// Measured update operations.
    pub measured_cycles: u64,
    /// Steady-state target: warm up until total erases reach this value...
    pub warmup_erase_target: u64,
    /// ...or this many warm-up cycles, whichever comes first.
    pub warmup_max_cycles: u64,
    /// Additionally warm up at least this many cycles (buffered methods
    /// need their per-page differential/log state to saturate).
    pub warmup_min_cycles: u64,
    /// Phase decoherence: before the regular warm-up, evict every page a
    /// uniform-random number of times in `0..phase_jitter`. PDL's
    /// differential size follows a saw-tooth over a page's eviction count
    /// (empty -> Max_Differential_Size -> Case-3 reset); pages loaded
    /// together are phase-locked and would all hit the expensive phase
    /// simultaneously. The paper's much longer runs decohere naturally;
    /// the jitter reproduces the decohered steady state directly.
    pub phase_jitter: u32,
    /// Where successive update commands land within a page (ablation; the
    /// default models sequential record updates, see [`Placement`]).
    pub placement: Placement,
    pub seed: u64,
}

/// Parameters of a mixed read-only/update workload (Experiment 4).
#[derive(Clone, Copy, Debug)]
pub struct MixConfig {
    /// `%UpdateOps`: percentage of operations that are update operations.
    pub pct_update_ops: f64,
    pub update: UpdateConfig,
}

/// Load the initial database: every logical page written once with
/// deterministic content. Resets chip statistics afterwards so loading is
/// not measured (the paper loads before reaching steady state).
pub fn load_database(store: &mut dyn PageStore) -> Result<()> {
    let mut page = vec![0u8; store.logical_page_size()];
    for pid in 0..store.options().num_logical_pages {
        UpdateGen::fill_initial(pid, &mut page);
        store.write_page(pid, &page)?;
    }
    store.flush()?;
    store.reset_stats();
    Ok(())
}

/// One update operation: read the page, apply `n` update commands in
/// memory (notifying the store, as a tightly-coupled storage system
/// would), then reflect the page. Returns the changed page buffer state
/// via `page`.
fn one_cycle(
    store: &mut dyn PageStore,
    gen: &mut UpdateGen,
    page: &mut [u8],
    pid: u64,
    n_updates: u32,
) -> Result<()> {
    store.read_page(pid, page)?;
    for _ in 0..n_updates {
        let changes = gen.apply(pid, page);
        store.apply_update(pid, page, &changes)?;
    }
    store.evict_page(pid, page)
}

/// Warm the store into steady state: run update cycles until the erase
/// target or the cycle cap is reached. Returns (cycles, erases) executed.
fn warm_up(
    store: &mut dyn PageStore,
    gen: &mut UpdateGen,
    page: &mut [u8],
    cfg: &UpdateConfig,
) -> Result<(u64, u64)> {
    let num_pages = store.options().num_logical_pages;
    let mut cycles = 0u64;
    if cfg.phase_jitter > 1 {
        for pid in 0..num_pages {
            let r = gen.pick_page(cfg.phase_jitter as u64) as u32;
            for _ in 0..r {
                one_cycle(store, gen, page, pid, cfg.n_updates_till_write)?;
                cycles += 1;
            }
        }
    }
    loop {
        let erases = store.stats().total().erases;
        let steady = erases >= cfg.warmup_erase_target && cycles >= cfg.warmup_min_cycles;
        if steady || cycles >= cfg.warmup_max_cycles {
            return Ok((cycles, erases));
        }
        // Check the target only every batch to keep the loop tight.
        for _ in 0..256 {
            let pid = gen.pick_page(num_pages);
            one_cycle(store, gen, page, pid, cfg.n_updates_till_write)?;
            cycles += 1;
        }
    }
}

/// Run a pure-update workload to completion: load must already have
/// happened. Returns the per-step measurement.
pub fn run_update_workload(store: &mut dyn PageStore, cfg: &UpdateConfig) -> Result<Measurement> {
    let mut gen = UpdateGen::new(cfg.seed, store.logical_page_size(), cfg.pct_changed)
        .with_placement(cfg.placement);
    let mut page = vec![0u8; store.logical_page_size()];
    let (warmup_cycles, warmup_erases) = warm_up(store, &mut gen, &mut page, cfg)?;

    store.reset_stats();
    let num_pages = store.options().num_logical_pages;
    let mut m = Measurement { warmup_cycles, warmup_erases, ..Measurement::default() };
    for _ in 0..cfg.measured_cycles {
        let pid = gen.pick_page(num_pages);
        // Reading step.
        let before = store.stats();
        store.read_page(pid, &mut page)?;
        let after_read = store.stats();
        m.read_step.add_delta(after_read.delta_since(&before));
        // Changing + writing step (GC amortised here, as in the paper).
        for _ in 0..cfg.n_updates_till_write {
            let changes = gen.apply(pid, &mut page);
            store.apply_update(pid, &page, &changes)?;
        }
        store.evict_page(pid, &page)?;
        let after_write = store.stats();
        m.write_step.add_delta(after_write.delta_since(&after_read));
        m.cycles += 1;
    }
    Ok(m)
}

/// Run a mixed workload of read-only and update operations (Experiment 4).
/// Warm-up runs pure updates so that read-only operations hit *updated*
/// pages — the paper's "read-only on updated pages" regime.
pub fn run_mix_workload(store: &mut dyn PageStore, cfg: &MixConfig) -> Result<Measurement> {
    let mut gen =
        UpdateGen::new(cfg.update.seed, store.logical_page_size(), cfg.update.pct_changed)
            .with_placement(cfg.update.placement);
    let mut page = vec![0u8; store.logical_page_size()];
    let (warmup_cycles, warmup_erases) = warm_up(store, &mut gen, &mut page, &cfg.update)?;

    store.reset_stats();
    let num_pages = store.options().num_logical_pages;
    let mut m = Measurement { warmup_cycles, warmup_erases, ..Measurement::default() };
    for _ in 0..cfg.update.measured_cycles {
        let pid = gen.pick_page(num_pages);
        if gen.next_is_update(cfg.pct_update_ops) {
            let before = store.stats();
            store.read_page(pid, &mut page)?;
            let after_read = store.stats();
            m.read_step.add_delta(after_read.delta_since(&before));
            for _ in 0..cfg.update.n_updates_till_write {
                let changes = gen.apply(pid, &mut page);
                store.apply_update(pid, &page, &changes)?;
            }
            store.evict_page(pid, &page)?;
            let after_write = store.stats();
            m.write_step.add_delta(after_write.delta_since(&after_read));
            m.cycles += 1;
        } else {
            let before = store.stats();
            store.read_page(pid, &mut page)?;
            let after = store.stats();
            m.read_step.add_delta(after.delta_since(&before));
            m.read_ops += 1;
        }
    }
    Ok(m)
}

/// Reusable default: a config with everything explicit.
impl UpdateConfig {
    pub fn new(pct_changed: f64, n_updates_till_write: u32) -> UpdateConfig {
        UpdateConfig {
            pct_changed,
            n_updates_till_write,
            measured_cycles: 2_000,
            warmup_erase_target: 64,
            warmup_max_cycles: 20_000,
            warmup_min_cycles: 0,
            phase_jitter: 0,
            placement: Placement::RoundRobin,
            seed: 0xC0FFEE,
        }
    }

    pub fn with_measured_cycles(mut self, cycles: u64) -> UpdateConfig {
        self.measured_cycles = cycles;
        self
    }

    pub fn with_warmup(mut self, erase_target: u64, max_cycles: u64) -> UpdateConfig {
        self.warmup_erase_target = erase_target;
        self.warmup_max_cycles = max_cycles;
        self
    }

    pub fn with_min_warmup_cycles(mut self, min_cycles: u64) -> UpdateConfig {
        self.warmup_min_cycles = min_cycles;
        self
    }

    pub fn with_phase_jitter(mut self, jitter: u32) -> UpdateConfig {
        self.phase_jitter = jitter;
        self
    }

    pub fn with_placement(mut self, placement: Placement) -> UpdateConfig {
        self.placement = placement;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> UpdateConfig {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdl_core::{build_store, MethodKind, StoreOptions};
    use pdl_flash::{FlashChip, FlashConfig};

    fn quick_store(kind: MethodKind) -> Box<dyn PageStore> {
        // Small paper-geometry chip: 8 blocks x 64 pages x 2 KB.
        let chip = FlashChip::new(FlashConfig::scaled(8));
        let mut store = build_store(chip, kind, StoreOptions::new(200)).unwrap();
        load_database(store.as_mut()).unwrap();
        store
    }

    #[test]
    fn load_resets_stats() {
        let store = quick_store(MethodKind::Opu);
        assert_eq!(store.stats().total().total_ops(), 0);
    }

    #[test]
    fn opu_costs_match_paper_accounting() {
        let mut store = quick_store(MethodKind::Opu);
        let cfg = UpdateConfig::new(2.0, 1).with_measured_cycles(300).with_warmup(16, 2_000);
        let m = run_update_workload(store.as_mut(), &cfg).unwrap();
        assert_eq!(m.cycles, 300);
        // Reading step: exactly one read per cycle, no GC.
        assert!((m.read_us_per_op() - 110.0).abs() < 1e-9, "{}", m.read_us_per_op());
        // Writing step: two writes (program + obsolete) plus amortised GC.
        assert!(m.write_us_per_op() >= 2.0 * 1010.0, "{}", m.write_us_per_op());
        assert!(m.write_step.gc.total_ops() > 0, "steady state must include GC");
    }

    #[test]
    fn pdl_reads_at_most_two_pages() {
        let mut store = quick_store(MethodKind::Pdl { max_diff_size: 2048 });
        let cfg = UpdateConfig::new(2.0, 1).with_measured_cycles(400).with_warmup(16, 3_000);
        let m = run_update_workload(store.as_mut(), &cfg).unwrap();
        // Reading step: between 1 and 2 reads per op, never more.
        let reads_per_op = m.read_step.total().reads as f64 / m.cycles as f64;
        assert!((1.0..=2.0).contains(&reads_per_op), "{reads_per_op}");
    }

    #[test]
    fn ipl_reads_more_pages_than_pdl() {
        let mut ipl = quick_store(MethodKind::Ipl { log_bytes_per_block: 64 * 1024 });
        let mut pdl = quick_store(MethodKind::Pdl { max_diff_size: 256 });
        let cfg = UpdateConfig::new(2.0, 1).with_measured_cycles(400).with_warmup(8, 3_000);
        let mi = run_update_workload(ipl.as_mut(), &cfg).unwrap();
        let mp = run_update_workload(pdl.as_mut(), &cfg).unwrap();
        let ipl_reads = mi.read_step.total().reads as f64 / mi.cycles as f64;
        let pdl_reads = mp.read_step.total().reads as f64 / mp.cycles as f64;
        assert!(
            ipl_reads > pdl_reads,
            "log-based reads ({ipl_reads}) must exceed PDL reads ({pdl_reads})"
        );
        assert!(pdl_reads <= 2.0);
    }

    #[test]
    fn mix_workload_counts_both_operation_kinds() {
        let mut store = quick_store(MethodKind::Opu);
        let cfg = MixConfig {
            pct_update_ops: 50.0,
            update: UpdateConfig::new(2.0, 1).with_measured_cycles(400).with_warmup(4, 1_000),
        };
        let m = run_mix_workload(store.as_mut(), &cfg).unwrap();
        assert_eq!(m.total_ops(), 400);
        assert!(m.cycles > 100 && m.read_ops > 100, "{} vs {}", m.cycles, m.read_ops);
    }

    #[test]
    fn read_only_mix_never_writes() {
        let mut store = quick_store(MethodKind::Pdl { max_diff_size: 256 });
        let cfg = MixConfig {
            pct_update_ops: 0.0,
            update: UpdateConfig::new(2.0, 1).with_measured_cycles(200).with_warmup(4, 1_000),
        };
        let m = run_mix_workload(store.as_mut(), &cfg).unwrap();
        assert_eq!(m.cycles, 0);
        assert_eq!(m.read_ops, 200);
        assert_eq!(m.write_step.total().total_ops(), 0);
    }

    #[test]
    fn workload_is_deterministic() {
        let run = || {
            let mut store = quick_store(MethodKind::Pdl { max_diff_size: 256 });
            let cfg = UpdateConfig::new(2.0, 1).with_measured_cycles(200).with_warmup(4, 500);
            let m = run_update_workload(store.as_mut(), &cfg).unwrap();
            (m.read_step.total(), m.write_step.total())
        };
        assert_eq!(run(), run());
    }
}
