//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! This workspace builds in environments without a crates.io mirror, so
//! the handful of `rand 0.8` APIs the code uses are reimplemented here:
//! [`RngCore`], [`SeedableRng`], [`Rng::gen`], [`Rng::gen_range`],
//! [`RngCore::fill_bytes`] and [`rngs::StdRng`]. The generator is
//! SplitMix64 — statistically solid for test data and workload synthesis,
//! *not* cryptographic. Determinism is guaranteed within this workspace
//! (same seed, same stream), but the stream differs from upstream `rand`.

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with uniform random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

/// Construction from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// A type that can be sampled uniformly from its whole domain
/// (`rng.gen()`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A range that `gen_range` can sample from.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// High-level sampling helpers, blanket-implemented for every generator.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..2_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(0usize..=5);
            assert!(w <= 5);
            let f = r.gen_range(0.0..100.0);
            assert!((0.0..100.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(2);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[r.gen_range(0usize..10)] += 1;
        }
        for b in buckets {
            assert!((9_000..11_000).contains(&b), "{buckets:?}");
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
