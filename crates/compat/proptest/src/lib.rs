//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate: the strategy combinators and macros this workspace's property
//! tests use, without shrinking. A failing case panics with the ordinary
//! assertion message; re-running is deterministic (case seeds are fixed),
//! so failures reproduce exactly.
//!
//! Supported surface: [`Strategy`] (with `prop_map` and `boxed`), ranges
//! and tuples as strategies, [`any`], [`Just`], `proptest::collection::vec`,
//! the [`proptest!`], [`prop_oneof!`], [`prop_assert!`] and
//! [`prop_assert_eq!`] macros, and [`ProptestConfig::with_cases`].

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// The generator handed to strategies.
pub type TestRng = StdRng;

/// Per-case deterministic generator. `case` is the 0-based case index.
pub fn test_rng(case: u32) -> TestRng {
    TestRng::seed_from_u64(
        0x5EED_CAFE_F00Du64 ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
    )
}

/// Test-runner configuration (only the case count is honoured).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Uniform sampling over a type's whole domain (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for [`Arbitrary`] types.
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Weighted choice between type-erased strategies (see [`prop_oneof!`]).
pub struct OneOf<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> OneOf<T> {
    pub fn new(options: Vec<(u32, BoxedStrategy<T>)>) -> OneOf<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        let total_weight = options.iter().map(|(w, _)| *w as u64).sum::<u64>();
        assert!(total_weight > 0, "prop_oneof! weights must not all be zero");
        OneOf { options, total_weight }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.gen_range(0..self.total_weight);
        for (w, s) in &self.options {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weight accounting covered the whole range")
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// A number-of-elements specification for [`vec`].
    pub trait SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    /// Strategy yielding `Vec`s of values from `element`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// A failed test case: the `Err` payload of a property body.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    pub fn fail(reason: impl Into<String>) -> TestCaseError {
        TestCaseError(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Weighted (`w => strategy`) or unweighted choice between strategies of
/// one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $((1u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "prop_assert failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "prop_assert_eq failed: `{}` != `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "prop_assert_eq failed ({}):\n  left: {:?}\n right: {:?}",
                format_args!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::fail(format!(
                "prop_assert_ne failed: both sides equal\n value: {:?}",
                l
            )));
        }
    }};
}

/// The test-definition macro. Each `fn name(arg in strategy, ...) { body }`
/// becomes an ordinary test running `body` for `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..cfg.cases {
                let mut __rng = $crate::test_rng(__case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body Ok(()) })();
                if let Err(e) = __result {
                    panic!("proptest case {} of {} failed: {}", __case + 1, cfg.cases, e);
                }
            }
        }
        $crate::__proptest_fns!{ ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Op {
        Get(u16),
        Put(u16, u8),
    }

    fn op() -> impl Strategy<Value = Op> {
        prop_oneof![
            2 => any::<u16>().prop_map(Op::Get),
            1 => (any::<u16>(), 0u8..10).prop_map(|(k, v)| Op::Put(k, v)),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u8..7, y in 0usize..=4, z in 10u64..1000) {
            prop_assert!((3..7).contains(&x));
            prop_assert!(y <= 4, "y was {}", y);
            prop_assert!((10..1000).contains(&z));
        }

        #[test]
        fn vec_sizes_respected(v in crate::collection::vec(any::<u8>(), 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
        }

        #[test]
        fn oneof_and_map_compose(ops in crate::collection::vec(op(), 1..40)) {
            for o in &ops {
                if let Op::Put(_, v) = o {
                    prop_assert!(*v < 10);
                }
            }
            prop_assert_eq!(ops.clone(), ops);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a: Vec<u64> = (0..5)
            .map(|c| crate::Strategy::generate(&(0u64..100), &mut crate::test_rng(c)))
            .collect();
        let b: Vec<u64> = (0..5)
            .map(|c| crate::Strategy::generate(&(0u64..100), &mut crate::test_rng(c)))
            .collect();
        assert_eq!(a, b);
        // Different cases see different values somewhere.
        assert!(a.windows(2).any(|w| w[0] != w[1]), "{a:?}");
    }

    #[test]
    #[should_panic(expected = "prop_assert failed")]
    fn failing_property_panics() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0u8..4) {
                prop_assert!(x > 200);
            }
        }
        always_fails();
    }
}
