//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! crate: a small wall-clock micro-benchmark harness with criterion's
//! calling convention (`criterion_group!`/`criterion_main!`, benchmark
//! groups, `Bencher::iter`/`iter_batched`). It reports the mean
//! nanoseconds per iteration over a fixed measurement window; it performs
//! no statistical analysis, outlier rejection or HTML reporting.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevent the optimiser from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How `iter_batched` amortises setup cost. Only a hint here: every
/// variant runs setup once per iteration, outside the timed section.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Drives the timed iterations of one benchmark.
pub struct Bencher {
    /// Total time spent in timed sections.
    elapsed: Duration,
    /// Iterations executed.
    iters: u64,
    /// Measurement window per benchmark.
    window: Duration,
}

impl Bencher {
    fn new(window: Duration) -> Bencher {
        Bencher { elapsed: Duration::ZERO, iters: 0, window }
    }

    /// Time `routine` repeatedly until the measurement window closes.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Untimed warm-up.
        for _ in 0..8 {
            black_box(routine());
        }
        while self.elapsed < self.window {
            let start = Instant::now();
            black_box(routine());
            self.elapsed += start.elapsed();
            self.iters += 1;
        }
    }

    /// Time `routine` over fresh inputs from `setup`; setup runs outside
    /// the timed section.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..8 {
            black_box(routine(setup()));
        }
        while self.elapsed < self.window {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iters += 1;
        }
    }

    fn ns_per_iter(&self) -> f64 {
        if self.iters == 0 {
            0.0
        } else {
            self.elapsed.as_nanos() as f64 / self.iters as f64
        }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for criterion compatibility; the sample count is governed
    /// by the measurement window here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        self.criterion.run_one(&full, f);
        self
    }

    pub fn finish(&mut self) {}
}

/// The harness entry point, handed to every benchmark function.
pub struct Criterion {
    window: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // CRITERION_WINDOW_MS overrides the per-benchmark window.
        let ms = std::env::var("CRITERION_WINDOW_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(300);
        Criterion { window: Duration::from_millis(ms) }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let id = id.into();
        self.run_one(&id, f);
        self
    }

    fn run_one<F: FnOnce(&mut Bencher)>(&mut self, id: &str, f: F) {
        let mut b = Bencher::new(self.window);
        f(&mut b);
        println!("{id:<48} {:>12.1} ns/iter ({} iterations)", b.ns_per_iter(), b.iters);
    }

    pub fn final_summary(&mut self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut b = Bencher::new(Duration::from_millis(5));
        let mut n = 0u64;
        b.iter(|| n += 1);
        assert!(b.iters > 0);
        assert!(b.ns_per_iter() > 0.0);
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut b = Bencher::new(Duration::from_millis(5));
        b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput);
        assert!(b.iters > 0);
    }

    #[test]
    fn groups_run_benchmarks() {
        let mut c = Criterion { window: Duration::from_millis(2) };
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        let mut ran = false;
        g.bench_function("f", |b| {
            ran = true;
            b.iter(|| 1 + 1)
        });
        g.finish();
        assert!(ran);
    }
}
