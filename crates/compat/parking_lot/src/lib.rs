//! Offline stand-in for the [`parking_lot`](https://crates.io/crates/parking_lot)
//! crate: `Mutex` and `RwLock` with `parking_lot`'s poison-free API,
//! implemented over `std::sync`. A panic while a lock is held does not
//! poison it — later acquisitions recover the inner value, matching
//! `parking_lot` semantics.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` cannot fail.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A readers-writer lock whose acquisitions cannot fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn lock_recovers_after_holder_panics() {
        let m = std::sync::Arc::new(Mutex::new(7));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("die while holding the lock");
        })
        .join();
        assert_eq!(*m.lock(), 7, "no poisoning");
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
