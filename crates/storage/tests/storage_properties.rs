//! Property-based tests: the B+-tree must behave like a sorted multimap
//! and heap files like a slab, for arbitrary operation sequences, over
//! multiple page-update methods.

use pdl_core::{build_store, MethodKind, StoreOptions};
use pdl_flash::{FlashChip, FlashConfig};
use pdl_storage::{BTree, Database, HeapFile, KeyBuf, RecordId};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn database(kind: MethodKind) -> Database {
    let mut config = FlashConfig::tiny();
    config.geometry.num_blocks = 64; // 512 pages of 256 bytes
    let store = build_store(FlashChip::new(config), kind, StoreOptions::new(320)).unwrap();
    Database::new(store, 12)
}

#[derive(Clone, Debug)]
enum TreeOp {
    Insert(u16, u16),
    Delete(u16),
    Get(u16),
}

fn tree_op() -> impl Strategy<Value = TreeOp> {
    prop_oneof![
        3 => (any::<u16>(), any::<u16>()).prop_map(|(k, v)| TreeOp::Insert(k % 512, v)),
        1 => any::<u16>().prop_map(|k| TreeOp::Delete(k % 512)),
        1 => any::<u16>().prop_map(|k| TreeOp::Get(k % 512)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// B+-tree vs BTreeMap<u16, Vec<u16>> (multimap semantics: delete
    /// removes one duplicate).
    #[test]
    fn btree_matches_model(ops in proptest::collection::vec(tree_op(), 1..300)) {
        let d = database(MethodKind::Pdl { max_diff_size: 64 });
        let t = BTree::create(&d).unwrap();
        let mut model: BTreeMap<u16, Vec<u16>> = BTreeMap::new();
        let key = |k: u16| KeyBuf::new().push_u16(k).finish();
        for op in &ops {
            match op {
                TreeOp::Insert(k, v) => {
                    t.insert(&d, &key(*k), *v as u64).unwrap();
                    model.entry(*k).or_default().push(*v);
                }
                TreeOp::Delete(k) => {
                    let got = t.delete(&d, &key(*k)).unwrap();
                    match model.get_mut(k) {
                        Some(vals) if !vals.is_empty() => {
                            let v = got.expect("model has a value");
                            let idx = vals.iter().position(|x| *x as u64 == v)
                                .expect("deleted value must exist in model");
                            vals.remove(idx);
                            if vals.is_empty() {
                                model.remove(k);
                            }
                        }
                        _ => prop_assert!(got.is_none(), "tree deleted a phantom key {k}"),
                    }
                }
                TreeOp::Get(k) => {
                    let got = t.get(&d, &key(*k)).unwrap();
                    match model.get(k) {
                        Some(vals) => {
                            let v = got.expect("model has the key");
                            prop_assert!(vals.iter().any(|x| *x as u64 == v));
                        }
                        None => prop_assert!(got.is_none()),
                    }
                }
            }
        }
        // Full-order sweep.
        let mut expect: Vec<(u16, Vec<u16>)> =
            model.iter().map(|(k, v)| (*k, v.clone())).collect();
        for (_, v) in expect.iter_mut() {
            v.sort_unstable();
        }
        let mut got: BTreeMap<u16, Vec<u16>> = BTreeMap::new();
        t.range(&d, &[0u8; 16], &[0xFF; 16], |k, v| {
            let kk = u16::from_be_bytes([k[0], k[1]]);
            got.entry(kk).or_default().push(v as u16);
            true
        }).unwrap();
        let mut got: Vec<(u16, Vec<u16>)> = got.into_iter().collect();
        for (_, v) in got.iter_mut() {
            v.sort_unstable();
        }
        prop_assert_eq!(got, expect);
        t.check_invariants(&d).unwrap();
    }

    /// Heap files behave like a slab under insert/update/delete, across
    /// methods (PDL with differential pages, plain OPU, and IPL logs).
    #[test]
    fn heap_matches_model(
        ops in proptest::collection::vec((0u8..4, any::<u16>(), 1usize..120), 1..150),
        kind_idx in 0usize..3,
    ) {
        let kind = [
            MethodKind::Opu,
            MethodKind::Pdl { max_diff_size: 64 },
            MethodKind::Ipl { log_bytes_per_block: 512 },
        ][kind_idx];
        let d = database(kind);
        let h = HeapFile::new();
        let mut model: Vec<(RecordId, Vec<u8>)> = Vec::new();
        for (op, sel, len) in &ops {
            match op {
                0 | 3 => {
                    let rec = vec![(*sel % 251) as u8; *len];
                    let rid = h.insert(&d, &rec).unwrap();
                    model.push((rid, rec));
                }
                1 if !model.is_empty() => {
                    let i = *sel as usize % model.len();
                    let (rid, _) = model.remove(i);
                    h.delete(&d, rid).unwrap();
                }
                2 if !model.is_empty() => {
                    let i = *sel as usize % model.len();
                    let rec = vec![(*sel % 7) as u8 + 1; *len];
                    let new_rid = h.update(&d, model[i].0, &rec).unwrap();
                    model[i] = (new_rid, rec);
                }
                _ => {}
            }
        }
        for (rid, expect) in &model {
            let got = h.get(&d, *rid, |b| b.to_vec()).unwrap();
            prop_assert_eq!(&got, expect);
        }
        let mut live = 0usize;
        h.scan(&d, |_, _| live += 1).unwrap();
        prop_assert_eq!(live, model.len());
    }

    /// Buffer-pool pressure does not corrupt data: the same tree contents
    /// must read back under a 2-frame pool and flush/recover cleanly.
    #[test]
    fn tiny_buffer_pool_is_correct(keys in proptest::collection::vec(any::<u16>(), 1..120)) {
        let mut config = FlashConfig::tiny();
        config.geometry.num_blocks = 64;
        let kind = MethodKind::Pdl { max_diff_size: 64 };
        let store = build_store(FlashChip::new(config), kind, StoreOptions::new(320)).unwrap();
        let d = Database::new(store, 2); // brutal pool pressure
        let t = BTree::create(&d).unwrap();
        let key = |k: u16| KeyBuf::new().push_u16(k).finish();
        for (i, k) in keys.iter().enumerate() {
            t.insert(&d, &key(*k), i as u64).unwrap();
        }
        for k in &keys {
            prop_assert!(t.get(&d, &key(*k)).unwrap().is_some());
        }
        d.flush().unwrap();
    }
}

/// Slotted-page model: insert/delete/update against a Vec-backed model,
/// with compaction pressure from fragmentation.
mod slotted_model {
    use super::*;
    use pdl_storage::slotted;

    #[derive(Clone, Debug)]
    pub enum SlotOp {
        Insert(u8, u8), // (len seed, fill)
        Delete(u8),     // index into live set
        Update(u8, u8, u8),
    }

    pub fn op() -> impl Strategy<Value = SlotOp> {
        prop_oneof![
            3 => (any::<u8>(), any::<u8>()).prop_map(|(l, f)| SlotOp::Insert(l, f)),
            1 => any::<u8>().prop_map(SlotOp::Delete),
            2 => (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(i, l, f)| SlotOp::Update(i, l, f)),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn slotted_page_matches_model(ops in proptest::collection::vec(op(), 1..120)) {
            let mut data = vec![0u8; 512];
            let mut changes = Vec::new();
            let mut model: Vec<(u16, Vec<u8>)> = Vec::new();
            {
                let mut page = pdl_storage::testing_page_mut(&mut data, &mut changes);
                slotted::init(&mut page);
                for op in &ops {
                    match op {
                        SlotOp::Insert(l, f) => {
                            let rec = vec![*f; (*l as usize % 60) + 1];
                            if let Some(slot) = slotted::insert(&mut page, &rec).unwrap() {
                                model.push((slot, rec));
                            }
                        }
                        SlotOp::Delete(i) if !model.is_empty() => {
                            let idx = *i as usize % model.len();
                            let (slot, _) = model.remove(idx);
                            prop_assert!(slotted::delete(&mut page, slot));
                        }
                        SlotOp::Update(i, l, f) if !model.is_empty() => {
                            let idx = *i as usize % model.len();
                            let rec = vec![*f; (*l as usize % 80) + 1];
                            let slot = model[idx].0;
                            if slotted::update(&mut page, slot, &rec).unwrap() {
                                model[idx].1 = rec;
                            }
                        }
                        _ => {}
                    }
                    // Every live record matches after every operation.
                    for (slot, rec) in &model {
                        prop_assert_eq!(slotted::get(page.as_slice(), *slot), Some(&rec[..]));
                    }
                }
            }
            // Final sweep through the raw page bytes.
            let live: Vec<(u16, &[u8])> = slotted::iter(&data).collect();
            prop_assert_eq!(live.len(), model.len());
            for (slot, rec) in &model {
                prop_assert_eq!(slotted::get(&data, *slot), Some(&rec[..]));
            }
        }
    }
}
