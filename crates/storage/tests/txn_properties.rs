//! Transactional storage semantics (`pdl-txn`): commit durability,
//! abort pre-image restoration, conflict detection, group commit over
//! the sharded pool, and all-or-nothing recovery of cross-shard
//! commits.

use pdl_core::{build_store, MethodKind, PageStore, ShardedStore, StoreOptions};
use pdl_flash::{FlashChip, FlashConfig};
use pdl_storage::{Database, Durability, ShardedBufferPool, StorageError};

const KIND: MethodKind = MethodKind::Pdl { max_diff_size: 128 };

fn db(pages: u64, buffer: usize) -> Database {
    let chip = FlashChip::new(FlashConfig::tiny());
    let store = build_store(chip, KIND, StoreOptions::new(pages)).unwrap();
    Database::new(store, buffer).with_durability(Durability::Commit)
}

#[test]
fn committed_transaction_survives_crash_recovery() {
    let d = db(16, 8);
    for _ in 0..4 {
        let pid = d.alloc_page().unwrap();
        d.with_page_mut(pid, |p| p.write(0, &[0x11; 8])).unwrap();
    }
    d.flush().unwrap();
    d.begin().unwrap();
    d.with_page_mut(0, |p| p.write(0, b"txn-a")).unwrap();
    d.with_page_mut(2, |p| p.write(4, b"txn-b")).unwrap();
    d.commit().unwrap();
    // Crash: drop the pool without flushing, recover from the chip.
    let store = d.into_store_without_flush();
    let chip = store.into_chip();
    let mut back = pdl_core::recover_store(chip, KIND, StoreOptions::new(16)).unwrap();
    let mut out = vec![0u8; back.logical_page_size()];
    back.read_page(0, &mut out).unwrap();
    assert_eq!(&out[0..5], b"txn-a");
    back.read_page(2, &mut out).unwrap();
    assert_eq!(&out[4..9], b"txn-b");
}

#[test]
fn abort_restores_pre_images_in_memory_and_on_flash() {
    let d = db(16, 8);
    let pid = d.alloc_page().unwrap();
    d.with_page_mut(pid, |p| p.write(0, b"committed")).unwrap();
    d.flush().unwrap();
    d.begin().unwrap();
    d.with_page_mut(pid, |p| p.write(0, b"aborted!!")).unwrap();
    // Dirty read inside the transaction sees the new bytes...
    let seen = d.with_page(pid, |p| p[0]).unwrap();
    assert_eq!(seen, b'a');
    d.abort().unwrap();
    // ...but the abort restores the pre-image.
    let seen = d.with_page(pid, |p| p[0]).unwrap();
    assert_eq!(seen, b'c');
    // And nothing of the aborted write is durable.
    let store = d.into_store_without_flush();
    let chip = store.into_chip();
    let mut back = pdl_core::recover_store(chip, KIND, StoreOptions::new(16)).unwrap();
    let mut out = vec![0u8; back.logical_page_size()];
    back.read_page(pid, &mut out).unwrap();
    assert_eq!(&out[0..9], b"committed");
}

#[test]
fn uncommitted_pages_never_reach_flash_in_commit_mode() {
    let d = db(16, 8);
    let pid = d.alloc_page().unwrap();
    d.with_page_mut(pid, |p| p.write(0, b"base")).unwrap();
    d.flush().unwrap();
    d.begin().unwrap();
    d.with_page_mut(pid, |p| p.write(0, b"temp")).unwrap();
    // A write-through must not leak the pinned uncommitted frame.
    d.flush().unwrap();
    d.abort().unwrap();
    let store = d.into_store_without_flush();
    let chip = store.into_chip();
    let mut back = pdl_core::recover_store(chip, KIND, StoreOptions::new(16)).unwrap();
    let mut out = vec![0u8; back.logical_page_size()];
    back.read_page(pid, &mut out).unwrap();
    assert_eq!(&out[0..4], b"base");
}

#[test]
fn relaxed_mode_abort_restores_pre_images() {
    let chip = FlashChip::new(FlashConfig::tiny());
    let store = build_store(chip, KIND, StoreOptions::new(16)).unwrap();
    let d = Database::new(store, 2); // tiny pool: txn pages may spill
    for _ in 0..8 {
        let pid = d.alloc_page().unwrap();
        d.with_page_mut(pid, |p| p.write(0, &[7; 4])).unwrap();
    }
    d.flush().unwrap();
    d.begin().unwrap();
    for pid in 0..6u64 {
        d.with_page_mut(pid, |p| p.write(0, &[0xEE; 4])).unwrap();
    }
    d.abort().unwrap();
    d.flush().unwrap(); // write the restored pre-images through
    for pid in 0..8u64 {
        let b = d.with_page(pid, |p| p[0]).unwrap();
        assert_eq!(b, 7, "pid {pid} must read the pre-image after abort");
    }
}

#[test]
fn transaction_state_errors() {
    let d = db(8, 4);
    assert!(matches!(d.commit(), Err(StorageError::TxnState(_))));
    assert!(matches!(d.abort(), Err(StorageError::TxnState(_))));
    d.begin().unwrap();
    assert!(matches!(d.begin(), Err(StorageError::TxnState(_))));
    d.commit().unwrap(); // read-only commit is free
}

#[test]
fn buffer_full_of_pinned_frames_is_reported() {
    let d = db(16, 2); // two frames, both will be pinned
    for _ in 0..16 {
        d.alloc_page().unwrap();
    }
    d.begin().unwrap();
    d.with_page_mut(0, |p| p.write(0, &[1])).unwrap();
    d.with_page_mut(1, |p| p.write(0, &[2])).unwrap();
    let err = d.with_page_mut(2, |p| p.write(0, &[3])).unwrap_err();
    assert!(matches!(err, StorageError::BufferPinned), "{err}");
    d.commit().unwrap();
    // After commit the frames are evictable again.
    d.with_page_mut(2, |p| p.write(0, &[3])).unwrap();
}

fn sharded_pool(shards: usize, pages: u64, capacity: usize) -> ShardedBufferPool {
    let store = ShardedStore::with_uniform_chips(
        FlashConfig::tiny(),
        shards,
        KIND,
        StoreOptions::new(pages),
    )
    .unwrap();
    ShardedBufferPool::new(store, capacity)
}

#[test]
fn group_commit_is_atomic_per_transaction_across_shards() {
    let p = sharded_pool(4, 32, 64);
    for pid in 0..32u64 {
        p.with_page_mut(pid, |page| page.write(0, &[1; 4])).unwrap();
    }
    p.flush_all().unwrap();
    // Four concurrent writers, each committing multi-shard transactions.
    std::thread::scope(|scope| {
        for w in 0..4u64 {
            let p = &p;
            scope.spawn(move || {
                for round in 0..6u64 {
                    let txn = p.begin();
                    // Each txn touches two pages on different shards
                    // (pid % 4 is the shard).
                    let a = w * 8 + round % 4;
                    let b = w * 8 + 4 + (round + 1) % 4;
                    p.with_page_mut_txn(a, txn, |page| page.write(0, &[w as u8 + 10; 4])).unwrap();
                    p.with_page_mut_txn(b, txn, |page| page.write(0, &[w as u8 + 10; 4])).unwrap();
                    p.commit(txn).unwrap();
                }
            });
        }
    });
    for w in 0..4u64 {
        for off in [0u64, 4] {
            for i in 0..4u64 {
                let b = p.with_page(w * 8 + off + i, |page| page[0]).unwrap();
                assert_eq!(b, w as u8 + 10, "pid {}", w * 8 + off + i);
            }
        }
    }
    // Everything committed must survive a crash + sharded recovery.
    let store = p.into_store_without_flush();
    let chips = store.into_shard_chips();
    let mut back = ShardedStore::recover(chips, KIND, StoreOptions::new(32)).unwrap();
    let mut out = vec![0u8; back.logical_page_size()];
    for w in 0..4u64 {
        for off in [0u64, 4] {
            for i in 0..4u64 {
                back.read_page(w * 8 + off + i, &mut out).unwrap();
                assert_eq!(out[0], w as u8 + 10, "pid {} after recovery", w * 8 + off + i);
            }
        }
    }
}

#[test]
fn torn_cross_shard_commit_is_discarded_on_every_shard() {
    // Stage a transaction's differentials durably on two shards but never
    // write its commit records (simulating a crash between the stage
    // flush and the record flush): sharded recovery must roll the whole
    // transaction back, on both shards.
    let store =
        ShardedStore::with_uniform_chips(FlashConfig::tiny(), 2, KIND, StoreOptions::new(8))
            .unwrap();
    let mut store = store;
    let size = store.logical_page_size();
    for pid in 0..8u64 {
        store.write_page(pid, &vec![5u8; size]).unwrap();
    }
    store.flush().unwrap();
    let txn = 99u64;
    store.txn_reserve(2).unwrap();
    let mut a = vec![5u8; size];
    a[0] = 0xAA;
    let mut b = vec![5u8; size];
    b[0] = 0xBB;
    store.txn_stage(0, &a, txn).unwrap(); // shard 0
    store.txn_stage(1, &b, txn).unwrap(); // shard 1
    store.txn_flush_stage().unwrap();
    // Crash here: no commit record anywhere.
    let chips = store.into_shard_chips();
    let mut back = ShardedStore::recover(chips, KIND, StoreOptions::new(8)).unwrap();
    let mut out = vec![0u8; size];
    for pid in [0u64, 1] {
        back.read_page(pid, &mut out).unwrap();
        assert_eq!(out, vec![5u8; size], "pid {pid} must roll back");
    }
}

#[test]
fn half_recorded_cross_shard_commit_is_discarded_globally() {
    // The record lands on shard 0 but the crash hits before shard 1's
    // record: the union verdict must discard the transaction on *both*
    // shards, even the one whose record made it.
    let mut store =
        ShardedStore::with_uniform_chips(FlashConfig::tiny(), 2, KIND, StoreOptions::new(8))
            .unwrap();
    let size = store.logical_page_size();
    for pid in 0..8u64 {
        store.write_page(pid, &vec![5u8; size]).unwrap();
    }
    store.flush().unwrap();
    let txn = 77u64;
    store.txn_reserve(2).unwrap();
    let mut a = vec![5u8; size];
    a[0] = 0xAA;
    let mut b = vec![5u8; size];
    b[0] = 0xBB;
    store.txn_stage(0, &a, txn).unwrap(); // shard 0
    store.txn_stage(1, &b, txn).unwrap(); // shard 1
    store.txn_flush_stage().unwrap();
    // Only shard 0 gets the record (simulated partial record phase).
    store
        .with_shard(0, |st| -> pdl_core::Result<()> {
            st.txn_append_commit(txn)?;
            st.txn_flush_stage()
        })
        .unwrap();
    let chips = store.into_shard_chips();
    let mut back = ShardedStore::recover(chips, KIND, StoreOptions::new(8)).unwrap();
    let mut out = vec![0u8; size];
    for pid in [0u64, 1] {
        back.read_page(pid, &mut out).unwrap();
        assert_eq!(out, vec![5u8; size], "pid {pid} must roll back globally");
    }
}

#[test]
fn group_commit_batches_share_flushes() {
    // Sequentially committed singles vs one grouped batch of the same
    // writes: the group must program fewer flash pages. Drive the group
    // case by committing from many threads at once.
    let solo = sharded_pool(2, 16, 16);
    for pid in 0..16u64 {
        solo.with_page_mut(pid, |page| page.write(0, &[9; 4])).unwrap();
    }
    solo.flush_all().unwrap();
    let before = solo.io_stats().total();
    for i in 0..8u64 {
        let txn = solo.begin();
        solo.with_page_mut_txn(i, txn, |page| page.write(1, &[i as u8; 4])).unwrap();
        solo.commit_solo(txn).unwrap();
    }
    let solo_writes = (solo.io_stats().total() - before).writes;

    let grouped = sharded_pool(2, 16, 16);
    for pid in 0..16u64 {
        grouped.with_page_mut(pid, |page| page.write(0, &[9; 4])).unwrap();
    }
    grouped.flush_all().unwrap();
    let before = grouped.io_stats().total();
    std::thread::scope(|scope| {
        for i in 0..8u64 {
            let grouped = &grouped;
            scope.spawn(move || {
                let txn = grouped.begin();
                grouped.with_page_mut_txn(i, txn, |page| page.write(1, &[i as u8; 4])).unwrap();
                grouped.commit(txn).unwrap();
            });
        }
    });
    let grouped_writes = (grouped.io_stats().total() - before).writes;
    assert!(
        grouped_writes <= solo_writes,
        "group commit must not write more pages than solo commits \
         (grouped {grouped_writes} vs solo {solo_writes})"
    );
}

#[test]
fn relaxed_abort_repairs_a_leaked_then_redirtied_frame() {
    // Regression: in relaxed mode a txn-owned frame can be evicted (the
    // uncommitted image leaks to the store), re-faulted and re-dirtied
    // by the same transaction. Abort must still restore the pre-image
    // *dirty*, so a write-back repairs the leaked store copy.
    let chip = FlashChip::new(FlashConfig::tiny());
    let store = build_store(chip, KIND, StoreOptions::new(16)).unwrap();
    let d = Database::new(store, 2); // two frames force evictions
    for _ in 0..8 {
        let pid = d.alloc_page().unwrap();
        d.with_page_mut(pid, |p| p.write(0, &[7; 4])).unwrap();
    }
    d.flush().unwrap();
    d.begin().unwrap();
    d.with_page_mut(0, |p| p.write(0, &[0xEE; 4])).unwrap();
    // Evict frame 0 by touching two other pages (uncommitted 0xEE leaks).
    d.with_page(1, |_| ()).unwrap();
    d.with_page(2, |_| ()).unwrap();
    // Re-fault and re-dirty page 0 under the same transaction.
    d.with_page_mut(0, |p| p.write(1, &[0xDD; 2])).unwrap();
    d.abort().unwrap();
    d.flush().unwrap();
    // The durable state must be the pre-image, not the leaked 0xEE.
    let store = d.into_store_without_flush();
    let chip = store.into_chip();
    let mut back = pdl_core::recover_store(chip, KIND, StoreOptions::new(16)).unwrap();
    let mut out = vec![0u8; back.logical_page_size()];
    back.read_page(0, &mut out).unwrap();
    assert_eq!(&out[0..4], &[7; 4], "abort must repair the leaked aborted image");
}

#[test]
fn aborted_structured_growth_returns_pids_to_the_free_list() {
    // Regression for the abort page leak: pages a rolled-back transaction
    // allocated for registered structures (heap growth, b+-tree splits)
    // used to be stranded forever. They are referenced only through page
    // bytes and root publications the rollback undoes, so the allocator
    // now reissues them.
    let d = db(32, 16);
    let heap = pdl_storage::HeapFile::create(&d);
    d.flush().unwrap();
    let frontier = d.allocated_pages();
    d.begin().unwrap();
    for i in 0..40u8 {
        heap.insert(&d, &[i; 32]).unwrap();
    }
    assert!(d.allocated_pages() > frontier, "the transaction grew the heap");
    d.abort().unwrap();
    assert_eq!(d.buffer_stats().leaked_pids, 0, "structured allocations never leak");
    let after_abort = d.allocated_pages();
    // Redoing the same growth reuses the freed pids: the frontier stays
    // put instead of doubling.
    d.begin().unwrap();
    for i in 0..40u8 {
        heap.insert(&d, &[i; 32]).unwrap();
    }
    d.commit().unwrap();
    assert_eq!(d.allocated_pages(), after_abort, "rollback-freed pids were reissued");
    // The committed records read back intact through the reused pages.
    let rid = heap.insert(&d, &[0xAA; 32]).unwrap();
    let byte = heap.get(&d, rid, |r| r[0]).unwrap();
    assert_eq!(byte, 0xAA);
}

#[test]
fn aborted_raw_allocations_are_stranded_but_counted() {
    // Raw `alloc_page` pids may be held by the caller outside any
    // registered structure, so a rollback cannot reissue them — but the
    // leak is no longer silent: the gauge counts every stranded pid.
    let d = db(16, 8);
    d.begin().unwrap();
    let a = d.alloc_page().unwrap();
    let b = d.alloc_page().unwrap();
    d.with_page_mut(a, |p| p.write(0, b"tmp")).unwrap();
    d.abort().unwrap();
    assert_eq!(d.buffer_stats().leaked_pids, 2, "both raw pids counted");
    assert_eq!(d.leaked_pages(), 2);
    // Stranded pids are never reissued.
    let next = d.alloc_page().unwrap();
    assert!(next != a && next != b, "stranded pids must not alias new allocations");
    // Allocations in committed transactions never touch the gauge.
    d.begin().unwrap();
    let _ = d.alloc_page().unwrap();
    d.commit().unwrap();
    assert_eq!(d.buffer_stats().leaked_pids, 2);
}
