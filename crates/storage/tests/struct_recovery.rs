//! Crash-mid-split recovery from the checkpointed structure-root log
//! alone: no remembered root pids, no `attach`.
//!
//! Two writer threads grow registered B+-trees on one durable-commit
//! `&Database` while every flash chip runs with an armed fault budget —
//! power fails mid-run, often inside a split chain or a commit batch.
//! The store is then rebuilt with [`ShardedStore::recover`] and the
//! trees with [`Database::recover_structures`], which must hand back
//! every registered tree holding a committed batch prefix: at least
//! every batch whose commit returned, never a torn batch tail. The
//! budget sweep moves the crash point through the whole concurrent
//! phase; recovery must also be idempotent (crash the recovered store
//! again, recover again, same contents) and survive a checkpoint cycle
//! (the V3 region carries the roots through compaction).

use pdl_core::{is_power_loss, MethodKind, ShardedStore, StoreOptions};
use pdl_flash::FlashConfig;
use pdl_storage::{BTree, Database, Durability, Key, KeyBuf, StorageError};

const KIND: MethodKind = MethodKind::Pdl { max_diff_size: 256 };
const SHARDS: usize = 2;
const PAGES: u64 = 256;
const BASELINE: u64 = 120; // per writer, enough to grow every root
const BATCH: u64 = 12;
const BATCHES: u64 = 8;

fn options() -> StoreOptions {
    StoreOptions::new(PAGES).with_checkpoint_blocks(2)
}

fn key_of(writer: usize, i: u64) -> Key {
    KeyBuf::new().push_u8(writer as u8).push_u64(i).finish()
}

fn power_lost(e: &StorageError) -> bool {
    matches!(e, StorageError::Store(c) if is_power_loss(c))
}

/// Dump tree `w`'s contents and assert they are a dense prefix
/// `(w, 0..k)`; returns `k`.
fn dense_prefix_len(db: &Database, tree: &BTree, w: usize) -> u64 {
    let mut next = 0u64;
    tree.range(db, &key_of(w, 0), &key_of(w, u64::MAX), |k, v| {
        assert_eq!(*k, key_of(w, next), "writer {w}: hole or reorder at {next}");
        assert_eq!(v, next, "writer {w}: wrong value at {next}");
        next += 1;
        true
    })
    .unwrap();
    next
}

/// Build a database, commit a baseline on two registered trees (deep
/// enough that both roots grew, so the structure-root log is durably
/// populated), then race two writers until `budget` flash operations
/// exhaust. Returns the crashed chips plus each writer's count of
/// batches whose commit *returned* `Ok`.
fn run_until_power_loss(budget: u64) -> (Vec<pdl_flash::FlashChip>, Vec<u64>) {
    let store = ShardedStore::with_uniform_chips(FlashConfig::scaled(16), SHARDS, KIND, options())
        .expect("store");
    let db = Database::new(Box::new(store), 128).with_durability(Durability::Commit);

    // Baseline: one committed batch per writer, splits included.
    for w in 0..2usize {
        let t = BTree::create(&db).unwrap();
        db.begin().unwrap();
        for i in 0..BASELINE {
            t.insert(&db, &key_of(w, i), i).unwrap();
        }
        db.commit().unwrap();
    }
    let roots = db.with_store(|s| s.struct_roots()).expect("root log populated");
    assert_eq!(roots.entries.len(), 2, "both trees must be in the durable root log");

    // Crash the baseline cleanly and come back through the root log, so
    // the racing phase itself runs on recovered trees. Arm every shard's
    // chip *after* this recovery: the budget then burns down inside the
    // concurrent phase — split chains, staged flushes, commit records,
    // root-record programs.
    let store = ShardedStore::recover(db.into_store_without_flush().into_chips(), KIND, options())
        .expect("baseline recover");
    for s in 0..SHARDS {
        store.with_shard(s, |st| st.chip_mut().arm_fault(budget));
    }
    let db = Database::new(Box::new(store), 128).with_durability(Durability::Commit);
    let trees: Vec<BTree> = db.recover_structures().into_iter().map(|s| s.into_btree()).collect();
    assert_eq!(trees.len(), 2, "baseline trees must recover before the race");

    let confirmed: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2usize)
            .map(|w| {
                let (db, tree) = (&db, &trees[w]);
                scope.spawn(move || -> u64 {
                    let mut confirmed = 0u64;
                    for b in 0..BATCHES {
                        'retry: loop {
                            if db.begin().is_err() {
                                return confirmed;
                            }
                            for i in 0..BATCH {
                                let at = BASELINE + b * BATCH + i;
                                match tree.insert(db, &key_of(w, at), at) {
                                    Ok(()) => {}
                                    Err(StorageError::TxnConflict { .. }) => {
                                        let _ = db.abort();
                                        continue 'retry;
                                    }
                                    Err(e) => {
                                        let _ = db.abort();
                                        assert!(power_lost(&e), "unexpected error: {e}");
                                        return confirmed;
                                    }
                                }
                            }
                            match db.commit() {
                                Ok(()) => {
                                    confirmed += 1;
                                    break;
                                }
                                Err(e) => {
                                    assert!(power_lost(&e), "unexpected commit error: {e}");
                                    return confirmed;
                                }
                            }
                        }
                    }
                    confirmed
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("writer panicked")).collect()
    });

    let mut chips = db.into_store_without_flush().into_chips();
    for c in &mut chips {
        c.disarm_fault();
    }
    (chips, confirmed)
}

/// Recover chips into a fresh database and rebuild the trees from the
/// checkpointed root log alone.
fn recover(chips: Vec<pdl_flash::FlashChip>) -> (Database, Vec<BTree>) {
    let store = ShardedStore::recover(chips, KIND, options()).expect("recover");
    let db = Database::new(Box::new(store), 128).with_durability(Durability::Commit);
    let trees: Vec<BTree> = db.recover_structures().into_iter().map(|s| s.into_btree()).collect();
    (db, trees)
}

/// Assert a recovered database carries exactly a committed prefix for
/// each writer and return the two lengths.
fn check_recovered(db: &Database, trees: &[BTree], confirmed: &[u64]) -> Vec<u64> {
    assert_eq!(trees.len(), 2, "both registered trees must recover without attach");
    trees
        .iter()
        .enumerate()
        .map(|(w, t)| {
            t.check_invariants(db).unwrap();
            let len = dense_prefix_len(db, t, w);
            assert!(len >= BASELINE, "writer {w}: baseline lost ({len})");
            let extra = len - BASELINE;
            assert_eq!(extra % BATCH, 0, "writer {w}: torn batch tail survived ({len})");
            assert!(
                extra / BATCH >= confirmed[w],
                "writer {w}: committed batch lost ({} < {})",
                extra / BATCH,
                confirmed[w]
            );
            len
        })
        .collect()
}

#[test]
fn clean_shutdown_recovers_everything_without_attach() {
    let (chips, confirmed) = run_until_power_loss(u64::MAX);
    assert_eq!(confirmed, vec![BATCHES, BATCHES], "unfaulted run must commit every batch");
    let (db, trees) = recover(chips);
    let lens = check_recovered(&db, &trees, &confirmed);
    assert_eq!(lens, vec![BASELINE + BATCHES * BATCH; 2]);
    assert_eq!(db.buffer_stats().leaked_pids, 0);
}

#[test]
fn crash_mid_split_sweep_recovers_committed_prefixes() {
    // Budgets span from "dies almost immediately after arming" to "dies
    // in the last batches": the crash point walks through split chains,
    // staged flushes, commit records, and root-record programs.
    for budget in [3u64, 6, 10, 14, 18, 22, 26, 30, 34, 40] {
        let (chips, confirmed) = run_until_power_loss(budget);
        if budget <= 26 {
            assert!(
                confirmed.iter().any(|&c| c < BATCHES),
                "budget {budget}: fault never fired — the sweep is vacuous"
            );
        }
        let (db, trees) = recover(chips);
        let lens = check_recovered(&db, &trees, &confirmed);

        // Idempotence: crash the recovered store again without flushing;
        // a second recovery must reproduce the same committed state.
        let chips = db.into_store_without_flush().into_chips();
        let (db2, trees2) = recover(chips);
        let lens2 = check_recovered(&db2, &trees2, &confirmed);
        assert_eq!(lens, lens2, "budget {budget}: recovery is not idempotent");
    }
}

#[test]
fn recovered_roots_survive_a_checkpoint_cycle() {
    let (chips, confirmed) = run_until_power_loss(20);
    let (db, trees) = recover(chips);
    let lens = check_recovered(&db, &trees, &confirmed);

    // Compact the checkpoint region (V3 carries the root log), crash
    // again, recover again: same trees, same contents.
    db.checkpoint().expect("checkpoint after recovery");
    let chips = db.into_store_without_flush().into_chips();
    let (db2, trees2) = recover(chips);
    let lens2 = check_recovered(&db2, &trees2, &confirmed);
    assert_eq!(lens, lens2, "checkpoint cycle changed recovered contents");
}
