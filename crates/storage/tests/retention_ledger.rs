//! Epoch-long read views vs the DRAM retention cap: the flash ledger
//! model-oracle.
//!
//! A view opened before a GC-heavy write storm must keep reading its
//! open-time bytes even after the storm has pushed every pre-image it
//! needs past `snapshot_version_cap` — the versions migrate into the
//! flash retention ledger (PDL spill pages) instead of dying, and
//! `with_page_at` resolves them DRAM-chain → ledger → flash read. The
//! oracle is byte-for-byte: every page read through the view equals the
//! image captured at open time, for 1, 2, and 4 shards, with zero
//! `SnapshotTooOld`. Afterwards the pool is crashed without a flush and
//! recovered; the committed end state must survive byte-for-byte too
//! (spill pages are volatile retention state — recovery discards them,
//! never user data).

use pdl_core::{MethodKind, ShardedStore, StoreOptions};
use pdl_flash::FlashConfig;
use pdl_storage::ShardedBufferPool;

const KIND: MethodKind = MethodKind::Pdl { max_diff_size: 256 };
const PAGES: u64 = 64;
const ROUNDS: u64 = 8;
const PAGES_PER_TXN: u64 = 8;

fn options(shards: usize) -> StoreOptions {
    // A cap this small cannot hold even one round of pre-images in DRAM,
    // so the view below lives or dies by the flash ledger. The GC
    // reserve shrinks the allocatable space so every shard reclaims
    // within the short storm (the crash sweeps use the same trick); each
    // chip carries 1/N of the load but the same geometry, so the reserve
    // grows with the shard count to keep the per-chip pressure on.
    // Gap-precise retention spills only ~one pre-image per resident
    // logical page for the single open view (not one per round), so the
    // reserves sit close to the storm's raw program volume.
    let mut opts = StoreOptions::new(PAGES).with_snapshot_version_cap(4);
    opts.reserve_blocks = match shards {
        1 => 7,
        2 => 11,
        _ => 13,
    };
    opts
}

fn build_pool(shards: usize) -> ShardedBufferPool {
    let store =
        ShardedStore::with_uniform_chips(FlashConfig::scaled(16), shards, KIND, options(shards))
            .expect("store");
    let pool = ShardedBufferPool::new(store, PAGES as usize / 4);
    for pid in 0..PAGES {
        pool.with_page_mut(pid, |p| p.write(0, &seed_image(pid, pool.page_size()))).expect("seed");
    }
    pool.flush_all().expect("seed flush");
    pool
}

fn seed_image(pid: u64, size: usize) -> Vec<u8> {
    (0..size).map(|i| (pid as u8).wrapping_mul(31).wrapping_add(i as u8)).collect()
}

fn round_image(pid: u64, round: u64, size: usize) -> Vec<u8> {
    (0..size).map(|i| (pid as u8) ^ (round as u8).wrapping_mul(97).wrapping_add(i as u8)).collect()
}

/// Commit `ROUNDS` full rewrites of the page space in `PAGES_PER_TXN`
/// transactions (the GC-heavy storm the view must outlive).
fn storm(pool: &ShardedBufferPool) {
    let size = pool.page_size();
    for round in 1..=ROUNDS {
        for chunk in 0..PAGES / PAGES_PER_TXN {
            let txn = pool.begin();
            for pid in chunk * PAGES_PER_TXN..(chunk + 1) * PAGES_PER_TXN {
                pool.with_page_mut_txn(pid, txn, |p| p.write(0, &round_image(pid, round, size)))
                    .expect("stamp");
            }
            pool.commit(txn).expect("commit");
        }
    }
}

#[test]
fn epoch_long_view_reads_open_time_bytes_from_the_flash_ledger() {
    for shards in [1usize, 2, 4] {
        let pool = build_pool(shards);
        let size = pool.page_size();
        let io_before = pool.io_stats();

        pool.with_read_view(|view| {
            // The open-time oracle, captured through the view itself.
            let oracle: Vec<Vec<u8>> = (0..PAGES)
                .map(|pid| pool.with_page_at(view, pid, |pg| pg.to_vec()).expect("open-time read"))
                .collect();
            for pid in 0..PAGES {
                assert_eq!(oracle[pid as usize], seed_image(pid, size), "seed mismatch {pid}");
            }

            storm(&pool);

            // Every pre-image the view needs has long overrun the DRAM
            // cap; each read must still hand back the open-time bytes,
            // now resolved from the flash retention ledger.
            for pid in 0..PAGES {
                let got = pool
                    .with_page_at(view, pid, |pg| pg.to_vec())
                    .expect("a ledger-backed view must never see SnapshotTooOld");
                assert_eq!(
                    got, oracle[pid as usize],
                    "{shards} shard(s): page {pid} diverged from its open-time image"
                );
            }
        });

        let stats = pool.stats();
        assert!(
            stats.spilled_versions > 0,
            "{shards} shard(s): the cap overrun must have spilled versions to flash"
        );
        assert!(
            stats.ledger_hits > 0 && stats.flash_resolves > 0,
            "{shards} shard(s): view reads must have resolved through the ledger \
             (hits={}, resolves={})",
            stats.ledger_hits,
            stats.flash_resolves
        );
        assert_eq!(stats.active_views, 0, "the guard must have released the view");
        let gc = pool.io_stats().delta_since(&io_before).gc;
        assert!(
            gc.total_ops() > 0,
            "{shards} shard(s): the storm must garbage-collect while versions are pinned"
        );

        // Crash without writing anything back: committed state survives,
        // the (released) ledger does not need to.
        let chips = pool.into_store_without_flush().into_shard_chips();
        let store = ShardedStore::recover(chips, KIND, options(shards)).expect("recover");
        let recovered = ShardedBufferPool::new(store, PAGES as usize / 4);
        for pid in 0..PAGES {
            let got = recovered.with_page(pid, |pg| pg.to_vec()).expect("post-crash read");
            assert_eq!(
                got,
                round_image(pid, ROUNDS, size),
                "{shards} shard(s): page {pid} lost committed state across crash + recovery"
            );
        }
    }
}

/// The crash in the middle: the storm runs *while the view is open*, the
/// pool is crashed with the view still registered (spill pages live on
/// flash), and recovery must (a) reclaim the orphaned spill pages as
/// garbage rather than resurrect them and (b) serve the committed end
/// state byte-for-byte.
#[test]
fn crash_with_a_live_ledger_discards_spills_and_keeps_committed_state() {
    let pool = build_pool(2);
    let size = pool.page_size();
    let view = pool.begin_read();
    storm(&pool);
    // Prove the ledger is populated (the crash below orphans it).
    let probe = pool.with_page_at(&view, 0, |pg| pg.to_vec()).expect("ledger read");
    assert_eq!(probe, seed_image(0, size));
    assert!(pool.stats().flash_resolves > 0);
    // Crash with the view never released: `view` is dropped here without
    // `release_read`, exactly what power loss does to an open scan.
    let chips = pool.into_store_without_flush().into_shard_chips();
    let store = ShardedStore::recover(chips, KIND, options(2)).expect("recover");
    let recovered = ShardedBufferPool::new(store, PAGES as usize / 4);
    for pid in 0..PAGES {
        let got = recovered.with_page(pid, |pg| pg.to_vec()).expect("post-crash read");
        assert_eq!(got, round_image(pid, ROUNDS, size), "page {pid} diverged after crash");
    }
    // A fresh view on the recovered pool starts clean: no spilled
    // versions, no ledger traffic, reads come from the live pages.
    let stats = recovered.stats();
    assert_eq!(stats.spilled_versions, 0);
    assert_eq!(stats.ledger_hits, 0);
}
