//! N-writer structural-concurrency oracle: racing latch-coupled writers
//! against a shadow `BTreeMap`.
//!
//! Writers share one `&Database` (durable-commit mode over a sharded PDL
//! store) and mutate registered B+-trees through the crab-walk insert /
//! latch-coupled delete paths while a shadow model records exactly the
//! batches that *committed*. Deliberate aborts — including aborts taken
//! after a batch already forced page splits — and `TxnConflict`
//! abort-and-retry loops run mid-race. After the writers quiesce, every
//! tree must equal its shadow byte for byte, hold its invariants, and
//! the pool must report zero leaked pids and zero live views (aborted
//! split allocations must return to the free list).

use pdl_core::{MethodKind, ShardedStore, StoreOptions};
use pdl_flash::FlashConfig;
use pdl_storage::{BTree, Database, Durability, Key, KeyBuf, StorageError};
use std::collections::BTreeMap;
use std::sync::Mutex;

const KIND: MethodKind = MethodKind::Pdl { max_diff_size: 256 };

fn db(shards: usize, pages: u64) -> Database {
    let store = ShardedStore::with_uniform_chips(
        FlashConfig::scaled(16),
        shards,
        KIND,
        StoreOptions::new(pages).with_checkpoint_blocks(2),
    )
    .unwrap();
    Database::new(Box::new(store), 256).with_durability(Durability::Commit)
}

fn key_of(writer: usize, i: u64) -> Key {
    KeyBuf::new().push_u8(writer as u8).push_u64(i).finish()
}

fn min_key() -> Key {
    KeyBuf::new().push_u8(0).push_u64(0).finish()
}

fn max_key() -> Key {
    KeyBuf::new().push_u8(u8::MAX).push_u64(u64::MAX).finish()
}

/// Everything a committed batch did, for replay into the shadow model.
enum Op {
    Put(usize, u64, u64),
    Del(usize, u64),
}

/// One writer's full run against `tree`: `batches` batches of `per_batch`
/// sequential keys, deleting one earlier key per batch, aborting every
/// fourth batch *after* applying it (so any splits it forced must roll
/// back), retrying from scratch on `TxnConflict`. Committed ops are
/// replayed into `shadow` under its lock, keyed `(writer, i)`.
fn drive_writer(
    db: &Database,
    tree: &BTree,
    shadow: &Mutex<BTreeMap<(usize, u64), u64>>,
    writer: usize,
    batches: u64,
    per_batch: u64,
) -> pdl_storage::Result<()> {
    for b in 0..batches {
        let abort_this = b % 4 == 3;
        'retry: loop {
            let mut ops = Vec::new();
            db.begin()?;
            let batch_op = |r: pdl_storage::Result<()>| -> pdl_storage::Result<bool> {
                match r {
                    Ok(()) => Ok(true),
                    Err(StorageError::TxnConflict { .. }) => {
                        db.abort()?;
                        std::thread::yield_now();
                        Ok(false)
                    }
                    Err(e) => {
                        db.abort()?;
                        Err(e)
                    }
                }
            };
            for i in b * per_batch..(b + 1) * per_batch {
                let v = i * 10 + writer as u64;
                if !batch_op(tree.insert(db, &key_of(writer, i), v))? {
                    continue 'retry;
                }
                ops.push(Op::Put(writer, i, v));
            }
            if b > 0 {
                // Delete one key committed by an earlier batch (never one
                // an aborted batch touched).
                let prior = (b - 1) * per_batch;
                if (b - 1) % 4 != 3 {
                    if !batch_op(tree.delete(db, &key_of(writer, prior)).map(|_| ()))? {
                        continue 'retry;
                    }
                    ops.push(Op::Del(writer, prior));
                }
            }
            if abort_this {
                db.abort()?;
            } else {
                db.commit()?;
                let mut m = shadow.lock().unwrap_or_else(|e| e.into_inner());
                for op in ops {
                    match op {
                        Op::Put(w, i, v) => {
                            m.insert((w, i), v);
                        }
                        Op::Del(w, i) => {
                            m.remove(&(w, i));
                        }
                    }
                }
            }
            break;
        }
    }
    Ok(())
}

/// Collect a tree's full contents in key order as `((writer, i), value)`.
fn dump(db: &Database, tree: &BTree) -> Vec<((usize, u64), u64)> {
    let mut out = Vec::new();
    tree.range(db, &min_key(), &max_key(), |k, v| {
        let w = k[0] as usize;
        let i = u64::from_be_bytes(k[1..9].try_into().unwrap());
        out.push(((w, i), v));
        true
    })
    .unwrap();
    out
}

fn check_clean(db: &Database) {
    let stats = db.buffer_stats();
    assert_eq!(stats.leaked_pids, 0, "aborted split allocations must return to the free list");
    assert_eq!(stats.active_views, 0, "no read view may outlive the run");
}

#[test]
fn n_writers_on_one_shared_tree_match_the_shadow_model() {
    for writers in [2usize, 4, 8] {
        let d = db(2, 512);
        let tree = BTree::create(&d).unwrap();
        let shadow = Mutex::new(BTreeMap::new());
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..writers)
                .map(|w| {
                    let (d, tree, shadow) = (&d, &tree, &shadow);
                    scope.spawn(move || drive_writer(d, tree, shadow, w, 12, 8))
                })
                .collect();
            for h in handles {
                h.join().expect("writer panicked").expect("writer failed");
            }
        });
        tree.check_invariants(&d).unwrap();
        let expect: Vec<_> = shadow.into_inner().unwrap().into_iter().collect();
        assert!(!expect.is_empty());
        assert_eq!(dump(&d, &tree), expect, "{writers} writers: tree diverged from shadow");
        check_clean(&d);
    }
}

#[test]
fn private_and_shared_trees_commit_atomically_across_structs() {
    let writers = 4usize;
    let d = db(2, 512);
    let shared = BTree::create(&d).unwrap();
    let privates: Vec<BTree> = (0..writers).map(|_| BTree::create(&d).unwrap()).collect();
    let shared_shadow = Mutex::new(BTreeMap::new());
    let private_shadows: Vec<Mutex<BTreeMap<(usize, u64), u64>>> =
        (0..writers).map(|_| Mutex::new(BTreeMap::new())).collect();

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..writers)
            .map(|w| {
                let (d, shared, shared_shadow) = (&d, &shared, &shared_shadow);
                let tree = &privates[w];
                let my_shadow = &private_shadows[w];
                scope.spawn(move || -> pdl_storage::Result<()> {
                    for b in 0..10u64 {
                        'retry: loop {
                            d.begin()?;
                            for i in b * 6..(b + 1) * 6 {
                                let both = tree
                                    .insert(d, &key_of(w, i), i)
                                    .and_then(|()| shared.insert(d, &key_of(w, i), i + 1));
                                match both {
                                    Ok(()) => {}
                                    Err(StorageError::TxnConflict { .. }) => {
                                        d.abort()?;
                                        continue 'retry;
                                    }
                                    Err(e) => {
                                        d.abort()?;
                                        return Err(e);
                                    }
                                }
                            }
                            if b % 3 == 2 {
                                // The batch dirtied *both* trees; the abort
                                // must unwind both or neither shadow is
                                // right.
                                d.abort()?;
                            } else {
                                d.commit()?;
                                let mut s = shared_shadow.lock().unwrap_or_else(|e| e.into_inner());
                                let mut p = my_shadow.lock().unwrap_or_else(|e| e.into_inner());
                                for i in b * 6..(b + 1) * 6 {
                                    s.insert((w, i), i + 1);
                                    p.insert((w, i), i);
                                }
                            }
                            break;
                        }
                    }
                    Ok(())
                })
            })
            .collect();
        for h in handles {
            h.join().expect("writer panicked").expect("writer failed");
        }
    });

    shared.check_invariants(&d).unwrap();
    let expect: Vec<_> = shared_shadow.into_inner().unwrap().into_iter().collect();
    assert_eq!(dump(&d, &shared), expect, "shared tree diverged");
    for (w, (tree, shadow)) in privates.iter().zip(private_shadows).enumerate() {
        tree.check_invariants(&d).unwrap();
        let expect: Vec<_> = shadow.into_inner().unwrap().into_iter().collect();
        assert_eq!(dump(&d, tree), expect, "private tree of writer {w} diverged");
    }
    check_clean(&d);
}

#[test]
fn aborts_after_forced_splits_leak_nothing_under_race() {
    let d = db(2, 512);
    let tree = BTree::create(&d).unwrap();
    let shadow = Mutex::new(BTreeMap::new());
    std::thread::scope(|scope| {
        // Writer 0 commits steadily; writers 1..4 insert split-forcing
        // sequential runs and abort every one of them.
        let committer = {
            let (d, tree, shadow) = (&d, &tree, &shadow);
            scope.spawn(move || drive_writer(d, tree, shadow, 0, 16, 6))
        };
        let aborters: Vec<_> = (1..4usize)
            .map(|w| {
                let (d, tree) = (&d, &tree);
                scope.spawn(move || -> pdl_storage::Result<()> {
                    for round in 0..6u64 {
                        'retry: loop {
                            d.begin()?;
                            for i in 0..80u64 {
                                match tree.insert(d, &key_of(w, round * 1000 + i), i) {
                                    Ok(()) => {}
                                    Err(StorageError::TxnConflict { .. }) => {
                                        d.abort()?;
                                        continue 'retry;
                                    }
                                    Err(e) => {
                                        d.abort()?;
                                        return Err(e);
                                    }
                                }
                            }
                            d.abort()?; // roll back the whole split chain
                            break;
                        }
                    }
                    Ok(())
                })
            })
            .collect();
        committer.join().expect("committer panicked").expect("committer failed");
        for h in aborters {
            h.join().expect("aborter panicked").expect("aborter failed");
        }
    });
    tree.check_invariants(&d).unwrap();
    let expect: Vec<_> = shadow.into_inner().unwrap().into_iter().collect();
    assert_eq!(dump(&d, &tree), expect, "aborted split runs must leave no trace");
    check_clean(&d);
}
