//! Error type for the storage engine.

use pdl_core::CoreError;
use std::error::Error;
use std::fmt;

/// What forced the retention discard behind a
/// [`StorageError::SnapshotTooOld`]: which budget tripped, or that the
/// flash retention ledger could not absorb the evicted version.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RetentionTrigger {
    /// The version-count cap (`StoreOptions::snapshot_version_cap`).
    VersionCap,
    /// The byte budget (`StoreOptions::snapshot_retention_bytes`).
    ByteBudget,
    /// The budget tripped *and* the flash retention ledger failed to
    /// absorb a needed version (spill write or read-back failed) — the
    /// hard-limit last resort when the ledger tier is enabled.
    LedgerMiss,
}

impl fmt::Display for RetentionTrigger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RetentionTrigger::VersionCap => "version cap",
            RetentionTrigger::ByteBudget => "byte budget",
            RetentionTrigger::LedgerMiss => "ledger miss",
        })
    }
}

/// Errors surfaced by the storage engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StorageError {
    /// The underlying page store failed.
    Store(CoreError),
    /// A record no longer exists at the given location.
    RecordNotFound { pid: u64, slot: u16 },
    /// A record or key does not fit in a page.
    TooLarge { size: usize, max: usize },
    /// The database ran out of allocatable logical pages.
    OutOfPages,
    /// A page's on-disk structure is inconsistent.
    PageCorrupt(String),
    /// Key already present in a unique index.
    DuplicateKey,
    /// A page is dirty under another uncommitted transaction.
    TxnConflict { pid: u64 },
    /// Every buffer frame is pinned by uncommitted transactions; nothing
    /// can be evicted.
    BufferPinned,
    /// Transaction API misuse (no open transaction, nested begin, ...).
    TxnState(String),
    /// A read view outlived the pool's version retention: the versions it
    /// needs were discarded to keep memory flat (and, when the flash
    /// retention ledger is enabled, could not be spilled). `trigger` says
    /// what forced the discard.
    SnapshotTooOld { read_ts: u64, floor: u64, trigger: RetentionTrigger },
    /// Internal invariant broken.
    Internal(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Store(e) => write!(f, "page store error: {e}"),
            StorageError::RecordNotFound { pid, slot } => {
                write!(f, "no record at page {pid} slot {slot}")
            }
            StorageError::TooLarge { size, max } => {
                write!(f, "record of {size} bytes exceeds page capacity {max}")
            }
            StorageError::OutOfPages => write!(f, "database out of logical pages"),
            StorageError::PageCorrupt(msg) => write!(f, "page corrupt: {msg}"),
            StorageError::DuplicateKey => write!(f, "duplicate key in unique index"),
            StorageError::TxnConflict { pid } => {
                write!(f, "page {pid} is dirty under another uncommitted transaction")
            }
            StorageError::BufferPinned => {
                write!(f, "every buffer frame is pinned by uncommitted transactions")
            }
            StorageError::TxnState(msg) => write!(f, "transaction state error: {msg}"),
            StorageError::SnapshotTooOld { read_ts, floor, trigger } => {
                write!(
                    f,
                    "snapshot too old ({trigger}): view at ts {read_ts} needs versions discarded \
                     up to ts {floor} (raise StoreOptions::snapshot_version_cap or release views \
                     sooner)"
                )
            }
            StorageError::Internal(msg) => write!(f, "internal storage error: {msg}"),
        }
    }
}

impl Error for StorageError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StorageError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for StorageError {
    fn from(e: CoreError) -> Self {
        StorageError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(StorageError::RecordNotFound { pid: 3, slot: 7 }.to_string().contains("slot 7"));
        assert!(StorageError::from(CoreError::StorageFull).to_string().contains("full"));
        assert!(Error::source(&StorageError::Store(CoreError::StorageFull)).is_some());
    }
}
