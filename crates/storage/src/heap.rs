//! Heap files: unordered record storage over slotted pages with an
//! in-memory free-space map.
//!
//! A heap file built with [`HeapFile::create`] (or re-attached with
//! [`HeapFile::attach`]) is **registered** in its database's
//! structure-root log: the ordered page list is versioned by the MVCC
//! commit clock, so a snapshot scan visits exactly the pages the file had
//! at the view's timestamp (growth committed later is invisible), and
//! [`crate::Database::abort`] rolls an uncommitted growth back along with
//! the page bytes. The free-space map is deliberately *not* versioned:
//! readers never consult it, and as an approximation it is self-healing —
//! a stale entry merely costs one failed placement attempt before being
//! refreshed from the page itself.

use crate::db::{Database, RecordId};
use crate::error::StorageError;
use crate::view::{PageRead, StructId, StructRoot};
use crate::{slotted, Result};
use std::collections::HashMap;

/// An unordered collection of variable-length records.
pub struct HeapFile {
    /// Registration in the structure-root log ([`HeapFile::new`] builds
    /// an unregistered file whose page list lives only in this handle).
    id: Option<StructId>,
    /// The page list as of this handle's last operation; registered files
    /// resolve the authoritative list per operation.
    pages: Vec<u64>,
    /// Approximate usable space per page (post-compaction bytes), keyed
    /// by pid. Missing entries are treated as "unknown, try it": the
    /// slotted page itself is the ground truth.
    fsm: HashMap<u64, u16>,
    /// Where the next first-fit scan starts.
    hint: usize,
    /// [`Database::abort_epoch`] as of the last sync: a rollback can
    /// leave `fsm` *under*-estimating restored space (inserts skipped a
    /// page forever without re-probing it), so estimates are dropped
    /// wholesale when the epoch moves and re-warm from the pages.
    fsm_epoch: u64,
    /// Structure-root generation the mirrored `pages` list reflects
    /// (`u64::MAX` = unknown, force a fetch): spares the insert hot path
    /// an O(pages) clone under the registry lock when nothing moved.
    list_gen: u64,
}

impl Default for HeapFile {
    fn default() -> Self {
        HeapFile::new()
    }
}

impl HeapFile {
    /// An unregistered heap file: the page list lives only in this
    /// handle, so snapshot scans are only safe right after the view
    /// opens. Prefer [`HeapFile::create`].
    pub fn new() -> HeapFile {
        HeapFile {
            id: None,
            pages: Vec::new(),
            fsm: HashMap::new(),
            hint: 0,
            fsm_epoch: 0,
            list_gen: u64::MAX,
        }
    }

    /// Create an empty heap file registered in the database's
    /// structure-root log.
    pub fn create(db: &Database) -> HeapFile {
        let id = db.register_struct(StructRoot::Heap { pages: Vec::new() });
        HeapFile {
            id: Some(id),
            pages: Vec::new(),
            fsm: HashMap::new(),
            hint: 0,
            fsm_epoch: db.abort_epoch(),
            list_gen: u64::MAX,
        }
    }

    /// Re-attach a handle over a known page list *and* register it (e.g.
    /// after crash recovery, at the last committed list). The free-space
    /// map starts unknown and re-warms from the pages themselves.
    pub fn attach(db: &Database, pages: Vec<u64>) -> HeapFile {
        let id = db.register_struct(StructRoot::Heap { pages: pages.clone() });
        HeapFile {
            id: Some(id),
            pages,
            fsm: HashMap::new(),
            hint: 0,
            fsm_epoch: db.abort_epoch(),
            list_gen: u64::MAX,
        }
    }

    /// Number of pages as of this handle's last operation.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// The page list as of this handle's last operation. For the
    /// authoritative (or snapshot-resolved) list, use
    /// [`HeapFile::pages_in`].
    pub fn pages(&self) -> &[u64] {
        &self.pages
    }

    /// The page list as `s` resolves it: the current committed list (plus
    /// the open transaction's pending growth for the writer itself), or
    /// the list as of a snapshot's timestamp.
    pub fn pages_in<S: PageRead>(&self, s: &S) -> Vec<u64> {
        match self.id.and_then(|id| s.struct_root(id)) {
            Some(StructRoot::Heap { pages }) => pages,
            _ => self.pages.clone(),
        }
    }

    /// Sync the handle with the database: drop free-space estimates made
    /// stale by any rollback since the last sync, and (for registered
    /// files) refresh the mirrored page list from the structure-root log
    /// when its generation moved — which undoes the local effects of an
    /// aborted growth. (Each `create`/`attach` registers its own
    /// structure: one heap file, one live handle.)
    fn sync(&mut self, db: &Database) {
        let epoch = db.abort_epoch();
        if epoch != self.fsm_epoch {
            self.fsm.clear();
            self.fsm_epoch = epoch;
            // A rollback may have discarded a pending growth the mirror
            // already applied: force a re-fetch.
            self.list_gen = u64::MAX;
        }
        if let Some(id) = self.id {
            if let Some((gen, StructRoot::Heap { pages })) =
                db.struct_current_if_newer(id, self.list_gen)
            {
                self.pages = pages;
                self.list_gen = gen;
            }
        }
    }

    /// Pin the handle at its committed page list and drop its
    /// registration — for carrying the file across a database teardown;
    /// [`HeapFile::register`] it in the rebuilt database after.
    pub fn detach(&mut self, db: &Database) {
        self.pages = self.pages_in(db);
        if let Some(id) = self.id.take() {
            db.deregister_struct(id);
        }
    }

    /// Register the handle's current page list in `db`'s structure-root
    /// log (the second half of the detach/register rebuild protocol).
    pub fn register(&mut self, db: &Database) {
        self.id = Some(db.register_struct(StructRoot::Heap { pages: self.pages.clone() }));
    }

    /// Approximate usable bytes of `pid` (unknown pages read as "plenty":
    /// the attempt itself refreshes the estimate).
    fn usable(&self, pid: u64) -> usize {
        self.fsm.get(&pid).copied().map_or(usize::MAX, |v| v as usize)
    }

    /// Insert a record, appending a fresh page when none fits.
    pub fn insert(&mut self, db: &mut Database, bytes: &[u8]) -> Result<RecordId> {
        self.sync(db);
        // record + slot + slack
        let need = bytes.len() + 8;
        // Try the most recent page first (append-heavy workloads), then a
        // first-fit scan from the rotating hint.
        let mut candidates: Vec<usize> = Vec::with_capacity(4);
        if let Some(last) = self.pages.len().checked_sub(1) {
            candidates.push(last);
        }
        let n = self.pages.len();
        for off in 0..n {
            let i = (self.hint + off) % n;
            if self.usable(self.pages[i]) >= need && Some(&i) != candidates.first() {
                candidates.push(i);
                break;
            }
        }
        for i in candidates {
            let pid = self.pages[i];
            if self.usable(pid) < need {
                continue;
            }
            let (slot, usable) = db.with_page_mut(pid, |p| {
                if !slotted::is_formatted(p.as_slice()) {
                    slotted::init(p);
                }
                let slot = slotted::insert(p, bytes)?;
                Ok::<_, StorageError>((slot, slotted::usable_space(p.as_slice())))
            })??;
            self.fsm.insert(pid, usable as u16);
            if let Some(slot) = slot {
                self.hint = i;
                return Ok(RecordId::new(pid, slot));
            }
        }
        // Grow the file. Registered files allocate structured (a rollback
        // undoes the pending page-list publication and the handle resyncs
        // from the root log, so the pid is safe to reissue); unregistered
        // handles keep their local list across an abort, so their growth
        // stays a raw, stranded-on-rollback allocation.
        let pid = if self.id.is_some() { db.alloc_page_structured() } else { db.alloc_page() }?;
        let (slot, usable) = db.with_page_mut(pid, |p| {
            slotted::init(p);
            let slot = slotted::insert(p, bytes)?;
            Ok::<_, StorageError>((slot, slotted::usable_space(p.as_slice())))
        })??;
        self.pages.push(pid);
        self.fsm.insert(pid, usable as u16);
        self.hint = self.pages.len() - 1;
        // Publish the growth: pending inside a transaction (committed
        // with it, undone by abort), auto-committed onto the
        // structure-root log otherwise — so snapshot scans keep resolving
        // the pre-growth page list.
        if let Some(id) = self.id {
            db.publish_struct(id, StructRoot::Heap { pages: self.pages.clone() });
        }
        slot.map(|s| RecordId::new(pid, s)).ok_or(StorageError::TooLarge {
            size: bytes.len(),
            max: slotted::max_record_size(db.page_size()),
        })
    }

    /// Read a record through a closure (shared borrow: record reads never
    /// mutate heap structure).
    pub fn get<R>(&self, db: &Database, rid: RecordId, f: impl FnOnce(&[u8]) -> R) -> Result<R> {
        self.get_at(db, rid, f)
    }

    /// [`HeapFile::get`] through any [`PageRead`] — e.g. a read-view
    /// snapshot isolated from concurrent writers.
    pub fn get_at<S: PageRead, R>(
        &self,
        s: &S,
        rid: RecordId,
        f: impl FnOnce(&[u8]) -> R,
    ) -> Result<R> {
        s.with_page(rid.pid, |page| {
            slotted::get(page, rid.slot)
                .map(f)
                .ok_or(StorageError::RecordNotFound { pid: rid.pid, slot: rid.slot })
        })?
    }

    /// Update a record in place. Returns the (possibly new) location; the
    /// record moves pages only when its page cannot hold the new size.
    pub fn update(&mut self, db: &mut Database, rid: RecordId, bytes: &[u8]) -> Result<RecordId> {
        let updated = db.with_page_mut(rid.pid, |p| {
            if slotted::get(p.as_slice(), rid.slot).is_none() {
                return Err(StorageError::RecordNotFound { pid: rid.pid, slot: rid.slot });
            }
            let ok = slotted::update(p, rid.slot, bytes)?;
            Ok((ok, slotted::usable_space(p.as_slice())))
        })??;
        self.fsm.insert(rid.pid, updated.1 as u16);
        if updated.0 {
            return Ok(rid);
        }
        // Move: delete here, insert elsewhere.
        self.delete(db, rid)?;
        self.insert(db, bytes)
    }

    /// Delete a record.
    pub fn delete(&mut self, db: &mut Database, rid: RecordId) -> Result<()> {
        let usable = db.with_page_mut(rid.pid, |p| {
            if !slotted::delete(p, rid.slot) {
                return Err(StorageError::RecordNotFound { pid: rid.pid, slot: rid.slot });
            }
            Ok(slotted::usable_space(p.as_slice()))
        })??;
        self.fsm.insert(rid.pid, usable as u16);
        Ok(())
    }

    /// Visit every live record.
    pub fn scan(&self, db: &Database, f: impl FnMut(RecordId, &[u8])) -> Result<()> {
        self.scan_at(db, f)
    }

    /// [`HeapFile::scan`] through any [`PageRead`] snapshot: the visited
    /// page list is resolved through the structure-root log, so growth
    /// committed after the view opened is invisible — even through a
    /// stale handle.
    pub fn scan_at<S: PageRead>(&self, s: &S, mut f: impl FnMut(RecordId, &[u8])) -> Result<()> {
        let resolved = self.id.and_then(|id| s.struct_root(id));
        let pages: &[u64] = match &resolved {
            Some(StructRoot::Heap { pages }) => pages,
            _ => &self.pages,
        };
        for pid in pages {
            s.with_page(*pid, |page| {
                if slotted::is_formatted(page) {
                    for (slot, bytes) in slotted::iter(page) {
                        f(RecordId::new(*pid, slot), bytes);
                    }
                }
            })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdl_core::{build_store, MethodKind, StoreOptions};
    use pdl_flash::{FlashChip, FlashConfig};

    fn db(pages: u64) -> Database {
        let chip = FlashChip::new(FlashConfig::scaled(8));
        let store = build_store(chip, MethodKind::Opu, StoreOptions::new(pages)).unwrap();
        Database::new(store, 8)
    }

    #[test]
    fn insert_get_round_trip() {
        let mut d = db(64);
        let mut h = HeapFile::new();
        let rid = h.insert(&mut d, b"record one").unwrap();
        let got = h.get(&d, rid, |b| b.to_vec()).unwrap();
        assert_eq!(got, b"record one");
    }

    #[test]
    fn grows_over_many_pages_and_scans_all() {
        let mut d = db(64);
        let mut h = HeapFile::new();
        let mut rids = Vec::new();
        for i in 0..500u32 {
            let rec = vec![i as u8; 100];
            rids.push(h.insert(&mut d, &rec).unwrap());
        }
        assert!(h.num_pages() > 10, "spread over pages: {}", h.num_pages());
        let mut seen = 0;
        h.scan(&d, |_, bytes| {
            assert_eq!(bytes.len(), 100);
            seen += 1;
        })
        .unwrap();
        assert_eq!(seen, 500);
        // Spot-check a few.
        for (i, rid) in rids.iter().enumerate().step_by(97) {
            let b = h.get(&d, *rid, |b| b[0]).unwrap();
            assert_eq!(b, i as u8);
        }
    }

    #[test]
    fn update_in_place_and_moving() {
        let mut d = db(64);
        let mut h = HeapFile::new();
        // Fill one page so in-page growth is impossible.
        let first = h.insert(&mut d, &[1u8; 400]).unwrap();
        while h.num_pages() == 1 {
            h.insert(&mut d, &[2u8; 400]).unwrap();
        }
        let same = h.update(&mut d, first, &[3u8; 400]).unwrap();
        assert_eq!(same, first, "equal size stays");
        let moved = h.update(&mut d, first, &[4u8; 1500]).unwrap();
        assert_ne!(moved.pid, first.pid, "grown record relocates");
        assert_eq!(h.get(&d, moved, |b| b.len()).unwrap(), 1500);
        assert!(h.get(&d, first, |_| ()).is_err(), "old location gone");
    }

    #[test]
    fn delete_then_reuse_space() {
        let mut d = db(64);
        let mut h = HeapFile::new();
        let mut rids = Vec::new();
        for _ in 0..18 {
            rids.push(h.insert(&mut d, &[5u8; 100]).unwrap());
        }
        let pages_before = h.num_pages();
        for rid in &rids {
            h.delete(&mut d, *rid).unwrap();
        }
        for _ in 0..18 {
            h.insert(&mut d, &[6u8; 100]).unwrap();
        }
        assert_eq!(h.num_pages(), pages_before, "deleted space was reused");
    }

    #[test]
    fn missing_records_error() {
        let mut d = db(64);
        let mut h = HeapFile::new();
        let rid = h.insert(&mut d, b"x").unwrap();
        h.delete(&mut d, rid).unwrap();
        assert!(matches!(h.get(&d, rid, |_| ()), Err(StorageError::RecordNotFound { .. })));
        assert!(h.delete(&mut d, rid).is_err());
    }

    #[test]
    fn snapshot_scan_resolves_the_view_time_page_list() {
        let mut d = db(64);
        let mut h = HeapFile::create(&d);
        for i in 0..40u8 {
            h.insert(&mut d, &[i; 100]).unwrap();
        }
        let view = d.begin_read();
        let pages_at_view = h.pages_in(&d);
        // Grow the file while the view is open.
        for i in 40..120u8 {
            h.insert(&mut d, &[i; 100]).unwrap();
        }
        assert!(h.num_pages() > pages_at_view.len(), "the churn grew the file");
        // The stale handle's snapshot scan resolves the view-time list:
        // exactly the first 40 records, none of the later growth.
        let snap = d.snapshot(&view);
        assert_eq!(h.pages_in(&snap), pages_at_view);
        let mut seen = Vec::new();
        h.scan_at(&snap, |_, bytes| seen.push(bytes[0])).unwrap();
        seen.sort_unstable();
        assert_eq!(seen, (0..40).collect::<Vec<u8>>());
        let _ = snap;
        d.release_read(view);
        // Current scans see everything.
        let mut n = 0;
        h.scan(&d, |_, _| n += 1).unwrap();
        assert_eq!(n, 120);
    }

    #[test]
    fn abort_rolls_back_heap_growth() {
        let mut d = db(64);
        let mut h = HeapFile::create(&d);
        for i in 0..10u8 {
            h.insert(&mut d, &[i; 100]).unwrap();
        }
        let pages_before = h.pages_in(&d);
        d.begin().unwrap();
        for i in 10..60u8 {
            h.insert(&mut d, &[i; 100]).unwrap();
        }
        assert!(h.pages_in(&d).len() > pages_before.len(), "the transaction grew the file");
        d.abort().unwrap();
        assert_eq!(h.pages_in(&d), pages_before, "growth rolled back");
        let mut seen = Vec::new();
        h.scan(&d, |_, bytes| seen.push(bytes[0])).unwrap();
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<u8>>());
        // The file keeps working after the rollback.
        for i in 10..30u8 {
            h.insert(&mut d, &[i; 100]).unwrap();
        }
        let mut n = 0;
        h.scan(&d, |_, _| n += 1).unwrap();
        assert_eq!(n, 30);
    }
}
