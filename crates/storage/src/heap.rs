//! Heap files: unordered record storage over slotted pages with an
//! in-memory free-space map.
//!
//! A heap file built with [`HeapFile::create`] (or re-attached with
//! [`HeapFile::attach`]) is **registered** in its database's
//! structure-root log: the ordered page list is versioned by the MVCC
//! commit clock, so a snapshot scan visits exactly the pages the file had
//! at the view's timestamp (growth committed later is invisible), and
//! [`crate::Database::abort`] rolls an uncommitted growth back along with
//! the page bytes. The free-space map is deliberately *not* versioned:
//! readers never consult it, and as an approximation it is self-healing —
//! a stale entry merely costs one failed placement attempt before being
//! refreshed from the page itself.
//!
//! # Concurrency
//!
//! Mutators take `&self` + `&Database`: the handle's placement state
//! (page list mirror, free-space map, rotation hint) lives behind one
//! mutex, which serializes structural mutation *per file* — concurrent
//! inserts into different heap files proceed in parallel, and readers
//! never touch the mutex. Page latches are unnecessary here: unlike a
//! B+-tree, a heap file has no cross-page invariants a reader could see
//! torn (the page list only ever appends, atomically through the
//! structure-root log), so the per-file mutex is the whole protocol. The
//! mutex is acquired *before* any pool lock and never while one is held,
//! keeping the global lock order acyclic. Concurrent mutation of one
//! file through *distinct handles* remains unsupported (each
//! `create`/`attach` registers its own structure: one file, one live
//! handle — clone the `Arc`-held handle instead).

use crate::db::{Database, RecordId};
use crate::error::StorageError;
use crate::view::{PageRead, StructId, StructRoot};
use crate::{slotted, Result};
use std::collections::HashMap;
use std::sync::Mutex;

/// The per-file placement state, behind [`HeapFile`]'s mutex.
struct HeapState {
    /// The page list as of this handle's last operation; registered files
    /// resolve the authoritative list per operation.
    pages: Vec<u64>,
    /// Approximate usable space per page (post-compaction bytes), keyed
    /// by pid. Missing entries are treated as "unknown, try it": the
    /// slotted page itself is the ground truth.
    fsm: HashMap<u64, u16>,
    /// Where the next first-fit scan starts.
    hint: usize,
    /// [`Database::abort_epoch`] as of the last sync: a rollback can
    /// leave `fsm` *under*-estimating restored space (inserts skipped a
    /// page forever without re-probing it), so estimates are dropped
    /// wholesale when the epoch moves and re-warm from the pages.
    fsm_epoch: u64,
    /// Structure-root generation the mirrored `pages` list reflects
    /// (`u64::MAX` = unknown, force a fetch): spares the insert hot path
    /// an O(pages) clone under the registry lock when nothing moved.
    list_gen: u64,
}

impl HeapState {
    fn fresh(pages: Vec<u64>, fsm_epoch: u64) -> HeapState {
        HeapState { pages, fsm: HashMap::new(), hint: 0, fsm_epoch, list_gen: u64::MAX }
    }

    /// Sync with the database: drop free-space estimates made stale by
    /// any rollback since the last sync, and (for registered files)
    /// refresh the mirrored page list from the structure-root log when
    /// its generation moved — which undoes the local effects of an
    /// aborted growth.
    fn sync(&mut self, id: Option<StructId>, db: &Database) {
        let epoch = db.abort_epoch();
        if epoch != self.fsm_epoch {
            self.fsm.clear();
            self.fsm_epoch = epoch;
            // A rollback may have discarded a pending growth the mirror
            // already applied: force a re-fetch.
            self.list_gen = u64::MAX;
        }
        if let Some(id) = id {
            if let Some((gen, StructRoot::Heap { pages })) =
                db.struct_current_if_newer(id, self.list_gen)
            {
                self.pages = pages;
                self.list_gen = gen;
            }
        }
    }

    /// Approximate usable bytes of `pid` (unknown pages read as "plenty":
    /// the attempt itself refreshes the estimate).
    fn usable(&self, pid: u64) -> usize {
        self.fsm.get(&pid).copied().map_or(usize::MAX, |v| v as usize)
    }
}

/// An unordered collection of variable-length records.
pub struct HeapFile {
    /// Registration in the structure-root log ([`HeapFile::new`] builds
    /// an unregistered file whose page list lives only in this handle).
    id: Option<StructId>,
    state: Mutex<HeapState>,
}

impl Default for HeapFile {
    fn default() -> Self {
        HeapFile::new()
    }
}

impl HeapFile {
    /// An unregistered heap file: the page list lives only in this
    /// handle, so snapshot scans are only safe right after the view
    /// opens. Prefer [`HeapFile::create`].
    pub fn new() -> HeapFile {
        HeapFile { id: None, state: Mutex::new(HeapState::fresh(Vec::new(), 0)) }
    }

    /// Create an empty heap file registered in the database's
    /// structure-root log.
    pub fn create(db: &Database) -> HeapFile {
        let id = db.register_struct(StructRoot::Heap { pages: Vec::new() });
        HeapFile { id: Some(id), state: Mutex::new(HeapState::fresh(Vec::new(), db.abort_epoch())) }
    }

    /// Re-attach a handle over a known page list *and* register it. This
    /// is the compatibility path for callers that remembered the list
    /// themselves; after a crash, prefer
    /// [`crate::Database::recover_structures`], which rebuilds every
    /// registered file from the store's checkpointed root log alone. The
    /// free-space map starts unknown and re-warms from the pages.
    pub fn attach(db: &Database, pages: Vec<u64>) -> HeapFile {
        let id = db.register_struct(StructRoot::Heap { pages: pages.clone() });
        HeapFile { id: Some(id), state: Mutex::new(HeapState::fresh(pages, db.abort_epoch())) }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HeapState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Number of pages as of this handle's last operation.
    pub fn num_pages(&self) -> usize {
        self.lock().pages.len()
    }

    /// The page list as of this handle's last operation. For the
    /// authoritative (or snapshot-resolved) list, use
    /// [`HeapFile::pages_in`].
    pub fn pages(&self) -> Vec<u64> {
        self.lock().pages.clone()
    }

    /// The page list as `s` resolves it: the current committed list (plus
    /// the open transaction's pending growth for the writer itself), or
    /// the list as of a snapshot's timestamp.
    pub fn pages_in<S: PageRead>(&self, s: &S) -> Vec<u64> {
        match self.id.and_then(|id| s.struct_root(id)) {
            Some(StructRoot::Heap { pages }) => pages,
            _ => self.lock().pages.clone(),
        }
    }

    /// Pin the handle at its committed page list and drop its
    /// registration — for carrying the file across a database teardown;
    /// [`HeapFile::register`] it in the rebuilt database after.
    pub fn detach(&mut self, db: &Database) {
        let pages = self.pages_in(db);
        self.lock().pages = pages;
        if let Some(id) = self.id.take() {
            db.deregister_struct(id);
        }
    }

    /// Register the handle's current page list in `db`'s structure-root
    /// log (the second half of the detach/register rebuild protocol).
    pub fn register(&mut self, db: &Database) {
        let pages = self.lock().pages.clone();
        self.id = Some(db.register_struct(StructRoot::Heap { pages }));
    }

    /// Insert a record, appending a fresh page when none fits. The
    /// per-file mutex is held for the duration: placement (free-space
    /// probing, growth, the page-list publication) is serialized per
    /// file, while other files — and all readers — proceed in parallel.
    pub fn insert(&self, db: &Database, bytes: &[u8]) -> Result<RecordId> {
        let mut st = self.lock();
        st.sync(self.id, db);
        // record + slot + slack
        let need = bytes.len() + 8;
        // Try the most recent page first (append-heavy workloads), then a
        // first-fit scan from the rotating hint.
        let mut candidates: Vec<usize> = Vec::with_capacity(4);
        if let Some(last) = st.pages.len().checked_sub(1) {
            candidates.push(last);
        }
        let n = st.pages.len();
        for off in 0..n {
            let i = (st.hint + off) % n;
            if st.usable(st.pages[i]) >= need && Some(&i) != candidates.first() {
                candidates.push(i);
                break;
            }
        }
        for i in candidates {
            let pid = st.pages[i];
            if st.usable(pid) < need {
                continue;
            }
            let (slot, usable) = db.with_page_mut(pid, |p| {
                if !slotted::is_formatted(p.as_slice()) {
                    slotted::init(p);
                }
                let slot = slotted::insert(p, bytes)?;
                Ok::<_, StorageError>((slot, slotted::usable_space(p.as_slice())))
            })??;
            st.fsm.insert(pid, usable as u16);
            if let Some(slot) = slot {
                st.hint = i;
                return Ok(RecordId::new(pid, slot));
            }
        }
        // Grow the file. Registered files allocate structured (a rollback
        // undoes the pending page-list publication and the handle resyncs
        // from the root log, so the pid is safe to reissue); unregistered
        // handles keep their local list across an abort, so their growth
        // stays a raw, stranded-on-rollback allocation.
        let span = db.struct_span_start();
        let pid = if self.id.is_some() { db.alloc_page_structured() } else { db.alloc_page() }?;
        let (slot, usable) = db.with_page_mut(pid, |p| {
            slotted::init(p);
            let slot = slotted::insert(p, bytes)?;
            Ok::<_, StorageError>((slot, slotted::usable_space(p.as_slice())))
        })??;
        st.pages.push(pid);
        st.fsm.insert(pid, usable as u16);
        st.hint = st.pages.len() - 1;
        // Publish the growth: pending inside a transaction (committed
        // with it, undone by abort), auto-committed onto the
        // structure-root log otherwise — so snapshot scans keep resolving
        // the pre-growth page list.
        if let Some(id) = self.id {
            db.publish_struct(id, StructRoot::Heap { pages: st.pages.clone() });
        }
        db.struct_span("heap-grow", pid, span);
        slot.map(|s| RecordId::new(pid, s)).ok_or(StorageError::TooLarge {
            size: bytes.len(),
            max: slotted::max_record_size(db.page_size()),
        })
    }

    /// Read a record through a closure (shared borrow: record reads never
    /// mutate heap structure).
    pub fn get<R>(&self, db: &Database, rid: RecordId, f: impl FnOnce(&[u8]) -> R) -> Result<R> {
        self.get_at(db, rid, f)
    }

    /// [`HeapFile::get`] through any [`PageRead`] — e.g. a read-view
    /// snapshot isolated from concurrent writers.
    pub fn get_at<S: PageRead, R>(
        &self,
        s: &S,
        rid: RecordId,
        f: impl FnOnce(&[u8]) -> R,
    ) -> Result<R> {
        s.with_page(rid.pid, |page| {
            slotted::get(page, rid.slot)
                .map(f)
                .ok_or(StorageError::RecordNotFound { pid: rid.pid, slot: rid.slot })
        })?
    }

    /// Update a record in place. Returns the (possibly new) location; the
    /// record moves pages only when its page cannot hold the new size.
    pub fn update(&self, db: &Database, rid: RecordId, bytes: &[u8]) -> Result<RecordId> {
        let updated = db.with_page_mut(rid.pid, |p| {
            if slotted::get(p.as_slice(), rid.slot).is_none() {
                return Err(StorageError::RecordNotFound { pid: rid.pid, slot: rid.slot });
            }
            let ok = slotted::update(p, rid.slot, bytes)?;
            Ok((ok, slotted::usable_space(p.as_slice())))
        })??;
        self.lock().fsm.insert(rid.pid, updated.1 as u16);
        if updated.0 {
            return Ok(rid);
        }
        // Move: delete here, insert elsewhere (each takes the per-file
        // mutex itself — it is not held across the two steps).
        self.delete(db, rid)?;
        self.insert(db, bytes)
    }

    /// Delete a record.
    pub fn delete(&self, db: &Database, rid: RecordId) -> Result<()> {
        let usable = db.with_page_mut(rid.pid, |p| {
            if !slotted::delete(p, rid.slot) {
                return Err(StorageError::RecordNotFound { pid: rid.pid, slot: rid.slot });
            }
            Ok(slotted::usable_space(p.as_slice()))
        })??;
        self.lock().fsm.insert(rid.pid, usable as u16);
        Ok(())
    }

    /// Visit every live record.
    pub fn scan(&self, db: &Database, f: impl FnMut(RecordId, &[u8])) -> Result<()> {
        self.scan_at(db, f)
    }

    /// [`HeapFile::scan`] through any [`PageRead`] snapshot: the visited
    /// page list is resolved through the structure-root log, so growth
    /// committed after the view opened is invisible — even through a
    /// stale handle.
    pub fn scan_at<S: PageRead>(&self, s: &S, mut f: impl FnMut(RecordId, &[u8])) -> Result<()> {
        let pages: Vec<u64> = match self.id.and_then(|id| s.struct_root(id)) {
            Some(StructRoot::Heap { pages }) => pages,
            _ => self.lock().pages.clone(),
        };
        for pid in pages {
            s.with_page(pid, |page| {
                if slotted::is_formatted(page) {
                    for (slot, bytes) in slotted::iter(page) {
                        f(RecordId::new(pid, slot), bytes);
                    }
                }
            })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdl_core::{build_store, MethodKind, StoreOptions};
    use pdl_flash::{FlashChip, FlashConfig};

    fn db(pages: u64) -> Database {
        let chip = FlashChip::new(FlashConfig::scaled(8));
        let store = build_store(chip, MethodKind::Opu, StoreOptions::new(pages)).unwrap();
        Database::new(store, 8)
    }

    #[test]
    fn insert_get_round_trip() {
        let d = db(64);
        let h = HeapFile::new();
        let rid = h.insert(&d, b"record one").unwrap();
        let got = h.get(&d, rid, |b| b.to_vec()).unwrap();
        assert_eq!(got, b"record one");
    }

    #[test]
    fn grows_over_many_pages_and_scans_all() {
        let d = db(64);
        let h = HeapFile::new();
        let mut rids = Vec::new();
        for i in 0..500u32 {
            let rec = vec![i as u8; 100];
            rids.push(h.insert(&d, &rec).unwrap());
        }
        assert!(h.num_pages() > 10, "spread over pages: {}", h.num_pages());
        let mut seen = 0;
        h.scan(&d, |_, bytes| {
            assert_eq!(bytes.len(), 100);
            seen += 1;
        })
        .unwrap();
        assert_eq!(seen, 500);
        // Spot-check a few.
        for (i, rid) in rids.iter().enumerate().step_by(97) {
            let b = h.get(&d, *rid, |b| b[0]).unwrap();
            assert_eq!(b, i as u8);
        }
    }

    #[test]
    fn update_in_place_and_moving() {
        let d = db(64);
        let h = HeapFile::new();
        // Fill one page so in-page growth is impossible.
        let first = h.insert(&d, &[1u8; 400]).unwrap();
        while h.num_pages() == 1 {
            h.insert(&d, &[2u8; 400]).unwrap();
        }
        let same = h.update(&d, first, &[3u8; 400]).unwrap();
        assert_eq!(same, first, "equal size stays");
        let moved = h.update(&d, first, &[4u8; 1500]).unwrap();
        assert_ne!(moved.pid, first.pid, "grown record relocates");
        assert_eq!(h.get(&d, moved, |b| b.len()).unwrap(), 1500);
        assert!(h.get(&d, first, |_| ()).is_err(), "old location gone");
    }

    #[test]
    fn delete_then_reuse_space() {
        let d = db(64);
        let h = HeapFile::new();
        let mut rids = Vec::new();
        for _ in 0..18 {
            rids.push(h.insert(&d, &[5u8; 100]).unwrap());
        }
        let pages_before = h.num_pages();
        for rid in &rids {
            h.delete(&d, *rid).unwrap();
        }
        for _ in 0..18 {
            h.insert(&d, &[6u8; 100]).unwrap();
        }
        assert_eq!(h.num_pages(), pages_before, "deleted space was reused");
    }

    #[test]
    fn missing_records_error() {
        let d = db(64);
        let h = HeapFile::new();
        let rid = h.insert(&d, b"x").unwrap();
        h.delete(&d, rid).unwrap();
        assert!(matches!(h.get(&d, rid, |_| ()), Err(StorageError::RecordNotFound { .. })));
        assert!(h.delete(&d, rid).is_err());
    }

    #[test]
    fn snapshot_scan_resolves_the_view_time_page_list() {
        let d = db(64);
        let h = HeapFile::create(&d);
        for i in 0..40u8 {
            h.insert(&d, &[i; 100]).unwrap();
        }
        let view = d.begin_read();
        let pages_at_view = h.pages_in(&d);
        // Grow the file while the view is open.
        for i in 40..120u8 {
            h.insert(&d, &[i; 100]).unwrap();
        }
        assert!(h.num_pages() > pages_at_view.len(), "the churn grew the file");
        // The stale handle's snapshot scan resolves the view-time list:
        // exactly the first 40 records, none of the later growth.
        let snap = d.snapshot(&view);
        assert_eq!(h.pages_in(&snap), pages_at_view);
        let mut seen = Vec::new();
        h.scan_at(&snap, |_, bytes| seen.push(bytes[0])).unwrap();
        seen.sort_unstable();
        assert_eq!(seen, (0..40).collect::<Vec<u8>>());
        let _ = snap;
        d.release_read(view);
        // Current scans see everything.
        let mut n = 0;
        h.scan(&d, |_, _| n += 1).unwrap();
        assert_eq!(n, 120);
    }

    #[test]
    fn abort_rolls_back_heap_growth() {
        let d = db(64);
        let h = HeapFile::create(&d);
        for i in 0..10u8 {
            h.insert(&d, &[i; 100]).unwrap();
        }
        let pages_before = h.pages_in(&d);
        d.begin().unwrap();
        for i in 10..60u8 {
            h.insert(&d, &[i; 100]).unwrap();
        }
        assert!(h.pages_in(&d).len() > pages_before.len(), "the transaction grew the file");
        d.abort().unwrap();
        assert_eq!(h.pages_in(&d), pages_before, "growth rolled back");
        let mut seen = Vec::new();
        h.scan(&d, |_, bytes| seen.push(bytes[0])).unwrap();
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<u8>>());
        // The file keeps working after the rollback.
        for i in 10..30u8 {
            h.insert(&d, &[i; 100]).unwrap();
        }
        let mut n = 0;
        h.scan(&d, |_, _| n += 1).unwrap();
        assert_eq!(n, 30);
    }

    #[test]
    fn concurrent_inserts_into_two_files_proceed_in_parallel() {
        // Two files, four threads (two per file): per-file serialization
        // only — both files grow, every record lands, nothing is lost.
        let d = db(128);
        let a = HeapFile::create(&d);
        let b = HeapFile::create(&d);
        std::thread::scope(|scope| {
            for (f, tag) in [(&a, 1u8), (&a, 2), (&b, 3), (&b, 4)] {
                let d = &d;
                scope.spawn(move || {
                    for _ in 0..60 {
                        f.insert(d, &[tag; 100]).unwrap();
                    }
                });
            }
        });
        let (mut na, mut nb) = (0, 0);
        a.scan(&d, |_, bytes| {
            assert!(bytes[0] == 1 || bytes[0] == 2);
            na += 1;
        })
        .unwrap();
        b.scan(&d, |_, bytes| {
            assert!(bytes[0] == 3 || bytes[0] == 4);
            nb += 1;
        })
        .unwrap();
        assert_eq!((na, nb), (120, 120));
    }
}
