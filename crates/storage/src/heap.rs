//! Heap files: unordered record storage over slotted pages with an
//! in-memory free-space map.

use crate::db::{Database, RecordId};
use crate::error::StorageError;
use crate::view::PageRead;
use crate::{slotted, Result};

/// An unordered collection of variable-length records.
pub struct HeapFile {
    pages: Vec<u64>,
    /// Approximate usable space per page (post-compaction bytes).
    fsm: Vec<u16>,
    /// Where the next first-fit scan starts.
    hint: usize,
}

impl Default for HeapFile {
    fn default() -> Self {
        HeapFile::new()
    }
}

impl HeapFile {
    pub fn new() -> HeapFile {
        HeapFile { pages: Vec::new(), fsm: Vec::new(), hint: 0 }
    }

    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    pub fn pages(&self) -> &[u64] {
        &self.pages
    }

    /// Insert a record, appending a fresh page when none fits.
    pub fn insert(&mut self, db: &mut Database, bytes: &[u8]) -> Result<RecordId> {
        // record + slot + slack
        let need = bytes.len() + 8;
        // Try the most recent page first (append-heavy workloads), then a
        // first-fit scan from the rotating hint.
        let mut candidates: Vec<usize> = Vec::with_capacity(4);
        if let Some(last) = self.pages.len().checked_sub(1) {
            candidates.push(last);
        }
        let n = self.pages.len();
        for off in 0..n {
            let i = (self.hint + off) % n;
            if self.fsm[i] as usize >= need && Some(&i) != candidates.first() {
                candidates.push(i);
                break;
            }
        }
        for i in candidates {
            if (self.fsm[i] as usize) < need {
                continue;
            }
            let pid = self.pages[i];
            let (slot, usable) = db.with_page_mut(pid, |p| {
                if !slotted::is_formatted(p.as_slice()) {
                    slotted::init(p);
                }
                let slot = slotted::insert(p, bytes)?;
                Ok::<_, StorageError>((slot, slotted::usable_space(p.as_slice())))
            })??;
            self.fsm[i] = usable as u16;
            if let Some(slot) = slot {
                self.hint = i;
                return Ok(RecordId::new(pid, slot));
            }
        }
        // Grow the file.
        let pid = db.alloc_page()?;
        let (slot, usable) = db.with_page_mut(pid, |p| {
            slotted::init(p);
            let slot = slotted::insert(p, bytes)?;
            Ok::<_, StorageError>((slot, slotted::usable_space(p.as_slice())))
        })??;
        self.pages.push(pid);
        self.fsm.push(usable as u16);
        self.hint = self.pages.len() - 1;
        slot.map(|s| RecordId::new(pid, s)).ok_or(StorageError::TooLarge {
            size: bytes.len(),
            max: slotted::max_record_size(db.page_size()),
        })
    }

    /// Read a record through a closure (shared borrow: record reads never
    /// mutate heap structure).
    pub fn get<R>(&self, db: &Database, rid: RecordId, f: impl FnOnce(&[u8]) -> R) -> Result<R> {
        self.get_at(db, rid, f)
    }

    /// [`HeapFile::get`] through any [`PageRead`] — e.g. a read-view
    /// snapshot isolated from concurrent writers.
    pub fn get_at<S: PageRead, R>(
        &self,
        s: &S,
        rid: RecordId,
        f: impl FnOnce(&[u8]) -> R,
    ) -> Result<R> {
        s.with_page(rid.pid, |page| {
            slotted::get(page, rid.slot)
                .map(f)
                .ok_or(StorageError::RecordNotFound { pid: rid.pid, slot: rid.slot })
        })?
    }

    /// Update a record in place. Returns the (possibly new) location; the
    /// record moves pages only when its page cannot hold the new size.
    pub fn update(&mut self, db: &mut Database, rid: RecordId, bytes: &[u8]) -> Result<RecordId> {
        let updated = db.with_page_mut(rid.pid, |p| {
            if slotted::get(p.as_slice(), rid.slot).is_none() {
                return Err(StorageError::RecordNotFound { pid: rid.pid, slot: rid.slot });
            }
            let ok = slotted::update(p, rid.slot, bytes)?;
            Ok((ok, slotted::usable_space(p.as_slice())))
        })??;
        if let Some(i) = self.pages.iter().position(|p| *p == rid.pid) {
            self.fsm[i] = updated.1 as u16;
        }
        if updated.0 {
            return Ok(rid);
        }
        // Move: delete here, insert elsewhere.
        self.delete(db, rid)?;
        self.insert(db, bytes)
    }

    /// Delete a record.
    pub fn delete(&mut self, db: &mut Database, rid: RecordId) -> Result<()> {
        let usable = db.with_page_mut(rid.pid, |p| {
            if !slotted::delete(p, rid.slot) {
                return Err(StorageError::RecordNotFound { pid: rid.pid, slot: rid.slot });
            }
            Ok(slotted::usable_space(p.as_slice()))
        })??;
        if let Some(i) = self.pages.iter().position(|p| *p == rid.pid) {
            self.fsm[i] = usable as u16;
        }
        Ok(())
    }

    /// Visit every live record.
    pub fn scan(&self, db: &Database, f: impl FnMut(RecordId, &[u8])) -> Result<()> {
        self.scan_at(db, f)
    }

    /// [`HeapFile::scan`] through any [`PageRead`] snapshot.
    pub fn scan_at<S: PageRead>(&self, s: &S, mut f: impl FnMut(RecordId, &[u8])) -> Result<()> {
        for pid in &self.pages {
            s.with_page(*pid, |page| {
                if slotted::is_formatted(page) {
                    for (slot, bytes) in slotted::iter(page) {
                        f(RecordId::new(*pid, slot), bytes);
                    }
                }
            })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdl_core::{build_store, MethodKind, StoreOptions};
    use pdl_flash::{FlashChip, FlashConfig};

    fn db(pages: u64) -> Database {
        let chip = FlashChip::new(FlashConfig::scaled(8));
        let store = build_store(chip, MethodKind::Opu, StoreOptions::new(pages)).unwrap();
        Database::new(store, 8)
    }

    #[test]
    fn insert_get_round_trip() {
        let mut d = db(64);
        let mut h = HeapFile::new();
        let rid = h.insert(&mut d, b"record one").unwrap();
        let got = h.get(&d, rid, |b| b.to_vec()).unwrap();
        assert_eq!(got, b"record one");
    }

    #[test]
    fn grows_over_many_pages_and_scans_all() {
        let mut d = db(64);
        let mut h = HeapFile::new();
        let mut rids = Vec::new();
        for i in 0..500u32 {
            let rec = vec![i as u8; 100];
            rids.push(h.insert(&mut d, &rec).unwrap());
        }
        assert!(h.num_pages() > 10, "spread over pages: {}", h.num_pages());
        let mut seen = 0;
        h.scan(&d, |_, bytes| {
            assert_eq!(bytes.len(), 100);
            seen += 1;
        })
        .unwrap();
        assert_eq!(seen, 500);
        // Spot-check a few.
        for (i, rid) in rids.iter().enumerate().step_by(97) {
            let b = h.get(&d, *rid, |b| b[0]).unwrap();
            assert_eq!(b, i as u8);
        }
    }

    #[test]
    fn update_in_place_and_moving() {
        let mut d = db(64);
        let mut h = HeapFile::new();
        // Fill one page so in-page growth is impossible.
        let first = h.insert(&mut d, &[1u8; 400]).unwrap();
        while h.num_pages() == 1 {
            h.insert(&mut d, &[2u8; 400]).unwrap();
        }
        let same = h.update(&mut d, first, &[3u8; 400]).unwrap();
        assert_eq!(same, first, "equal size stays");
        let moved = h.update(&mut d, first, &[4u8; 1500]).unwrap();
        assert_ne!(moved.pid, first.pid, "grown record relocates");
        assert_eq!(h.get(&d, moved, |b| b.len()).unwrap(), 1500);
        assert!(h.get(&d, first, |_| ()).is_err(), "old location gone");
    }

    #[test]
    fn delete_then_reuse_space() {
        let mut d = db(64);
        let mut h = HeapFile::new();
        let mut rids = Vec::new();
        for _ in 0..18 {
            rids.push(h.insert(&mut d, &[5u8; 100]).unwrap());
        }
        let pages_before = h.num_pages();
        for rid in &rids {
            h.delete(&mut d, *rid).unwrap();
        }
        for _ in 0..18 {
            h.insert(&mut d, &[6u8; 100]).unwrap();
        }
        assert_eq!(h.num_pages(), pages_before, "deleted space was reused");
    }

    #[test]
    fn missing_records_error() {
        let mut d = db(64);
        let mut h = HeapFile::new();
        let rid = h.insert(&mut d, b"x").unwrap();
        h.delete(&mut d, rid).unwrap();
        assert!(matches!(h.get(&d, rid, |_| ()), Err(StorageError::RecordNotFound { .. })));
        assert!(h.delete(&mut d, rid).is_err());
    }
}
