//! The DBMS buffer pool.
//!
//! An LRU page cache over any [`PageStore`]. The pool is the point where
//! the paper's two coupling styles meet the storage engine:
//!
//! * every mutation goes through [`BufferPool::with_page_mut`], whose
//!   [`PageMut`] records the changed byte ranges of the *update command*
//!   and reports them to [`PageStore::apply_update`] — exactly the
//!   update-log hook a tightly-coupled (log-based) method needs;
//! * evicting a dirty page calls [`PageStore::evict_page`] — the moment a
//!   loosely-coupled method (PDL, OPU, IPU) reflects the page into flash.

use crate::error::StorageError;
use crate::Result;
use pdl_core::{ChangeRange, PageStore, NO_TXN};
use std::collections::HashMap;

/// A mutable view of a buffered page that records which bytes change.
pub struct PageMut<'a> {
    data: &'a mut [u8],
    changes: &'a mut Vec<ChangeRange>,
}

impl<'a> PageMut<'a> {
    /// Read access to the page image.
    pub fn as_slice(&self) -> &[u8] {
        self.data
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Overwrite `bytes` at `offset`, recording the change.
    pub fn write(&mut self, offset: usize, bytes: &[u8]) {
        self.data[offset..offset + bytes.len()].copy_from_slice(bytes);
        self.changes.push(ChangeRange::new(offset, bytes.len()));
    }

    /// Fill `len` bytes at `offset` with `value`, recording the change.
    pub fn fill(&mut self, offset: usize, len: usize, value: u8) {
        self.data[offset..offset + len].fill(value);
        self.changes.push(ChangeRange::new(offset, len));
    }

    /// Write a little-endian `u16` (the slotted-page header currency).
    pub fn write_u16(&mut self, offset: usize, v: u16) {
        self.write(offset, &v.to_le_bytes());
    }

    /// Write a little-endian `u64`.
    pub fn write_u64(&mut self, offset: usize, v: u64) {
        self.write(offset, &v.to_le_bytes());
    }

    /// Move `len` bytes from `src` to `dst` within the page (compaction).
    pub fn copy_within(&mut self, src: usize, dst: usize, len: usize) {
        self.data.copy_within(src..src + len, dst);
        self.changes.push(ChangeRange::new(dst, len));
    }
}

/// Construct a [`PageMut`] over a raw buffer — for page-format unit tests
/// and tools that operate outside a buffer pool.
#[doc(hidden)]
#[allow(dead_code)]
pub mod testing {
    use super::*;

    pub fn page_mut<'a>(data: &'a mut [u8], changes: &'a mut Vec<ChangeRange>) -> PageMut<'a> {
        PageMut { data, changes }
    }
}

/// Read helpers shared by page-format code.
pub fn read_u16(page: &[u8], offset: usize) -> u16 {
    u16::from_le_bytes([page[offset], page[offset + 1]])
}

pub fn read_u64(page: &[u8], offset: usize) -> u64 {
    u64::from_le_bytes(page[offset..offset + 8].try_into().expect("8 bytes"))
}

struct Frame {
    pid: u64,
    data: Vec<u8>,
    dirty: bool,
    last_use: u64,
    changes: Vec<ChangeRange>,
    /// Transaction that dirtied this frame ([`NO_TXN`] when none): the
    /// per-transaction change tracking of the `pdl-txn` subsystem.
    owner: u64,
}

/// Pre-transaction image of a frame, taken on the transaction's first
/// touch so abort can restore it without any flash traffic.
struct UndoImage {
    data: Vec<u8>,
}

/// Cache statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BufferStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub dirty_writebacks: u64,
}

impl BufferStats {
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Fold another cache's statistics into this one (stripe aggregation).
    pub fn merge(&mut self, other: &BufferStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.dirty_writebacks += other.dirty_writebacks;
    }
}

/// The page-store operations a frame cache needs from its backing store.
///
/// [`BufferPool`] backs this with exclusive access to a
/// `Box<dyn PageStore>`; the striped pool backs it with the `*_shared`
/// entry points of a shared `ShardedStore`, so each stripe can fault and
/// write back pages while holding only its own lock.
pub(crate) trait PageBackend {
    fn read(&mut self, pid: u64, out: &mut [u8]) -> Result<()>;
    fn apply(&mut self, pid: u64, page_after: &[u8], changes: &[ChangeRange]) -> Result<()>;
    fn evict(&mut self, pid: u64, page: &[u8]) -> Result<()>;
}

impl PageBackend for Box<dyn PageStore> {
    fn read(&mut self, pid: u64, out: &mut [u8]) -> Result<()> {
        Ok(self.read_page(pid, out)?)
    }

    fn apply(&mut self, pid: u64, page_after: &[u8], changes: &[ChangeRange]) -> Result<()> {
        Ok(self.apply_update(pid, page_after, changes)?)
    }

    fn evict(&mut self, pid: u64, page: &[u8]) -> Result<()> {
        Ok(self.evict_page(pid, page)?)
    }
}

/// An LRU frame cache: the store-independent core shared by
/// [`BufferPool`] (one cache over the whole store) and the striped
/// sharded pool (one cache per shard, each behind its own lock).
pub(crate) struct FrameCache {
    frames: Vec<Frame>,
    map: HashMap<u64, usize>,
    capacity: usize,
    page_size: usize,
    tick: u64,
    stats: BufferStats,
    /// Whether transaction-owned dirty frames are pinned against eviction
    /// and skipped by write-backs (atomic-commit mode). Relaxed mode
    /// leaves them evictable — legacy behavior, with abort still restored
    /// from the in-memory undo images.
    pin_owned: bool,
    /// Pre-transaction frame images, keyed by `(txn, pid)`.
    undo: HashMap<(u64, u64), UndoImage>,
}

impl FrameCache {
    pub(crate) fn new(capacity: usize, page_size: usize) -> FrameCache {
        let capacity = capacity.max(1);
        FrameCache {
            frames: Vec::with_capacity(capacity.min(1024)),
            map: HashMap::new(),
            capacity,
            page_size,
            tick: 0,
            stats: BufferStats::default(),
            pin_owned: true,
            undo: HashMap::new(),
        }
    }

    /// Switch transaction-owned frames between pinned (atomic commits)
    /// and evictable (relaxed durability).
    pub(crate) fn set_pin_owned(&mut self, pin: bool) {
        self.pin_owned = pin;
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    pub(crate) fn stats(&self) -> BufferStats {
        self.stats
    }

    pub(crate) fn with_page<B: PageBackend, R>(
        &mut self,
        backend: &mut B,
        pid: u64,
        f: impl FnOnce(&[u8]) -> R,
    ) -> Result<R> {
        let idx = self.fetch(backend, pid)?;
        self.tick += 1;
        self.frames[idx].last_use = self.tick;
        Ok(f(&self.frames[idx].data))
    }

    pub(crate) fn with_page_mut<B: PageBackend, R>(
        &mut self,
        backend: &mut B,
        pid: u64,
        f: impl FnOnce(&mut PageMut) -> R,
    ) -> Result<R> {
        self.with_page_mut_txn(backend, pid, NO_TXN, f)
    }

    /// Mutable access on behalf of `txn` ([`NO_TXN`] for the plain
    /// auto-commit path). A frame dirtied by a different uncommitted
    /// transaction is a conflict; the first touch by a transaction
    /// snapshots the frame so abort can restore it.
    pub(crate) fn with_page_mut_txn<B: PageBackend, R>(
        &mut self,
        backend: &mut B,
        pid: u64,
        txn: u64,
        f: impl FnOnce(&mut PageMut) -> R,
    ) -> Result<R> {
        let idx = self.fetch(backend, pid)?;
        self.tick += 1;
        if self.frames[idx].dirty
            && self.frames[idx].owner != NO_TXN
            && self.frames[idx].owner != txn
        {
            return Err(StorageError::TxnConflict { pid });
        }
        if txn != NO_TXN && !self.undo.contains_key(&(txn, pid)) {
            self.undo.insert((txn, pid), UndoImage { data: self.frames[idx].data.clone() });
        }
        let frame = &mut self.frames[idx];
        frame.last_use = self.tick;
        debug_assert!(frame.changes.is_empty());
        let mut page = PageMut { data: &mut frame.data, changes: &mut frame.changes };
        let r = f(&mut page);
        if !frame.changes.is_empty() {
            frame.dirty = true;
            if txn != NO_TXN {
                frame.owner = txn;
            }
            let changes = std::mem::take(&mut frame.changes);
            backend.apply(pid, &frame.data, &changes)?;
        }
        Ok(r)
    }

    /// Locate or load `pid` into a frame, evicting if needed.
    fn fetch<B: PageBackend>(&mut self, backend: &mut B, pid: u64) -> Result<usize> {
        if let Some(idx) = self.map.get(&pid) {
            self.stats.hits += 1;
            return Ok(*idx);
        }
        self.stats.misses += 1;
        let idx = if self.frames.len() < self.capacity {
            self.frames.push(Frame {
                pid: u64::MAX,
                data: vec![0u8; self.page_size],
                dirty: false,
                last_use: 0,
                changes: Vec::new(),
                owner: NO_TXN,
            });
            self.frames.len() - 1
        } else {
            self.evict_lru(backend)?
        };
        backend.read(pid, &mut self.frames[idx].data)?;
        self.frames[idx].pid = pid;
        self.frames[idx].dirty = false;
        self.frames[idx].owner = NO_TXN;
        self.map.insert(pid, idx);
        Ok(idx)
    }

    fn evict_lru<B: PageBackend>(&mut self, backend: &mut B) -> Result<usize> {
        // Frames dirtied by an uncommitted transaction are pinned in
        // atomic-commit mode: their data must not reach the store before
        // the commit record does.
        let (idx, _) = self
            .frames
            .iter()
            .enumerate()
            .filter(|(_, f)| !(self.pin_owned && f.owner != NO_TXN))
            .min_by_key(|(_, f)| f.last_use)
            .ok_or(StorageError::BufferPinned)?;
        let pid = self.frames[idx].pid;
        if self.frames[idx].dirty {
            backend.evict(pid, &self.frames[idx].data)?;
            self.stats.dirty_writebacks += 1;
        }
        self.map.remove(&pid);
        self.stats.evictions += 1;
        Ok(idx)
    }

    /// Write every dirty frame back (does not flush the store itself).
    /// In atomic-commit mode, transaction-owned frames are skipped: only
    /// their commit makes them durable.
    pub(crate) fn write_back_dirty<B: PageBackend>(&mut self, backend: &mut B) -> Result<()> {
        for idx in 0..self.frames.len() {
            if self.frames[idx].dirty && !(self.pin_owned && self.frames[idx].owner != NO_TXN) {
                let pid = self.frames[idx].pid;
                backend.evict(pid, &self.frames[idx].data)?;
                self.frames[idx].dirty = false;
                self.frames[idx].owner = NO_TXN;
                self.stats.dirty_writebacks += 1;
            }
        }
        Ok(())
    }

    /// Copy `txn`'s dirtied page images for commit staging. The frames
    /// stay owned (and the undo images stay) until
    /// [`Self::release_owned`] confirms the staging succeeded — so a
    /// failed commit can still roll back.
    pub(crate) fn collect_owned(&mut self, txn: u64) -> Vec<(u64, Vec<u8>)> {
        let mut out = Vec::new();
        for f in &self.frames {
            if f.owner == txn && f.dirty {
                out.push((f.pid, f.data.clone()));
            }
        }
        out.sort_by_key(|(pid, _)| *pid);
        out
    }

    /// Confirm a durable commit: `txn`'s frames become clean (their
    /// images are on flash) and unowned, and the undo images are
    /// dropped.
    pub(crate) fn commit_release(&mut self, txn: u64) {
        for f in &mut self.frames {
            if f.owner == txn {
                f.dirty = false;
                f.owner = NO_TXN;
            }
        }
        self.undo.retain(|(t, _), _| *t != txn);
    }

    /// Release `txn`'s ownership without any I/O (relaxed-durability
    /// commit): the frames stay dirty and reach flash by ordinary
    /// eviction, exactly as if the writes had been auto-committed.
    pub(crate) fn release_owned(&mut self, txn: u64) {
        for f in &mut self.frames {
            if f.owner == txn {
                f.owner = NO_TXN;
            }
        }
        self.undo.retain(|(t, _), _| *t != txn);
    }

    /// Abort `txn`: restore every touched frame's pre-transaction image
    /// (base page + last committed state, as cached at first touch). A
    /// frame evicted meanwhile is re-faulted and overwritten.
    pub(crate) fn rollback<B: PageBackend>(&mut self, backend: &mut B, txn: u64) -> Result<()> {
        let entries: Vec<((u64, u64), UndoImage)> = {
            let mut keys: Vec<(u64, u64)> =
                self.undo.keys().filter(|(t, _)| *t == txn).copied().collect();
            keys.sort_unstable();
            keys.into_iter().map(|k| (k, self.undo.remove(&k).expect("key just listed"))).collect()
        };
        for ((_, pid), undo) in entries {
            // Always restore *dirty*: the aborted image may have reached
            // the store (a relaxed-mode eviction — even one later
            // re-faulted and re-dirtied by the same transaction — or a
            // failed commit's partial staging), and a write-back of the
            // pre-image is what repairs the durable state. When nothing
            // leaked, the rewrite is a no-op for PDL (empty
            // differential).
            let idx = match self.map.get(&pid).copied() {
                Some(idx) => idx,
                None => self.fetch(backend, pid)?,
            };
            let frame = &mut self.frames[idx];
            frame.data.copy_from_slice(&undo.data);
            frame.dirty = true;
            frame.owner = NO_TXN;
        }
        Ok(())
    }

    /// Drop every cached page without writing back (crash simulation).
    pub(crate) fn clear(&mut self) {
        self.frames.clear();
        self.map.clear();
        self.undo.clear();
    }
}

/// An LRU buffer pool over a page store.
pub struct BufferPool {
    store: Box<dyn PageStore>,
    cache: FrameCache,
}

impl BufferPool {
    /// `capacity` is the number of buffered pages (the paper's Experiment 7
    /// varies it from 0.1% to 10% of the database size).
    pub fn new(store: Box<dyn PageStore>, capacity: usize) -> BufferPool {
        let page_size = store.logical_page_size();
        BufferPool { store, cache: FrameCache::new(capacity, page_size) }
    }

    pub fn capacity(&self) -> usize {
        self.cache.capacity()
    }

    pub fn page_size(&self) -> usize {
        self.store.logical_page_size()
    }

    pub fn stats(&self) -> BufferStats {
        self.cache.stats()
    }

    pub fn store(&self) -> &dyn PageStore {
        self.store.as_ref()
    }

    pub fn store_mut(&mut self) -> &mut dyn PageStore {
        self.store.as_mut()
    }

    /// Read access to a page.
    pub fn with_page<R>(&mut self, pid: u64, f: impl FnOnce(&[u8]) -> R) -> Result<R> {
        self.cache.with_page(&mut self.store, pid, f)
    }

    /// Mutable access to a page. The closure's writes through [`PageMut`]
    /// form **one update command**: after it returns, the recorded ranges
    /// are reported to the page store (tightly-coupled methods write their
    /// update logs here).
    pub fn with_page_mut<R>(&mut self, pid: u64, f: impl FnOnce(&mut PageMut) -> R) -> Result<R> {
        self.cache.with_page_mut(&mut self.store, pid, f)
    }

    /// Mutable access on behalf of an open transaction (see
    /// [`crate::Database::begin`]).
    pub fn with_page_mut_txn<R>(
        &mut self,
        pid: u64,
        txn: u64,
        f: impl FnOnce(&mut PageMut) -> R,
    ) -> Result<R> {
        self.cache.with_page_mut_txn(&mut self.store, pid, txn, f)
    }

    pub(crate) fn set_pin_owned(&mut self, pin: bool) {
        self.cache.set_pin_owned(pin);
    }

    pub(crate) fn collect_owned(&mut self, txn: u64) -> Vec<(u64, Vec<u8>)> {
        self.cache.collect_owned(txn)
    }

    pub(crate) fn commit_release(&mut self, txn: u64) {
        self.cache.commit_release(txn)
    }

    pub(crate) fn release_owned(&mut self, txn: u64) {
        self.cache.release_owned(txn)
    }

    pub(crate) fn rollback(&mut self, txn: u64) -> Result<()> {
        self.cache.rollback(&mut self.store, txn)
    }

    /// Write every dirty page back and flush the store's buffers
    /// (write-through, the durability point of §4.5).
    pub fn flush_all(&mut self) -> Result<()> {
        self.cache.write_back_dirty(&mut self.store)?;
        self.store.flush()?;
        Ok(())
    }

    /// Drop every cached page without writing back (crash simulation).
    pub fn poison_cache(&mut self) {
        self.cache.clear();
    }

    /// Consume the pool, flushing everything, and return the store.
    pub fn into_store(mut self) -> Result<Box<dyn PageStore>> {
        self.flush_all()?;
        Ok(self.store)
    }

    /// Consume the pool *without* writing anything back (crash
    /// simulation: cached dirty pages and uncommitted transactions are
    /// lost, exactly as on a power failure).
    pub fn into_store_without_flush(self) -> Box<dyn PageStore> {
        self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdl_core::{build_store, MethodKind, StoreOptions};
    use pdl_flash::{FlashChip, FlashConfig};

    fn pool(capacity: usize, kind: MethodKind) -> BufferPool {
        let chip = FlashChip::new(FlashConfig::tiny());
        let store = build_store(chip, kind, StoreOptions::new(24)).unwrap();
        BufferPool::new(store, capacity)
    }

    #[test]
    fn writes_survive_eviction_pressure() {
        let mut p = pool(2, MethodKind::Pdl { max_diff_size: 128 });
        for pid in 0..8u64 {
            p.with_page_mut(pid, |page| page.write(0, &[pid as u8; 4])).unwrap();
        }
        for pid in 0..8u64 {
            let b = p.with_page(pid, |page| page[0]).unwrap();
            assert_eq!(b, pid as u8, "pid {pid}");
        }
        assert!(p.stats().evictions > 0);
        assert!(p.stats().dirty_writebacks > 0);
    }

    #[test]
    fn hits_do_not_touch_flash() {
        let mut p = pool(4, MethodKind::Opu);
        p.with_page_mut(1, |page| page.write(0, b"abcd")).unwrap();
        let before = p.store().chip().stats().total();
        for _ in 0..10 {
            p.with_page(1, |page| page[0]).unwrap();
        }
        let d = p.store().chip().stats().total() - before;
        assert_eq!(d.total_ops(), 0, "cache hits must be free");
        assert_eq!(p.stats().hits, 10);
    }

    #[test]
    fn clean_pages_evict_without_writeback() {
        let mut p = pool(1, MethodKind::Opu);
        p.with_page(0, |_| ()).unwrap();
        p.with_page(1, |_| ()).unwrap(); // evicts page 0, clean
        assert_eq!(p.stats().dirty_writebacks, 0);
        assert_eq!(p.stats().evictions, 1);
    }

    #[test]
    fn update_commands_reach_tightly_coupled_methods() {
        let mut p = pool(2, MethodKind::Ipl { log_bytes_per_block: 512 });
        // Load the page first so IPL has an original page.
        p.with_page_mut(3, |page| {
            let len = page.len();
            page.fill(0, len, 7);
        })
        .unwrap();
        p.flush_all().unwrap();
        // A small update command becomes an update log, readable back.
        p.with_page_mut(3, |page| page.write(10, &[9, 9])).unwrap();
        p.flush_all().unwrap();
        let (a, b) = p.with_page(3, |page| (page[10], page[12])).unwrap();
        assert_eq!(a, 9);
        assert_eq!(b, 7);
    }

    #[test]
    fn flush_all_makes_state_durable() {
        let mut p = pool(4, MethodKind::Pdl { max_diff_size: 128 });
        p.with_page_mut(0, |page| page.write(5, b"xyz")).unwrap();
        p.flush_all().unwrap();
        let store = p.into_store().unwrap();
        let chip = store.into_chip();
        let mut back = pdl_core::recover_store(
            chip,
            MethodKind::Pdl { max_diff_size: 128 },
            StoreOptions::new(24),
        )
        .unwrap();
        let mut out = vec![0u8; back.logical_page_size()];
        back.read_page(0, &mut out).unwrap();
        assert_eq!(&out[5..8], b"xyz");
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut p = pool(2, MethodKind::Opu);
        p.with_page(0, |_| ()).unwrap();
        p.with_page(1, |_| ()).unwrap();
        p.with_page(0, |_| ()).unwrap(); // 1 is now LRU
        p.with_page(2, |_| ()).unwrap(); // evicts 1
        let before = p.stats().misses;
        p.with_page(0, |_| ()).unwrap(); // still cached
        assert_eq!(p.stats().misses, before);
        p.with_page(1, |_| ()).unwrap(); // miss
        assert_eq!(p.stats().misses, before + 1);
    }

    #[test]
    fn page_mut_helpers_record_changes() {
        let mut data = vec![0u8; 64];
        let mut changes = Vec::new();
        let mut page = PageMut { data: &mut data, changes: &mut changes };
        page.write_u16(0, 0x1234);
        page.write_u64(8, 42);
        page.fill(20, 4, 0xFF);
        page.copy_within(20, 30, 4);
        assert_eq!(read_u16(page.as_slice(), 0), 0x1234);
        assert_eq!(read_u64(page.as_slice(), 8), 42);
        assert_eq!(&page.as_slice()[30..34], &[0xFF; 4]);
        assert_eq!(changes.len(), 4);
    }
}
