//! The DBMS buffer pool.
//!
//! An LRU page cache over any [`PageStore`]. The pool is the point where
//! the paper's two coupling styles meet the storage engine:
//!
//! * every mutation goes through [`BufferPool::with_page_mut`], whose
//!   [`PageMut`] records the changed byte ranges of the *update command*
//!   and reports them to [`PageStore::apply_update`] — exactly the
//!   update-log hook a tightly-coupled (log-based) method needs;
//! * evicting a dirty page calls [`PageStore::evict_page`] — the moment a
//!   loosely-coupled method (PDL, OPU, IPU) reflects the page into flash.
//!
//! # Version chains (MVCC snapshot reads)
//!
//! Each logical page additionally carries a **version chain**: a pending
//! undo image while an uncommitted transaction owns the page (the same
//! image abort needs anyway), plus the committed images superseded by
//! commits that some open [`crate::ReadView`] predates, keyed by commit
//! timestamp. A snapshot read at `read_ts` resolves to the *oldest*
//! version whose commit timestamp exceeds `read_ts` — the image the page
//! had when the view opened — falling back to the pending undo image (an
//! in-flight writer's pre-image) and finally the current frame. Chains
//! are pruned when views are released and bounded by
//! [`pdl_core::StoreOptions::snapshot_version_cap`] and
//! [`pdl_core::StoreOptions::snapshot_retention_bytes`].
//!
//! # The retention ledger (cold versions on flash)
//!
//! When a budget trips and the backing store supports version spill
//! (PDL does — see [`pdl_core::PageStore::spill_page`]), a discarded
//! version an active view still needs is **spilled to flash** instead of
//! lost: its handle joins the chain's ledger entries, and snapshot reads
//! fall back DRAM chain → ledger → flash read. Ledger entries are freed
//! when the views that pinned them release. Only when the spill tier is
//! unavailable (or a spill fails) does the discard advance the too-old
//! watermark, making [`StorageError::SnapshotTooOld`] the hard-limit
//! last resort rather than the budget's first response.

use crate::error::{RetentionTrigger, StorageError};
use crate::view::{MvccState, StructId, StructRoot, ViewRegistry};
use crate::{ReadGuard, ReadView, Result};
use pdl_core::{ChangeRange, PageStore, NO_TXN};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::thread::ThreadId;
use std::time::Instant;

/// A mutable view of a buffered page that records which bytes change.
pub struct PageMut<'a> {
    data: &'a mut [u8],
    changes: &'a mut Vec<ChangeRange>,
}

impl<'a> PageMut<'a> {
    /// Read access to the page image.
    pub fn as_slice(&self) -> &[u8] {
        self.data
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Overwrite `bytes` at `offset`, recording the change.
    pub fn write(&mut self, offset: usize, bytes: &[u8]) {
        self.data[offset..offset + bytes.len()].copy_from_slice(bytes);
        self.changes.push(ChangeRange::new(offset, bytes.len()));
    }

    /// Fill `len` bytes at `offset` with `value`, recording the change.
    pub fn fill(&mut self, offset: usize, len: usize, value: u8) {
        self.data[offset..offset + len].fill(value);
        self.changes.push(ChangeRange::new(offset, len));
    }

    /// Write a little-endian `u16` (the slotted-page header currency).
    pub fn write_u16(&mut self, offset: usize, v: u16) {
        self.write(offset, &v.to_le_bytes());
    }

    /// Write a little-endian `u64`.
    pub fn write_u64(&mut self, offset: usize, v: u64) {
        self.write(offset, &v.to_le_bytes());
    }

    /// Move `len` bytes from `src` to `dst` within the page (compaction).
    pub fn copy_within(&mut self, src: usize, dst: usize, len: usize) {
        self.data.copy_within(src..src + len, dst);
        self.changes.push(ChangeRange::new(dst, len));
    }
}

/// Construct a [`PageMut`] over a raw buffer — for page-format unit tests
/// and tools that operate outside a buffer pool.
#[doc(hidden)]
#[allow(dead_code)]
pub mod testing {
    use super::*;

    pub fn page_mut<'a>(data: &'a mut [u8], changes: &'a mut Vec<ChangeRange>) -> PageMut<'a> {
        PageMut { data, changes }
    }
}

/// Read helpers shared by page-format code.
pub fn read_u16(page: &[u8], offset: usize) -> u16 {
    u16::from_le_bytes([page[offset], page[offset + 1]])
}

pub fn read_u64(page: &[u8], offset: usize) -> u64 {
    u64::from_le_bytes(page[offset..offset + 8].try_into().expect("8 bytes"))
}

struct Frame {
    pid: u64,
    data: Vec<u8>,
    dirty: bool,
    last_use: u64,
    changes: Vec<ChangeRange>,
    /// Transaction that dirtied this frame ([`NO_TXN`] when none): the
    /// per-transaction change tracking of the `pdl-txn` subsystem.
    owner: u64,
}

/// Pre-transaction image of a page, taken on the transaction's first
/// touch. It doubles as the head-in-waiting of the page's version chain:
/// abort restores it, commit either promotes it to a committed version
/// (when an open read view predates the commit) or drops it.
struct PendingUndo {
    txn: u64,
    data: Vec<u8>,
}

/// The version history of one logical page. `committed` holds
/// `(commit_ts, image)` pairs in ascending timestamp order, where `image`
/// is the page as it was *immediately before* the commit at `commit_ts` —
/// i.e. what a view with `read_ts < commit_ts` must read. `spilled`
/// holds `(commit_ts, handle)` ledger entries for versions evicted from
/// DRAM to flash under retention pressure; the cap always evicts a
/// chain's oldest versions first, so `spilled ++ committed` is the full
/// history in ascending timestamp order.
#[derive(Default)]
struct VersionChain {
    pending: Option<PendingUndo>,
    committed: Vec<(u64, Vec<u8>)>,
    spilled: Vec<(u64, u64)>,
}

impl VersionChain {
    fn is_empty(&self) -> bool {
        self.pending.is_none() && self.committed.is_empty() && self.spilled.is_empty()
    }
}

/// Cache statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BufferStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub dirty_writebacks: u64,
    /// Snapshot reads served from a version chain (a committed version or
    /// an in-flight writer's pending undo image) instead of the frame.
    pub version_reads: u64,
    /// Committed versions evicted from the DRAM chains into the flash
    /// retention ledger instead of being discarded (a view needed them).
    pub spilled_versions: u64,
    /// Snapshot reads that resolved through a retention-ledger entry (the
    /// DRAM chain no longer held the version the view needed).
    pub ledger_hits: u64,
    /// Ledger hits actually served by a flash read of the spilled image
    /// (equals `ledger_hits` unless a read-back failed).
    pub flash_resolves: u64,
    /// Read views currently open against the pool (a gauge, not a
    /// counter: set by the pool when the statistics are sampled). A value
    /// that never returns to zero between workloads is the signature of a
    /// leaked view pinning version retention forever — hold views through
    /// [`crate::ReadGuard`] to make leaks impossible.
    pub active_views: u64,
    /// Sum over group-commit batches of the per-shard flash time their
    /// record flushes charged, totalled across shards (pool-level, like
    /// `active_views`: set by the sharded pool, not merged per stripe).
    pub commit_flush_us_sum: u64,
    /// Same flushes, but counting only each batch's *slowest* shard — the
    /// commit critical path when the leader submits to all shards and
    /// then drains. The gap to `commit_flush_us_sum` is the fan-out time
    /// the overlapped leader saves over serial per-shard flushing.
    pub commit_flush_us_max: u64,
    /// Logical pages permanently stranded by rollbacks: raw
    /// [`crate::Database::alloc_page`] pids an aborted (or
    /// failed-durable-commit) transaction allocated. The caller may hold
    /// such a pid outside any registered structure, so the allocator
    /// cannot reissue it — structure-owned allocations go back to the
    /// free list instead and never appear here. A gauge set by the
    /// database when statistics are sampled (like `active_views`), not a
    /// per-stripe counter.
    pub leaked_pids: u64,
}

impl BufferStats {
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Fold another cache's statistics into this one (stripe aggregation).
    /// `active_views`, the commit-flush gauges and `leaked_pids` are
    /// pool- or database-level (the registry, the group-commit leader and
    /// the page allocator are shared across stripes), so they are not
    /// summed here; their owner sets them after merging.
    pub fn merge(&mut self, other: &BufferStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.dirty_writebacks += other.dirty_writebacks;
        self.version_reads += other.version_reads;
        self.spilled_versions += other.spilled_versions;
        self.ledger_hits += other.ledger_hits;
        self.flash_resolves += other.flash_resolves;
    }
}

/// The page-store operations a frame cache needs from its backing store.
///
/// [`BufferPool`] backs this with its mutex-guarded `Box<dyn PageStore>`;
/// the striped pool backs it with the `*_shared` entry points of a shared
/// `ShardedStore`, so each stripe can fault and write back pages while
/// holding only its own lock.
pub(crate) trait PageBackend {
    fn read(&mut self, pid: u64, out: &mut [u8]) -> Result<()>;
    fn apply(&mut self, pid: u64, page_after: &[u8], changes: &[ChangeRange]) -> Result<()>;
    fn evict(&mut self, pid: u64, page: &[u8]) -> Result<()>;

    /// Whether the store behind this backend can hold spilled cold
    /// versions (the retention-ledger tier; see
    /// [`pdl_core::PageStore::spill_supported`]).
    fn spill_supported(&mut self) -> bool {
        false
    }

    /// Spill one committed pre-image to flash; the handle goes into the
    /// chain's ledger entries.
    fn spill(&mut self, pid: u64, page: &[u8]) -> Result<u64> {
        let _ = (pid, page);
        Err(StorageError::Internal("backend does not support version spill".into()))
    }

    /// Read a spilled pre-image back (a ledger-resolved snapshot read).
    fn read_spilled(&mut self, pid: u64, handle: u64, out: &mut [u8]) -> Result<()> {
        let _ = (pid, handle, out);
        Err(StorageError::Internal("backend does not support version spill".into()))
    }

    /// Free a spilled pre-image no remaining view can resolve.
    fn free_spilled(&mut self, pid: u64, handle: u64) -> Result<()> {
        let _ = (pid, handle);
        Err(StorageError::Internal("backend does not support version spill".into()))
    }
}

impl PageBackend for Box<dyn PageStore> {
    fn read(&mut self, pid: u64, out: &mut [u8]) -> Result<()> {
        Ok(self.read_page(pid, out)?)
    }

    fn apply(&mut self, pid: u64, page_after: &[u8], changes: &[ChangeRange]) -> Result<()> {
        Ok(self.apply_update(pid, page_after, changes)?)
    }

    fn evict(&mut self, pid: u64, page: &[u8]) -> Result<()> {
        Ok(self.evict_page(pid, page)?)
    }

    fn spill_supported(&mut self) -> bool {
        (**self).spill_supported()
    }

    fn spill(&mut self, pid: u64, page: &[u8]) -> Result<u64> {
        Ok(self.spill_page(pid, page)?)
    }

    fn read_spilled(&mut self, pid: u64, handle: u64, out: &mut [u8]) -> Result<()> {
        Ok(self.read_spill(pid, handle, out)?)
    }

    fn free_spilled(&mut self, pid: u64, handle: u64) -> Result<()> {
        Ok(self.free_spill(pid, handle)?)
    }
}

/// Where auto-committed update commands obtain their commit timestamps.
///
/// The protocol is two-step so a writer holding a frame lock decides
/// *after* mutating: `capture_hint` is a cheap pre-check (clone the
/// pre-image only if a view might need it); `commit_ts` is called once
/// the mutation happened and, under the registry lock, either allocates
/// the commit timestamp (views are active — retain the version) or
/// returns `None` (nobody can ever need it: any view registered later
/// reads at a timestamp at or past this commit). The timestamp comes
/// paired with the registry's active read-timestamp set (ascending) —
/// so a retention-budget trip under the same frame lock knows which
/// evicted versions some view actually resolves to (and must spill)
/// versus which no reader can ever reach (droppable for free).
pub(crate) trait VersionSource {
    fn capture_hint(&self) -> bool;
    fn commit_ts(&self) -> Option<(u64, Vec<u64>)>;
}

/// No snapshot versioning (transactional mutations version at commit
/// instead; unit tests of the raw cache don't version at all).
pub(crate) struct NoVersioning;

impl VersionSource for NoVersioning {
    fn capture_hint(&self) -> bool {
        false
    }

    fn commit_ts(&self) -> Option<(u64, Vec<u64>)> {
        None
    }
}

/// An LRU frame cache: the store-independent core shared by
/// [`BufferPool`] (one cache over the whole store) and the striped
/// sharded pool (one cache per shard, each behind its own lock).
pub(crate) struct FrameCache {
    frames: Vec<Frame>,
    map: HashMap<u64, usize>,
    capacity: usize,
    page_size: usize,
    tick: u64,
    stats: BufferStats,
    /// Whether transaction-owned dirty frames are pinned against eviction
    /// and skipped by write-backs (atomic-commit mode). Relaxed mode
    /// leaves them evictable — legacy behavior, with abort still restored
    /// from the in-memory undo images.
    pin_owned: bool,
    /// Per-page version chains, keyed by pid (they outlive frame
    /// eviction).
    chains: HashMap<u64, VersionChain>,
    /// Committed versions currently retained across all chains.
    retained: usize,
    /// Bytes of committed version payload currently retained.
    retained_bytes: usize,
    /// Retention bound ([`pdl_core::StoreOptions::snapshot_version_cap`]).
    version_cap: usize,
    /// Byte-accounted retention bound
    /// ([`pdl_core::StoreOptions::snapshot_retention_bytes`]; 0 =
    /// unbounded, the count cap alone governs). Counting versions bounds
    /// memory only when every logical page is the same size; with mixed
    /// `frames_per_page` configurations a byte budget bounds DRAM
    /// faithfully. Whichever cap trips first wins.
    retention_bytes: usize,
    /// Highest commit timestamp ever *hard-discarded* by the cap (needed
    /// by a view but neither retained nor spilled): views at or below it
    /// read [`StorageError::SnapshotTooOld`]. With the flash retention
    /// ledger available this only moves when a spill fails.
    too_old_floor: u64,
    /// What last advanced `too_old_floor` (reported in the error).
    too_old_trigger: RetentionTrigger,
}

impl FrameCache {
    pub(crate) fn new(
        capacity: usize,
        page_size: usize,
        version_cap: usize,
        retention_bytes: usize,
    ) -> FrameCache {
        let capacity = capacity.max(1);
        FrameCache {
            frames: Vec::with_capacity(capacity.min(1024)),
            map: HashMap::new(),
            capacity,
            page_size,
            tick: 0,
            stats: BufferStats::default(),
            pin_owned: true,
            chains: HashMap::new(),
            retained: 0,
            retained_bytes: 0,
            version_cap: version_cap.max(1),
            retention_bytes,
            too_old_floor: 0,
            too_old_trigger: RetentionTrigger::VersionCap,
        }
    }

    /// Switch transaction-owned frames between pinned (atomic commits)
    /// and evictable (relaxed durability).
    pub(crate) fn set_pin_owned(&mut self, pin: bool) {
        self.pin_owned = pin;
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    pub(crate) fn stats(&self) -> BufferStats {
        self.stats
    }

    /// Whether `pid` currently occupies a frame (a prefetch hint for a
    /// cached page would charge a phantom flash read; callers check this
    /// first).
    pub(crate) fn is_cached(&self, pid: u64) -> bool {
        self.map.contains_key(&pid)
    }

    /// Committed versions currently retained (diagnostics / tests).
    pub(crate) fn retained_versions(&self) -> usize {
        self.retained
    }

    /// Bytes of committed version payload currently retained.
    pub(crate) fn retained_version_bytes(&self) -> usize {
        self.retained_bytes
    }

    pub(crate) fn with_page<B: PageBackend, R>(
        &mut self,
        backend: &mut B,
        pid: u64,
        f: impl FnOnce(&[u8]) -> R,
    ) -> Result<R> {
        let idx = self.fetch(backend, pid)?;
        self.tick += 1;
        self.frames[idx].last_use = self.tick;
        Ok(f(&self.frames[idx].data))
    }

    /// Snapshot read at `read_ts`: the oldest retained version newer than
    /// the view — a ledger entry spilled to flash (cold tier), else a
    /// DRAM-chain committed version — else an in-flight writer's pending
    /// pre-image, else the current frame.
    pub(crate) fn with_page_at<B: PageBackend, R>(
        &mut self,
        backend: &mut B,
        pid: u64,
        read_ts: u64,
        f: impl FnOnce(&[u8]) -> R,
    ) -> Result<R> {
        Ok(self.with_page_at_traced(backend, pid, read_ts, f)?.0)
    }

    /// [`Self::with_page_at`] plus whether the read resolved a cold
    /// version from the flash ledger (the pools time those reads into the
    /// `cold_version_read` histogram).
    pub(crate) fn with_page_at_traced<B: PageBackend, R>(
        &mut self,
        backend: &mut B,
        pid: u64,
        read_ts: u64,
        f: impl FnOnce(&[u8]) -> R,
    ) -> Result<(R, bool)> {
        if read_ts < self.too_old_floor {
            return Err(StorageError::SnapshotTooOld {
                read_ts,
                floor: self.too_old_floor,
                trigger: self.too_old_trigger,
            });
        }
        // The ledger entries are strictly older than the DRAM-chain
        // versions (the cap always spills a chain's oldest first), so the
        // oldest version newer than the view is found ledger-first.
        let mut cold: Option<u64> = None;
        if let Some(chain) = self.chains.get(&pid) {
            cold = chain.spilled.iter().find(|(ts, _)| *ts > read_ts).map(|(_, h)| *h);
            if cold.is_none() {
                let versioned = chain
                    .committed
                    .iter()
                    .find(|(commit_ts, _)| *commit_ts > read_ts)
                    .map(|(_, data)| data.as_slice())
                    .or_else(|| chain.pending.as_ref().map(|p| p.data.as_slice()));
                if let Some(data) = versioned {
                    self.stats.version_reads += 1;
                    return Ok((f(data), false));
                }
            }
        }
        if let Some(handle) = cold {
            self.stats.ledger_hits += 1;
            let mut image = vec![0u8; self.page_size];
            backend.read_spilled(pid, handle, &mut image)?;
            self.stats.flash_resolves += 1;
            self.stats.version_reads += 1;
            return Ok((f(&image), true));
        }
        Ok((self.with_page(backend, pid, f)?, false))
    }

    /// Mutable access on behalf of `txn` ([`NO_TXN`] for the plain
    /// auto-commit path). A frame dirtied by a different uncommitted
    /// transaction is a conflict; the first touch by a transaction makes
    /// the pre-image the pending head of the page's version chain, so
    /// abort can restore it and snapshot readers can keep seeing it. An
    /// auto-committed command versions its pre-image through `vsrc` when
    /// an open read view predates it.
    pub(crate) fn with_page_mut_txn<B: PageBackend, R>(
        &mut self,
        backend: &mut B,
        pid: u64,
        txn: u64,
        vsrc: &dyn VersionSource,
        f: impl FnOnce(&mut PageMut) -> R,
    ) -> Result<R> {
        let idx = self.fetch(backend, pid)?;
        self.tick += 1;
        if self.frames[idx].dirty
            && self.frames[idx].owner != NO_TXN
            && self.frames[idx].owner != txn
        {
            return Err(StorageError::TxnConflict { pid });
        }
        let mut auto_pre: Option<Vec<u8>> = None;
        let mut created_pending = false;
        if txn != NO_TXN {
            let pending = self.chains.get(&pid).and_then(|c| c.pending.as_ref());
            match pending {
                Some(p) => debug_assert_eq!(
                    p.txn, txn,
                    "page {pid} already has a pending pre-image from another transaction"
                ),
                None => {
                    let data = self.frames[idx].data.clone();
                    self.chains.entry(pid).or_default().pending = Some(PendingUndo { txn, data });
                    created_pending = true;
                }
            }
        } else if vsrc.capture_hint() {
            auto_pre = Some(self.frames[idx].data.clone());
        }
        let frame = &mut self.frames[idx];
        frame.last_use = self.tick;
        debug_assert!(frame.changes.is_empty());
        let mut page = PageMut { data: &mut frame.data, changes: &mut frame.changes };
        let r = f(&mut page);
        if !frame.changes.is_empty() {
            frame.dirty = true;
            if txn != NO_TXN {
                frame.owner = txn;
            }
            let changes = std::mem::take(&mut frame.changes);
            backend.apply(pid, &frame.data, &changes)?;
            // One auto-committed update command = one commit event: retain
            // the pre-image iff a view still needs it.
            if let Some(pre) = auto_pre {
                if let Some((commit_ts, active)) = vsrc.commit_ts() {
                    self.push_version(backend, pid, commit_ts, pre, &active);
                }
            }
        } else if created_pending {
            // Touch without a write: keep ownership and undo exactly as
            // they were. A dangling pending would otherwise shadow pages
            // the transaction never dirtied (it skips the frame-owner
            // conflict check), letting a later auto-commit write be
            // silently undone by this transaction's abort or mispublished
            // as its pre-image at commit.
            if let Some(chain) = self.chains.get_mut(&pid) {
                chain.pending = None;
                if chain.is_empty() {
                    self.chains.remove(&pid);
                }
            }
        }
        Ok(r)
    }

    fn push_version<B: PageBackend>(
        &mut self,
        backend: &mut B,
        pid: u64,
        commit_ts: u64,
        data: Vec<u8>,
        active: &[u64],
    ) {
        let chain = self.chains.entry(pid).or_default();
        debug_assert!(
            chain.committed.last().is_none_or(|(ts, _)| *ts < commit_ts),
            "version chain for page {pid} must stay ascending"
        );
        self.retained_bytes += data.len();
        chain.committed.push((commit_ts, data));
        self.retained += 1;
        self.enforce_cap(backend, active);
    }

    /// Whether retention exceeds either budget: the version-count cap or
    /// (when configured) the byte budget.
    fn over_budget(&self) -> bool {
        self.retained > self.version_cap
            || (self.retention_bytes > 0 && self.retained_bytes > self.retention_bytes)
    }

    /// Evict the oldest retained versions until both DRAM budgets hold. A
    /// whole commit's versions always leave DRAM together, so a surviving
    /// view never observes half a commit. `active` is the ascending set
    /// of distinct active read timestamps (empty when no view is open).
    ///
    /// Eviction is **gap-precise**: a version at `ts` leaves the chain's
    /// resolution path only for readers in the half-open gap
    /// `[s_max, ts)`, where `s_max` is the newest timestamp already in
    /// the chain's spill ledger (0 when none — spills are strictly older
    /// than everything committed, so the ledger's newest entry is the
    /// previous resolution boundary). If no active `read_ts` falls in
    /// that gap, the version is dropped for free: every open view either
    /// resolves to an older spilled entry or to a younger version still
    /// in DRAM, and any view opened later reads at the current clock, at
    /// or past this commit. Only gap-hitting versions are **spilled** to
    /// the flash retention ledger — without this, an epoch-long view
    /// would force a full-page ledger program for *every* pre-image the
    /// write storm evicts (≈ one per page per transaction) instead of
    /// one per page per view gap, wrecking write throughput far beyond
    /// the budget the ledger exists to honor.
    ///
    /// The snapshot-too-old watermark advances — cutting off the views —
    /// only when a gap-hitting version is lost (no spill tier, or a
    /// spill failed), which makes `SnapshotTooOld` the hard-limit last
    /// resort.
    fn enforce_cap<B: PageBackend>(&mut self, backend: &mut B, active: &[u64]) {
        if !self.over_budget() {
            return;
        }
        let can_spill = backend.spill_supported();
        while self.over_budget() {
            let budget = if self.retained > self.version_cap {
                RetentionTrigger::VersionCap
            } else {
                RetentionTrigger::ByteBudget
            };
            let oldest = self
                .chains
                .values()
                .filter_map(|c| c.committed.first().map(|(ts, _)| *ts))
                .min()
                .expect("over budget implies a committed version exists");
            let mut removed = 0;
            let mut removed_bytes = 0;
            let mut spilled = 0u64;
            let mut lost: Option<RetentionTrigger> = None;
            for (pid, chain) in self.chains.iter_mut() {
                let cut = chain.committed.partition_point(|(ts, _)| *ts <= oldest);
                let mut smax = chain.spilled.last().map(|(ts, _)| *ts).unwrap_or(0);
                for (ts, data) in chain.committed.drain(..cut) {
                    removed += 1;
                    removed_bytes += data.len();
                    // Needed iff some active read_ts lands in [smax, ts):
                    // such a reader's `first ts > read_ts` resolution is
                    // exactly this version. (`read_ts == smax` resolves
                    // past the spilled entry at smax, hence inclusive.)
                    let lo = active.partition_point(|r| *r < smax);
                    if active.get(lo).is_none_or(|r| *r >= ts) {
                        continue; // no active view resolves to it
                    }
                    if can_spill {
                        match backend.spill(*pid, &data) {
                            Ok(handle) => {
                                chain.spilled.push((ts, handle));
                                smax = ts;
                                spilled += 1;
                            }
                            Err(_) => lost = Some(RetentionTrigger::LedgerMiss),
                        }
                    } else {
                        lost = Some(budget);
                    }
                }
            }
            self.retained -= removed;
            self.retained_bytes -= removed_bytes;
            self.stats.spilled_versions += spilled;
            if let Some(trigger) = lost {
                self.too_old_floor = self.too_old_floor.max(oldest);
                self.too_old_trigger = trigger;
            }
            self.chains.retain(|_, c| !c.is_empty());
        }
    }

    /// Drop committed versions at or below `floor` (the minimum active
    /// read timestamp; `u64::MAX` when no view remains) — and free their
    /// retention-ledger spills, whose flash pages become reclaimable
    /// garbage. Called at read-view release so both tiers shrink back as
    /// readers retire.
    pub(crate) fn prune_committed<B: PageBackend>(&mut self, backend: &mut B, floor: u64) {
        let mut removed = 0;
        let mut removed_bytes = 0;
        let mut pruned_any = false;
        for (pid, chain) in self.chains.iter_mut() {
            let before = chain.committed.len();
            chain.committed.retain(|(ts, data)| {
                if *ts > floor {
                    true
                } else {
                    removed_bytes += data.len();
                    false
                }
            });
            removed += before - chain.committed.len();
            let cut = chain.spilled.partition_point(|(ts, _)| *ts <= floor);
            for (_, handle) in chain.spilled.drain(..cut) {
                pruned_any = true;
                // Best-effort: a free that fails only leaves the spill
                // pages to die with their block at the next GC/recovery.
                let _ = backend.free_spilled(*pid, handle);
            }
        }
        if removed > 0 || pruned_any {
            self.retained -= removed;
            self.retained_bytes -= removed_bytes;
            self.chains.retain(|_, c| !c.is_empty());
        }
    }

    /// Locate or load `pid` into a frame, evicting if needed.
    fn fetch<B: PageBackend>(&mut self, backend: &mut B, pid: u64) -> Result<usize> {
        if let Some(idx) = self.map.get(&pid) {
            self.stats.hits += 1;
            return Ok(*idx);
        }
        self.stats.misses += 1;
        let idx = if self.frames.len() < self.capacity {
            self.frames.push(Frame {
                pid: u64::MAX,
                data: vec![0u8; self.page_size],
                dirty: false,
                last_use: 0,
                changes: Vec::new(),
                owner: NO_TXN,
            });
            self.frames.len() - 1
        } else {
            self.evict_lru(backend)?
        };
        backend.read(pid, &mut self.frames[idx].data)?;
        self.frames[idx].pid = pid;
        self.frames[idx].dirty = false;
        self.frames[idx].owner = NO_TXN;
        self.map.insert(pid, idx);
        Ok(idx)
    }

    fn evict_lru<B: PageBackend>(&mut self, backend: &mut B) -> Result<usize> {
        // Frames dirtied by an uncommitted transaction are pinned in
        // atomic-commit mode: their data must not reach the store before
        // the commit record does.
        let (idx, _) = self
            .frames
            .iter()
            .enumerate()
            .filter(|(_, f)| !(self.pin_owned && f.owner != NO_TXN))
            .min_by_key(|(_, f)| f.last_use)
            .ok_or(StorageError::BufferPinned)?;
        let pid = self.frames[idx].pid;
        if self.frames[idx].dirty {
            backend.evict(pid, &self.frames[idx].data)?;
            self.stats.dirty_writebacks += 1;
        }
        self.map.remove(&pid);
        self.stats.evictions += 1;
        Ok(idx)
    }

    /// Write every dirty frame back (does not flush the store itself).
    /// In atomic-commit mode, transaction-owned frames are skipped: only
    /// their commit makes them durable.
    pub(crate) fn write_back_dirty<B: PageBackend>(&mut self, backend: &mut B) -> Result<()> {
        for idx in 0..self.frames.len() {
            if self.frames[idx].dirty && !(self.pin_owned && self.frames[idx].owner != NO_TXN) {
                let pid = self.frames[idx].pid;
                backend.evict(pid, &self.frames[idx].data)?;
                self.frames[idx].dirty = false;
                self.frames[idx].owner = NO_TXN;
                self.stats.dirty_writebacks += 1;
            }
        }
        Ok(())
    }

    /// Copy `txn`'s dirtied page images for commit staging. The frames
    /// stay owned (and the pending pre-images stay) until
    /// [`Self::end_txn`] confirms the staging succeeded — so a failed
    /// commit can still roll back.
    pub(crate) fn collect_owned(&mut self, txn: u64) -> Vec<(u64, Vec<u8>)> {
        let mut out = Vec::new();
        for f in &self.frames {
            if f.owner == txn && f.dirty {
                out.push((f.pid, f.data.clone()));
            }
        }
        out.sort_by_key(|(pid, _)| *pid);
        out
    }

    /// Close `txn` on its commit path. Every pending pre-image the
    /// transaction left becomes a committed version at `version_at` (a
    /// read view predates the commit) or is dropped (`None`: no view can
    /// ever need it). `clean` distinguishes a durable commit (the images
    /// are on flash: frames become clean) from a relaxed commit (frames
    /// stay dirty and reach flash by ordinary eviction).
    pub(crate) fn end_txn<B: PageBackend>(
        &mut self,
        backend: &mut B,
        txn: u64,
        version_at: Option<u64>,
        clean: bool,
        active: &[u64],
    ) {
        for f in &mut self.frames {
            if f.owner == txn {
                f.owner = NO_TXN;
                if clean {
                    f.dirty = false;
                }
            }
        }
        let mut promoted = 0usize;
        let mut promoted_bytes = 0usize;
        for (pid, chain) in self.chains.iter_mut() {
            if chain.pending.as_ref().is_some_and(|p| p.txn == txn) {
                let p = chain.pending.take().expect("just checked");
                if let Some(ts) = version_at {
                    debug_assert!(
                        chain.committed.last().is_none_or(|(c, _)| *c < ts),
                        "version chain for page {pid} must stay ascending"
                    );
                    promoted_bytes += p.data.len();
                    chain.committed.push((ts, p.data));
                    promoted += 1;
                }
            }
        }
        if promoted > 0 {
            self.retained += promoted;
            self.retained_bytes += promoted_bytes;
        }
        self.chains.retain(|_, c| !c.is_empty());
        if promoted > 0 {
            self.enforce_cap(backend, active);
        }
    }

    /// Abort `txn`: restore every touched frame's pre-transaction image
    /// (base page + last committed state, as cached at first touch). A
    /// frame evicted meanwhile is re-faulted and overwritten.
    pub(crate) fn rollback<B: PageBackend>(&mut self, backend: &mut B, txn: u64) -> Result<()> {
        let mut entries: Vec<(u64, Vec<u8>)> = Vec::new();
        for (pid, chain) in self.chains.iter_mut() {
            if chain.pending.as_ref().is_some_and(|p| p.txn == txn) {
                entries.push((*pid, chain.pending.take().expect("just checked").data));
            }
        }
        self.chains.retain(|_, c| !c.is_empty());
        entries.sort_unstable_by_key(|(pid, _)| *pid);
        for (pid, undo) in entries {
            // Always restore *dirty*: the aborted image may have reached
            // the store (a relaxed-mode eviction — even one later
            // re-faulted and re-dirtied by the same transaction — or a
            // failed commit's partial staging), and a write-back of the
            // pre-image is what repairs the durable state. When nothing
            // leaked, the rewrite is a no-op for PDL (empty
            // differential).
            let idx = match self.map.get(&pid).copied() {
                Some(idx) => idx,
                None => self.fetch(backend, pid)?,
            };
            {
                let frame = &mut self.frames[idx];
                frame.data.copy_from_slice(&undo);
                frame.dirty = true;
                frame.owner = NO_TXN;
            }
            // The restoration is itself an update command: tightly-coupled
            // (log-based) methods already persisted the aborted commands
            // as update logs via `apply`, and only a superseding
            // whole-page log undoes them — eviction alone does not, since
            // their evict path flushes logs rather than images. For the
            // loosely-coupled methods this notification is ignored.
            let full = ChangeRange::new(0, undo.len());
            backend.apply(pid, &self.frames[idx].data, &[full])?;
        }
        Ok(())
    }

    /// The uncommitted transaction currently owning `pid`'s dirty frame
    /// ([`NO_TXN`] when the page is uncached, clean, or auto-committed).
    pub(crate) fn dirty_owner(&self, pid: u64) -> u64 {
        self.map.get(&pid).map_or(NO_TXN, |&idx| {
            let f = &self.frames[idx];
            if f.dirty {
                f.owner
            } else {
                NO_TXN
            }
        })
    }

    /// Drop every cached page and version chain without writing back
    /// (crash simulation).
    pub(crate) fn clear(&mut self) {
        self.frames.clear();
        self.map.clear();
        self.chains.clear();
        self.retained = 0;
        self.retained_bytes = 0;
    }
}

/// The per-page latch table structural writers couple through.
///
/// Latches are logical-page-granular and live *outside* the frame cache:
/// a frame may be evicted and re-faulted while its page stays latched,
/// and the cache mutex is only ever taken while a latch is already held
/// (lock order: latch table → cache → store/MVCC), so latch waits never
/// block readers. Acquisition is blocking and non-reentrant — a thread
/// latching a page it already holds is a programming error (it would
/// deadlock against itself) and asserts.
///
/// Deadlock freedom follows from the acquisition order: every structural
/// writer latches strictly along a root-to-leaf descent, and leaf-chain
/// walks latch strictly left-to-right, so the wait-for graph follows one
/// global partial order (tree order, then leaf order) and cannot cycle.
struct LatchTable {
    held: Mutex<HashMap<u64, ThreadId>>,
    cv: Condvar,
}

impl LatchTable {
    fn new() -> LatchTable {
        LatchTable { held: Mutex::new(HashMap::new()), cv: Condvar::new() }
    }

    /// Blocking acquire of `pid`'s latch; returns whether the acquisition
    /// had to wait (the contention signal the `latch_wait` histogram
    /// records).
    fn acquire(&self, pid: u64) -> bool {
        let me = std::thread::current().id();
        let mut held = self.held.lock().unwrap_or_else(|e| e.into_inner());
        assert!(
            held.get(&pid) != Some(&me),
            "page latch {pid} is not reentrant: already held by this thread"
        );
        let mut contended = false;
        while held.contains_key(&pid) {
            contended = true;
            held = self.cv.wait(held).unwrap_or_else(|e| e.into_inner());
        }
        held.insert(pid, me);
        contended
    }

    fn release(&self, pid: u64) {
        let mut held = self.held.lock().unwrap_or_else(|e| e.into_inner());
        let owner = held.remove(&pid);
        debug_assert!(owner.is_some(), "released page latch {pid} that was never acquired");
        drop(held);
        self.cv.notify_all();
    }
}

/// RAII guard for one page latch (see [`BufferPool::latch_page`]):
/// releases on drop, so early returns and panics cannot strand a latch.
/// Dropping latches in reverse-acquisition order is not required for
/// correctness — only the *acquisition* order matters for deadlock
/// freedom.
#[must_use = "a page latch blocks other structural writers until dropped"]
pub struct PageLatch<'p> {
    pool: &'p BufferPool,
    pid: u64,
}

impl PageLatch<'_> {
    /// The latched logical page.
    pub fn pid(&self) -> u64 {
        self.pid
    }
}

impl Drop for PageLatch<'_> {
    fn drop(&mut self) {
        self.pool.latches.release(self.pid);
    }
}

/// Backend adapter over [`BufferPool`]'s mutex-guarded store (locked per
/// operation; the cache lock is always taken first).
struct StoreBackend<'a>(&'a Mutex<Box<dyn PageStore>>);

impl StoreBackend<'_> {
    fn lock(&self) -> std::sync::MutexGuard<'_, Box<dyn PageStore>> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl PageBackend for StoreBackend<'_> {
    fn read(&mut self, pid: u64, out: &mut [u8]) -> Result<()> {
        Ok(self.lock().read_page(pid, out)?)
    }

    fn apply(&mut self, pid: u64, page_after: &[u8], changes: &[ChangeRange]) -> Result<()> {
        Ok(self.lock().apply_update(pid, page_after, changes)?)
    }

    fn evict(&mut self, pid: u64, page: &[u8]) -> Result<()> {
        Ok(self.lock().evict_page(pid, page)?)
    }

    fn spill_supported(&mut self) -> bool {
        self.lock().spill_supported()
    }

    fn spill(&mut self, pid: u64, page: &[u8]) -> Result<u64> {
        Ok(self.lock().spill_page(pid, page)?)
    }

    fn read_spilled(&mut self, pid: u64, handle: u64, out: &mut [u8]) -> Result<()> {
        Ok(self.lock().read_spill(pid, handle, out)?)
    }

    fn free_spilled(&mut self, pid: u64, handle: u64) -> Result<()> {
        Ok(self.lock().free_spill(pid, handle)?)
    }
}

/// [`VersionSource`] over a pool's MVCC registry.
struct PoolVersioner<'a> {
    active_views: &'a AtomicUsize,
    mvcc: &'a Mutex<MvccState>,
}

impl VersionSource for PoolVersioner<'_> {
    fn capture_hint(&self) -> bool {
        self.active_views.load(Ordering::SeqCst) > 0
    }

    fn commit_ts(&self) -> Option<(u64, Vec<u64>)> {
        let mut m = self.mvcc.lock().unwrap_or_else(|e| e.into_inner());
        let (ts, retain) = m.alloc_commit();
        retain.then(|| (ts, m.active_ts()))
    }
}

/// An LRU buffer pool over a page store, with MVCC read views.
///
/// Reads — current ([`BufferPool::with_page`]) or through a snapshot
/// ([`BufferPool::with_page_at`]) — take `&self`, so concurrent readers
/// are expressible in the type system; the pool is internally locked
/// (cache, store and MVCC registry each behind their own mutex).
pub struct BufferPool {
    store: Mutex<Box<dyn PageStore>>,
    cache: Mutex<FrameCache>,
    mvcc: Mutex<MvccState>,
    active_views: AtomicUsize,
    page_size: usize,
    /// Per-page latches for structural writers (crab-walk descents).
    latches: LatchTable,
    /// Pool-side recorder for host-clock structural observability
    /// (latch-wait histogram + split/root-publish spans). Disabled unless
    /// `StoreOptions::obs` is set, in which case `obs` below keeps the
    /// hot-path cost to one branch.
    recorder: Mutex<pdl_obs::Recorder>,
    obs: bool,
    /// Host-clock epoch the pool's spans are timed against.
    obs_epoch: Instant,
    /// Shard count of the backing store — the lane structural spans are
    /// attributed to (`pid % num_shards`, the stripe mapping).
    num_shards: u32,
}

impl BufferPool {
    /// `capacity` is the number of buffered pages (the paper's Experiment 7
    /// varies it from 0.1% to 10% of the database size).
    pub fn new(store: Box<dyn PageStore>, capacity: usize) -> BufferPool {
        let page_size = store.logical_page_size();
        let version_cap = store.options().snapshot_version_cap as usize;
        let retention_bytes = store.options().snapshot_retention_bytes as usize;
        let obs = store.options().obs;
        let num_shards = store.num_shards().max(1) as u32;
        let mut recorder = pdl_obs::Recorder::disabled();
        if obs {
            recorder.enable(pdl_obs::DEFAULT_SPAN_CAPACITY);
        }
        BufferPool {
            cache: Mutex::new(FrameCache::new(capacity, page_size, version_cap, retention_bytes)),
            store: Mutex::new(store),
            mvcc: Mutex::new(MvccState::default()),
            active_views: AtomicUsize::new(0),
            page_size,
            latches: LatchTable::new(),
            recorder: Mutex::new(recorder),
            obs,
            obs_epoch: Instant::now(),
            num_shards,
        }
    }

    fn lock_cache(&self) -> std::sync::MutexGuard<'_, FrameCache> {
        self.cache.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_mvcc(&self) -> std::sync::MutexGuard<'_, MvccState> {
        self.mvcc.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn capacity(&self) -> usize {
        self.lock_cache().capacity()
    }

    pub fn page_size(&self) -> usize {
        self.page_size
    }

    pub fn stats(&self) -> BufferStats {
        let mut stats = self.lock_cache().stats();
        stats.active_views = self.active_views.load(Ordering::SeqCst) as u64;
        stats
    }

    /// Run `f` against the underlying page store (exclusive: the store
    /// mutex is held for the duration).
    pub fn with_store<R>(&self, f: impl FnOnce(&mut dyn PageStore) -> R) -> R {
        let mut guard = self.store.lock().unwrap_or_else(|e| e.into_inner());
        f(guard.as_mut())
    }

    /// Read access to the current image of a page.
    pub fn with_page<R>(&self, pid: u64, f: impl FnOnce(&[u8]) -> R) -> Result<R> {
        self.lock_cache().with_page(&mut StoreBackend(&self.store), pid, f)
    }

    /// Issue a flash read-ahead for `pid` without waiting. Skipped when
    /// the page is already buffered (a prefetch would charge a phantom
    /// read); errors are swallowed — a failed prefetch only means the
    /// later demand read pays the full latency.
    pub fn prefetch(&self, pid: u64) {
        if self.lock_cache().is_cached(pid) {
            return;
        }
        let _ = self.with_store(|s| s.prefetch(pid));
    }

    // ------------------------------------------------------------------
    // MVCC read views
    // ------------------------------------------------------------------

    /// Open a snapshot at the current commit clock. Commits (and
    /// auto-committed update commands) after this point are invisible to
    /// reads through the returned view.
    pub fn begin_read(&self) -> ReadView {
        let ts = self.lock_mvcc().register();
        self.active_views.fetch_add(1, Ordering::SeqCst);
        ReadView::new(ts)
    }

    /// Release a view, pruning every version no remaining reader needs
    /// (retention-ledger spills included: their flash pages are freed).
    pub fn release_read(&self, view: ReadView) {
        let floor = self.lock_mvcc().deregister(view.read_ts());
        self.active_views.fetch_sub(1, Ordering::SeqCst);
        self.lock_cache().prune_committed(&mut StoreBackend(&self.store), floor);
    }

    /// Open a leak-proof snapshot: the returned guard releases the view
    /// when dropped, so early returns and panics can never freeze the
    /// version-retention floor.
    pub fn read_view(&self) -> ReadGuard<'_, BufferPool> {
        ReadGuard::new(self)
    }

    /// Run `f` under a freshly opened view, releasing it on every exit
    /// path (including `?` early returns inside `f` and panics).
    pub fn with_read_view<R>(&self, f: impl FnOnce(&ReadView) -> R) -> R {
        let guard = self.read_view();
        f(guard.view())
    }

    /// Snapshot read of `pid` as of `view`. A read resolved from the
    /// flash retention ledger (a cold spilled version) lands a sample in
    /// the `cold_version_read` histogram when observability is on.
    pub fn with_page_at<R>(
        &self,
        view: &ReadView,
        pid: u64,
        f: impl FnOnce(&[u8]) -> R,
    ) -> Result<R> {
        if !self.obs {
            return self.lock_cache().with_page_at(
                &mut StoreBackend(&self.store),
                pid,
                view.read_ts(),
                f,
            );
        }
        let start = Instant::now();
        let (r, cold) = self.lock_cache().with_page_at_traced(
            &mut StoreBackend(&self.store),
            pid,
            view.read_ts(),
            f,
        )?;
        if cold {
            let us = start.elapsed().as_micros() as u64;
            let mut rec = self.recorder.lock().unwrap_or_else(|e| e.into_inner());
            rec.record(pdl_obs::LatencyClass::ColdVersionRead, us);
        }
        Ok(r)
    }

    /// Retained committed versions (diagnostics / tests).
    pub fn retained_versions(&self) -> usize {
        self.lock_cache().retained_versions()
    }

    /// Bytes of retained committed version payload (diagnostics / tests).
    pub fn retained_version_bytes(&self) -> usize {
        self.lock_cache().retained_version_bytes()
    }

    // ------------------------------------------------------------------
    // Structure-root log (see `view.rs`): registered structures resolve
    // their root state through the same commit clock the page version
    // chains use, so stale BTree / HeapFile handles are snapshot-safe.
    // ------------------------------------------------------------------

    /// Register a structure at its creation-time state.
    pub fn register_struct(&self, root: StructRoot) -> StructId {
        self.lock_mvcc().register_struct(root)
    }

    /// Current committed state of a registered structure.
    pub fn struct_current(&self, id: StructId) -> Option<StructRoot> {
        self.lock_mvcc().struct_current(id)
    }

    /// Current committed state of a registered structure, only if newer
    /// than generation `seen` (see `MvccState::struct_current_if_newer`).
    pub fn struct_current_if_newer(&self, id: StructId, seen: u64) -> Option<(u64, StructRoot)> {
        self.lock_mvcc().struct_current_if_newer(id, seen)
    }

    /// Drop a structure's registration (handle teardown; see
    /// `MvccState::deregister_struct`).
    pub fn deregister_struct(&self, id: StructId) {
        self.lock_mvcc().deregister_struct(id)
    }

    /// Record an auto-committed structural change (no open transaction):
    /// the change rides the commit clock as of now — every page command
    /// it consisted of has already allocated its commit timestamp, so
    /// views opened before the change resolve the superseded pre-state.
    pub fn publish_struct(&self, id: StructId, root: StructRoot) {
        let mut m = self.lock_mvcc();
        let ts = m.clock;
        let retain = !m.active.is_empty();
        m.publish_struct(id, retain.then_some(ts), root);
    }

    /// Resolve a registered structure's state as of `read_ts`.
    pub(crate) fn resolve_struct(&self, id: StructId, read_ts: u64) -> Option<StructRoot> {
        self.lock_mvcc().resolve_struct(id, read_ts)
    }

    /// Structure-root pre-states currently retained (diagnostics/tests).
    pub fn retained_struct_versions(&self) -> usize {
        self.lock_mvcc().retained_struct_versions()
    }

    /// Every registered structure's current committed state, ascending by
    /// id — what a durable commit serializes into the store's root log.
    pub(crate) fn current_roots(&self) -> Vec<(StructId, StructRoot)> {
        self.lock_mvcc().current_roots()
    }

    // ------------------------------------------------------------------
    // Page latches (structural writers) + pool-side observability
    // ------------------------------------------------------------------

    /// Acquire the latch on logical page `pid`, blocking while another
    /// thread holds it. Structural writers (B+-tree crab-walk descents,
    /// heap growth) couple through these; readers never take them. Lock
    /// order: latches are acquired strictly root-to-leaf (and left-to-
    /// right along the leaf chain), and the cache/store/MVCC mutexes are
    /// only taken *under* a latch, never the other way round.
    pub fn latch_page(&self, pid: u64) -> PageLatch<'_> {
        if self.obs {
            let start = Instant::now();
            if self.latches.acquire(pid) {
                let waited = start.elapsed().as_micros() as u64;
                let mut rec = self.recorder.lock().unwrap_or_else(|e| e.into_inner());
                rec.record(pdl_obs::LatencyClass::LatchWait, waited);
            }
        } else {
            self.latches.acquire(pid);
        }
        PageLatch { pool: self, pid }
    }

    /// Host-clock µs since the pool's observability epoch (`None` when
    /// observability is off — the one branch disabled recording costs).
    pub fn obs_now_us(&self) -> Option<u64> {
        self.obs.then(|| self.obs_epoch.elapsed().as_micros() as u64)
    }

    /// Record a structural-operation span (`split`, `merge`,
    /// `root-publish`): `id` is the subject pid, `block` the transaction,
    /// and the lane is the pid's stripe (`pid % num_shards`), so a trace
    /// shows concurrent descents as parallel lanes. `start_us` comes from
    /// [`BufferPool::obs_now_us`]; the call is a no-op when that returned
    /// `None`.
    pub fn struct_span(&self, name: &'static str, pid: u64, txn: u64, start_us: Option<u64>) {
        let Some(start_us) = start_us else { return };
        let end_us = self.obs_epoch.elapsed().as_micros() as u64;
        let lane = (pid % self.num_shards as u64) as u32;
        let mut rec = self.recorder.lock().unwrap_or_else(|e| e.into_inner());
        rec.push_span(pdl_obs::Span {
            name,
            ctx: "struct",
            lane,
            start_us,
            dur_us: end_us.saturating_sub(start_us),
            block: txn,
            id: pid,
        });
    }

    /// Snapshot of the pool-side recorder: the `latch_wait` contention
    /// histogram plus the structural-operation spans.
    pub fn pool_obs_snapshot(&self) -> pdl_obs::RecorderSnapshot {
        self.recorder.lock().unwrap_or_else(|e| e.into_inner()).snapshot()
    }

    /// Mutable access to a page. The closure's writes through [`PageMut`]
    /// form **one update command**: after it returns, the recorded ranges
    /// are reported to the page store (tightly-coupled methods write their
    /// update logs here). The command auto-commits: its pre-image joins
    /// the page's version chain when an open read view predates it.
    pub fn with_page_mut<R>(&self, pid: u64, f: impl FnOnce(&mut PageMut) -> R) -> Result<R> {
        let vsrc = PoolVersioner { active_views: &self.active_views, mvcc: &self.mvcc };
        self.lock_cache().with_page_mut_txn(&mut StoreBackend(&self.store), pid, NO_TXN, &vsrc, f)
    }

    /// Mutable access on behalf of an open transaction (see
    /// [`crate::Database::begin`]); versioning happens at commit.
    pub fn with_page_mut_txn<R>(
        &self,
        pid: u64,
        txn: u64,
        f: impl FnOnce(&mut PageMut) -> R,
    ) -> Result<R> {
        self.lock_cache().with_page_mut_txn(
            &mut StoreBackend(&self.store),
            pid,
            txn,
            &NoVersioning,
            f,
        )
    }

    pub(crate) fn set_pin_owned(&self, pin: bool) {
        self.lock_cache().set_pin_owned(pin);
    }

    /// The uncommitted transaction owning `pid`'s dirty frame, if any
    /// (see `FrameCache::dirty_owner`). Structural descents check this
    /// so a writer never navigates another transaction's uncommitted
    /// split (the physical shape change is not yet authoritative — and
    /// may yet be rolled back).
    pub(crate) fn dirty_owner(&self, pid: u64) -> u64 {
        self.lock_cache().dirty_owner(pid)
    }

    pub(crate) fn collect_owned(&self, txn: u64) -> Vec<(u64, Vec<u8>)> {
        self.lock_cache().collect_owned(txn)
    }

    /// Allocate the transaction's commit timestamp and publish its
    /// structural changes at that timestamp, under one registry lock — so
    /// a view either predates the whole commit (pages *and* roots) or
    /// sees all of it. Also returns the registry's active read-timestamp
    /// set for the gap-precise cap enforcement that follows.
    fn alloc_commit_ts(&self, structs: Vec<(StructId, StructRoot)>) -> (Option<u64>, Vec<u64>) {
        let mut m = self.lock_mvcc();
        let (ts, retain) = m.alloc_commit();
        for (id, root) in structs {
            m.publish_struct(id, retain.then_some(ts), root);
        }
        (retain.then_some(ts), m.active_ts())
    }

    /// Confirm a durable commit: `txn`'s frames become clean (their
    /// images are on flash) and unowned; pending pre-images become
    /// committed versions if a read view predates the commit; `structs`
    /// are the transaction's structural changes, published at the commit
    /// timestamp.
    pub(crate) fn commit_release(&self, txn: u64, structs: Vec<(StructId, StructRoot)>) {
        let (ts, active) = self.alloc_commit_ts(structs);
        self.lock_cache().end_txn(&mut StoreBackend(&self.store), txn, ts, true, &active);
    }

    /// Release `txn`'s ownership without any I/O (relaxed-durability
    /// commit): the frames stay dirty and reach flash by ordinary
    /// eviction, exactly as if the writes had been auto-committed.
    pub(crate) fn release_owned(&self, txn: u64, structs: Vec<(StructId, StructRoot)>) {
        let (ts, active) = self.alloc_commit_ts(structs);
        self.lock_cache().end_txn(&mut StoreBackend(&self.store), txn, ts, false, &active);
    }

    pub(crate) fn rollback(&self, txn: u64) -> Result<()> {
        self.lock_cache().rollback(&mut StoreBackend(&self.store), txn)
    }

    /// Write every dirty page back and flush the store's buffers
    /// (write-through, the durability point of §4.5).
    pub fn flush_all(&self) -> Result<()> {
        self.lock_cache().write_back_dirty(&mut StoreBackend(&self.store))?;
        self.with_store(|s| s.flush())?;
        Ok(())
    }

    /// Drop every cached page without writing back (crash simulation).
    pub fn poison_cache(&self) {
        self.lock_cache().clear();
    }

    /// Consume the pool, flushing everything, and return the store.
    pub fn into_store(self) -> Result<Box<dyn PageStore>> {
        self.flush_all()?;
        Ok(self.store.into_inner().unwrap_or_else(|e| e.into_inner()))
    }

    /// Consume the pool *without* writing anything back (crash
    /// simulation: cached dirty pages and uncommitted transactions are
    /// lost, exactly as on a power failure).
    pub fn into_store_without_flush(self) -> Box<dyn PageStore> {
        self.store.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl ViewRegistry for BufferPool {
    fn begin_read(&self) -> ReadView {
        BufferPool::begin_read(self)
    }

    fn release_read(&self, view: ReadView) {
        BufferPool::release_read(self, view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdl_core::{build_store, MethodKind, StoreOptions};
    use pdl_flash::{FlashChip, FlashConfig};

    fn pool(capacity: usize, kind: MethodKind) -> BufferPool {
        let chip = FlashChip::new(FlashConfig::tiny());
        let store = build_store(chip, kind, StoreOptions::new(24)).unwrap();
        BufferPool::new(store, capacity)
    }

    #[test]
    fn writes_survive_eviction_pressure() {
        let p = pool(2, MethodKind::Pdl { max_diff_size: 128 });
        for pid in 0..8u64 {
            p.with_page_mut(pid, |page| page.write(0, &[pid as u8; 4])).unwrap();
        }
        for pid in 0..8u64 {
            let b = p.with_page(pid, |page| page[0]).unwrap();
            assert_eq!(b, pid as u8, "pid {pid}");
        }
        assert!(p.stats().evictions > 0);
        assert!(p.stats().dirty_writebacks > 0);
    }

    #[test]
    fn hits_do_not_touch_flash() {
        let p = pool(4, MethodKind::Opu);
        p.with_page_mut(1, |page| page.write(0, b"abcd")).unwrap();
        let before = p.with_store(|s| s.chip().stats().total());
        for _ in 0..10 {
            p.with_page(1, |page| page[0]).unwrap();
        }
        let d = p.with_store(|s| s.chip().stats().total()) - before;
        assert_eq!(d.total_ops(), 0, "cache hits must be free");
        assert_eq!(p.stats().hits, 10);
    }

    #[test]
    fn clean_pages_evict_without_writeback() {
        let p = pool(1, MethodKind::Opu);
        p.with_page(0, |_| ()).unwrap();
        p.with_page(1, |_| ()).unwrap(); // evicts page 0, clean
        assert_eq!(p.stats().dirty_writebacks, 0);
        assert_eq!(p.stats().evictions, 1);
    }

    #[test]
    fn update_commands_reach_tightly_coupled_methods() {
        let p = pool(2, MethodKind::Ipl { log_bytes_per_block: 512 });
        // Load the page first so IPL has an original page.
        p.with_page_mut(3, |page| {
            let len = page.len();
            page.fill(0, len, 7);
        })
        .unwrap();
        p.flush_all().unwrap();
        // A small update command becomes an update log, readable back.
        p.with_page_mut(3, |page| page.write(10, &[9, 9])).unwrap();
        p.flush_all().unwrap();
        let (a, b) = p.with_page(3, |page| (page[10], page[12])).unwrap();
        assert_eq!(a, 9);
        assert_eq!(b, 7);
    }

    #[test]
    fn flush_all_makes_state_durable() {
        let p = pool(4, MethodKind::Pdl { max_diff_size: 128 });
        p.with_page_mut(0, |page| page.write(5, b"xyz")).unwrap();
        p.flush_all().unwrap();
        let store = p.into_store().unwrap();
        let chip = store.into_chip();
        let mut back = pdl_core::recover_store(
            chip,
            MethodKind::Pdl { max_diff_size: 128 },
            StoreOptions::new(24),
        )
        .unwrap();
        let mut out = vec![0u8; back.logical_page_size()];
        back.read_page(0, &mut out).unwrap();
        assert_eq!(&out[5..8], b"xyz");
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let p = pool(2, MethodKind::Opu);
        p.with_page(0, |_| ()).unwrap();
        p.with_page(1, |_| ()).unwrap();
        p.with_page(0, |_| ()).unwrap(); // 1 is now LRU
        p.with_page(2, |_| ()).unwrap(); // evicts 1
        let before = p.stats().misses;
        p.with_page(0, |_| ()).unwrap(); // still cached
        assert_eq!(p.stats().misses, before);
        p.with_page(1, |_| ()).unwrap(); // miss
        assert_eq!(p.stats().misses, before + 1);
    }

    #[test]
    fn page_mut_helpers_record_changes() {
        let mut data = vec![0u8; 64];
        let mut changes = Vec::new();
        let mut page = PageMut { data: &mut data, changes: &mut changes };
        page.write_u16(0, 0x1234);
        page.write_u64(8, 42);
        page.fill(20, 4, 0xFF);
        page.copy_within(20, 30, 4);
        assert_eq!(read_u16(page.as_slice(), 0), 0x1234);
        assert_eq!(read_u64(page.as_slice(), 8), 42);
        assert_eq!(&page.as_slice()[30..34], &[0xFF; 4]);
        assert_eq!(changes.len(), 4);
    }

    // ------------------------------------------------------------------
    // MVCC read views
    // ------------------------------------------------------------------

    #[test]
    fn view_is_isolated_from_auto_committed_writes() {
        let p = pool(4, MethodKind::Opu);
        p.with_page_mut(0, |page| page.write(0, &[1; 4])).unwrap();
        let view = p.begin_read();
        p.with_page_mut(0, |page| page.write(0, &[2; 4])).unwrap();
        p.with_page_mut(0, |page| page.write(0, &[3; 4])).unwrap();
        // The view still reads the image at open time; current reads see
        // the newest committed data.
        assert_eq!(p.with_page_at(&view, 0, |pg| pg[0]).unwrap(), 1);
        assert_eq!(p.with_page(0, |pg| pg[0]).unwrap(), 3);
        assert!(p.stats().version_reads > 0);
        p.release_read(view);
        assert_eq!(p.retained_versions(), 0, "release prunes the chain");
    }

    #[test]
    fn versions_survive_frame_eviction() {
        let p = pool(1, MethodKind::Opu); // one frame: every access evicts
        p.with_page_mut(0, |page| page.write(0, &[7; 4])).unwrap();
        let view = p.begin_read();
        p.with_page_mut(0, |page| page.write(0, &[8; 4])).unwrap();
        for pid in 1..6u64 {
            p.with_page_mut(pid, |page| page.write(0, &[pid as u8; 2])).unwrap();
        }
        assert_eq!(p.with_page_at(&view, 0, |pg| pg[0]).unwrap(), 7);
        p.release_read(view);
    }

    #[test]
    fn no_views_means_no_retention() {
        let p = pool(4, MethodKind::Opu);
        for round in 0..10u8 {
            p.with_page_mut(0, |page| page.write(0, &[round; 4])).unwrap();
        }
        assert_eq!(p.retained_versions(), 0, "versioning is free-riding: no readers, no copies");
    }

    #[test]
    fn cap_cuts_off_the_oldest_view() {
        let chip = FlashChip::new(FlashConfig::tiny());
        let store =
            build_store(chip, MethodKind::Opu, StoreOptions::new(24).with_snapshot_version_cap(3))
                .unwrap();
        let p = BufferPool::new(store, 8);
        p.with_page_mut(0, |page| page.write(0, &[1; 4])).unwrap();
        let view = p.begin_read();
        for round in 0..8u8 {
            p.with_page_mut(round as u64 % 4, |page| page.write(0, &[round + 10; 4])).unwrap();
        }
        assert!(p.retained_versions() <= 3, "cap bounds the pool's version memory");
        let err = p.with_page_at(&view, 0, |_| ()).unwrap_err();
        assert!(matches!(err, StorageError::SnapshotTooOld { .. }), "got {err:?}");
        p.release_read(view);
        // A fresh view reads fine.
        let view = p.begin_read();
        assert!(p.with_page_at(&view, 0, |_| ()).is_ok());
        p.release_read(view);
    }

    #[test]
    fn byte_budget_trips_before_the_count_cap() {
        let chip = FlashChip::new(FlashConfig::tiny());
        let store = build_store(
            chip,
            MethodKind::Opu,
            StoreOptions::new(24)
                .with_snapshot_version_cap(1000)
                .with_snapshot_retention_bytes(2 * 256),
        )
        .unwrap();
        let p = BufferPool::new(store, 8);
        p.with_page_mut(0, |page| page.write(0, &[1; 4])).unwrap();
        let view = p.begin_read();
        for round in 0..6u8 {
            p.with_page_mut(round as u64 % 3, |page| page.write(0, &[round + 20; 4])).unwrap();
        }
        assert!(
            p.retained_version_bytes() <= 2 * 256,
            "the byte budget bounds retention: {} bytes",
            p.retained_version_bytes()
        );
        let err = p.with_page_at(&view, 0, |_| ()).unwrap_err();
        assert!(matches!(err, StorageError::SnapshotTooOld { .. }), "got {err:?}");
        p.release_read(view);
        assert_eq!(p.retained_version_bytes(), 0, "release prunes the byte ledger too");
    }

    #[test]
    fn read_guard_releases_on_drop_and_gauges_active_views() {
        let p = pool(4, MethodKind::Opu);
        p.with_page_mut(0, |page| page.write(0, &[1; 4])).unwrap();
        {
            let guard = p.read_view();
            assert_eq!(p.stats().active_views, 1, "the gauge counts the open guard");
            p.with_page_mut(0, |page| page.write(0, &[2; 4])).unwrap();
            assert_eq!(p.with_page_at(guard.view(), 0, |pg| pg[0]).unwrap(), 1);
        }
        assert_eq!(p.stats().active_views, 0, "drop released the view");
        assert_eq!(p.retained_versions(), 0, "and pruned what it pinned");
        let r = p.with_read_view(|view| p.with_page_at(view, 0, |pg| pg[0]));
        assert_eq!(r.unwrap(), 2);
        assert_eq!(p.stats().active_views, 0, "the closure helper releases on exit");
    }

    #[test]
    fn concurrent_readers_share_the_pool() {
        // &BufferPool reads from several threads: the type-system witness
        // that non-mutating reads no longer need `&mut`.
        let p = pool(8, MethodKind::Opu);
        for pid in 0..8u64 {
            p.with_page_mut(pid, |page| page.write(0, &[pid as u8 + 1; 4])).unwrap();
        }
        let view = p.begin_read();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let p = &p;
                let view = &view;
                scope.spawn(move || {
                    for pid in 0..8u64 {
                        let cur = p.with_page(pid, |pg| pg[0]).unwrap();
                        let snap = p.with_page_at(view, pid, |pg| pg[0]).unwrap();
                        assert_eq!(cur, pid as u8 + 1);
                        assert_eq!(snap, pid as u8 + 1);
                    }
                });
            }
        });
        p.release_read(view);
    }
}
